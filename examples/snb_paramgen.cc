// SNB parameter-generation demo (the paper's E4 scenario): LDBC-style Q3
// ("friends-of-friends who visited countries X and Y") flips its optimal
// plan with the country pair. This example classifies all country pairs
// into plan classes and prints representative pairs per class — the
// "countries that are rarely and frequently visited together" split the
// paper asks the workload generator to sample independently.
//
//   ./snb_paramgen [--persons=3000] [--seed=7]
#include <cstdio>
#include <iostream>

#include "core/plan_classifier.h"
#include "core/workload.h"
#include "snb/generator.h"
#include "snb/queries.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace rdfparams;

int main(int argc, char** argv) {
  int64_t persons = 3000;
  int64_t seed = 7;
  util::FlagParser flags;
  flags.AddInt64("persons", &persons, "number of persons");
  flags.AddInt64("seed", &seed, "generator seed");
  Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return flags.help_requested() ? 0 : 1;
  }

  snb::GeneratorConfig config;
  config.num_persons = static_cast<uint64_t>(persons);
  config.seed = static_cast<uint64_t>(seed);
  std::printf("generating social network (%lld persons)...\n",
              static_cast<long long>(persons));
  snb::Dataset ds = snb::Generate(config);
  std::printf("  %s triples, %zu posts, %zu countries\n\n",
              util::FormatCount(ds.store.size()).c_str(), ds.posts.size(),
              ds.countries.size());

  auto q3 = snb::MakeQ3(ds);

  // Domain: a few probe persons x all unordered country pairs.
  core::ParameterDomain domain;
  std::vector<rdf::TermId> probe(ds.persons.begin(), ds.persons.begin() + 2);
  domain.AddSingle("person", probe);
  std::vector<std::vector<rdf::TermId>> pairs;
  for (const auto& b : snb::CountryPairDomain(ds)) pairs.push_back(b.values);
  domain.AddTuples({"countryX", "countryY"}, pairs);

  core::ClassifyOptions options;
  options.max_candidates = 992;  // 2 persons x 496 pairs
  auto classes =
      core::ClassifyParameters(q3, domain, ds.store, ds.dict, options);
  if (!classes.ok()) {
    std::cerr << classes.status().ToString() << "\n";
    return 1;
  }

  std::printf("Q3 parameter classes over %llu candidate bindings:\n\n",
              static_cast<unsigned long long>(classes->num_candidates));
  util::TablePrinter table(
      {"class", "share", "plan fingerprint", "bucket", "example pair"});
  int idx = 0;
  for (const core::PlanClass& cls : classes->classes) {
    if (idx >= 8) break;
    const auto& rep = cls.representative;
    // rep.values = {person, countryX, countryY}
    std::string example =
        std::string(ds.dict.term(rep.values[1]).lexical).substr(
            std::string("http://rdfparams.org/snb/instances/Country_").size()) +
        " + " +
        std::string(ds.dict.term(rep.values[2]).lexical).substr(
            std::string("http://rdfparams.org/snb/instances/Country_").size());
    table.AddRow({"S" + std::to_string(idx++),
                  util::StringPrintf("%.1f%%", cls.fraction * 100),
                  cls.fingerprint, std::to_string(cls.cost_bucket), example});
  }
  std::printf("%s", table.ToText().c_str());

  std::printf(
      "\nDistinct plan shapes across classes confirm E4: for frequently\n"
      "co-visited pairs the optimizer expands from the person's friends,\n"
      "for rare pairs it starts from the country-visit intersection.\n"
      "A workload generator should sample each class separately.\n");
  return 0;
}

// Plan explorer: EXPLAIN the optimal plan of any built-in template under a
// sweep of its parameter domain, showing exactly where the optimizer
// switches join orders (the paper's condition (c) boundaries).
//
//   ./explain_plans [--workload=bsbm|snb] [--query=4] [--max=12]
//                   [--exec-threads=N]   (annotate parallel operators)
#include <cstdio>
#include <iostream>

#include "bsbm/generator.h"
#include "bsbm/queries.h"
#include "core/parameter_domain.h"
#include "optimizer/optimizer.h"
#include "snb/generator.h"
#include "snb/queries.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

using namespace rdfparams;

namespace {

void ExplainSweep(const sparql::QueryTemplate& tmpl,
                  const core::ParameterDomain& domain,
                  const rdf::TripleStore& store, rdf::Dictionary& dict,
                  size_t max_shown, int exec_threads) {
  std::printf("template %s, parameters:", tmpl.name().c_str());
  for (const auto& p : tmpl.parameter_names()) std::printf(" %%%s", p.c_str());
  std::printf("\n%s\n\n", tmpl.query().ToString().c_str());

  auto bindings = domain.Enumerate(max_shown);
  std::string last_fingerprint;
  for (const auto& binding : bindings) {
    auto q = tmpl.Bind(binding, dict);
    if (!q.ok()) continue;
    auto plan = opt::Optimize(*q, store, dict);
    if (!plan.ok()) continue;
    std::string params;
    for (size_t i = 0; i < binding.values.size(); ++i) {
      if (i > 0) params += ", ";
      params += dict.ToString(binding.values[i]);
    }
    bool flipped = plan->fingerprint != last_fingerprint;
    std::printf("%s params = [%s]\n", flipped ? "*" : " ", params.c_str());
    std::printf("   plan %s   est C_out %.4g\n", plan->fingerprint.c_str(),
                plan->est_cout);
    if (flipped) {
      std::printf("%s", plan->root->Explain(*q, exec_threads).c_str());
      last_fingerprint = plan->fingerprint;
    }
  }
  std::printf("\n('*' marks bindings where the optimal plan changed)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "bsbm";
  int64_t query = 4;
  int64_t max_shown = 12;
  int64_t exec_threads = 1;
  util::FlagParser flags;
  flags.AddString("workload", &workload, "bsbm or snb");
  flags.AddInt64("query", &query, "query number within the workload");
  flags.AddInt64("max", &max_shown, "max bindings to explain");
  flags.AddInt64("exec_threads", &exec_threads,
                 "annotate operators the executor parallelizes at N threads");
  Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return flags.help_requested() ? 0 : 1;
  }
  // 0 / negative mean "all cores", exactly as ExecOptions::threads does.
  exec_threads = static_cast<int64_t>(
      util::ThreadPool::ResolveThreads(static_cast<int>(exec_threads)));

  if (workload == "bsbm") {
    bsbm::GeneratorConfig config;
    config.num_products = 1500;
    bsbm::Dataset ds = bsbm::Generate(config);
    auto templates = bsbm::AllTemplates(ds);
    if (query < 1 || static_cast<size_t>(query) > templates.size()) {
      std::cerr << "query must be 1.." << templates.size() << "\n";
      return 1;
    }
    const auto& tmpl = templates[static_cast<size_t>(query - 1)];
    core::ParameterDomain domain;
    for (const std::string& p : tmpl.parameter_names()) {
      if (p == "type" || p == "ProductType") {
        domain.AddSingle(p, bsbm::TypeDomain(ds));
      } else if (p == "product") {
        domain.AddSingle(p, bsbm::ProductDomain(ds));
      } else if (p == "feature") {
        domain.AddSingle(p, bsbm::FeatureDomain(ds));
      }
    }
    ExplainSweep(tmpl, domain, ds.store, ds.dict,
                 static_cast<size_t>(max_shown), static_cast<int>(exec_threads));
    return 0;
  }
  if (workload == "snb") {
    snb::GeneratorConfig config;
    config.num_persons = 2500;
    snb::Dataset ds = snb::Generate(config);
    auto templates = snb::AllTemplates(ds);
    if (query < 1 || static_cast<size_t>(query) > templates.size()) {
      std::cerr << "query must be 1.." << templates.size() << "\n";
      return 1;
    }
    const auto& tmpl = templates[static_cast<size_t>(query - 1)];
    core::ParameterDomain domain;
    for (const std::string& p : tmpl.parameter_names()) {
      if (p == "person") {
        std::vector<rdf::TermId> one(ds.persons.begin(),
                                     ds.persons.begin() + 1);
        domain.AddSingle(p, one);
      } else if (p == "name") {
        domain.AddSingle(p, snb::NameDomain(ds));
      } else if (p == "country" || p == "countryX" || p == "countryY") {
        domain.AddSingle(p, snb::CountryDomain(ds));
      } else if (p == "tag") {
        domain.AddSingle(p, snb::TagDomain(ds));
      }
    }
    ExplainSweep(tmpl, domain, ds.store, ds.dict,
                 static_cast<size_t>(max_shown), static_cast<int>(exec_threads));
    return 0;
  }
  std::cerr << "unknown workload '" << workload << "'\n";
  return 1;
}

// BSBM-BI workload demo: generates a BSBM-style dataset, runs Query 4
// ("price aggregation per feature for a %ProductType") first with uniform
// random parameters — reproducing the unstable behaviour of the paper's
// E1/E3 — then with the Section III parameter classes, showing how the
// per-class workloads become stable (P1-P3).
//
//   ./bsbm_workload [--products=2000] [--bindings=50] [--seed=42]
#include <cstdio>
#include <iostream>

#include "bsbm/generator.h"
#include "bsbm/queries.h"
#include "core/analysis.h"
#include "core/plan_classifier.h"
#include "core/workload.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace rdfparams;

int main(int argc, char** argv) {
  int64_t products = 2000;
  int64_t bindings = 50;
  int64_t seed = 42;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "number of BSBM products");
  flags.AddInt64("bindings", &bindings, "parameter bindings per workload");
  flags.AddInt64("seed", &seed, "generator seed");
  Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return flags.help_requested() ? 0 : 1;
  }

  bsbm::GeneratorConfig config;
  config.num_products = static_cast<uint64_t>(products);
  config.seed = static_cast<uint64_t>(seed);
  std::printf("generating BSBM dataset (%lld products)...\n",
              static_cast<long long>(products));
  bsbm::Dataset ds = bsbm::Generate(config);
  std::printf("  %s triples, %zu product types (%zu leaves)\n\n",
              util::FormatCount(ds.store.size()).c_str(), ds.types.size(),
              ds.LeafTypeIds().size());

  auto q4 = bsbm::MakeQ4(ds);
  core::ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(ds));

  core::WorkloadRunner runner(ds.store, &ds.dict);
  util::Rng rng(static_cast<uint64_t>(seed) + 1);

  // --- Uniform random parameters (the "standard way") -------------------
  auto uniform = domain.SampleN(&rng, static_cast<size_t>(bindings));
  auto uniform_obs = runner.RunAll(q4, uniform);
  if (!uniform_obs.ok()) {
    std::cerr << uniform_obs.status().ToString() << "\n";
    return 1;
  }
  core::ShapeReport shape = core::AnalyzeShape(core::RuntimesOf(*uniform_obs));
  std::printf("UNIFORM sampling of %%ProductType (%zu bindings):\n",
              uniform.size());
  std::printf("  runtime min/median/mean/q95/max: %s / %s / %s / %s / %s\n",
              util::FormatDuration(shape.summary.min).c_str(),
              util::FormatDuration(shape.summary.median).c_str(),
              util::FormatDuration(shape.summary.mean).c_str(),
              util::FormatDuration(shape.summary.q95).c_str(),
              util::FormatDuration(shape.summary.max).c_str());
  std::printf("  mean/median ratio: %.1fx   distinct plans: %zu\n",
              shape.mean_over_median,
              core::DistinctPlans(*uniform_obs));
  std::printf("  KS distance from fitted normal: %.3f (p = %.2g)\n\n",
              shape.ks_vs_normal.distance, shape.ks_vs_normal.p_value);

  // --- Parameter classes (the paper's Section III) ----------------------
  auto classes = core::ClassifyParameters(q4, domain, ds.store, ds.dict);
  if (!classes.ok()) {
    std::cerr << classes.status().ToString() << "\n";
    return 1;
  }
  std::printf("parameter classes (plan x cost bucket): %zu classes\n",
              classes->classes.size());
  util::TablePrinter table(
      {"class", "size", "share", "plan", "cout range", "runtime cv",
       "plans"});
  int idx = 0;
  for (const core::PlanClass& cls : classes->classes) {
    if (cls.members.size() < 2 && idx >= 6) continue;
    size_t n = std::min<size_t>(cls.members.size(),
                                static_cast<size_t>(bindings));
    auto class_bindings = core::SampleFromClass(cls, n, &rng);
    auto obs = runner.RunAll(q4, class_bindings);
    if (!obs.ok()) continue;
    core::ClassQuality quality = core::AnalyzeClass(*obs);
    table.AddRow({"S" + std::to_string(idx++),
                  std::to_string(cls.members.size()),
                  util::StringPrintf("%.0f%%", cls.fraction * 100),
                  cls.fingerprint,
                  util::StringPrintf("[%.3g, %.3g]", cls.min_cout,
                                     cls.max_cout),
                  util::StringPrintf("%.2f", quality.runtime_cv),
                  std::to_string(quality.distinct_plans)});
  }
  std::printf("%s", table.ToText().c_str());
  std::printf(
      "\nWithin each class S_i the plan is unique (P3) and the runtime\n"
      "spread (cv) is small (P1) — Q4 splits into the paper's Q4a/Q4b.\n");
  return 0;
}

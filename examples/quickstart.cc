// Quickstart: load a small RDF graph, define a query template with
// %parameters (the paper's notion), bind it two ways, and watch the
// optimizer pick different plans with different costs.
//
//   ./quickstart
#include <cstdio>
#include <iostream>

#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "rdf/turtle.h"
#include "sparql/query_template.h"

using namespace rdfparams;

int main() {
  // 1. Load data: a miniature social network with a name/country
  //    correlation (everyone in China is named Li; the one John in China is
  //    the odd one out).
  const char* turtle = R"(
@prefix sn: <http://example.org/sn#> .
@prefix c:  <http://example.org/country/> .
sn:p1 sn:firstName "Li" ;   sn:livesIn c:China .
sn:p2 sn:firstName "Li" ;   sn:livesIn c:China .
sn:p3 sn:firstName "Li" ;   sn:livesIn c:China .
sn:p4 sn:firstName "Li" ;   sn:livesIn c:China .
sn:p5 sn:firstName "John" ; sn:livesIn c:China .
sn:p6 sn:firstName "John" ; sn:livesIn c:USA .
sn:p7 sn:firstName "John" ; sn:livesIn c:USA .
sn:p8 sn:firstName "Mary" ; sn:livesIn c:USA .
)";
  rdf::Dictionary dict;
  rdf::TripleStore store;
  Status st = rdf::LoadTurtle(turtle, &dict, &store);
  if (!st.ok()) {
    std::cerr << "load failed: " << st.ToString() << "\n";
    return 1;
  }
  store.Finalize();
  std::printf("loaded %zu triples, %zu terms\n\n", store.size(), dict.size());

  // 2. The paper's introductory query template.
  auto tmpl = sparql::QueryTemplate::Parse("intro", R"(
PREFIX sn: <http://example.org/sn#>
SELECT * WHERE {
  ?person sn:firstName %name .
  ?person sn:livesIn %country .
}
)");
  if (!tmpl.ok()) {
    std::cerr << tmpl.status().ToString() << "\n";
    return 1;
  }

  // 3. Bind it with two different parameter choices and compare plans.
  engine::Executor exec(store, &dict);
  for (auto [name, country] :
       {std::pair{"Li", "http://example.org/country/China"},
        std::pair{"John", "http://example.org/country/China"}}) {
    auto query = tmpl->BindNamed(
        {{"name", rdf::Term::Literal(name)},
         {"country", rdf::Term::Iri(country)}});
    if (!query.ok()) {
      std::cerr << query.status().ToString() << "\n";
      return 1;
    }
    auto plan = opt::Optimize(*query, store, dict);
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 1;
    }
    std::printf("--- %%name=%s %%country=<%s>\n", name, country);
    std::printf("fingerprint: %s   estimated C_out: %.0f\n",
                plan->fingerprint.c_str(), plan->est_cout);
    std::printf("%s", plan->root->Explain(*query).c_str());

    engine::ExecutionStats stats;
    auto result = exec.Execute(*query, *plan.value().root, &stats);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::printf("results (%zu rows, observed C_out=%llu):\n%s\n",
                result->num_rows(),
                static_cast<unsigned long long>(stats.intermediate_rows),
                result->ToString(dict).c_str());
  }
  return 0;
}

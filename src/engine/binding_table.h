// Columnar materialized table of variable bindings (TermIds).
//
// Storage is one contiguous TermId vector per variable (column-major), the
// layout the vectorized operators in executor.cc want: a filter touches only
// the columns it compares, a hash probe hashes a whole key column slice, and
// ORDER BY / DISTINCT / projection materialize through column-wise gathers.
// Row order is still the table's logical order — every append/gather
// preserves it, which is what keeps results byte-identical across chunk
// sizes (see docs/ARCHITECTURE.md, "Columnar execution").
#ifndef RDFPARAMS_ENGINE_BINDING_TABLE_H_
#define RDFPARAMS_ENGINE_BINDING_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rdf/dictionary.h"

namespace rdfparams::engine {

/// Intermediate and final results of query execution. Columns are named by
/// the variables they bind; rows are tuples of TermIds.
class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<std::string> vars);

  const std::vector<std::string>& vars() const { return vars_; }
  size_t num_vars() const { return vars_.size(); }
  /// All columns are kept equal-length (checked), so any one is the row
  /// count. A zero-variable table has no columns and reports zero rows —
  /// appends to it are no-ops, matching the historical row-major behavior
  /// the executor's empty-schema paths rely on.
  size_t num_rows() const { return cols_.empty() ? 0 : cols_[0].size(); }

  /// Column position of `var`, or -1.
  int VarIndex(const std::string& var) const;

  /// Contiguous column `c` — the vectorized operators' read path.
  std::span<const rdf::TermId> col(size_t c) const {
    return {cols_[c].data(), cols_[c].size()};
  }
  rdf::TermId at(size_t row, size_t col) const { return cols_[col][row]; }

  /// Appends a row; `values.size()` must equal num_vars().
  void AppendRow(std::span<const rdf::TermId> values);
  void AppendRow(std::initializer_list<rdf::TermId> values);

  /// Appends all rows of `other` (same column count required, one
  /// column-wise memcpy each). Used to merge per-worker output slices in
  /// slice order.
  void Append(const BindingTable& other);

  /// Appends src rows [begin, end) in order (same column count required).
  void AppendRange(const BindingTable& src, size_t begin, size_t end);

  /// Appends src rows selected by `rows`, in selection order — the
  /// materialization step for filter selection vectors, ORDER BY
  /// permutations, and DISTINCT survivors. Column-wise: one pass per
  /// column over the selection. `src` must have the same column count.
  void AppendGather(const BindingTable& src, std::span<const uint32_t> rows);

  /// Direct mutable access to column `c` for bulk kernel writes (chunked
  /// join materialization). Callers must leave every column equal-length
  /// again before the table is read — CheckAligned() asserts exactly that.
  std::vector<rdf::TermId>& MutableCol(size_t c) { return cols_[c]; }

  /// Debug-asserts that all columns have equal length (the columnar
  /// analog of the old row-major `data_.size() % vars_.size() == 0`
  /// invariant; catches ragged appends early). Compiled out in release.
  void CheckAligned() const;

  /// Structural equality: same column names in the same order, same rows
  /// in the same order (one flat vector compare per column).
  bool operator==(const BindingTable& other) const {
    return vars_ == other.vars_ && cols_ == other.cols_;
  }

  void Reserve(size_t rows) {
    for (auto& c : cols_) c.reserve(rows);
  }
  void Clear() {
    for (auto& c : cols_) c.clear();
  }

  /// Renders up to `max_rows` rows through the dictionary (debug/examples).
  std::string ToString(const rdf::Dictionary& dict,
                       size_t max_rows = 20) const;

 private:
  std::vector<std::string> vars_;
  std::vector<std::vector<rdf::TermId>> cols_;  // cols_[c][r]; equal lengths
};

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_BINDING_TABLE_H_

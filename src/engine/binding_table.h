// Row-major materialized table of variable bindings (TermIds).
#ifndef RDFPARAMS_ENGINE_BINDING_TABLE_H_
#define RDFPARAMS_ENGINE_BINDING_TABLE_H_

#include <span>
#include <string>
#include <vector>

#include "rdf/dictionary.h"

namespace rdfparams::engine {

/// Intermediate and final results of query execution. Columns are named by
/// the variables they bind; rows are tuples of TermIds.
class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<std::string> vars);

  const std::vector<std::string>& vars() const { return vars_; }
  size_t num_vars() const { return vars_.size(); }
  size_t num_rows() const {
    return vars_.empty() ? 0 : data_.size() / vars_.size();
  }

  /// Column position of `var`, or -1.
  int VarIndex(const std::string& var) const;

  std::span<const rdf::TermId> row(size_t i) const {
    return {data_.data() + i * vars_.size(), vars_.size()};
  }
  rdf::TermId at(size_t row, size_t col) const {
    return data_[row * vars_.size() + col];
  }

  /// Appends a row; `values.size()` must equal num_vars().
  void AppendRow(std::span<const rdf::TermId> values);
  void AppendRow(std::initializer_list<rdf::TermId> values);

  /// Appends all rows of `other` (same column count required, one memcpy).
  /// Used to merge per-worker output slices in slice order.
  void Append(const BindingTable& other);

  /// Structural equality: same column names in the same order, same rows
  /// in the same order (one flat vector compare).
  bool operator==(const BindingTable& other) const {
    return vars_ == other.vars_ && data_ == other.data_;
  }

  void Reserve(size_t rows) { data_.reserve(rows * vars_.size()); }
  void Clear() { data_.clear(); }

  /// Renders up to `max_rows` rows through the dictionary (debug/examples).
  std::string ToString(const rdf::Dictionary& dict,
                       size_t max_rows = 20) const;

 private:
  std::vector<std::string> vars_;
  std::vector<rdf::TermId> data_;
};

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_BINDING_TABLE_H_

// Intra-query parallel execution knobs, separated from the optimizer's
// OptimizeOptions so layers that never execute queries (optimizer, plan
// classifier) can still carry one options bundle through the pipeline.
#ifndef RDFPARAMS_ENGINE_EXEC_OPTIONS_H_
#define RDFPARAMS_ENGINE_EXEC_OPTIONS_H_

#include <cstdint>

namespace rdfparams::engine {

/// Options for one Executor::Execute call.
///
/// Determinism contract: the result table and every ExecutionStats counter
/// (intermediate_rows, scan_rows, result_rows) are byte-identical for every
/// combination of `threads` and `morsel_size` — only the measured
/// wall_seconds varies. Workers probe disjoint input slices into private
/// output tables that are merged in slice order, and per-slice counters are
/// integers, so the reduction is order-independent.
struct ExecOptions {
  /// Intra-query worker threads: 1 = serial, 0 = hardware concurrency.
  /// Independent of the curation pipeline's across-binding `threads`
  /// option; when both are set, the total is roughly their product.
  int threads = 1;
  /// Rows of the probe-side input handed to one worker at a time
  /// (morsel-style scheduling). Smaller morsels balance skewed probe costs
  /// at slightly higher merge overhead. Values < 1 are treated as 1.
  uint64_t morsel_size = 1024;
};

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_EXEC_OPTIONS_H_

// Intra-query parallel execution knobs, separated from the optimizer's
// OptimizeOptions so layers that never execute queries (optimizer, plan
// classifier) can still carry one options bundle through the pipeline.
#ifndef RDFPARAMS_ENGINE_EXEC_OPTIONS_H_
#define RDFPARAMS_ENGINE_EXEC_OPTIONS_H_

#include <cstdint>

namespace rdfparams::engine {

/// Options for one Executor::Execute call.
///
/// Determinism contract: the result table and every ExecutionStats counter
/// (intermediate_rows, scan_rows, result_rows) are byte-identical for every
/// combination of the fields below — only the measured wall_seconds varies.
/// How each parallel operator upholds the contract:
///   * morsel joins — workers probe disjoint input slices into private
///     output tables merged in slice order; per-slice counters are
///     integers, so their reduction is order-independent;
///   * group-by — per-slice partial aggregate tables are folded in a
///     canonical order fixed by the input alone (see group_merge.h), so
///     even floating-point sums are bit-stable;
///   * ORDER BY — a row-index tie-break makes the sort order total, so the
///     parallel merge sort reproduces the serial stable sort exactly (see
///     parallel_sort.h);
///   * chunked (vectorized) operators — chunk boundaries only batch work;
///     every kernel emits rows in input order and filter/merge-join
///     short-cuts are pure functions of the row values, so chunk_rows and
///     enable_merge_join are schedule knobs like morsel_size, never result
///     knobs (see docs/ARCHITECTURE.md, "Columnar execution").
/// docs/ARCHITECTURE.md spells out the full contract.
struct ExecOptions {
  /// Intra-query worker threads: 1 = serial, 0 = hardware concurrency.
  /// Independent of the curation pipeline's across-binding `threads`
  /// option; when both are set, the total is roughly their product.
  int threads = 1;

  /// Rows of the probe-side input handed to one worker at a time
  /// (morsel-style scheduling). Smaller morsels balance skewed probe costs
  /// at slightly higher merge overhead. Values < 1 are treated as 1.
  /// Also the run length for the parallel ORDER BY's local sorts. Never
  /// affects results; the group-by reduction deliberately ignores it (its
  /// slice width is the fixed kAggSliceRows, see group_merge.h).
  uint64_t morsel_size = 1024;

  /// Run GROUP BY through the parallel partial-table reduction when
  /// threads > 1 (group_merge.h). Purely a performance switch: the serial
  /// and parallel group-by compute the identical canonical fold, so
  /// flipping this can never change a result. Off = accumulate on the
  /// calling thread only.
  bool parallel_group_by = true;

  /// Run ORDER BY through the parallel merge sort when threads > 1
  /// (parallel_sort.h). Purely a performance switch, like
  /// parallel_group_by: both paths yield the exact stable-sort
  /// permutation. Off = serial std::stable_sort.
  bool parallel_sort = true;

  /// Rows per vectorized execution chunk: scans, FILTERs, and join probes
  /// process the input in chunk_rows-row windows (selection vectors for
  /// filters, batched probe/materialize for joins). 0 = the row-at-a-time
  /// reference kernels (the pre-vectorization executor, kept as a
  /// runtime-selectable baseline for differential tests and benchmarks).
  /// Like morsel_size this is a schedule knob: every chunk size, including
  /// 0, yields byte-identical results and stats counters.
  uint64_t chunk_rows = 1024;

  /// Allow index joins to run as a merge join over the covering sorted
  /// index run when the optimizer hints it, the pattern is eligible, and
  /// the outer join-key column is observed sorted (executor.cc,
  /// RunIndexJoin*). Purely a performance switch: the sweep visits exactly
  /// the triples the per-row index probes would, in the same order.
  bool enable_merge_join = true;
};

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_EXEC_OPTIONS_H_

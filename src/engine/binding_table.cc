#include "engine/binding_table.h"

#include "util/status.h"

namespace rdfparams::engine {

BindingTable::BindingTable(std::vector<std::string> vars)
    : vars_(std::move(vars)), cols_(vars_.size()) {}

int BindingTable::VarIndex(const std::string& var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

void BindingTable::AppendRow(std::span<const rdf::TermId> values) {
  RDFPARAMS_DCHECK(values.size() == vars_.size());
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(values[c]);
}

void BindingTable::AppendRow(std::initializer_list<rdf::TermId> values) {
  AppendRow(std::span<const rdf::TermId>(values.begin(), values.size()));
}

void BindingTable::Append(const BindingTable& other) {
  RDFPARAMS_DCHECK(other.vars_.size() == vars_.size());
  other.CheckAligned();
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].insert(cols_[c].end(), other.cols_[c].begin(),
                    other.cols_[c].end());
  }
}

void BindingTable::AppendRange(const BindingTable& src, size_t begin,
                               size_t end) {
  RDFPARAMS_DCHECK(src.vars_.size() == vars_.size());
  RDFPARAMS_DCHECK(begin <= end && end <= src.num_rows());
  for (size_t c = 0; c < cols_.size(); ++c) {
    const auto& s = src.cols_[c];
    cols_[c].insert(cols_[c].end(), s.begin() + static_cast<long>(begin),
                    s.begin() + static_cast<long>(end));
  }
}

void BindingTable::AppendGather(const BindingTable& src,
                                std::span<const uint32_t> rows) {
  RDFPARAMS_DCHECK(src.vars_.size() == vars_.size());
  src.CheckAligned();
  for (size_t c = 0; c < cols_.size(); ++c) {
    const rdf::TermId* s = src.cols_[c].data();
    auto& dst = cols_[c];
    dst.reserve(dst.size() + rows.size());
    for (uint32_t r : rows) dst.push_back(s[r]);
  }
}

void BindingTable::CheckAligned() const {
  for (size_t c = 1; c < cols_.size(); ++c) {
    RDFPARAMS_DCHECK(cols_[c].size() == cols_[0].size() &&
                     "ragged BindingTable columns");
  }
}

std::string BindingTable::ToString(const rdf::Dictionary& dict,
                                   size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (i > 0) out += "\t";
    out += "?" + vars_[i];
  }
  out += "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < vars_.size(); ++c) {
      if (c > 0) out += "\t";
      out += dict.ToString(at(r, c));
    }
    out += "\n";
  }
  if (num_rows() > n) {
    out += "... (" + std::to_string(num_rows() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace rdfparams::engine

#include "engine/binding_table.h"

#include "util/status.h"

namespace rdfparams::engine {

BindingTable::BindingTable(std::vector<std::string> vars)
    : vars_(std::move(vars)) {}

int BindingTable::VarIndex(const std::string& var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

void BindingTable::AppendRow(std::span<const rdf::TermId> values) {
  RDFPARAMS_DCHECK(values.size() == vars_.size());
  data_.insert(data_.end(), values.begin(), values.end());
}

void BindingTable::AppendRow(std::initializer_list<rdf::TermId> values) {
  AppendRow(std::span<const rdf::TermId>(values.begin(), values.size()));
}

void BindingTable::Append(const BindingTable& other) {
  RDFPARAMS_DCHECK(other.vars_.size() == vars_.size());
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

std::string BindingTable::ToString(const rdf::Dictionary& dict,
                                   size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (i > 0) out += "\t";
    out += "?" + vars_[i];
  }
  out += "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < vars_.size(); ++c) {
      if (c > 0) out += "\t";
      out += dict.ToString(at(r, c));
    }
    out += "\n";
  }
  if (num_rows() > n) {
    out += "... (" + std::to_string(num_rows() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace rdfparams::engine

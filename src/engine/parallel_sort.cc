#include "engine/parallel_sort.h"

namespace rdfparams::engine::internal {

std::vector<size_t> InitialRunBounds(size_t n, uint64_t morsel_size) {
  const uint64_t num_runs = (n + morsel_size - 1) / morsel_size;
  std::vector<size_t> bounds;
  bounds.reserve(static_cast<size_t>(num_runs) + 1);
  for (uint64_t run = 0; run < num_runs; ++run) {
    bounds.push_back(static_cast<size_t>(run * morsel_size));
  }
  bounds.push_back(n);
  return bounds;
}

std::vector<size_t> NextRoundBounds(const std::vector<size_t>& bounds,
                                    size_t n) {
  std::vector<size_t> next;
  next.reserve(bounds.size() / 2 + 2);
  for (size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
  if (next.back() != n) next.push_back(n);
  return next;
}

}  // namespace rdfparams::engine::internal

// Query executor: runs an optimized plan over the store and applies the
// query's solution modifiers (FILTER / GROUP BY / DISTINCT / ORDER BY /
// LIMIT). Records wall time and the *observed* C_out (the summed sizes of
// all join outputs), which the paper correlates with runtime (Section III).
#ifndef RDFPARAMS_ENGINE_EXECUTOR_H_
#define RDFPARAMS_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "engine/binding_table.h"
#include "engine/exec_options.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdfparams::engine {

struct ExecutionStats {
  double wall_seconds = 0;
  /// Observed C_out: total rows emitted by join operators (incl. the root).
  uint64_t intermediate_rows = 0;
  /// Rows produced by index scans (not part of C_out; diagnostic only).
  uint64_t scan_rows = 0;
  uint64_t result_rows = 0;
};

/// Uniform accessor over either a mutable Dictionary or a read-only base
/// dictionary fronted by a private ScratchDictionary overlay. Lets the
/// executor's operators intern scratch terms (filter constants, aggregate
/// outputs) without caring which mode they run in.
class DictAccess {
 public:
  explicit DictAccess(rdf::Dictionary* mut) : mut_(mut) {}
  explicit DictAccess(rdf::ScratchDictionary* scratch) : scratch_(scratch) {}

  const rdf::Term& term(rdf::TermId id) const {
    return mut_ != nullptr ? mut_->term(id) : scratch_->term(id);
  }
  std::optional<rdf::TermId> Find(const rdf::Term& t) const {
    return mut_ != nullptr ? mut_->Find(t) : scratch_->Find(t);
  }
  rdf::TermId Intern(const rdf::Term& t) {
    return mut_ != nullptr ? mut_->Intern(t) : scratch_->Intern(t);
  }

 private:
  rdf::Dictionary* mut_ = nullptr;
  rdf::ScratchDictionary* scratch_ = nullptr;
};

class Executor {
 public:
  /// Mutable-dictionary mode: aggregation interns freshly computed
  /// literals (averages, counts) directly into `dict`, so callers can
  /// decode every id in the result table through it.
  Executor(const rdf::TripleStore& store, rdf::Dictionary* dict)
      : store_(store), dict_(dict), dacc_(dict) {}

  /// Read-only mode: `dict` is never mutated. Terms the execution has to
  /// intern (filter constants, aggregate output literals) go into a
  /// private ScratchDictionary overlay, which makes one base dictionary
  /// safely shareable across concurrently running executors. Result ids
  /// >= dict.size() (only produced by aggregate queries) resolve through
  /// scratch_dict().
  Executor(const rdf::TripleStore& store, const rdf::Dictionary& dict)
      : store_(store), scratch_(std::in_place, dict), dacc_(&*scratch_) {}

  /// The overlay in read-only mode; nullptr in mutable-dictionary mode.
  const rdf::ScratchDictionary* scratch_dict() const {
    return scratch_ ? &*scratch_ : nullptr;
  }

  /// Executes a pre-optimized plan for `query`. With options.threads > 1
  /// the index-join probe loop runs as morsels over the outer input and
  /// hash joins build/probe partitioned tables in parallel; results and
  /// stats counters are byte-identical to the serial run (see ExecOptions).
  Result<BindingTable> Execute(const sparql::SelectQuery& query,
                               const opt::PlanNode& plan,
                               ExecutionStats* stats,
                               const ExecOptions& options = {});

  /// Optimizes (C_out DP) and executes in one call.
  Result<BindingTable> OptimizeAndExecute(
      const sparql::SelectQuery& query, ExecutionStats* stats,
      const opt::OptimizeOptions& optimize_options = {},
      const ExecOptions& exec_options = {});

  /// Legacy alias for OptimizeAndExecute with serial execution.
  Result<BindingTable> Run(const sparql::SelectQuery& query,
                           ExecutionStats* stats,
                           const opt::OptimizeOptions& options = {}) {
    return OptimizeAndExecute(query, stats, options);
  }

 private:
  Result<BindingTable> ExecNode(const sparql::SelectQuery& query,
                                const opt::PlanNode& node,
                                std::vector<char>* filter_done,
                                ExecutionStats* stats);
  Result<BindingTable> ExecScan(const sparql::SelectQuery& query,
                                const opt::PlanNode& node,
                                std::vector<char>* filter_done,
                                ExecutionStats* stats);
  Result<BindingTable> ExecJoin(const sparql::SelectQuery& query,
                                const opt::PlanNode& node,
                                std::vector<char>* filter_done,
                                ExecutionStats* stats);

  /// Index nested-loop join: materializes `outer`, then probes the store
  /// directly for each outer row through the `inner` scan node's pattern
  /// (no materialization of the inner side). Chosen whenever one join
  /// input is a scan — this is what makes selective parameters genuinely
  /// cheap, as in real RDF engines.
  Result<BindingTable> ExecIndexJoin(const sparql::SelectQuery& query,
                                     const opt::PlanNode& outer,
                                     const opt::PlanNode& inner_scan,
                                     std::vector<char>* filter_done,
                                     ExecutionStats* stats);

  /// Applies all not-yet-applied filters whose variables are available.
  Status ApplyFilters(const sparql::SelectQuery& query,
                      std::vector<char>* filter_done, BindingTable* table);

  /// Streams the root join's rows directly into the group-by accumulator
  /// (no materialization of the root output). Used for aggregate queries;
  /// essential when the root is a voluminous cross product.
  Result<BindingTable> ExecuteStreamingAggregate(
      const sparql::SelectQuery& query, const opt::PlanNode& root,
      std::vector<char>* filter_done, ExecutionStats* stats);

  Result<BindingTable> ApplyModifiers(const sparql::SelectQuery& query,
                                      BindingTable table);

  /// Projection / DISTINCT / ORDER BY / LIMIT (everything after grouping).
  Result<BindingTable> FinishModifiers(const sparql::SelectQuery& query,
                                       BindingTable table);

  /// Stable-sorts rows by the query's ORDER BY keys (numeric-aware).
  Status SortRows(const sparql::SelectQuery& query, BindingTable* table);

  /// Removes duplicate rows, keeping first occurrences.
  void DeduplicatePreservingOrder(BindingTable* table);

  void ApplyLimitOffset(const sparql::SelectQuery& query, BindingTable* table);

  bool EvalFilter(const sparql::FilterCondition& f, rdf::TermId lhs,
                  rdf::TermId rhs) const;

  /// Base dictionary for the optimizer (const either way).
  const rdf::Dictionary& base_dict() const {
    return dict_ != nullptr ? *dict_ : scratch_->base();
  }

  const rdf::TripleStore& store_;
  rdf::Dictionary* dict_ = nullptr;                  // mutable mode
  std::optional<rdf::ScratchDictionary> scratch_;    // read-only mode
  DictAccess dacc_;

  // --- intra-query parallel state (set per Execute call) ---
  /// Resolved exec-thread count for the current Execute call (1 = serial).
  /// Workers only ever touch read-only state (store, base dictionary,
  /// materialized inputs): the scratch interning and modifier phases
  /// always run on the calling thread.
  size_t exec_threads_ = 1;
  uint64_t morsel_size_ = 1024;
  /// Returns the worker pool sized to exec_threads_, creating it lazily at
  /// the first operator that actually goes parallel (small inputs never
  /// pay for thread spawns) and reusing it across Execute calls.
  util::ThreadPool* EnsurePool();
  std::unique_ptr<util::ThreadPool> owned_pool_;
};

/// Reference evaluator: executes the BGP by naive left-to-right nested
/// loops without any optimizer involvement. Used by tests to validate the
/// executor/optimizer pair (results must match for every plan).
Result<BindingTable> ExecuteNaive(const sparql::SelectQuery& query,
                                  const rdf::TripleStore& store,
                                  rdf::Dictionary* dict);

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_EXECUTOR_H_

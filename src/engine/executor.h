// Query executor: runs an optimized plan over the store and applies the
// query's solution modifiers (FILTER / GROUP BY / DISTINCT / ORDER BY /
// LIMIT). Records wall time and the *observed* C_out (the summed sizes of
// all join outputs), which the paper correlates with runtime (Section III).
//
// With ExecOptions::threads > 1 the executor parallelizes inside a single
// query — morsel-driven index-join probes, partitioned hash joins, the
// group-by reduction, and the ORDER BY merge sort — while guaranteeing
// results byte-identical to a serial run (see exec_options.h and
// docs/ARCHITECTURE.md for the determinism contract).
//
// Independently of threading, the hot operators process the columnar
// BindingTable in ExecOptions::chunk_rows-row chunks (vectorized filters
// with selection vectors, batched hash computation, gather-based
// materialization) and an index join whose outer key column is sorted can
// run as a merge join over the covering sorted index run instead of
// per-row index probes (ExecOptions::enable_merge_join, hinted by the
// optimizer). Both are schedule knobs: results stay byte-identical at
// every chunk size and with the merge join on or off.
#ifndef RDFPARAMS_ENGINE_EXECUTOR_H_
#define RDFPARAMS_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "engine/binding_table.h"
#include "engine/dict_access.h"
#include "engine/exec_options.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdfparams::engine {

/// Counters recorded by one Execute call. All fields except wall_seconds
/// are part of the determinism contract: identical at every thread count
/// and morsel size.
struct ExecutionStats {
  /// Measured wall time of the Execute call (a measurement, not a value —
  /// excluded from the byte-identical guarantee).
  double wall_seconds = 0;
  /// Observed C_out: total rows emitted by join operators (incl. the root).
  uint64_t intermediate_rows = 0;
  /// Rows produced by index scans (not part of C_out; diagnostic only).
  uint64_t scan_rows = 0;
  /// Rows in the final result table (after all solution modifiers).
  uint64_t result_rows = 0;
};

class Executor {
 public:
  /// Mutable-dictionary mode: aggregation interns freshly computed
  /// literals (averages, counts) directly into `dict`, so callers can
  /// decode every id in the result table through it.
  Executor(const rdf::TripleStore& store, rdf::Dictionary* dict)
      : store_(store), dict_(dict), dacc_(dict) {}

  /// Read-only mode: `dict` is never mutated. Terms the execution has to
  /// intern (filter constants, aggregate output literals) go into a
  /// private ScratchDictionary overlay, which makes one base dictionary
  /// safely shareable across concurrently running executors. Result ids
  /// >= dict.size() (only produced by aggregate queries) resolve through
  /// scratch_dict().
  Executor(const rdf::TripleStore& store, const rdf::Dictionary& dict)
      : store_(store), scratch_(std::in_place, dict), dacc_(&*scratch_) {}

  /// The overlay in read-only mode; nullptr in mutable-dictionary mode.
  const rdf::ScratchDictionary* scratch_dict() const {
    return scratch_ ? &*scratch_ : nullptr;
  }

  /// Executes a pre-optimized plan for `query`. With options.threads > 1
  /// the index-join probe loop runs as morsels over the outer input, hash
  /// joins build/probe partitioned tables in parallel, group-by reduces
  /// through per-slice partial tables, and ORDER BY runs a parallel merge
  /// sort; results and stats counters are byte-identical to the serial
  /// run (see ExecOptions).
  [[nodiscard]] Result<BindingTable> Execute(const sparql::SelectQuery& query,
                               const opt::PlanNode& plan,
                               ExecutionStats* stats,
                               const ExecOptions& options = {});

  /// Optimizes (C_out DP) and executes in one call.
  [[nodiscard]] Result<BindingTable> OptimizeAndExecute(
      const sparql::SelectQuery& query, ExecutionStats* stats,
      const opt::OptimizeOptions& optimize_options = {},
      const ExecOptions& exec_options = {});

  /// Legacy alias for OptimizeAndExecute with serial execution.
  [[nodiscard]] Result<BindingTable> Run(const sparql::SelectQuery& query,
                           ExecutionStats* stats,
                           const opt::OptimizeOptions& options = {}) {
    return OptimizeAndExecute(query, stats, options);
  }

 private:
  [[nodiscard]] Result<BindingTable> ExecNode(const sparql::SelectQuery& query,
                                const opt::PlanNode& node,
                                std::vector<char>* filter_done,
                                ExecutionStats* stats);
  [[nodiscard]] Result<BindingTable> ExecScan(const sparql::SelectQuery& query,
                                const opt::PlanNode& node,
                                std::vector<char>* filter_done,
                                ExecutionStats* stats);
  [[nodiscard]] Result<BindingTable> ExecJoin(const sparql::SelectQuery& query,
                                const opt::PlanNode& node,
                                std::vector<char>* filter_done,
                                ExecutionStats* stats);

  /// Index nested-loop join: materializes `outer`, then probes the store
  /// directly for each outer row through the `inner` scan node's pattern
  /// (no materialization of the inner side). Chosen whenever one join
  /// input is a scan — this is what makes selective parameters genuinely
  /// cheap, as in real RDF engines. With `merge_hint` (the join node's
  /// merge_join_hint) and a runtime-verified sorted outer key column, the
  /// per-row probes become one co-sequential merge sweep over the covering
  /// sorted index run — identical output either way.
  [[nodiscard]] Result<BindingTable> ExecIndexJoin(const sparql::SelectQuery& query,
                                     const opt::PlanNode& outer,
                                     const opt::PlanNode& inner_scan,
                                     bool merge_hint,
                                     std::vector<char>* filter_done,
                                     ExecutionStats* stats);

  /// Applies all not-yet-applied filters whose variables are available.
  [[nodiscard]] Status ApplyFilters(const sparql::SelectQuery& query,
                      std::vector<char>* filter_done, BindingTable* table);

  /// Streams the root join's rows into the group-by reduction without
  /// materializing the root output. Used for aggregate queries; essential
  /// when the root is a voluminous cross product. The root probe itself
  /// stays on the calling thread, but full canonical slices of its output
  /// are handed to the worker pool as they fill (see SliceGroupStream in
  /// executor.cc).
  [[nodiscard]] Result<BindingTable> ExecuteStreamingAggregate(
      const sparql::SelectQuery& query, const opt::PlanNode& root,
      std::vector<char>* filter_done, ExecutionStats* stats);

  [[nodiscard]] Result<BindingTable> ApplyModifiers(const sparql::SelectQuery& query,
                                      BindingTable table);

  /// Projection / DISTINCT / ORDER BY / LIMIT (everything after grouping).
  [[nodiscard]] Result<BindingTable> FinishModifiers(const sparql::SelectQuery& query,
                                       BindingTable table);

  /// Stable-sorts rows by the query's ORDER BY keys (numeric-aware, with a
  /// total-ordering rank so NaN and mixed numeric/lexicographic keys stay
  /// well-defined). Runs the parallel merge sort when the current
  /// ExecOptions allow it — same permutation either way.
  [[nodiscard]] Status SortRows(const sparql::SelectQuery& query, BindingTable* table);

  /// Removes duplicate rows, keeping first occurrences.
  void DeduplicatePreservingOrder(BindingTable* table);

  void ApplyLimitOffset(const sparql::SelectQuery& query, BindingTable* table);

  bool EvalFilter(const sparql::FilterCondition& f, rdf::TermId lhs,
                  rdf::TermId rhs) const;

  /// Base dictionary for the optimizer (const either way).
  const rdf::Dictionary& base_dict() const {
    return dict_ != nullptr ? *dict_ : scratch_->base();
  }

  const rdf::TripleStore& store_;
  rdf::Dictionary* dict_ = nullptr;                  // mutable mode
  std::optional<rdf::ScratchDictionary> scratch_;    // read-only mode
  DictAccess dacc_;

  // --- intra-query parallel state (set per Execute call) ---
  /// Resolved exec-thread count for the current Execute call (1 = serial).
  /// Workers only ever touch read-only state (store, base dictionary,
  /// materialized inputs): scratch interning always runs on the calling
  /// thread, and never while workers hold a DictAccess.
  size_t exec_threads_ = 1;
  uint64_t morsel_size_ = 1024;
  /// Per-call copies of the operator switches (see ExecOptions).
  bool parallel_group_by_ = true;
  bool parallel_sort_ = true;
  /// Vectorization chunk width; 0 selects the row-at-a-time reference
  /// kernels (see ExecOptions::chunk_rows).
  uint64_t chunk_rows_ = 1024;
  bool enable_merge_join_ = true;
  /// Returns the worker pool sized to exec_threads_, creating it lazily at
  /// the first operator that actually goes parallel (small inputs never
  /// pay for thread spawns) and reusing it across Execute calls.
  util::ThreadPool* EnsurePool();
  std::unique_ptr<util::ThreadPool> owned_pool_;
};

/// Reference evaluator: executes the BGP by naive left-to-right nested
/// loops without any optimizer involvement. Used by tests to validate the
/// executor/optimizer pair (results must match for every plan).
[[nodiscard]] Result<BindingTable> ExecuteNaive(const sparql::SelectQuery& query,
                                  const rdf::TripleStore& store,
                                  rdf::Dictionary* dict);

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_EXECUTOR_H_

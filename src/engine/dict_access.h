// Uniform dictionary accessor shared by the executor's operators.
//
// Split out of executor.h so lower-level operator modules (group_merge,
// parallel_sort) can decode terms without pulling in the whole executor.
#ifndef RDFPARAMS_ENGINE_DICT_ACCESS_H_
#define RDFPARAMS_ENGINE_DICT_ACCESS_H_

#include <optional>

#include "rdf/dictionary.h"

namespace rdfparams::engine {

/// Uniform accessor over either a mutable Dictionary or a read-only base
/// dictionary fronted by a private ScratchDictionary overlay. Lets the
/// executor's operators intern scratch terms (filter constants, aggregate
/// outputs) without caring which mode they run in.
///
/// Thread model: term() and Find() are safe to call from parallel workers
/// as long as no thread calls Intern() concurrently. The executor upholds
/// this by interning only on the calling thread, and only outside the
/// windows in which workers hold a DictAccess (see executor.cc).
class DictAccess {
 public:
  /// Wraps a mutable dictionary (legacy mode): Intern() writes into it.
  explicit DictAccess(rdf::Dictionary* mut) : mut_(mut) {}
  /// Wraps a scratch overlay (read-only mode): Intern() writes only into
  /// the overlay, never the shared base dictionary.
  explicit DictAccess(rdf::ScratchDictionary* scratch) : scratch_(scratch) {}

  /// Decodes `id` through whichever dictionary this accessor wraps. The
  /// returned view stays valid until the wrapped dictionary next interns.
  rdf::TermView term(rdf::TermId id) const {
    return mut_ != nullptr ? mut_->term(id) : scratch_->term(id);
  }
  /// Reverse lookup without interning; nullopt when `t` is unknown.
  std::optional<rdf::TermId> Find(const rdf::Term& t) const {
    return mut_ != nullptr ? mut_->Find(t) : scratch_->Find(t);
  }
  /// Interns `t`, returning its (possibly fresh) id. Calling-thread only.
  rdf::TermId Intern(const rdf::Term& t) {
    return mut_ != nullptr ? mut_->Intern(t) : scratch_->Intern(t);
  }

 private:
  rdf::Dictionary* mut_ = nullptr;
  rdf::ScratchDictionary* scratch_ = nullptr;
};

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_DICT_ACCESS_H_

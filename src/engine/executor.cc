#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "engine/group_merge.h"
#include "engine/parallel_sort.h"
#include "util/hash.h"
#include "util/timer.h"

namespace rdfparams::engine {

namespace {

using rdf::kWildcardId;
using rdf::TermId;
using sparql::SelectQuery;
using sparql::Slot;
using sparql::TriplePattern;

/// Resolves a constant slot against the dictionary. Returns false when the
/// constant does not occur in the data at all (empty result).
bool ResolveConst(const Slot& slot, const DictAccess& dict, TermId* out) {
  auto id = dict.Find(slot.term);
  if (!id) return false;
  *out = *id;
  return true;
}

/// Hash of one row's join key (a subset of its columns).
uint64_t KeyHashAt(const BindingTable& t, size_t row,
                   const std::vector<int>& cols) {
  uint64_t h = 0x12345678abcdef01ULL;
  for (int c : cols) {
    h = util::HashCombine(h, t.at(row, static_cast<size_t>(c)));
  }
  return h;
}

/// Key hashes of rows [row_begin, row_end), computed column-wise into
/// `out` (length row_end - row_begin). Combines columns in the same order
/// as KeyHashAt, so the values are identical — this is purely the
/// cache-friendly batched form the vectorized probe and the partitioned
/// build use.
void ComputeKeyHashes(const BindingTable& t, const std::vector<int>& cols,
                      size_t row_begin, size_t row_end, uint64_t* out) {
  const size_t n = row_end - row_begin;
  std::fill(out, out + n, 0x12345678abcdef01ULL);
  for (int c : cols) {
    std::span<const TermId> col = t.col(static_cast<size_t>(c));
    for (size_t i = 0; i < n; ++i) {
      out[i] = util::HashCombine(out[i], col[row_begin + i]);
    }
  }
}

bool KeyEqualsAt(const BindingTable& a, size_t ra,
                 const std::vector<int>& acols, const BindingTable& b,
                 size_t rb, const std::vector<int>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    if (a.at(ra, static_cast<size_t>(acols[i])) !=
        b.at(rb, static_cast<size_t>(bcols[i]))) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Index join kernels (per-row probe, merge sweep, chunked materialization)
// ---------------------------------------------------------------------------

/// Precomputed wiring for probing one triple pattern per outer row.
struct IndexJoinPlan {
  struct VarSlot {
    rdf::TriplePos pos;
    int outer_col;  // >= 0: bound from the outer row; -1: free
    int out_col;    // output column (free vars)
    std::string name;
  };
  std::vector<VarSlot> var_slots;
  TermId cs = kWildcardId, cp = kWildcardId, co = kWildcardId;
  bool absent_const = false;  // a constant term absent from the data
  /// A free variable repeated across slots (e.g. ?x p ?x): the per-triple
  /// equality check only exists in the row kernel, so the chunked
  /// materializer must not be used.
  bool repeated_free = false;
  /// Index into var_slots of the single outer-bound slot, or -1 when zero
  /// or several slots bind from the outer row. A valid key_slot with
  /// var_slots.size() <= 2 leaves at most one free slot, which is what
  /// makes the merge sweep's run order index-independent (see
  /// rdf::PatternSweep) — the static half of merge-join eligibility.
  int key_slot = -1;
  std::vector<std::string> out_vars;
  size_t outer_width = 0;
};

Result<IndexJoinPlan> PrepareIndexJoin(const TriplePattern& tp,
                                       const std::vector<std::string>& outer,
                                       const DictAccess& dict) {
  if (tp.s.is_param() || tp.p.is_param() || tp.o.is_param()) {
    return Status::InvalidArgument("executor got an unbound %parameter");
  }
  IndexJoinPlan plan;
  plan.outer_width = outer.size();
  if (tp.s.is_const() && !ResolveConst(tp.s, dict, &plan.cs)) {
    plan.absent_const = true;
  }
  if (tp.p.is_const() && !ResolveConst(tp.p, dict, &plan.cp)) {
    plan.absent_const = true;
  }
  if (tp.o.is_const() && !ResolveConst(tp.o, dict, &plan.co)) {
    plan.absent_const = true;
  }

  auto outer_col = [&](const std::string& name) {
    for (size_t i = 0; i < outer.size(); ++i) {
      if (outer[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  auto classify = [&](const Slot& slot, rdf::TriplePos pos) {
    if (!slot.is_var()) return;
    plan.var_slots.push_back({pos, outer_col(slot.name), -1, slot.name});
  };
  classify(tp.s, rdf::TriplePos::kS);
  classify(tp.p, rdf::TriplePos::kP);
  classify(tp.o, rdf::TriplePos::kO);

  plan.out_vars = outer;
  for (auto& vs : plan.var_slots) {
    if (vs.outer_col >= 0) continue;
    bool seen = false;
    for (size_t i = outer.size(); i < plan.out_vars.size(); ++i) {
      if (plan.out_vars[i] == vs.name) {
        vs.out_col = static_cast<int>(i);
        seen = true;
        break;
      }
    }
    if (!seen) {
      vs.out_col = static_cast<int>(plan.out_vars.size());
      plan.out_vars.push_back(vs.name);
    } else {
      plan.repeated_free = true;
    }
  }
  int bound_slots = 0;
  for (size_t i = 0; i < plan.var_slots.size(); ++i) {
    if (plan.var_slots[i].outer_col >= 0) {
      ++bound_slots;
      plan.key_slot = static_cast<int>(i);
    }
  }
  if (bound_slots != 1 || plan.var_slots.size() > 2) plan.key_slot = -1;
  return plan;
}

/// Streams the join of rows [row_begin, row_end) of `outer_table` with the
/// plan's pattern; calls emit(row_span) per result row in outer-row order.
/// `range_for(s, p, o)` supplies the matching triples for one resolved
/// pattern — the store's per-row index probe, or a PatternSweep run for
/// the merge join (identical contents and order when the sweep is
/// eligible, so the two parameterizations emit identical rows). Returns
/// the number of probed base rows. The range form is what the
/// morsel-parallel driver slices over; this row-at-a-time body is also the
/// chunk_rows = 0 reference kernel.
template <typename RangeFor, typename Emit>
uint64_t RunIndexJoinRows(const IndexJoinPlan& plan,
                          const BindingTable& outer_table, size_t row_begin,
                          size_t row_end, RangeFor&& range_for, Emit&& emit) {
  if (plan.absent_const) return 0;
  std::vector<TermId> row(plan.out_vars.size());
  uint64_t probed = 0;
  for (size_t r = row_begin; r < row_end; ++r) {
    TermId s = plan.cs, p = plan.cp, o = plan.co;
    for (const auto& vs : plan.var_slots) {
      if (vs.outer_col >= 0) {
        TermId v = outer_table.at(r, static_cast<size_t>(vs.outer_col));
        switch (vs.pos) {
          case rdf::TriplePos::kS: s = v; break;
          case rdf::TriplePos::kP: p = v; break;
          case rdf::TriplePos::kO: o = v; break;
        }
      }
    }
    std::span<const rdf::Triple> range = range_for(s, p, o);
    probed += range.size();
    for (const rdf::Triple& t : range) {
      bool ok = true;
      for (size_t c = 0; c < plan.outer_width; ++c) {
        row[c] = outer_table.at(r, c);
      }
      for (size_t i = plan.outer_width; i < plan.out_vars.size(); ++i) {
        row[i] = kWildcardId;
      }
      for (const auto& vs : plan.var_slots) {
        if (vs.outer_col >= 0) continue;
        TermId v = GetPos(t, vs.pos);
        size_t col = static_cast<size_t>(vs.out_col);
        if (row[col] != kWildcardId && row[col] != v) {
          ok = false;  // repeated free variable mismatch (e.g. ?x p ?x)
          break;
        }
        row[col] = v;
      }
      if (ok) emit(std::span<const TermId>(row));
    }
  }
  return probed;
}

/// Chunked materializing form of RunIndexJoinRows for patterns without
/// repeated free variables: per chunk_rows-row window of the outer input,
/// collect the (outer row, matching triple) pairs, then fill the output
/// column-by-column — outer columns as gathers, each free variable's
/// column straight from the matched triples. Match order is (outer row
/// ascending, triples in range order), exactly the row kernel's emission
/// order, so the output table is byte-identical for every chunk size.
template <typename RangeFor>
uint64_t RunIndexJoinChunked(const IndexJoinPlan& plan,
                             const BindingTable& outer_table,
                             size_t row_begin, size_t row_end,
                             uint64_t chunk_rows, RangeFor&& range_for,
                             BindingTable* out) {
  RDFPARAMS_DCHECK(!plan.repeated_free);
  if (plan.absent_const) return 0;
  uint64_t probed = 0;
  std::vector<uint32_t> match_rows;
  std::vector<const rdf::Triple*> match_triples;
  for (size_t lo = row_begin; lo < row_end;
       lo += static_cast<size_t>(chunk_rows)) {
    const size_t hi =
        std::min(row_end, lo + static_cast<size_t>(chunk_rows));
    match_rows.clear();
    match_triples.clear();
    for (size_t r = lo; r < hi; ++r) {
      TermId s = plan.cs, p = plan.cp, o = plan.co;
      for (const auto& vs : plan.var_slots) {
        if (vs.outer_col >= 0) {
          TermId v = outer_table.at(r, static_cast<size_t>(vs.outer_col));
          switch (vs.pos) {
            case rdf::TriplePos::kS: s = v; break;
            case rdf::TriplePos::kP: p = v; break;
            case rdf::TriplePos::kO: o = v; break;
          }
        }
      }
      std::span<const rdf::Triple> range = range_for(s, p, o);
      probed += range.size();
      for (const rdf::Triple& t : range) {
        match_rows.push_back(static_cast<uint32_t>(r));
        match_triples.push_back(&t);
      }
    }
    for (size_t c = 0; c < plan.outer_width; ++c) {
      const TermId* src = outer_table.col(c).data();
      auto& dst = out->MutableCol(c);
      dst.reserve(dst.size() + match_rows.size());
      for (uint32_t r : match_rows) dst.push_back(src[r]);
    }
    // Without repeated frees, every output column beyond the outer width
    // belongs to exactly one free slot.
    for (const auto& vs : plan.var_slots) {
      if (vs.outer_col >= 0) continue;
      auto& dst = out->MutableCol(static_cast<size_t>(vs.out_col));
      dst.reserve(dst.size() + match_triples.size());
      for (const rdf::Triple* t : match_triples) {
        dst.push_back(GetPos(*t, vs.pos));
      }
    }
  }
  out->CheckAligned();
  return probed;
}

/// Runtime half of the merge-join decision (the static half is
/// IndexJoinPlan::key_slot): the optimizer hinted it, the options allow
/// it, a covering sorted index run exists, and the outer key column is
/// observed non-decreasing — checked, never assumed, because re-sorting
/// would change the emission order the determinism contract fixes.
/// Depends only on plan, options, and materialized input, so the choice
/// is identical at every thread count, morsel size, and chunk size.
struct MergeJoinChoice {
  bool use = false;
  rdf::TriplePos key_pos = rdf::TriplePos::kS;
};

MergeJoinChoice ChooseMergeJoin(const rdf::TripleStore& store,
                                const IndexJoinPlan& plan,
                                const BindingTable& outer_table, bool hint,
                                bool enabled) {
  MergeJoinChoice choice;
  if (!enabled || !hint || plan.key_slot < 0 || plan.absent_const) {
    return choice;
  }
  const auto& key = plan.var_slots[static_cast<size_t>(plan.key_slot)];
  choice.key_pos = key.pos;
  rdf::PatternSweep sweep(store, key.pos, plan.cs, plan.cp, plan.co);
  if (!sweep.valid()) return choice;
  std::span<const TermId> col =
      outer_table.col(static_cast<size_t>(key.outer_col));
  choice.use = std::is_sorted(col.begin(), col.end());
  return choice;
}

// ---------------------------------------------------------------------------
// Hash join kernels
// ---------------------------------------------------------------------------

struct HashJoinPlan {
  std::vector<int> build_key;
  std::vector<int> probe_key;
  std::vector<int> probe_extra;  // probe columns appended to the output
  std::vector<std::string> out_vars;
};

HashJoinPlan PrepareHashJoin(const std::vector<std::string>& build_vars,
                             const std::vector<std::string>& probe_vars) {
  HashJoinPlan plan;
  auto probe_col = [&](const std::string& name) {
    for (size_t j = 0; j < probe_vars.size(); ++j) {
      if (probe_vars[j] == name) return static_cast<int>(j);
    }
    return -1;
  };
  for (size_t i = 0; i < build_vars.size(); ++i) {
    int j = probe_col(build_vars[i]);
    if (j >= 0) {
      plan.build_key.push_back(static_cast<int>(i));
      plan.probe_key.push_back(j);
    }
  }
  plan.out_vars = build_vars;
  for (size_t j = 0; j < probe_vars.size(); ++j) {
    bool in_build = false;
    for (const std::string& v : build_vars) {
      if (v == probe_vars[j]) {
        in_build = true;
        break;
      }
    }
    if (!in_build) {
      plan.out_vars.push_back(probe_vars[j]);
      plan.probe_extra.push_back(static_cast<int>(j));
    }
  }
  return plan;
}

/// Cross-product kernel over build rows [row_begin, row_end), emitting in
/// (build row, probe row) order — the range form is what both the serial
/// join and the morsel-parallel driver call.
template <typename Emit>
void CrossJoinRange(const HashJoinPlan& plan, const BindingTable& build,
                    const BindingTable& probe, size_t row_begin,
                    size_t row_end, Emit&& emit) {
  std::vector<TermId> row(plan.out_vars.size());
  for (size_t i = row_begin; i < row_end; ++i) {
    for (size_t j = 0; j < probe.num_rows(); ++j) {
      size_t k = 0;
      for (size_t c = 0; c < build.num_vars(); ++c) row[k++] = build.at(i, c);
      for (int c : plan.probe_extra) {
        row[k++] = probe.at(j, static_cast<size_t>(c));
      }
      emit(std::span<const TermId>(row));
    }
  }
}

/// Keyed-probe kernel over probe rows [row_begin, row_end).
/// `lookup(hash)` returns the bucket of ascending build row ids for a key
/// hash (nullptr on no match) — a single hash table for the serial join, a
/// per-partition table for the parallel one; the emitted sequence is the
/// same either way, which is what makes the parallel join byte-identical.
/// This row-at-a-time body is the chunk_rows = 0 reference kernel.
template <typename Lookup, typename Emit>
void ProbeHashRange(const HashJoinPlan& plan, const BindingTable& build,
                    const BindingTable& probe, size_t row_begin,
                    size_t row_end, Lookup&& lookup, Emit&& emit) {
  std::vector<TermId> row(plan.out_vars.size());
  for (size_t j = row_begin; j < row_end; ++j) {
    const std::vector<uint32_t>* bucket =
        lookup(KeyHashAt(probe, j, plan.probe_key));
    if (bucket == nullptr) continue;
    for (uint32_t i : *bucket) {
      if (!KeyEqualsAt(build, i, plan.build_key, probe, j, plan.probe_key)) {
        continue;
      }
      size_t k = 0;
      for (size_t c = 0; c < build.num_vars(); ++c) row[k++] = build.at(i, c);
      for (int c : plan.probe_extra) {
        row[k++] = probe.at(j, static_cast<size_t>(c));
      }
      emit(std::span<const TermId>(row));
    }
  }
}

/// Chunked materializing form of ProbeHashRange: per chunk_rows-row window
/// of the probe input, compute key hashes column-wise, collect the
/// (build row, probe row) match pairs in (probe row ascending, bucket
/// order), then fill the output column-by-column — build columns and
/// probe-extra columns as gathers. Same match sequence as the row kernel,
/// so the output is byte-identical for every chunk size.
template <typename Lookup>
void ProbeHashChunked(const HashJoinPlan& plan, const BindingTable& build,
                      const BindingTable& probe, size_t row_begin,
                      size_t row_end, uint64_t chunk_rows, Lookup&& lookup,
                      BindingTable* out) {
  std::vector<uint64_t> hashes;
  std::vector<uint32_t> match_build;
  std::vector<uint32_t> match_probe;
  const size_t build_width = build.num_vars();
  for (size_t lo = row_begin; lo < row_end;
       lo += static_cast<size_t>(chunk_rows)) {
    const size_t hi =
        std::min(row_end, lo + static_cast<size_t>(chunk_rows));
    hashes.resize(hi - lo);
    ComputeKeyHashes(probe, plan.probe_key, lo, hi, hashes.data());
    match_build.clear();
    match_probe.clear();
    for (size_t j = lo; j < hi; ++j) {
      const std::vector<uint32_t>* bucket = lookup(hashes[j - lo]);
      if (bucket == nullptr) continue;
      for (uint32_t i : *bucket) {
        if (KeyEqualsAt(build, i, plan.build_key, probe, j,
                        plan.probe_key)) {
          match_build.push_back(i);
          match_probe.push_back(static_cast<uint32_t>(j));
        }
      }
    }
    for (size_t c = 0; c < build_width; ++c) {
      const TermId* src = build.col(c).data();
      auto& dst = out->MutableCol(c);
      dst.reserve(dst.size() + match_build.size());
      for (uint32_t i : match_build) dst.push_back(src[i]);
    }
    for (size_t e = 0; e < plan.probe_extra.size(); ++e) {
      const TermId* src =
          probe.col(static_cast<size_t>(plan.probe_extra[e])).data();
      auto& dst = out->MutableCol(build_width + e);
      dst.reserve(dst.size() + match_probe.size());
      for (uint32_t j : match_probe) dst.push_back(src[j]);
    }
  }
  out->CheckAligned();
}

/// Serial hash join, streaming row emission (the streaming-aggregate sink
/// consumes rows, so this stays row-at-a-time regardless of chunk_rows).
template <typename Emit>
void RunHashJoin(const HashJoinPlan& plan, const BindingTable& build,
                 const BindingTable& probe, Emit&& emit) {
  if (plan.build_key.empty()) {
    CrossJoinRange(plan, build, probe, 0, build.num_rows(), emit);
    return;
  }
  std::unordered_map<uint64_t, std::vector<uint32_t>> table;
  table.reserve(build.num_rows() * 2);
  std::vector<uint64_t> hashes(build.num_rows());
  ComputeKeyHashes(build, plan.build_key, 0, build.num_rows(), hashes.data());
  for (size_t i = 0; i < build.num_rows(); ++i) {
    table[hashes[i]].push_back(static_cast<uint32_t>(i));
  }
  ProbeHashRange(plan, build, probe, 0, probe.num_rows(),
                 [&](uint64_t h) -> const std::vector<uint32_t>* {
                   auto it = table.find(h);
                   return it == table.end() ? nullptr : &it->second;
                 },
                 emit);
}

// ---------------------------------------------------------------------------
// Morsel-parallel drivers
//
// Both drivers share one determinism recipe: the probe-side input is cut
// into fixed `morsel_size`-row slices, slice m writes only into its own
// output table and counter slot, and the slices are concatenated in slice
// order afterwards. Because the serial kernels emit in input-row order,
// the merged table is byte-identical to a serial run for every thread
// count, morsel size, and scheduling interleaving; the counters are
// integers, so their reduction is order-independent too. Workers touch
// only read-only state (store, materialized inputs) — never the
// dictionary, which interns lazily on the calling thread.
// ---------------------------------------------------------------------------

/// The shared morsel scaffold: cuts [0, n) into `morsel_size`-row slices,
/// runs kernel(row_lo, row_hi, &slice) per slice on the pool (one slice =
/// one scheduling unit), merges the private slice tables into `out` in
/// slice order, and returns the sum of the kernels' counter results.
template <typename Kernel>
uint64_t ForEachMorselSlice(util::ThreadPool* pool, uint64_t n,
                            uint64_t morsel_size,
                            const std::vector<std::string>& out_vars,
                            BindingTable* out, Kernel&& kernel) {
  const uint64_t num_morsels = (n + morsel_size - 1) / morsel_size;
  std::vector<BindingTable> slices(num_morsels, BindingTable(out_vars));
  std::vector<uint64_t> counters(num_morsels, 0);
  pool->ParallelFor(
      0, num_morsels,
      [&](uint64_t lo, uint64_t hi) {
        for (uint64_t m = lo; m < hi; ++m) {
          size_t row_lo = static_cast<size_t>(m * morsel_size);
          size_t row_hi = static_cast<size_t>(
              std::min<uint64_t>(n, row_lo + morsel_size));
          counters[m] = kernel(row_lo, row_hi, &slices[m]);
        }
      },
      /*chunk=*/1);
  size_t total_rows = 0;
  for (const BindingTable& s : slices) total_rows += s.num_rows();
  out->Reserve(total_rows);
  uint64_t total_counter = 0;
  for (uint64_t m = 0; m < num_morsels; ++m) {
    out->Append(slices[m]);
    total_counter += counters[m];
  }
  return total_counter;
}

/// Build-side hash table partitioned by join-key hash. Partition p holds
/// exactly the build rows whose key hash routes to p, bucketed by the full
/// hash with ascending row ids — the same rows, in the same order, a
/// single-table build would store for those keys, so probe results are
/// independent of the partition count.
struct PartitionedHashTable {
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> parts;
};

PartitionedHashTable BuildPartitioned(const HashJoinPlan& plan,
                                      const BindingTable& build,
                                      size_t num_partitions,
                                      util::ThreadPool* pool) {
  PartitionedHashTable table;
  table.parts.resize(num_partitions);
  const size_t n = build.num_rows();
  // Pass 1: key hashes, computed column-wise in parallel.
  std::vector<uint64_t> hashes(n);
  pool->ParallelFor(0, n, [&](uint64_t lo, uint64_t hi) {
    ComputeKeyHashes(build, plan.build_key, static_cast<size_t>(lo),
                     static_cast<size_t>(hi), hashes.data() + lo);
  });
  // Pass 2: bucket ascending row ids per partition. A single serial pass:
  // trivially order-preserving and O(n) appends — cheap next to hashing
  // and map construction.
  std::vector<std::vector<uint32_t>> rows_of(num_partitions);
  for (size_t i = 0; i < n; ++i) {
    rows_of[hashes[i] % num_partitions].push_back(static_cast<uint32_t>(i));
  }
  // Pass 3: per-partition map construction in parallel; each builder only
  // touches its own rows, and ascending insertion preserves the bucket
  // order a single-table build would produce.
  pool->ParallelFor(
      0, num_partitions,
      [&](uint64_t lo, uint64_t hi) {
        for (uint64_t p = lo; p < hi; ++p) {
          auto& part = table.parts[p];
          part.reserve(rows_of[p].size() * 2);
          for (uint32_t i : rows_of[p]) {
            part[hashes[i]].push_back(i);
          }
        }
      },
      /*chunk=*/1);
  return table;
}

// ---------------------------------------------------------------------------
// Streaming group-by driver
//
// Feeds the canonical sliced reduction of group_merge.h from a row stream
// with bounded memory. Rows buffer into kAggSliceRows-row slices on the
// calling thread; each full slice becomes one PartialAggTable. With a pool,
// slice partials are computed as Submit() tasks while the stream keeps
// producing, and the calling thread folds finished partials in ascending
// slice order as soon as they complete — at most `max_pending` slices are
// buffered-or-unfolded at any time, so a cross-product stream never
// materializes. Without a pool the same slices are computed and folded
// inline. Both modes evaluate the identical reduction tree (fixed by the
// stream order and kAggSliceRows alone), so results are byte-identical.
// ---------------------------------------------------------------------------

class SliceGroupStream {
 public:
  /// `width` is the input schema width (columns per row).
  SliceGroupStream(const GroupBySpec* spec, const DictAccess& dict,
                   size_t width, util::ThreadPool* pool, size_t max_pending)
      : spec_(spec),
        dict_(dict),
        width_(std::max<size_t>(1, width)),
        pool_(pool),
        max_pending_(std::max<size_t>(2, max_pending)),
        sliced_(MergeableAggregates(*spec->query)),
        merged_(spec) {}

  /// Outstanding slice tasks capture `this` and raw partial pointers, so
  /// unwinding past the stream (an exception between Add and Finish) must
  /// drain them before the members die.
  ~SliceGroupStream() {
    if (pool_ == nullptr) return;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return running_ == 0; });
  }

  void Add(std::span<const TermId> row) {
    if (!sliced_) {  // serial fallback: one streaming accumulator
      merged_.AddRow(row, dict_);
      return;
    }
    buffer_.insert(buffer_.end(), row.begin(), row.end());
    if (++buffered_rows_ == kAggSliceRows) Flush();
  }

  /// Flushes the trailing partial slice, waits for outstanding slice
  /// tasks, folds everything in slice order, and emits the grouped table.
  Result<BindingTable> Finish(DictAccess* dict) {
    Flush();
    if (pool_ != nullptr) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return running_ == 0; });
    }
    FoldReadyPrefix(/*block=*/true);
    return merged_.Finish(dict);
  }

 private:
  void Flush() {
    if (buffered_rows_ == 0) return;
    auto rows = std::make_shared<std::vector<TermId>>(std::move(buffer_));
    buffer_ = {};
    const size_t nrows = buffered_rows_;
    buffered_rows_ = 0;

    // Bound memory before adding another slice: fold the oldest unfolded
    // slices (blocking on their tasks when necessary).
    while (partials_.size() - next_fold_ >= max_pending_) {
      FoldOne(/*block=*/true);
    }

    partials_.push_back(std::make_unique<PartialAggTable>(spec_));
    PartialAggTable* partial = partials_.back().get();
    const size_t slice = partials_.size() - 1;
    if (pool_ == nullptr) {
      FillPartial(partial, *rows, nrows);
      FoldReadyPrefix(/*block=*/false);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_.push_back(0);
      ++running_;
    }
    pool_->Submit([this, partial, rows, nrows, slice] {
      FillPartial(partial, *rows, nrows);
      std::lock_guard<std::mutex> lock(mu_);
      done_[slice] = 1;
      --running_;
      cv_.notify_all();
    });
    FoldReadyPrefix(/*block=*/false);
  }

  void FillPartial(PartialAggTable* partial,
                   const std::vector<TermId>& rows, size_t nrows) const {
    for (size_t r = 0; r < nrows; ++r) {
      partial->AddRow(
          std::span<const TermId>(rows.data() + r * width_, width_), dict_);
    }
  }

  /// Folds slice `next_fold_`; with block=true waits for its task first.
  void FoldOne(bool block) {
    if (pool_ != nullptr) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!block && !done_[next_fold_]) return;
      cv_.wait(lock, [&] { return done_[next_fold_] != 0; });
    }
    merged_.MergeFrom(*partials_[next_fold_]);
    partials_[next_fold_].reset();
    ++next_fold_;
  }

  /// Folds every already-finished slice at the front of the queue (always
  /// in ascending slice order — the fold order is the determinism anchor).
  void FoldReadyPrefix(bool block) {
    while (next_fold_ < partials_.size()) {
      if (pool_ != nullptr && !block) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!done_[next_fold_]) return;
      }
      FoldOne(block);
    }
  }

  const GroupBySpec* spec_;
  const DictAccess& dict_;
  size_t width_;
  util::ThreadPool* pool_;
  const size_t max_pending_;
  const bool sliced_;

  std::vector<TermId> buffer_;
  size_t buffered_rows_ = 0;
  std::vector<std::unique_ptr<PartialAggTable>> partials_;
  size_t next_fold_ = 0;
  PartialAggTable merged_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> done_;  // per-slice completion flags (guarded by mu_)
  size_t running_ = 0;      // submitted but unfinished tasks (guarded by mu_)
};

/// Filter compiled against a concrete schema for per-row evaluation.
struct CompiledFilter {
  const sparql::FilterCondition* f = nullptr;
  int lhs_col = -1;
  int rhs_col = -1;           // -1: constant
  TermId rhs_const = rdf::kInvalidTermId;
};

/// Constant-rhs filter evaluator for the vectorized path: an exact
/// transcription of Executor::EvalFilter + rdf::Term::Compare with every
/// rhs-only quantity — kind rank, numeric decode (one strtod instead of
/// one per row) — hoisted out of the loop. Decision-for-decision identical
/// to the reference kernel by construction; the chunk-size differential
/// tests pin it to EvalFilter (the chunk_rows = 0 path).
struct ConstRhsFilter {
  const sparql::FilterCondition* f = nullptr;
  TermId rhs = rdf::kInvalidTermId;
  rdf::TermView b;  // meaningful only when rhs != kInvalidTermId
  int rank_b = 0;
  bool b_numeric = false;
  std::optional<double> b_num;

  static int Rank(const rdf::TermView& t) {
    if (t.is_blank()) return 0;
    if (t.is_iri()) return 1;
    return 2;  // literal
  }

  void Prepare(const sparql::FilterCondition& filter, TermId rhs_const,
               const DictAccess& dict) {
    f = &filter;
    rhs = rhs_const;
    if (rhs == rdf::kInvalidTermId) return;
    b = dict.term(rhs);
    rank_b = Rank(b);
    b_numeric = b.is_numeric();
    if (b_numeric) b_num = b.AsDouble();
  }

  bool Eval(TermId lhs, const DictAccess& dict) const {
    using sparql::CompareOp;
    if (f->op == CompareOp::kEq && lhs == rhs) return true;
    if (f->op == CompareOp::kNe && lhs == rhs) return false;
    if (lhs == rdf::kInvalidTermId || rhs == rdf::kInvalidTermId) {
      return f->op == CompareOp::kNe;
    }
    const rdf::TermView a = dict.term(lhs);
    int cmp;
    int rank_a = Rank(a);
    if (rank_a != rank_b) {
      cmp = rank_a < rank_b ? -1 : 1;
    } else {
      cmp = 2;  // sentinel: not decided yet
      if (a.is_literal() && a.is_numeric() && b_numeric) {
        auto a_num = a.AsDouble();
        if (a_num && b_num) {
          cmp = *a_num < *b_num ? -1 : (*a_num > *b_num ? 1 : 0);
        }
      }
      if (cmp == 2) {
        int c = a.lexical.compare(b.lexical);
        if (c == 0) c = a.datatype.compare(b.datatype);
        if (c == 0) c = a.lang.compare(b.lang);
        cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
    }
    switch (f->op) {
      case CompareOp::kEq: return cmp == 0;
      case CompareOp::kNe: return cmp != 0;
      case CompareOp::kLt: return cmp < 0;
      case CompareOp::kLe: return cmp <= 0;
      case CompareOp::kGt: return cmp > 0;
      case CompareOp::kGe: return cmp >= 0;
    }
    return false;
  }
};

}  // namespace

Result<BindingTable> Executor::ExecScan(const SelectQuery& query,
                                        const opt::PlanNode& node,
                                        std::vector<char>* filter_done,
                                        ExecutionStats* stats) {
  const TriplePattern& tp = query.patterns[node.pattern_index];
  if (tp.s.is_param() || tp.p.is_param() || tp.o.is_param()) {
    return Status::InvalidArgument("executor got an unbound %parameter");
  }

  std::vector<std::string> vars = tp.Variables();
  BindingTable out(vars);

  TermId s = kWildcardId, p = kWildcardId, o = kWildcardId;
  if (tp.s.is_const() && !ResolveConst(tp.s, dacc_, &s)) return out;
  if (tp.p.is_const() && !ResolveConst(tp.p, dacc_, &p)) return out;
  if (tp.o.is_const() && !ResolveConst(tp.o, dacc_, &o)) return out;

  int s_col = tp.s.is_var() ? out.VarIndex(tp.s.name) : -1;
  int p_col = tp.p.is_var() ? out.VarIndex(tp.p.name) : -1;
  int o_col = tp.o.is_var() ? out.VarIndex(tp.o.name) : -1;

  bool s_eq_p = tp.s.is_var() && tp.p.is_var() && tp.s.name == tp.p.name;
  bool s_eq_o = tp.s.is_var() && tp.o.is_var() && tp.s.name == tp.o.name;
  bool p_eq_o = tp.p.is_var() && tp.o.is_var() && tp.p.name == tp.o.name;

  auto range = store_.Range(store_.ChooseIndex(s, p, o), s, p, o);
  if (chunk_rows_ > 0 && !s_eq_p && !s_eq_o && !p_eq_o) {
    // Columnar fill: without repeated-variable constraints every matching
    // triple survives and each variable owns one column, so the output is
    // one strided pass per bound column over the contiguous index run.
    out.Reserve(range.size());
    if (s_col >= 0) {
      auto& dst = out.MutableCol(static_cast<size_t>(s_col));
      for (const rdf::Triple& t : range) dst.push_back(t.s);
    }
    if (p_col >= 0) {
      auto& dst = out.MutableCol(static_cast<size_t>(p_col));
      for (const rdf::Triple& t : range) dst.push_back(t.p);
    }
    if (o_col >= 0) {
      auto& dst = out.MutableCol(static_cast<size_t>(o_col));
      for (const rdf::Triple& t : range) dst.push_back(t.o);
    }
    out.CheckAligned();
  } else {
    std::vector<TermId> row(vars.size());
    out.Reserve(range.size());
    for (const rdf::Triple& t : range) {
      if (s_eq_p && t.s != t.p) continue;
      if (s_eq_o && t.s != t.o) continue;
      if (p_eq_o && t.p != t.o) continue;
      if (s_col >= 0) row[static_cast<size_t>(s_col)] = t.s;
      if (p_col >= 0) row[static_cast<size_t>(p_col)] = t.p;
      if (o_col >= 0) row[static_cast<size_t>(o_col)] = t.o;
      out.AppendRow(row);
    }
  }
  stats->scan_rows += out.num_rows();
  RDFPARAMS_RETURN_NOT_OK(ApplyFilters(query, filter_done, &out));
  return out;
}

Result<BindingTable> Executor::ExecIndexJoin(const SelectQuery& query,
                                             const opt::PlanNode& outer,
                                             const opt::PlanNode& inner_scan,
                                             bool merge_hint,
                                             std::vector<char>* filter_done,
                                             ExecutionStats* stats) {
  RDFPARAMS_ASSIGN_OR_RETURN(
      BindingTable outer_table, ExecNode(query, outer, filter_done, stats));
  const TriplePattern& tp = query.patterns[inner_scan.pattern_index];
  RDFPARAMS_ASSIGN_OR_RETURN(IndexJoinPlan plan,
                             PrepareIndexJoin(tp, outer_table.vars(), dacc_));
  BindingTable out(plan.out_vars);

  const MergeJoinChoice merge = ChooseMergeJoin(
      store_, plan, outer_table, merge_hint, enable_merge_join_);
  const bool chunked = chunk_rows_ > 0 && !plan.repeated_free;

  // One outer-row slice, through whichever kernel pair the options chose.
  // Each slice gets a private sweep cursor: within a slice of a globally
  // sorted key column the keys are still non-decreasing, so the morsel
  // driver composes with the merge join unchanged.
  auto run_slice = [&](size_t row_lo, size_t row_hi,
                       BindingTable* slice) -> uint64_t {
    auto probe_range = [&](TermId s, TermId p, TermId o) {
      return store_.Range(store_.ChooseIndex(s, p, o), s, p, o);
    };
    auto row_emit = [&](std::span<const TermId> row) {
      slice->AppendRow(row);
    };
    if (merge.use) {
      rdf::PatternSweep sweep(store_, merge.key_pos, plan.cs, plan.cp,
                              plan.co);
      auto sweep_range = [&](TermId s, TermId p, TermId o) {
        return sweep.Next(GetPos(rdf::Triple(s, p, o), merge.key_pos));
      };
      return chunked ? RunIndexJoinChunked(plan, outer_table, row_lo, row_hi,
                                           chunk_rows_, sweep_range, slice)
                     : RunIndexJoinRows(plan, outer_table, row_lo, row_hi,
                                        sweep_range, row_emit);
    }
    return chunked ? RunIndexJoinChunked(plan, outer_table, row_lo, row_hi,
                                         chunk_rows_, probe_range, slice)
                   : RunIndexJoinRows(plan, outer_table, row_lo, row_hi,
                                      probe_range, row_emit);
  };

  if (exec_threads_ > 1 && outer_table.num_rows() > morsel_size_) {
    stats->scan_rows +=
        ForEachMorselSlice(EnsurePool(), outer_table.num_rows(), morsel_size_,
                           plan.out_vars, &out, run_slice);
  } else {
    stats->scan_rows += run_slice(0, outer_table.num_rows(), &out);
  }
  stats->intermediate_rows += out.num_rows();
  RDFPARAMS_RETURN_NOT_OK(ApplyFilters(query, filter_done, &out));
  return out;
}

Result<BindingTable> Executor::ExecJoin(const SelectQuery& query,
                                        const opt::PlanNode& node,
                                        std::vector<char>* filter_done,
                                        ExecutionStats* stats) {
  // Prefer an index nested-loop join when either input is a bare scan: the
  // scan side is probed through the store's indexes, never materialized.
  if (node.right->is_scan()) {
    return ExecIndexJoin(query, *node.left, *node.right,
                         node.merge_join_hint, filter_done, stats);
  }
  if (node.left->is_scan()) {
    return ExecIndexJoin(query, *node.right, *node.left,
                         node.merge_join_hint, filter_done, stats);
  }
  RDFPARAMS_ASSIGN_OR_RETURN(
      BindingTable build, ExecNode(query, *node.left, filter_done, stats));
  RDFPARAMS_ASSIGN_OR_RETURN(
      BindingTable probe, ExecNode(query, *node.right, filter_done, stats));
  HashJoinPlan plan = PrepareHashJoin(build.vars(), probe.vars());
  BindingTable out(plan.out_vars);
  if (exec_threads_ > 1 &&
      build.num_rows() + probe.num_rows() > morsel_size_) {
    // The optimizer's hint is a floor, not a ceiling: when the estimate
    // undershoots the actual build size, resize from the materialized row
    // count (both inputs are thread-count-independent, so the partition
    // count — which never affects results anyway — stays deterministic).
    size_t partitions = std::max<size_t>(
        node.partition_hint,
        opt::HashJoinPartitionHint(static_cast<double>(build.num_rows())));
    if (plan.build_key.empty()) {
      // Cross product: morsels over the build side (the serial outer
      // loop), through the same kernel the serial join uses.
      ForEachMorselSlice(
          EnsurePool(), build.num_rows(), morsel_size_, plan.out_vars, &out,
          [&](size_t row_lo, size_t row_hi, BindingTable* slice) {
            CrossJoinRange(plan, build, probe, row_lo, row_hi,
                           [&](std::span<const TermId> row) {
                             slice->AppendRow(row);
                           });
            return uint64_t{0};
          });
    } else {
      PartitionedHashTable table =
          BuildPartitioned(plan, build, partitions, EnsurePool());
      auto lookup = [&](uint64_t h) -> const std::vector<uint32_t>* {
        const auto& part = table.parts[h % partitions];
        auto it = part.find(h);
        return it == part.end() ? nullptr : &it->second;
      };
      ForEachMorselSlice(
          EnsurePool(), probe.num_rows(), morsel_size_, plan.out_vars, &out,
          [&](size_t row_lo, size_t row_hi, BindingTable* slice) {
            if (chunk_rows_ > 0) {
              ProbeHashChunked(plan, build, probe, row_lo, row_hi,
                               chunk_rows_, lookup, slice);
            } else {
              ProbeHashRange(plan, build, probe, row_lo, row_hi, lookup,
                             [&](std::span<const TermId> row) {
                               slice->AppendRow(row);
                             });
            }
            return uint64_t{0};
          });
    }
  } else if (chunk_rows_ > 0 && !plan.build_key.empty()) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> table;
    table.reserve(build.num_rows() * 2);
    std::vector<uint64_t> hashes(build.num_rows());
    ComputeKeyHashes(build, plan.build_key, 0, build.num_rows(),
                     hashes.data());
    for (size_t i = 0; i < build.num_rows(); ++i) {
      table[hashes[i]].push_back(static_cast<uint32_t>(i));
    }
    ProbeHashChunked(plan, build, probe, 0, probe.num_rows(), chunk_rows_,
                     [&](uint64_t h) -> const std::vector<uint32_t>* {
                       auto it = table.find(h);
                       return it == table.end() ? nullptr : &it->second;
                     },
                     &out);
  } else {
    RunHashJoin(plan, build, probe,
                [&](std::span<const TermId> row) { out.AppendRow(row); });
  }
  stats->intermediate_rows += out.num_rows();
  RDFPARAMS_RETURN_NOT_OK(ApplyFilters(query, filter_done, &out));
  return out;
}

Result<BindingTable> Executor::ExecNode(const SelectQuery& query,
                                        const opt::PlanNode& node,
                                        std::vector<char>* filter_done,
                                        ExecutionStats* stats) {
  if (node.is_scan()) return ExecScan(query, node, filter_done, stats);
  return ExecJoin(query, node, filter_done, stats);
}

bool Executor::EvalFilter(const sparql::FilterCondition& f, TermId lhs,
                          TermId rhs) const {
  using sparql::CompareOp;
  if (f.op == CompareOp::kEq && lhs == rhs) return true;
  if (f.op == CompareOp::kNe && lhs == rhs) return false;
  if (lhs == rdf::kInvalidTermId || rhs == rdf::kInvalidTermId) {
    return f.op == CompareOp::kNe;
  }
  const rdf::TermView a = dacc_.term(lhs);
  const rdf::TermView b = dacc_.term(rhs);
  int cmp = a.Compare(b);
  switch (f.op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

Status Executor::ApplyFilters(const SelectQuery& query,
                              std::vector<char>* filter_done,
                              BindingTable* table) {
  for (size_t fi = 0; fi < query.filters.size(); ++fi) {
    if ((*filter_done)[fi]) continue;
    const sparql::FilterCondition& f = query.filters[fi];
    int lhs_col = table->VarIndex(f.lhs_var);
    if (lhs_col < 0) continue;
    int rhs_col = -1;
    TermId rhs_const = rdf::kInvalidTermId;
    if (f.rhs.is_var()) {
      rhs_col = table->VarIndex(f.rhs.name);
      if (rhs_col < 0) continue;  // not yet available
    } else if (f.rhs.is_const()) {
      // Intern so comparisons against fresh constants work numerically.
      rhs_const = dacc_.Intern(f.rhs.term);
    } else {
      return Status::InvalidArgument("filter still has an unbound %parameter");
    }
    (*filter_done)[fi] = 1;

    BindingTable kept(table->vars());
    const size_t n = table->num_rows();
    if (chunk_rows_ == 0) {
      // Row-at-a-time reference path: evaluate and copy row by row.
      std::vector<TermId> row(table->num_vars());
      for (size_t r = 0; r < n; ++r) {
        TermId lhs = table->at(r, static_cast<size_t>(lhs_col));
        TermId rhs = rhs_col >= 0 ? table->at(r, static_cast<size_t>(rhs_col))
                                  : rhs_const;
        if (!EvalFilter(f, lhs, rhs)) continue;
        for (size_t c = 0; c < row.size(); ++c) row[c] = table->at(r, c);
        kept.AppendRow(row);
      }
    } else {
      // Vectorized path: evaluate over the lhs/rhs columns only, build a
      // per-chunk selection vector, gather survivors column-wise. With a
      // constant rhs, everything about the rhs term — kind rank, numeric
      // decode — is hoisted out of the loop (see ConstRhsFilter), where the
      // reference kernel re-derives it per row inside Term::Compare.
      std::span<const TermId> lhs_vals =
          table->col(static_cast<size_t>(lhs_col));
      std::span<const TermId> rhs_vals;
      if (rhs_col >= 0) rhs_vals = table->col(static_cast<size_t>(rhs_col));
      ConstRhsFilter const_eval;
      if (rhs_col < 0) const_eval.Prepare(f, rhs_const, dacc_);
      std::vector<uint32_t> sel;
      sel.reserve(static_cast<size_t>(
          std::min<uint64_t>(chunk_rows_, static_cast<uint64_t>(n))));
      for (size_t lo = 0; lo < n; lo += static_cast<size_t>(chunk_rows_)) {
        const size_t hi =
            std::min(n, lo + static_cast<size_t>(chunk_rows_));
        sel.clear();
        if (rhs_col >= 0) {
          for (size_t r = lo; r < hi; ++r) {
            if (EvalFilter(f, lhs_vals[r], rhs_vals[r])) {
              sel.push_back(static_cast<uint32_t>(r));
            }
          }
        } else {
          for (size_t r = lo; r < hi; ++r) {
            if (const_eval.Eval(lhs_vals[r], dacc_)) {
              sel.push_back(static_cast<uint32_t>(r));
            }
          }
        }
        kept.AppendGather(*table, sel);
      }
    }
    *table = std::move(kept);
  }
  return Status::OK();
}

Status Executor::SortRows(const SelectQuery& query, BindingTable* table) {
  if (query.order_by.empty() || table->num_rows() == 0) return Status::OK();
  std::vector<int> key_cols;
  std::vector<bool> desc;
  for (const sparql::OrderKey& k : query.order_by) {
    int c = table->VarIndex(k.var);
    if (c < 0) {
      return Status::InvalidArgument("ORDER BY variable ?" + k.var +
                                     " not available");
    }
    key_cols.push_back(c);
    desc.push_back(k.descending);
  }
  // Decode each distinct key term once into a totally-ranked sort key so
  // the comparator never re-parses lexical forms. Rank: blanks < IRIs <
  // numeric literals < other literals, numerics by value with NaN after
  // every number. Separating numeric from non-numeric literals by rank
  // (instead of comparing them lexicographically as Term::Compare would)
  // keeps the comparator a strict weak ordering — mixing numeric and
  // lexicographic comparisons in one column is not transitive, and the
  // parallel merge (like std::stable_sort itself) requires strictness.
  struct DecodedKey {
    uint8_t rank = 3;
    bool is_nan = false;
    double value = 0;
  };
  std::unordered_map<TermId, DecodedKey> decoded;
  auto decode = [&](TermId id) {
    auto it = decoded.find(id);
    if (it != decoded.end()) return;
    DecodedKey key;
    const rdf::TermView term = dacc_.term(id);
    if (term.is_blank()) {
      key.rank = 0;
    } else if (term.is_iri()) {
      key.rank = 1;
    } else if (term.is_numeric()) {
      if (auto v = term.AsDouble()) {
        key.rank = 2;
        key.is_nan = std::isnan(*v);
        key.value = *v;
      }
    }
    decoded.emplace(id, key);
  };
  // One contiguous pass per key column (the column-major layout's natural
  // decode order; the memo makes visit order irrelevant to the values).
  std::vector<std::span<const TermId>> key_vals;
  for (int c : key_cols) {
    key_vals.push_back(table->col(static_cast<size_t>(c)));
    for (TermId id : key_vals.back()) decode(id);
  }
  auto cmp_ids = [&](TermId va, TermId vb) -> int {
    if (va == vb) return 0;
    const DecodedKey& ka = decoded.find(va)->second;
    const DecodedKey& kb = decoded.find(vb)->second;
    if (ka.rank != kb.rank) return ka.rank < kb.rank ? -1 : 1;
    if (ka.rank == 2) {
      if (ka.is_nan || kb.is_nan) {
        if (ka.is_nan == kb.is_nan) return 0;  // NaN ties with NaN only
        return kb.is_nan ? -1 : 1;             // numbers before NaN
      }
      return ka.value < kb.value ? -1 : (ka.value > kb.value ? 1 : 0);
    }
    return dacc_.term(va).Compare(dacc_.term(vb));
  };
  auto less = [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      int cmp = cmp_ids(key_vals[k][a], key_vals[k][b]);
      if (cmp == 0) continue;
      return desc[k] ? cmp > 0 : cmp < 0;
    }
    return false;
  };
  // Identical permutation with or without the pool (see parallel_sort.h);
  // the pool only buys wall time on large inputs.
  const bool parallel = exec_threads_ > 1 && parallel_sort_ &&
                        table->num_rows() > morsel_size_;
  std::vector<uint32_t> order =
      StableSortPermutation(table->num_rows(), less,
                            parallel ? EnsurePool() : nullptr, morsel_size_);
  BindingTable sorted(table->vars());
  sorted.AppendGather(*table, order);
  *table = std::move(sorted);
  return Status::OK();
}

void Executor::DeduplicatePreservingOrder(BindingTable* table) {
  const size_t n = table->num_rows();
  // Row hashes computed column-wise; the combine order (column 0, 1, ...)
  // matches the old row-major loop, so the hashes are identical.
  std::vector<uint64_t> hashes(n, 0x9e3779b9);
  for (size_t c = 0; c < table->num_vars(); ++c) {
    std::span<const TermId> col = table->col(c);
    for (size_t r = 0; r < n; ++r) {
      hashes[r] = util::HashCombine(hashes[r], col[r]);
    }
  }
  auto rows_equal = [&](size_t a, size_t b) {
    for (size_t c = 0; c < table->num_vars(); ++c) {
      if (table->at(a, c) != table->at(b, c)) return false;
    }
    return true;
  };
  std::unordered_map<uint64_t, std::vector<uint32_t>> seen;
  std::vector<uint32_t> keep;
  for (size_t r = 0; r < n; ++r) {
    std::vector<uint32_t>& bucket = seen[hashes[r]];
    bool dup = false;
    for (uint32_t prev : bucket) {
      if (rows_equal(prev, r)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(static_cast<uint32_t>(r));
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  BindingTable out(table->vars());
  out.AppendGather(*table, keep);
  *table = std::move(out);
}

void Executor::ApplyLimitOffset(const SelectQuery& query,
                                BindingTable* table) {
  if (query.offset <= 0 && query.limit < 0) return;
  size_t begin = std::min<size_t>(static_cast<size_t>(
                                      std::max<int64_t>(query.offset, 0)),
                                  table->num_rows());
  size_t end = table->num_rows();
  if (query.limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(query.limit));
  }
  BindingTable out(table->vars());
  out.AppendRange(*table, begin, end);
  *table = std::move(out);
}

Result<BindingTable> Executor::ApplyModifiers(const SelectQuery& query,
                                              BindingTable table) {
  // 1. GROUP BY + aggregates (when not already done by the streaming
  // path): the canonical sliced reduction of group_merge.h, on the pool
  // when the options allow it — same result either way.
  if (!query.aggregates.empty()) {
    const bool parallel = exec_threads_ > 1 && parallel_group_by_ &&
                          table.num_rows() > kAggSliceRows;
    RDFPARAMS_ASSIGN_OR_RETURN(
        table, GroupByAggregate(query, table, &dacc_,
                                parallel ? EnsurePool() : nullptr));
  }
  return FinishModifiers(query, std::move(table));
}

Result<BindingTable> Executor::FinishModifiers(const SelectQuery& query,
                                               BindingTable table) {
  // 2. Projection (before DISTINCT, which SPARQL applies post-projection).
  std::vector<std::string> proj = query.select_vars;
  if (!query.aggregates.empty()) {
    if (proj.empty()) {
      proj = table.vars();  // group keys + aggregate outputs
    } else {
      for (const sparql::Aggregate& a : query.aggregates) {
        if (std::find(proj.begin(), proj.end(), a.as_name) == proj.end()) {
          proj.push_back(a.as_name);
        }
      }
    }
  }
  if (!proj.empty()) {
    std::vector<int> cols;
    for (const std::string& v : proj) {
      int c = table.VarIndex(v);
      if (c < 0) {
        return Status::InvalidArgument("SELECT variable ?" + v +
                                       " not bound by the pattern");
      }
      cols.push_back(c);
    }
    bool keys_survive = true;
    for (const sparql::OrderKey& k : query.order_by) {
      if (std::find(proj.begin(), proj.end(), k.var) == proj.end()) {
        keys_survive = false;
        break;
      }
    }
    if (!keys_survive) {
      RDFPARAMS_RETURN_NOT_OK(SortRows(query, &table));
    }
    // Projection is a column permutation (with possible duplicates): one
    // whole-column copy per projected column, no per-row loop.
    BindingTable out(proj);
    for (size_t k = 0; k < cols.size(); ++k) {
      std::span<const TermId> src =
          table.col(static_cast<size_t>(cols[k]));
      out.MutableCol(k).assign(src.begin(), src.end());
    }
    out.CheckAligned();
    if (!keys_survive) {
      table = std::move(out);
      if (query.distinct) DeduplicatePreservingOrder(&table);
      ApplyLimitOffset(query, &table);
      return table;
    }
    table = std::move(out);
  }

  // 3. DISTINCT.
  if (query.distinct) DeduplicatePreservingOrder(&table);

  // 4. ORDER BY.
  RDFPARAMS_RETURN_NOT_OK(SortRows(query, &table));

  // 5. OFFSET / LIMIT.
  ApplyLimitOffset(query, &table);
  return table;
}

Result<BindingTable> Executor::ExecuteStreamingAggregate(
    const SelectQuery& query, const opt::PlanNode& root,
    std::vector<char>* filter_done, ExecutionStats* stats) {
  // Execute children normally (their filters apply inside), then stream
  // the root join's rows straight into the group-by accumulator — the
  // root output is never materialized. This is what lets cross-product
  // aggregates (BSBM-BI Q4's with/without price ratio) run at generic
  // product types without exhausting memory.
  RDFPARAMS_DCHECK(root.is_join());

  // Figure out the output schema and the row source.
  auto stream = [&](const std::vector<std::string>& schema,
                    auto&& produce) -> Result<BindingTable> {
    // Compile remaining filters against the root schema.
    std::vector<CompiledFilter> filters;
    for (size_t fi = 0; fi < query.filters.size(); ++fi) {
      if ((*filter_done)[fi]) continue;
      const sparql::FilterCondition& f = query.filters[fi];
      CompiledFilter cf;
      cf.f = &f;
      for (size_t i = 0; i < schema.size(); ++i) {
        if (schema[i] == f.lhs_var) cf.lhs_col = static_cast<int>(i);
        if (f.rhs.is_var() && schema[i] == f.rhs.name) {
          cf.rhs_col = static_cast<int>(i);
        }
      }
      if (cf.lhs_col < 0) continue;
      if (f.rhs.is_var() && cf.rhs_col < 0) continue;
      if (f.rhs.is_param()) {
        return Status::InvalidArgument(
            "filter still has an unbound %parameter");
      }
      if (f.rhs.is_const()) {
        cf.rhs_const = dacc_.Intern(f.rhs.term);
      }
      (*filter_done)[fi] = 1;
      filters.push_back(cf);
    }

    RDFPARAMS_ASSIGN_OR_RETURN(GroupBySpec spec,
                               GroupBySpec::Compile(query, schema));
    // The root probe stays on the calling thread (it feeds this sink in a
    // fixed stream order), but full canonical slices of its output are
    // reduced on the pool while the stream keeps producing.
    const bool parallel = exec_threads_ > 1 && parallel_group_by_;
    SliceGroupStream acc(&spec, dacc_, schema.size(),
                         parallel ? EnsurePool() : nullptr,
                         /*max_pending=*/exec_threads_ * 2);
    uint64_t rows = 0;
    produce([&](std::span<const TermId> row) {
      ++rows;
      for (const CompiledFilter& cf : filters) {
        TermId lhs = row[static_cast<size_t>(cf.lhs_col)];
        TermId rhs = cf.rhs_col >= 0 ? row[static_cast<size_t>(cf.rhs_col)]
                                     : cf.rhs_const;
        if (!EvalFilter(*cf.f, lhs, rhs)) return;
      }
      acc.Add(row);
    });
    stats->intermediate_rows += rows;
    RDFPARAMS_ASSIGN_OR_RETURN(BindingTable grouped, acc.Finish(&dacc_));
    return FinishModifiers(query, std::move(grouped));
  };

  if (root.right->is_scan() || root.left->is_scan()) {
    const opt::PlanNode& outer =
        root.right->is_scan() ? *root.left : *root.right;
    const opt::PlanNode& inner =
        root.right->is_scan() ? *root.right : *root.left;
    RDFPARAMS_ASSIGN_OR_RETURN(
        BindingTable outer_table, ExecNode(query, outer, filter_done, stats));
    const TriplePattern& tp = query.patterns[inner.pattern_index];
    RDFPARAMS_ASSIGN_OR_RETURN(
        IndexJoinPlan plan, PrepareIndexJoin(tp, outer_table.vars(), dacc_));
    // The root probe runs serially so the sink sees one fixed stream
    // order (the determinism anchor for floating-point sums); the sink
    // itself reduces full slices on the pool, and child nodes above
    // already ran with the parallel operators. The merge sweep slots in
    // when chosen — it feeds the sink the identical row sequence.
    const MergeJoinChoice merge =
        ChooseMergeJoin(store_, plan, outer_table, root.merge_join_hint,
                        enable_merge_join_);
    return stream(plan.out_vars, [&](auto&& sink) {
      if (merge.use) {
        rdf::PatternSweep sweep(store_, merge.key_pos, plan.cs, plan.cp,
                                plan.co);
        stats->scan_rows += RunIndexJoinRows(
            plan, outer_table, 0, outer_table.num_rows(),
            [&](TermId s, TermId p, TermId o) {
              return sweep.Next(GetPos(rdf::Triple(s, p, o), merge.key_pos));
            },
            sink);
      } else {
        stats->scan_rows += RunIndexJoinRows(
            plan, outer_table, 0, outer_table.num_rows(),
            [&](TermId s, TermId p, TermId o) {
              return store_.Range(store_.ChooseIndex(s, p, o), s, p, o);
            },
            sink);
      }
    });
  }
  RDFPARAMS_ASSIGN_OR_RETURN(
      BindingTable build, ExecNode(query, *root.left, filter_done, stats));
  RDFPARAMS_ASSIGN_OR_RETURN(
      BindingTable probe, ExecNode(query, *root.right, filter_done, stats));
  HashJoinPlan plan = PrepareHashJoin(build.vars(), probe.vars());
  return stream(plan.out_vars, [&](auto&& sink) {
    RunHashJoin(plan, build, probe, sink);
  });
}

Result<BindingTable> Executor::Execute(const SelectQuery& query,
                                       const opt::PlanNode& plan,
                                       ExecutionStats* stats,
                                       const ExecOptions& options) {
  // Resolve the intra-query parallel state for this call; the worker pool
  // itself is created lazily by the first operator that goes parallel.
  exec_threads_ = util::ThreadPool::ResolveThreads(options.threads);
  morsel_size_ = std::max<uint64_t>(1, options.morsel_size);
  parallel_group_by_ = options.parallel_group_by;
  parallel_sort_ = options.parallel_sort;
  chunk_rows_ = options.chunk_rows;
  enable_merge_join_ = options.enable_merge_join;

  ExecutionStats local;
  util::WallTimer timer;
  std::vector<char> filter_done(query.filters.size(), 0);

  BindingTable table;
  if (!query.aggregates.empty() && plan.is_join()) {
    RDFPARAMS_ASSIGN_OR_RETURN(
        table, ExecuteStreamingAggregate(query, plan, &filter_done, &local));
  } else {
    RDFPARAMS_ASSIGN_OR_RETURN(table,
                               ExecNode(query, plan, &filter_done, &local));
  }
  for (size_t fi = 0; fi < filter_done.size(); ++fi) {
    if (!filter_done[fi]) {
      return Status::InvalidArgument(
          "filter references a variable not bound by the pattern: " +
          query.filters[fi].ToString());
    }
  }
  if (query.aggregates.empty() || plan.is_scan()) {
    RDFPARAMS_ASSIGN_OR_RETURN(table, ApplyModifiers(query, std::move(table)));
  }
  local.wall_seconds = timer.ElapsedSeconds();
  local.result_rows = table.num_rows();
  if (stats != nullptr) *stats = local;
  return table;
}

util::ThreadPool* Executor::EnsurePool() {
  if (owned_pool_ == nullptr || owned_pool_->size() != exec_threads_ - 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(exec_threads_ - 1);
  }
  return owned_pool_.get();
}

Result<BindingTable> Executor::OptimizeAndExecute(
    const SelectQuery& query, ExecutionStats* stats,
    const opt::OptimizeOptions& optimize_options,
    const ExecOptions& exec_options) {
  RDFPARAMS_ASSIGN_OR_RETURN(
      opt::OptimizedPlan plan,
      opt::Optimize(query, store_, base_dict(), optimize_options));
  return Execute(query, *plan.root, stats, exec_options);
}

Result<BindingTable> ExecuteNaive(const SelectQuery& query,
                                  const rdf::TripleStore& store,
                                  rdf::Dictionary* dict) {
  // Left-deep, in-text-order execution: the plan is pattern 0 joined with
  // pattern 1, joined with pattern 2, ... regardless of cost. Shares the
  // executor's operators so only the plan shape is "naive".
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }
  std::unique_ptr<opt::PlanNode> root =
      opt::PlanNode::MakeScan(0, rdf::IndexOrder::kSPO);
  for (size_t i = 1; i < query.patterns.size(); ++i) {
    auto rhs = opt::PlanNode::MakeScan(i, rdf::IndexOrder::kSPO);
    root = opt::PlanNode::MakeJoin(std::move(root), std::move(rhs), {});
  }
  Executor exec(store, dict);
  ExecutionStats stats;
  return exec.Execute(query, *root, &stats);
}

}  // namespace rdfparams::engine

// Parallel group-by reduction with a deterministic merge.
//
// The classic way to parallelize GROUP BY — thread-local hash tables merged
// at the end — is unusable here, because the executor promises results that
// are byte-identical to a serial run at every thread count and morsel size,
// and floating-point aggregate sums depend on their accumulation order.
//
// The fix is to make the reduction tree *canonical* instead of schedule-
// shaped. Input rows are cut into fixed kAggSliceRows-row slices (a
// constant, deliberately independent of ExecOptions::morsel_size); each
// slice accumulates its rows, in row order, into a private PartialAggTable;
// the partials are then folded left-to-right in ascending slice order:
//
//     merged = ((((empty + p0) + p1) + p2) + ...)
//
// Every floating-point addition in that tree is fixed by the input row
// order alone, so computing the slice partials serially or on any number of
// worker threads yields bit-identical sums. Serial execution runs the same
// tree — it IS the reference, not a separate code path. COUNT/MIN/MAX merge
// exactly (order-insensitive); SUM/AVG merge deterministically because the
// fold order is fixed.
//
// Output order is part of the contract too: Finish() emits groups in
// ascending group-key order (lexicographic over the key TermId tuples),
// which is independent of hash-table iteration order, thread count, and
// slice width. Aggregate output literals are interned by the calling
// thread in that same order, so scratch-dictionary ids are stable across
// execution configurations as well.
#ifndef RDFPARAMS_ENGINE_GROUP_MERGE_H_
#define RDFPARAMS_ENGINE_GROUP_MERGE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/binding_table.h"
#include "engine/dict_access.h"
#include "sparql/algebra.h"
#include "util/status.h"

namespace rdfparams::util {
class ThreadPool;
}

namespace rdfparams::engine {

/// Canonical slice width (input rows) for group-by partials. A fixed
/// constant — NOT ExecOptions::morsel_size — so the floating-point
/// reduction tree, and therefore the result, is identical at every thread
/// count and morsel size. Only scheduling varies with the exec options.
inline constexpr uint64_t kAggSliceRows = 2048;

/// True when every aggregate in `query` can be merged across slice
/// partials without changing its value relative to the canonical fold
/// (COUNT/MIN/MAX exactly; SUM/AVG via the fixed slice-order fold).
/// Aggregate kinds this module does not know how to merge make the
/// executor fall back to a single serial partial covering all rows.
bool MergeableAggregates(const sparql::SelectQuery& query);

/// Compiled grouping wiring: column positions of the GROUP BY keys and of
/// each aggregate's input within a concrete schema.
struct GroupBySpec {
  /// Input columns holding the GROUP BY variables, in GROUP BY order.
  std::vector<int> group_cols;
  /// Per aggregate: input column of its argument, or -1 for COUNT(*).
  std::vector<int> agg_cols;
  /// Per aggregate: whether the numeric value is needed (false for COUNT).
  std::vector<char> needs_value;
  /// Number of aggregates (== query->aggregates.size()).
  size_t n_agg = 0;
  /// The query this spec was compiled from (not owned).
  const sparql::SelectQuery* query = nullptr;

  /// Resolves `query`'s GROUP BY and aggregate variables against the input
  /// schema `vars`; errors on variables the pattern does not bind.
  [[nodiscard]] static Result<GroupBySpec> Compile(const sparql::SelectQuery& query,
                                     const std::vector<std::string>& vars);
};

/// Partial aggregate table for one slice of input rows (or for a merge of
/// consecutive slices). Accumulates per-group COUNT/SUM/MIN/MAX state.
class PartialAggTable {
 public:
  explicit PartialAggTable(const GroupBySpec* spec) : spec_(spec) {}

  /// Folds one input row into its group (creating the group on first
  /// sight). Reads — never writes — the dictionary, so disjoint
  /// PartialAggTables are safe to fill from parallel workers.
  void AddRow(std::span<const rdf::TermId> row, const DictAccess& dict);

  /// Folds rows [lo, hi) of a columnar table, in row order — equivalent to
  /// hi-lo AddRow calls, but with the group/aggregate column spans hoisted
  /// out of the per-row loop instead of re-resolved per row.
  void AddRows(const BindingTable& input, size_t lo, size_t hi,
               const DictAccess& dict);

  /// Merges `other` into this table. Deterministic as long as callers
  /// always fold partials in ascending slice order: for each group,
  /// exactly one `sum += other.sum` per slice, in slice order.
  void MergeFrom(const PartialAggTable& other);

  /// Emits the grouped output — group-key columns followed by aggregate
  /// outputs — with groups in ascending group-key order. Interns aggregate
  /// literals through `dict` (calling-thread only).
  [[nodiscard]] Result<BindingTable> Finish(DictAccess* dict) const;

  size_t num_groups() const { return accs_.size(); }

 private:
  /// One group's accumulator state (per-aggregate slots).
  struct Acc {
    std::vector<rdf::TermId> key;
    std::vector<double> sum;
    std::vector<double> min;
    std::vector<double> max;
    std::vector<uint64_t> count;
  };

  Acc* FindOrCreate(uint64_t hash);

  const GroupBySpec* spec_;
  std::vector<Acc> accs_;                                 // first-seen order
  std::unordered_map<uint64_t, std::vector<uint32_t>> index_;  // hash -> accs
  std::unordered_map<rdf::TermId, double> numeric_cache_;
  std::vector<rdf::TermId> scratch_key_;
};

/// Group-by driver for a materialized input table: slices `input` into
/// kAggSliceRows partials (computed on `pool` when non-null, inline
/// otherwise — same result either way), folds them in slice order, and
/// returns the grouped table in ascending group-key order.
[[nodiscard]] Result<BindingTable> GroupByAggregate(const sparql::SelectQuery& query,
                                      const BindingTable& input,
                                      DictAccess* dict,
                                      util::ThreadPool* pool);

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_GROUP_MERGE_H_

#include "engine/group_merge.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace rdfparams::engine {

using rdf::TermId;

bool MergeableAggregates(const sparql::SelectQuery& query) {
  for (const sparql::Aggregate& a : query.aggregates) {
    switch (a.kind) {
      case sparql::AggregateKind::kCount:
      case sparql::AggregateKind::kSum:
      case sparql::AggregateKind::kAvg:
      case sparql::AggregateKind::kMin:
      case sparql::AggregateKind::kMax:
        continue;
      // No default: adding an aggregate kind trips -Wswitch here, forcing
      // it to be classified before the parallel merge may touch it;
      // unclassified kinds fall through to the serial single-partial path.
    }
    return false;
  }
  return true;
}

Result<GroupBySpec> GroupBySpec::Compile(const sparql::SelectQuery& query,
                                         const std::vector<std::string>& vars) {
  GroupBySpec spec;
  spec.query = &query;
  for (const std::string& v : query.group_by) {
    int c = -1;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == v) c = static_cast<int>(i);
    }
    if (c < 0) {
      return Status::InvalidArgument("GROUP BY variable ?" + v +
                                     " not bound by the pattern");
    }
    spec.group_cols.push_back(c);
  }
  spec.n_agg = query.aggregates.size();
  spec.agg_cols.assign(spec.n_agg, -1);
  spec.needs_value.assign(spec.n_agg, 0);
  for (size_t a = 0; a < spec.n_agg; ++a) {
    spec.needs_value[a] =
        query.aggregates[a].kind != sparql::AggregateKind::kCount ? 1 : 0;
    if (query.aggregates[a].var.empty()) continue;  // COUNT(*)
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == query.aggregates[a].var) {
        spec.agg_cols[a] = static_cast<int>(i);
      }
    }
    if (spec.agg_cols[a] < 0) {
      return Status::InvalidArgument("aggregate variable ?" +
                                     query.aggregates[a].var +
                                     " not bound by the pattern");
    }
  }
  return spec;
}

PartialAggTable::Acc* PartialAggTable::FindOrCreate(uint64_t hash) {
  std::vector<uint32_t>& bucket = index_[hash];
  for (uint32_t i : bucket) {
    if (accs_[i].key == scratch_key_) return &accs_[i];
  }
  bucket.push_back(static_cast<uint32_t>(accs_.size()));
  accs_.push_back(Acc{});
  Acc* acc = &accs_.back();
  acc->key = scratch_key_;
  acc->sum.assign(spec_->n_agg, 0.0);
  acc->min.assign(spec_->n_agg, std::numeric_limits<double>::infinity());
  acc->max.assign(spec_->n_agg, -std::numeric_limits<double>::infinity());
  acc->count.assign(spec_->n_agg, 0);
  return acc;
}

void PartialAggTable::AddRow(std::span<const TermId> row,
                             const DictAccess& dict) {
  scratch_key_.resize(spec_->group_cols.size());
  uint64_t h = 0xabcdef;
  for (size_t k = 0; k < spec_->group_cols.size(); ++k) {
    scratch_key_[k] = row[static_cast<size_t>(spec_->group_cols[k])];
    h = util::HashCombine(h, scratch_key_[k]);
  }
  Acc* acc = FindOrCreate(h);
  for (size_t a = 0; a < spec_->n_agg; ++a) {
    ++acc->count[a];
    if (spec_->agg_cols[a] < 0 || !spec_->needs_value[a]) continue;  // COUNT
    TermId v = row[static_cast<size_t>(spec_->agg_cols[a])];
    double x = 0;
    auto it = numeric_cache_.find(v);
    if (it != numeric_cache_.end()) {
      x = it->second;
    } else {
      x = dict.term(v).AsDouble().value_or(0.0);
      numeric_cache_.emplace(v, x);
    }
    acc->sum[a] += x;
    acc->min[a] = std::min(acc->min[a], x);
    acc->max[a] = std::max(acc->max[a], x);
  }
}

void PartialAggTable::AddRows(const BindingTable& input, size_t lo,
                              size_t hi, const DictAccess& dict) {
  // Hoist the column spans once per slice; the per-row body then performs
  // the exact accumulation sequence of AddRow (same hash, same
  // FindOrCreate order, same floating-point adds), just without the
  // per-row column resolution.
  std::vector<std::span<const TermId>> group_vals;
  group_vals.reserve(spec_->group_cols.size());
  for (int c : spec_->group_cols) {
    group_vals.push_back(input.col(static_cast<size_t>(c)));
  }
  std::vector<std::span<const TermId>> agg_vals(spec_->n_agg);
  for (size_t a = 0; a < spec_->n_agg; ++a) {
    if (spec_->agg_cols[a] >= 0 && spec_->needs_value[a]) {
      agg_vals[a] = input.col(static_cast<size_t>(spec_->agg_cols[a]));
    }
  }
  scratch_key_.resize(spec_->group_cols.size());
  for (size_t r = lo; r < hi; ++r) {
    uint64_t h = 0xabcdef;
    for (size_t k = 0; k < group_vals.size(); ++k) {
      scratch_key_[k] = group_vals[k][r];
      h = util::HashCombine(h, scratch_key_[k]);
    }
    Acc* acc = FindOrCreate(h);
    for (size_t a = 0; a < spec_->n_agg; ++a) {
      ++acc->count[a];
      if (agg_vals[a].empty()) continue;  // COUNT — no value needed
      TermId v = agg_vals[a][r];
      double x = 0;
      auto it = numeric_cache_.find(v);
      if (it != numeric_cache_.end()) {
        x = it->second;
      } else {
        x = dict.term(v).AsDouble().value_or(0.0);
        numeric_cache_.emplace(v, x);
      }
      acc->sum[a] += x;
      acc->min[a] = std::min(acc->min[a], x);
      acc->max[a] = std::max(acc->max[a], x);
    }
  }
}

void PartialAggTable::MergeFrom(const PartialAggTable& other) {
  for (const Acc& src : other.accs_) {
    scratch_key_ = src.key;
    uint64_t h = 0xabcdef;
    for (TermId id : src.key) h = util::HashCombine(h, id);
    Acc* dst = FindOrCreate(h);
    for (size_t a = 0; a < spec_->n_agg; ++a) {
      dst->count[a] += src.count[a];
      dst->sum[a] += src.sum[a];
      dst->min[a] = std::min(dst->min[a], src.min[a]);
      dst->max[a] = std::max(dst->max[a], src.max[a]);
    }
  }
}

Result<BindingTable> PartialAggTable::Finish(DictAccess* dict) const {
  const sparql::SelectQuery& query = *spec_->query;
  std::vector<std::string> out_vars = query.group_by;
  for (const sparql::Aggregate& a : query.aggregates) {
    out_vars.push_back(a.as_name);
  }

  // Ascending group-key order: independent of hash iteration order, slice
  // width, and thread count. Keys are unique, so std::sort suffices.
  std::vector<uint32_t> order(accs_.size());
  std::iota(order.begin(), order.end(), uint32_t{0});
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return accs_[a].key < accs_[b].key;
  });

  BindingTable out(out_vars);
  out.Reserve(accs_.size());
  std::vector<TermId> row(out_vars.size());
  for (uint32_t i : order) {
    const Acc& acc = accs_[i];
    size_t k = 0;
    for (TermId id : acc.key) row[k++] = id;
    for (size_t a = 0; a < spec_->n_agg; ++a) {
      const sparql::Aggregate& agg = query.aggregates[a];
      double value = 0;
      switch (agg.kind) {
        case sparql::AggregateKind::kCount:
          value = static_cast<double>(acc.count[a]);
          break;
        case sparql::AggregateKind::kSum: value = acc.sum[a]; break;
        case sparql::AggregateKind::kAvg:
          value = acc.count[a] > 0
                      ? acc.sum[a] / static_cast<double>(acc.count[a])
                      : 0.0;
          break;
        case sparql::AggregateKind::kMin:
          value = acc.count[a] > 0 ? acc.min[a] : 0.0;
          break;
        case sparql::AggregateKind::kMax:
          value = acc.count[a] > 0 ? acc.max[a] : 0.0;
          break;
      }
      row[k++] = dict->Intern(rdf::Term::Double(value));
    }
    out.AppendRow(row);
  }
  return out;
}

Result<BindingTable> GroupByAggregate(const sparql::SelectQuery& query,
                                      const BindingTable& input,
                                      DictAccess* dict,
                                      util::ThreadPool* pool) {
  RDFPARAMS_ASSIGN_OR_RETURN(GroupBySpec spec,
                             GroupBySpec::Compile(query, input.vars()));
  const uint64_t n = input.num_rows();
  // Unmergeable aggregates: one serial partial covering every row — the
  // canonical tree degenerates to the old streaming accumulation order.
  const uint64_t slice_rows =
      MergeableAggregates(query) ? kAggSliceRows : std::max<uint64_t>(n, 1);
  const uint64_t num_slices = (n + slice_rows - 1) / slice_rows;

  std::vector<PartialAggTable> partials(num_slices, PartialAggTable(&spec));
  const DictAccess& read_dict = *dict;
  auto fill_slice = [&](uint64_t m) {
    size_t lo = static_cast<size_t>(m * slice_rows);
    size_t hi =
        static_cast<size_t>(std::min<uint64_t>(n, lo + slice_rows));
    partials[m].AddRows(input, lo, hi, read_dict);
  };
  if (pool != nullptr && num_slices > 1) {
    pool->ParallelFor(
        0, num_slices,
        [&](uint64_t lo, uint64_t hi) {
          for (uint64_t m = lo; m < hi; ++m) fill_slice(m);
        },
        /*chunk=*/1);
  } else {
    for (uint64_t m = 0; m < num_slices; ++m) fill_slice(m);
  }

  // Fold in ascending slice order: the one fixed merge tree.
  PartialAggTable merged(&spec);
  for (const PartialAggTable& p : partials) merged.MergeFrom(p);
  return merged.Finish(dict);
}

}  // namespace rdfparams::engine

// Parallel merge sort for ORDER BY, byte-identical to std::stable_sort.
//
// The trick that makes the parallel sort deterministic is strictness: the
// caller's comparator (a strict weak ordering, possibly with many ties) is
// extended with a final row-index tie-break, turning it into a strict
// TOTAL order. Under a total order there is exactly one sorted permutation,
// and it is precisely the one std::stable_sort produces for the original
// comparator — so morsel-local sorts followed by pairwise merges in slice
// order reproduce the serial result exactly, for every thread count,
// morsel size, and scheduling interleaving. Unlike the group-by reduction
// (see group_merge.h), no canonical slice width is needed: any slicing of
// a total order merges to the same permutation.
//
// StableSortPermutation is a template over the comparator so the hot
// per-comparison call inlines into std::sort / std::merge (a type-erased
// std::function here would tax every one of the O(n log n) comparisons);
// the run-boundary bookkeeping lives in parallel_sort.cc.
#ifndef RDFPARAMS_ENGINE_PARALLEL_SORT_H_
#define RDFPARAMS_ENGINE_PARALLEL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace rdfparams::engine {

namespace internal {

/// Run boundaries [bounds[i], bounds[i+1]) for morsel_size-row runs of
/// [0, n); always ends with n.
std::vector<size_t> InitialRunBounds(size_t n, uint64_t morsel_size);

/// Boundaries after one pairwise merge round (runs 2i and 2i+1 merged, an
/// odd trailing run carried); always ends with n.
std::vector<size_t> NextRoundBounds(const std::vector<size_t>& bounds,
                                    size_t n);

}  // namespace internal

/// Returns the permutation that stable-sorts row indices [0, n) under
/// `less`, a strict weak ordering over row indices (ties allowed; do NOT
/// pre-break them — stability is this function's job).
///
/// With a null `pool` (or n <= morsel_size) this is std::stable_sort.
/// Otherwise: morsel_size-row runs are sorted on the pool (one run per
/// scheduling unit), then merged pairwise in slice order until one run
/// remains. The result is identical in both modes — callers pick the pool
/// purely on performance grounds.
template <typename Less>
std::vector<uint32_t> StableSortPermutation(size_t n, Less&& less,
                                            util::ThreadPool* pool = nullptr,
                                            uint64_t morsel_size = 1024) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), uint32_t{0});
  morsel_size = std::max<uint64_t>(1, morsel_size);
  if (pool == nullptr || n <= morsel_size) {
    std::stable_sort(order.begin(), order.end(), less);
    return order;
  }

  // Index tie-break => strict total order => sortedness has a unique
  // witness, shared with the serial stable sort above.
  auto strict = [&less](uint32_t a, uint32_t b) {
    if (less(a, b)) return true;
    if (less(b, a)) return false;
    return a < b;
  };

  // Phase 1: sort each morsel-sized run on the pool (one run = one
  // scheduling unit; runs are disjoint index ranges of `order`).
  std::vector<size_t> bounds = internal::InitialRunBounds(n, morsel_size);
  pool->ParallelFor(
      0, bounds.size() - 1,
      [&](uint64_t lo, uint64_t hi) {
        for (uint64_t run = lo; run < hi; ++run) {
          std::sort(order.begin() + static_cast<ptrdiff_t>(bounds[run]),
                    order.begin() + static_cast<ptrdiff_t>(bounds[run + 1]),
                    strict);
        }
      },
      /*chunk=*/1);

  // Phase 2: pairwise merge rounds in slice order, ping-ponging between
  // two buffers. Each merge touches one disjoint output range, so rounds
  // parallelize over the pairs.
  std::vector<uint32_t> other(n);
  std::vector<uint32_t>* src = &order;
  std::vector<uint32_t>* dst = &other;
  while (bounds.size() > 2) {
    const size_t num_pairs = (bounds.size() - 1) / 2;
    pool->ParallelFor(
        0, num_pairs,
        [&](uint64_t lo, uint64_t hi) {
          for (uint64_t p = lo; p < hi; ++p) {
            size_t a = bounds[2 * p], mid = bounds[2 * p + 1],
                   b = bounds[2 * p + 2];
            std::merge(src->begin() + static_cast<ptrdiff_t>(a),
                       src->begin() + static_cast<ptrdiff_t>(mid),
                       src->begin() + static_cast<ptrdiff_t>(mid),
                       src->begin() + static_cast<ptrdiff_t>(b),
                       dst->begin() + static_cast<ptrdiff_t>(a), strict);
          }
        },
        /*chunk=*/1);
    if ((bounds.size() - 1) % 2 != 0) {  // odd trailing run: carry over
      size_t a = bounds[bounds.size() - 2], b = bounds.back();
      std::copy(src->begin() + static_cast<ptrdiff_t>(a),
                src->begin() + static_cast<ptrdiff_t>(b),
                dst->begin() + static_cast<ptrdiff_t>(a));
    }
    bounds = internal::NextRoundBounds(bounds, n);
    std::swap(src, dst);
  }
  if (src != &order) order = std::move(*src);
  return order;
}

}  // namespace rdfparams::engine

#endif  // RDFPARAMS_ENGINE_PARALLEL_SORT_H_

#include "core/plan_classifier.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "optimizer/cardinality_cache.h"
#include "util/thread_pool.h"

namespace rdfparams::core {

int64_t CostBucket(double cout, double log2_width) {
  if (log2_width <= 0 || !std::isfinite(log2_width)) return 0;
  // C_out of 0 (e.g. plans whose joins are all empty) gets its own bucket.
  if (cout <= 0) return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(std::floor(std::log2(cout) / log2_width));
}

Result<Classification> ClassifyParameters(const sparql::QueryTemplate& tmpl,
                                          const ParameterDomain& domain,
                                          const rdf::TripleStore& store,
                                          const rdf::Dictionary& dict,
                                          const ClassifyOptions& options) {
  RDFPARAMS_RETURN_NOT_OK(domain.Validate(tmpl));
  std::vector<sparql::ParameterBinding> candidates =
      domain.Enumerate(options.max_candidates);
  if (candidates.empty()) {
    return Status::InvalidArgument("parameter domain is empty");
  }

  struct Key {
    std::string fingerprint;
    int64_t bucket;
    bool operator<(const Key& other) const {
      if (fingerprint != other.fingerprint)
        return fingerprint < other.fingerprint;
      return bucket < other.bucket;
    }
  };
  struct Entry {
    std::vector<size_t> member_idx;
    std::vector<double> couts;
  };

  // Stage 1 — run the C_out-optimal join-ordering DP once per candidate.
  // This is the hot loop of the whole pipeline: candidates are partitioned
  // across workers (each Optimize() call builds its own optimizer state)
  // over a shared read-mostly cardinality cache. Results land in
  // per-candidate slots, so the outcome does not depend on scheduling.
  const size_t n = candidates.size();
  std::vector<double> all_couts(n, 0.0);
  std::vector<std::string> fingerprints(n);
  std::vector<Status> failures(n);

  opt::CardinalityCache local_cache;
  opt::OptimizeOptions optimizer_options = options.optimizer;
  if (optimizer_options.cardinality_cache == nullptr) {
    optimizer_options.cardinality_cache = &local_cache;
  }

  size_t threads = util::ThreadPool::ResolveThreads(options.threads);
  util::ThreadPool pool(threads - 1);
  util::FirstFailureTracker tracker(n);
  pool.ParallelFor(0, n, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      if (tracker.ShouldSkip(i)) continue;
      auto bound = tmpl.Bind(candidates[i], dict);
      if (!bound.ok()) {
        failures[i] = bound.status();
        tracker.Record(i);
        continue;
      }
      auto plan = opt::Optimize(*bound, store, dict, optimizer_options);
      if (!plan.ok()) {
        failures[i] = plan.status();
        tracker.Record(i);
        continue;
      }
      all_couts[i] = plan->est_cout;
      fingerprints[i] = std::move(plan->fingerprint);
    }
  });
  // First failure in enumeration order, so errors are deterministic too.
  if (tracker.any()) return failures[tracker.first()];

  // Stage 2 — serial merge in enumeration order: byte-identical for every
  // thread count.
  std::map<Key, Entry> buckets;
  std::vector<Key> candidate_key(n);
  for (size_t i = 0; i < n; ++i) {
    Key key{fingerprints[i],
            CostBucket(all_couts[i], options.cost_bucket_log2_width)};
    Entry& e = buckets[key];
    e.member_idx.push_back(i);
    e.couts.push_back(all_couts[i]);
    candidate_key[i] = key;
  }

  Classification out;
  out.num_candidates = candidates.size();
  out.class_of_candidate.assign(candidates.size(), 0);

  // Build classes, largest first (deterministic tie-break on the key).
  std::vector<std::pair<Key, Entry*>> ordered;
  ordered.reserve(buckets.size());
  for (auto& [key, entry] : buckets) ordered.push_back({key, &entry});
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second->member_idx.size() != b.second->member_idx.size())
                return a.second->member_idx.size() >
                       b.second->member_idx.size();
              return a.first < b.first;
            });

  std::map<Key, uint32_t> class_index;
  for (const auto& [key, entry] : ordered) {
    PlanClass cls;
    cls.fingerprint = key.fingerprint;
    cls.cost_bucket = key.bucket;
    cls.min_cout = *std::min_element(entry->couts.begin(), entry->couts.end());
    cls.max_cout = *std::max_element(entry->couts.begin(), entry->couts.end());
    cls.fraction = static_cast<double>(entry->member_idx.size()) /
                   static_cast<double>(candidates.size());
    for (size_t idx : entry->member_idx) {
      cls.members.push_back(candidates[idx]);
    }
    // Median-cost member as the representative.
    std::vector<size_t> by_cost(entry->member_idx.size());
    for (size_t k = 0; k < by_cost.size(); ++k) by_cost[k] = k;
    std::sort(by_cost.begin(), by_cost.end(), [&](size_t a, size_t b) {
      return entry->couts[a] < entry->couts[b];
    });
    cls.representative = cls.members[by_cost[by_cost.size() / 2]];
    class_index[key] = static_cast<uint32_t>(out.classes.size());
    out.classes.push_back(std::move(cls));
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    out.class_of_candidate[i] = class_index[candidate_key[i]];
  }
  return out;
}

std::vector<sparql::ParameterBinding> SampleFromClass(const PlanClass& cls,
                                                      size_t n,
                                                      util::Rng* rng) {
  std::vector<sparql::ParameterBinding> out;
  out.reserve(n);
  if (cls.members.empty()) return out;
  if (cls.members.size() >= n) {
    std::vector<size_t> idx = rng->SampleWithoutReplacement(
        cls.members.size(), n);
    for (size_t i : idx) out.push_back(cls.members[i]);
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        cls.members[static_cast<size_t>(rng->Uniform(cls.members.size()))]);
  }
  return out;
}

}  // namespace rdfparams::core

#include "core/plan_classifier.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "core/classification_session.h"
#include "optimizer/cardinality_cache.h"
#include "util/thread_pool.h"

namespace rdfparams::core {

int64_t CostBucket(double cout, double log2_width) {
  if (log2_width <= 0 || !std::isfinite(log2_width)) return 0;
  // C_out of 0 (e.g. plans whose joins are all empty) gets its own bucket;
  // NaN (no meaningful cost) lands there too rather than in UB.
  if (!(cout > 0)) return std::numeric_limits<int64_t>::min();
  // +infinity (overflowed cross-product estimates) caps at the top bucket
  // instead of an undefined float->int conversion.
  if (!std::isfinite(cout)) return std::numeric_limits<int64_t>::max();
  // A tiny width can push the quotient past the int64 range (e.g.
  // --bucket_width=1e-18); clamp before the cast, which would otherwise be
  // UB. The bottom clamp stays one above the cout<=0 sentinel so extreme
  // real costs can never alias it.
  const double bucket = std::floor(std::log2(cout) / log2_width);
  if (bucket >=
      static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  if (bucket <=
      static_cast<double>(std::numeric_limits<int64_t>::min())) {
    return std::numeric_limits<int64_t>::min() + 1;
  }
  return static_cast<int64_t>(bucket);
}

double ClassifyStats::CacheHitRate() const {
  const uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits) /
                          static_cast<double>(total);
}

Classification BuildClassification(
    const std::vector<sparql::ParameterBinding>& candidates,
    const std::vector<double>& couts,
    const std::vector<uint32_t>& fingerprint_ids,
    const std::vector<std::string>& fingerprints,
    double cost_bucket_log2_width) {
  struct Key {
    uint32_t fp;  // index into `fingerprints`; equal ids iff equal strings
    int64_t bucket;
    bool operator<(const Key& other) const {
      if (fp != other.fp) return fp < other.fp;
      return bucket < other.bucket;
    }
  };
  struct Entry {
    std::vector<size_t> member_idx;
    std::vector<double> couts;
  };

  // Serial merge in enumeration order: byte-identical for every thread
  // count. Interned ids make this pure integer work — no fingerprint
  // copies, no string comparisons in the map.
  const size_t n = candidates.size();
  std::map<Key, Entry> buckets;
  std::vector<Key> candidate_key(n);
  for (size_t i = 0; i < n; ++i) {
    Key key{fingerprint_ids[i], CostBucket(couts[i], cost_bucket_log2_width)};
    Entry& e = buckets[key];
    e.member_idx.push_back(i);
    e.couts.push_back(couts[i]);
    candidate_key[i] = key;
  }

  Classification out;
  out.num_candidates = n;
  out.class_of_candidate.assign(n, 0);

  // Build classes, largest first. The tie-break compares the fingerprint
  // *strings* (not the intern ids, whose order is an implementation
  // detail), so the class order matches grouping on raw strings exactly.
  std::vector<std::pair<Key, Entry*>> ordered;
  ordered.reserve(buckets.size());
  for (auto& [key, entry] : buckets) ordered.push_back({key, &entry});
  std::sort(ordered.begin(), ordered.end(),
            [&](const auto& a, const auto& b) {
              if (a.second->member_idx.size() != b.second->member_idx.size())
                return a.second->member_idx.size() >
                       b.second->member_idx.size();
              const std::string& fa = fingerprints[a.first.fp];
              const std::string& fb = fingerprints[b.first.fp];
              if (fa != fb) return fa < fb;
              return a.first.bucket < b.first.bucket;
            });

  std::map<Key, uint32_t> class_index;
  for (const auto& [key, entry] : ordered) {
    PlanClass cls;
    cls.fingerprint = fingerprints[key.fp];
    cls.cost_bucket = key.bucket;
    cls.min_cout = *std::min_element(entry->couts.begin(), entry->couts.end());
    cls.max_cout = *std::max_element(entry->couts.begin(), entry->couts.end());
    cls.fraction = static_cast<double>(entry->member_idx.size()) /
                   static_cast<double>(n);
    for (size_t idx : entry->member_idx) {
      cls.members.push_back(candidates[idx]);
    }
    // Median-cost member as the representative.
    std::vector<size_t> by_cost(entry->member_idx.size());
    for (size_t k = 0; k < by_cost.size(); ++k) by_cost[k] = k;
    std::sort(by_cost.begin(), by_cost.end(), [&](size_t a, size_t b) {
      return entry->couts[a] < entry->couts[b];
    });
    cls.representative = cls.members[by_cost[by_cost.size() / 2]];
    class_index[key] = static_cast<uint32_t>(out.classes.size());
    out.classes.push_back(std::move(cls));
  }
  for (size_t i = 0; i < n; ++i) {
    out.class_of_candidate[i] = class_index[candidate_key[i]];
  }
  return out;
}

namespace {

/// Reference stage 1: one full join-ordering DP per candidate. Kept
/// verbatim as the differential baseline for the batched path.
Result<Classification> ClassifyPerCandidate(const sparql::QueryTemplate& tmpl,
                                            const ParameterDomain& domain,
                                            const rdf::TripleStore& store,
                                            const rdf::Dictionary& dict,
                                            const ClassifyOptions& options) {
  // Reset up front so even the early-validation exits leave zeroed stats
  // (matching the session's behavior) instead of a stale earlier call's.
  if (options.stats != nullptr) *options.stats = ClassifyStats{};
  RDFPARAMS_RETURN_NOT_OK(domain.Validate(tmpl));
  std::vector<sparql::ParameterBinding> candidates =
      domain.Enumerate(options.max_candidates);
  if (candidates.empty()) {
    return Status::InvalidArgument("parameter domain is empty");
  }

  // Stage 1 — run the C_out-optimal join-ordering DP once per candidate.
  // Candidates are partitioned across workers (each Optimize() call builds
  // its own optimizer state) over a shared read-mostly cardinality cache.
  // Results land in per-candidate slots, so the outcome does not depend on
  // scheduling.
  const size_t n = candidates.size();
  std::vector<double> all_couts(n, 0.0);
  std::vector<std::string> raw_fingerprints(n);
  std::vector<Status> failures(n);

  opt::CardinalityCache local_cache;
  opt::OptimizeOptions optimizer_options = options.optimizer;
  if (optimizer_options.cardinality_cache == nullptr) {
    optimizer_options.cardinality_cache = &local_cache;
  }
  const opt::CardinalityCache* cache = optimizer_options.cardinality_cache;
  const uint64_t cache_hits_before = cache->hits();
  const uint64_t cache_misses_before = cache->misses();

  size_t threads = util::ThreadPool::ResolveThreads(options.threads);
  util::ThreadPool pool(threads - 1);
  util::FirstFailureTracker tracker(n);
  // DP invocations actually made: n on success; on failure the workers
  // skip past the first recorded error, so the count is what truly ran.
  std::atomic<uint64_t> dp_attempts{0};
  pool.ParallelFor(0, n, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      if (tracker.ShouldSkip(i)) continue;
      auto bound = tmpl.Bind(candidates[i], dict);
      if (!bound.ok()) {
        failures[i] = bound.status();
        tracker.Record(i);
        continue;
      }
      dp_attempts.fetch_add(1, std::memory_order_relaxed);
      auto plan = opt::Optimize(*bound, store, dict, optimizer_options);
      if (!plan.ok()) {
        failures[i] = plan.status();
        tracker.Record(i);
        continue;
      }
      all_couts[i] = plan->est_cout;
      raw_fingerprints[i] = std::move(plan->fingerprint);
    }
  });
  // Stats sync on every exit, like the batched path: a failed call still
  // reports the candidates and cache traffic of the attempt.
  if (options.stats != nullptr) {
    ClassifyStats stats;
    stats.num_candidates = n;
    stats.dp_runs = dp_attempts.load(std::memory_order_relaxed);
    stats.cache_hits = cache->hits() - cache_hits_before;
    stats.cache_misses = cache->misses() - cache_misses_before;
    *options.stats = stats;
  }
  // First failure in enumeration order, so errors are deterministic too.
  if (tracker.any()) return failures[tracker.first()];

  // Intern fingerprints (serial, enumeration order) so the grouping stage
  // works on ids instead of copying strings per candidate.
  std::vector<std::string> fingerprints;
  std::map<std::string, uint32_t> fingerprint_ids;
  std::vector<uint32_t> candidate_fp(n);
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] = fingerprint_ids.emplace(
        std::move(raw_fingerprints[i]),
        static_cast<uint32_t>(fingerprints.size()));
    if (inserted) fingerprints.push_back(it->first);
    candidate_fp[i] = it->second;
  }

  return BuildClassification(candidates, all_couts, candidate_fp,
                             fingerprints, options.cost_bucket_log2_width);
}

}  // namespace

Result<Classification> ClassifyParameters(const sparql::QueryTemplate& tmpl,
                                          const ParameterDomain& domain,
                                          const rdf::TripleStore& store,
                                          const rdf::Dictionary& dict,
                                          const ClassifyOptions& options) {
  if (options.strategy == ClassifyStrategy::kBatched) {
    // The batched pipeline is the single-call case of a session: prefill
    // the cache, dedup by signature, run the DP once per distinct input.
    ClassificationSession session(tmpl, store, dict, options);
    return session.Classify(domain, options.max_candidates);
  }
  return ClassifyPerCandidate(tmpl, domain, store, dict, options);
}

std::vector<sparql::ParameterBinding> SampleFromClass(const PlanClass& cls,
                                                      size_t n,
                                                      util::Rng* rng) {
  std::vector<sparql::ParameterBinding> out;
  out.reserve(n);
  if (cls.members.empty()) return out;
  if (cls.members.size() >= n) {
    std::vector<size_t> idx = rng->SampleWithoutReplacement(
        cls.members.size(), n);
    for (size_t i : idx) out.push_back(cls.members[i]);
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        cls.members[static_cast<size_t>(rng->Uniform(cls.members.size()))]);
  }
  return out;
}

}  // namespace rdfparams::core

#include "core/parameter_domain.h"

#include <algorithm>
#include <set>

namespace rdfparams::core {

void ParameterDomain::AddSingle(std::string name,
                                std::vector<rdf::TermId> values) {
  Group g;
  g.names.push_back(std::move(name));
  g.tuples.reserve(values.size());
  for (rdf::TermId v : values) g.tuples.push_back({v});
  groups_.push_back(std::move(g));
}

void ParameterDomain::AddTuples(std::vector<std::string> names,
                                std::vector<std::vector<rdf::TermId>> tuples) {
  Group g;
  g.names = std::move(names);
  g.tuples = std::move(tuples);
#ifndef NDEBUG
  for (const auto& t : g.tuples) {
    RDFPARAMS_DCHECK(t.size() == g.names.size());
  }
#endif
  groups_.push_back(std::move(g));
}

Status ParameterDomain::Validate(const sparql::QueryTemplate& tmpl) const {
  std::vector<std::string> flat;
  for (const Group& g : groups_) {
    if (g.tuples.empty()) {
      return Status::InvalidArgument("empty domain group");
    }
    for (const std::string& n : g.names) flat.push_back(n);
  }
  if (flat != tmpl.parameter_names()) {
    std::string got, want;
    for (const auto& n : flat) got += "%" + n + " ";
    for (const auto& n : tmpl.parameter_names()) want += "%" + n + " ";
    return Status::InvalidArgument("domain parameters [" + got +
                                   "] do not match template [" + want + "]");
  }
  return Status::OK();
}

uint64_t ParameterDomain::NumCombinations() const {
  if (groups_.empty()) return 0;
  uint64_t total = 1;
  for (const Group& g : groups_) {
    if (g.tuples.empty()) return 0;
    // Saturating multiply.
    uint64_t size = g.tuples.size();
    if (total > ~uint64_t{0} / size) return ~uint64_t{0};
    total *= size;
  }
  return total;
}

sparql::ParameterBinding ParameterDomain::At(uint64_t index) const {
  sparql::ParameterBinding b;
  for (const Group& g : groups_) {
    uint64_t size = g.tuples.size();
    const std::vector<rdf::TermId>& tuple =
        g.tuples[static_cast<size_t>(index % size)];
    index /= size;
    b.values.insert(b.values.end(), tuple.begin(), tuple.end());
  }
  return b;
}

sparql::ParameterBinding ParameterDomain::Sample(util::Rng* rng) const {
  sparql::ParameterBinding b;
  for (const Group& g : groups_) {
    const std::vector<rdf::TermId>& tuple =
        g.tuples[static_cast<size_t>(rng->Uniform(g.tuples.size()))];
    b.values.insert(b.values.end(), tuple.begin(), tuple.end());
  }
  return b;
}

std::vector<sparql::ParameterBinding> ParameterDomain::SampleN(
    util::Rng* rng, size_t n, bool distinct) const {
  std::vector<sparql::ParameterBinding> out;
  out.reserve(n);
  uint64_t total = NumCombinations();
  if (!distinct || total < n * 2) {
    // Plain i.i.d. sampling (also used when distinctness is infeasible).
    for (size_t i = 0; i < n; ++i) out.push_back(Sample(rng));
    return out;
  }
  std::set<sparql::ParameterBinding> seen;
  size_t attempts = 0;
  while (out.size() < n && attempts < n * 50) {
    sparql::ParameterBinding b = Sample(rng);
    if (seen.insert(b).second) out.push_back(std::move(b));
    ++attempts;
  }
  while (out.size() < n) out.push_back(Sample(rng));  // degenerate fallback
  return out;
}

std::vector<sparql::ParameterBinding> ParameterDomain::Enumerate(
    uint64_t max) const {
  std::vector<sparql::ParameterBinding> out;
  uint64_t total = NumCombinations();
  if (total == 0 || max == 0) return out;
  if (total <= max) {
    out.reserve(static_cast<size_t>(total));
    for (uint64_t i = 0; i < total; ++i) out.push_back(At(i));
    return out;
  }
  // Uniformly spaced coverage (deterministic).
  out.reserve(static_cast<size_t>(max));
  for (uint64_t k = 0; k < max; ++k) {
    uint64_t idx = static_cast<uint64_t>(
        (static_cast<__uint128_t>(k) * total) / max);
    out.push_back(At(idx));
  }
  return out;
}

}  // namespace rdfparams::core

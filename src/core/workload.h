// Workload runner: executes a query template over a set of parameter
// bindings and records, per binding, the wall time, the observed C_out
// (summed join-output sizes) and the optimizer's estimates — everything
// the paper's E1-E4 measurements and the Section III correlation need.
#ifndef RDFPARAMS_CORE_WORKLOAD_H_
#define RDFPARAMS_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "engine/executor.h"
#include "core/parameter_domain.h"
#include "sparql/query_template.h"
#include "stats/descriptive.h"
#include "util/status.h"

namespace rdfparams::core {

/// Measurement for one parameter binding.
struct RunObservation {
  sparql::ParameterBinding binding;
  double seconds = 0;
  uint64_t observed_cout = 0;   ///< summed join output sizes
  double est_cout = 0;          ///< optimizer's C_out of the chosen plan
  double est_cardinality = 0;
  std::string fingerprint;      ///< plan actually executed
  uint64_t result_rows = 0;
};

struct WorkloadOptions {
  /// Repetitions per binding; the *minimum* wall time is kept (standard
  /// benchmarking practice to suppress scheduler noise).
  int repetitions = 1;
  /// Worker threads for RunAll. 1 = serial, 0 = hardware concurrency.
  /// Every thread count yields identical observations except for the
  /// wall-clock `seconds` field, which is a measurement, not a value —
  /// it is non-deterministic even when run serially.
  int threads = 1;
  /// Intra-query parallelism for each individual execution (morsel scans,
  /// partitioned hash joins, the group-by slice-merge reduction, and the
  /// ORDER BY parallel merge sort — see docs/ARCHITECTURE.md). Orthogonal
  /// to `threads`: `threads` spreads bindings across workers,
  /// `exec.threads` spreads one query's own operator work. Both preserve
  /// byte-identical observations; when measuring runtimes for the paper's
  /// statistics, prefer one axis at a time so the per-query `seconds`
  /// stay comparable.
  engine::ExecOptions exec;
  opt::OptimizeOptions optimizer;
};

class WorkloadRunner {
 public:
  /// Mutable-dictionary mode: RunOnce executes with an Executor that may
  /// intern aggregate literals into `dict`.
  WorkloadRunner(const rdf::TripleStore& store, rdf::Dictionary* dict)
      : store_(store), mut_dict_(dict), dict_(dict) {}

  /// Read-only mode: the dictionary is never mutated; executors use
  /// private scratch overlays instead (see engine::Executor). Required
  /// for sharing one dictionary across RunAll worker threads, and
  /// sufficient for the paper's measurements, which never decode result
  /// tables.
  WorkloadRunner(const rdf::TripleStore& store, const rdf::Dictionary& dict)
      : store_(store), dict_(&dict) {}

  /// Optimizes + executes the template under one binding.
  [[nodiscard]] Result<RunObservation> RunOnce(const sparql::QueryTemplate& tmpl,
                                 const sparql::ParameterBinding& binding,
                                 const WorkloadOptions& options = {});

  /// Measures all bindings; observations come back in binding order
  /// regardless of options.threads. Worker executors never mutate the
  /// shared dictionary (per-worker scratch overlays absorb aggregate
  /// interning), so the parallel mode is safe in both constructor modes.
  [[nodiscard]] Result<std::vector<RunObservation>> RunAll(
      const sparql::QueryTemplate& tmpl,
      const std::vector<sparql::ParameterBinding>& bindings,
      const WorkloadOptions& options = {});

 private:
  /// Optimize + execute one binding through a caller-provided executor.
  [[nodiscard]] Result<RunObservation> RunWith(engine::Executor* exec,
                                 const sparql::QueryTemplate& tmpl,
                                 const sparql::ParameterBinding& binding,
                                 const WorkloadOptions& options);

  const rdf::TripleStore& store_;
  rdf::Dictionary* mut_dict_ = nullptr;  ///< null in read-only mode
  const rdf::Dictionary* dict_;
};

/// Extracts the per-binding runtimes (seconds).
std::vector<double> RuntimesOf(const std::vector<RunObservation>& obs);

/// Extracts the observed C_out values as doubles.
std::vector<double> ObservedCoutsOf(const std::vector<RunObservation>& obs);

/// Extracts the estimated C_out values.
std::vector<double> EstimatedCoutsOf(const std::vector<RunObservation>& obs);

/// Number of distinct plan fingerprints among the observations (property
/// P3: should be 1 within a well-formed parameter class).
size_t DistinctPlans(const std::vector<RunObservation>& obs);

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_WORKLOAD_H_

// Workload runner: executes a query template over a set of parameter
// bindings and records, per binding, the wall time, the observed C_out
// (summed join-output sizes) and the optimizer's estimates — everything
// the paper's E1-E4 measurements and the Section III correlation need.
#ifndef RDFPARAMS_CORE_WORKLOAD_H_
#define RDFPARAMS_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "engine/executor.h"
#include "core/parameter_domain.h"
#include "sparql/query_template.h"
#include "stats/descriptive.h"
#include "util/status.h"

namespace rdfparams::core {

/// Measurement for one parameter binding.
struct RunObservation {
  sparql::ParameterBinding binding;
  double seconds = 0;
  uint64_t observed_cout = 0;   ///< summed join output sizes
  double est_cout = 0;          ///< optimizer's C_out of the chosen plan
  double est_cardinality = 0;
  std::string fingerprint;      ///< plan actually executed
  uint64_t result_rows = 0;
};

struct WorkloadOptions {
  /// Repetitions per binding; the *minimum* wall time is kept (standard
  /// benchmarking practice to suppress scheduler noise).
  int repetitions = 1;
  opt::OptimizeOptions optimizer;
};

class WorkloadRunner {
 public:
  WorkloadRunner(const rdf::TripleStore& store, rdf::Dictionary* dict)
      : store_(store), dict_(dict) {}

  /// Optimizes + executes the template under one binding.
  Result<RunObservation> RunOnce(const sparql::QueryTemplate& tmpl,
                                 const sparql::ParameterBinding& binding,
                                 const WorkloadOptions& options = {});

  /// Runs all bindings in order.
  Result<std::vector<RunObservation>> RunAll(
      const sparql::QueryTemplate& tmpl,
      const std::vector<sparql::ParameterBinding>& bindings,
      const WorkloadOptions& options = {});

 private:
  const rdf::TripleStore& store_;
  rdf::Dictionary* dict_;
};

/// Extracts the per-binding runtimes (seconds).
std::vector<double> RuntimesOf(const std::vector<RunObservation>& obs);

/// Extracts the observed C_out values as doubles.
std::vector<double> ObservedCoutsOf(const std::vector<RunObservation>& obs);

/// Extracts the estimated C_out values.
std::vector<double> EstimatedCoutsOf(const std::vector<RunObservation>& obs);

/// Number of distinct plan fingerprints among the observations (property
/// P3: should be 1 within a well-formed parameter class).
size_t DistinctPlans(const std::vector<RunObservation>& obs);

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_WORKLOAD_H_

// "Step-shaped" parameter distributions — the related-work baseline the
// paper generalizes (Poess & Stephens: TPC-DS / MUDD parameter generation,
// refs [10] and [12]). The ordered domain is split into contiguous steps;
// each step carries a weight; sampling picks a step by weight and a value
// uniformly inside it. This can down-weight known-pathological regions
// (e.g. generic product types) but, unlike the paper's plan-class
// partition, it is oblivious to the optimizer: nothing guarantees one
// plan per step (condition (a)) — which is exactly the gap the paper
// points out. bench_paramgen compares the three samplers.
#ifndef RDFPARAMS_CORE_STEP_DISTRIBUTION_H_
#define RDFPARAMS_CORE_STEP_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "core/parameter_domain.h"
#include "util/rng.h"
#include "util/status.h"

namespace rdfparams::core {

/// Samples full bindings from a ParameterDomain with a step-shaped
/// marginal over the *combination index* (groups enumerated in mixed-radix
/// order, group 0 fastest).
class StepSampler {
 public:
  /// `step_weights[i]` is the probability mass of the i-th of k equal-width
  /// steps over [0, domain.NumCombinations()). Weights need not be
  /// normalized; all-equal weights reduce to uniform sampling.
  [[nodiscard]] static Result<StepSampler> Create(const ParameterDomain* domain,
                                    std::vector<double> step_weights);

  sparql::ParameterBinding Sample(util::Rng* rng) const;

  std::vector<sparql::ParameterBinding> SampleN(util::Rng* rng,
                                                size_t n) const;

  size_t num_steps() const { return weights_.size(); }

  /// [lo, hi) combination-index range of step i.
  std::pair<uint64_t, uint64_t> StepRange(size_t i) const;

 private:
  StepSampler(const ParameterDomain* domain, std::vector<double> weights);

  const ParameterDomain* domain_;
  std::vector<double> weights_;
  util::AliasTable alias_;
  uint64_t total_;
};

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_STEP_DISTRIBUTION_H_

#include "core/workload_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "rdf/ntriples.h"
#include "util/string_util.h"

namespace rdfparams::core {

Status WriteBindings(const sparql::QueryTemplate& tmpl,
                     const std::vector<sparql::ParameterBinding>& bindings,
                     const rdf::Dictionary& dict, std::ostream& os) {
  os << "# template: " << tmpl.name() << "\n";
  os << "# params:";
  for (const std::string& p : tmpl.parameter_names()) os << " " << p;
  os << "\n";
  for (const sparql::ParameterBinding& b : bindings) {
    if (b.values.size() != tmpl.arity()) {
      return Status::InvalidArgument(
          "binding arity " + std::to_string(b.values.size()) +
          " does not match template arity " + std::to_string(tmpl.arity()));
    }
    for (size_t i = 0; i < b.values.size(); ++i) {
      if (i > 0) os << "\t";
      os << dict.term(b.values[i]).ToNTriples();
    }
    os << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteBindingsFile(const sparql::QueryTemplate& tmpl,
                         const std::vector<sparql::ParameterBinding>& bindings,
                         const rdf::Dictionary& dict,
                         const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteBindings(tmpl, bindings, dict, out);
}

Result<std::vector<sparql::ParameterBinding>> ReadBindings(
    const sparql::QueryTemplate& tmpl, rdf::Dictionary* dict,
    std::istream& is) {
  std::vector<sparql::ParameterBinding> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      constexpr std::string_view kTemplateTag = "# template: ";
      if (util::StartsWith(trimmed, kTemplateTag)) {
        std::string_view name = trimmed.substr(kTemplateTag.size());
        if (name != tmpl.name()) {
          return Status::InvalidArgument(
              "bindings file is for template '" + std::string(name) +
              "', expected '" + tmpl.name() + "'");
        }
      }
      continue;
    }
    std::vector<std::string> fields = util::Split(trimmed, '\t');
    if (fields.size() != tmpl.arity()) {
      return Status::ParseError(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(tmpl.arity()) + " terms, got " +
          std::to_string(fields.size()));
    }
    sparql::ParameterBinding binding;
    binding.values.reserve(fields.size());
    for (const std::string& field : fields) {
      size_t pos = 0;
      auto term = rdf::ParseNTriplesTerm(util::Trim(field), &pos);
      if (!term.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  term.status().message());
      }
      binding.values.push_back(dict->Intern(*term));
    }
    out.push_back(std::move(binding));
  }
  return out;
}

Result<std::vector<sparql::ParameterBinding>> ReadBindingsFile(
    const sparql::QueryTemplate& tmpl, rdf::Dictionary* dict,
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadBindings(tmpl, dict, in);
}

}  // namespace rdfparams::core

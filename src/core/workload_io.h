// Serialization of parameter bindings — the artifact a benchmark's
// workload generator actually ships. Text format, one binding per line:
//
//   # template: BSBM-Q4
//   # params: ProductType
//   <http://.../ProductType17>
//   <http://.../ProductType3>
//
// Terms are encoded in N-Triples syntax, TAB-separated for multi-parameter
// templates. Lines starting with '#' are comments; the two header
// comments above are written by WriteBindings and validated (when
// present) by ReadBindings.
#ifndef RDFPARAMS_CORE_WORKLOAD_IO_H_
#define RDFPARAMS_CORE_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/query_template.h"
#include "util/status.h"

namespace rdfparams::core {

/// Writes bindings for `tmpl` to a stream.
[[nodiscard]] Status WriteBindings(const sparql::QueryTemplate& tmpl,
                     const std::vector<sparql::ParameterBinding>& bindings,
                     const rdf::Dictionary& dict, std::ostream& os);

/// Writes to a file (overwrites).
[[nodiscard]] Status WriteBindingsFile(const sparql::QueryTemplate& tmpl,
                         const std::vector<sparql::ParameterBinding>& bindings,
                         const rdf::Dictionary& dict,
                         const std::string& path);

/// Reads bindings; terms are interned into `dict`. If the stream carries a
/// "# template:" header naming a different template, reading fails.
[[nodiscard]] Result<std::vector<sparql::ParameterBinding>> ReadBindings(
    const sparql::QueryTemplate& tmpl, rdf::Dictionary* dict,
    std::istream& is);

[[nodiscard]] Result<std::vector<sparql::ParameterBinding>> ReadBindingsFile(
    const sparql::QueryTemplate& tmpl, rdf::Dictionary* dict,
    const std::string& path);

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_WORKLOAD_IO_H_

// Parameter domains: the set P = P1 x ... x Pn a workload generator draws
// bindings from. Parameters that are correlated by construction (e.g. the
// (countryX, countryY) pair of LDBC Q3) can be grouped so that their joint
// domain is an explicit tuple list instead of a cross product.
#ifndef RDFPARAMS_CORE_PARAMETER_DOMAIN_H_
#define RDFPARAMS_CORE_PARAMETER_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/query_template.h"
#include "util/rng.h"
#include "util/status.h"

namespace rdfparams::core {

/// The domain of a query template's parameters.
///
/// Built from groups; each group binds one or more parameters jointly.
/// Concatenated group parameter names must equal the template's
/// parameter_names() (validated by Validate()).
class ParameterDomain {
 public:
  /// Adds a group binding a single parameter to any of `values`.
  void AddSingle(std::string name, std::vector<rdf::TermId> values);

  /// Adds a group binding `names` jointly; every tuple must have
  /// names.size() values.
  void AddTuples(std::vector<std::string> names,
                 std::vector<std::vector<rdf::TermId>> tuples);

  /// Checks group/parameter alignment against the template.
  [[nodiscard]] Status Validate(const sparql::QueryTemplate& tmpl) const;

  /// Total number of distinct full bindings (product of group sizes).
  uint64_t NumCombinations() const;

  /// Decodes combination `index` (mixed radix over groups, group 0 runs
  /// fastest). index < NumCombinations().
  sparql::ParameterBinding At(uint64_t index) const;

  /// One uniform random full binding.
  sparql::ParameterBinding Sample(util::Rng* rng) const;

  /// n uniform bindings; when `distinct` is true and the domain is large
  /// enough, bindings are pairwise different.
  std::vector<sparql::ParameterBinding> SampleN(util::Rng* rng, size_t n,
                                                bool distinct = false) const;

  /// All combinations if there are at most `max`, else `max` uniformly
  /// spaced ones (deterministic coverage of the domain).
  std::vector<sparql::ParameterBinding> Enumerate(uint64_t max) const;

  size_t num_groups() const { return groups_.size(); }
  const std::vector<std::string>& group_names(size_t g) const {
    return groups_[g].names;
  }
  size_t group_size(size_t g) const { return groups_[g].tuples.size(); }

 private:
  struct Group {
    std::vector<std::string> names;
    std::vector<std::vector<rdf::TermId>> tuples;
  };
  std::vector<Group> groups_;
};

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_PARAMETER_DOMAIN_H_

// The paper's Section III problem, made executable:
//
//   PARAMETERS FOR RDF BENCHMARKS: split P into subsets S1..Sk such that
//   (a) every binding in Si yields the same C_out-optimal plan,
//   (b) the optimal plan's C_out is the same within Si,
//   (c) plans differ across classes.
//
// Finding the optimal plan per binding is itself NP-hard join ordering, so
// — exactly as the paper prescribes — we run the (exact, DP) optimizer per
// candidate binding and cluster the results. Condition (a) maps to equal
// plan fingerprints; condition (b), which cannot hold exactly over a
// continuous cost range, is relaxed to log-scale cost buckets of
// configurable width (an ablation knob); condition (c) holds by
// construction of the grouping key.
#ifndef RDFPARAMS_CORE_PLAN_CLASSIFIER_H_
#define RDFPARAMS_CORE_PLAN_CLASSIFIER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/parameter_domain.h"
#include "optimizer/optimizer.h"
#include "rdf/triple_store.h"
#include "sparql/query_template.h"
#include "util/status.h"

namespace rdfparams::core {

/// How stage 1 (one optimizer result per candidate) is computed. Both
/// strategies produce byte-identical classifications; kBatched is the
/// production path, kPerCandidate the differential reference.
enum class ClassifyStrategy : uint8_t {
  /// The paper's literal procedure: one full join-ordering DP per
  /// candidate binding.
  kPerCandidate = 0,
  /// Batch leaf counting (one index sweep per single-parameter pattern)
  /// + signature-deduped DP: candidates whose cardinality signatures —
  /// the bitwise image of every number the DP reads — are equal provably
  /// get the same plan, so the DP runs once per distinct signature. Cost
  /// becomes proportional to distinct optimizer inputs, not candidates.
  kBatched = 1,
};

/// Observability counters for one classification call (see the CLI's
/// `classify --stats`). All zero-initialized; a counter stays 0 when the
/// strategy or session feature it describes was not in play.
struct ClassifyStats {
  uint64_t num_candidates = 0;
  /// Distinct cardinality signatures among this call's candidates
  /// (kBatched only).
  uint64_t distinct_signatures = 0;
  /// Join-ordering DP invocations this call actually ran.
  uint64_t dp_runs = 0;
  /// Candidates classified without their own DP run (signature dedup +
  /// session reuse). On success, num_candidates == dp_runs + dp_runs_saved
  /// (a failed call reports only the runs actually attempted).
  uint64_t dp_runs_saved = 0;
  /// Leaf counts answered by CountPatternBatch index sweeps.
  uint64_t batched_counts = 0;
  /// Patterns the sweep could not batch (no parameter slot, several
  /// parameter occurrences, or a constant absent from the data) — explains
  /// a low batched_counts on multi-parameter templates.
  uint64_t unbatched_patterns = 0;
  /// ClassificationSession only: candidates answered from the binding
  /// memo of earlier calls.
  uint64_t reused_candidates = 0;
  /// ClassificationSession only: fresh bindings whose signature had
  /// already been optimized in an earlier call.
  uint64_t reused_signatures = 0;
  /// CardinalityCache hit/miss deltas over this call (0 if no cache).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  /// cache_hits / (cache_hits + cache_misses); 0 when no lookups.
  double CacheHitRate() const;
};

struct ClassifyOptions {
  /// Width of the log2(C_out) bucket implementing condition (b).
  /// +infinity (or <= 0) collapses to plan-fingerprint-only clustering.
  double cost_bucket_log2_width = 1.0;
  /// Candidates examined: Enumerate(max_candidates) over the domain.
  uint64_t max_candidates = 2000;
  /// Worker threads for the per-candidate optimizer runs. 1 = serial,
  /// 0 = hardware concurrency. The partition of candidates is merged in
  /// enumeration order, so the result is byte-identical for every thread
  /// count.
  int threads = 1;
  /// Stage-1 execution strategy (identical results either way).
  ClassifyStrategy strategy = ClassifyStrategy::kBatched;
  /// When non-null, filled with this call's statistics.
  ClassifyStats* stats = nullptr;
  /// Note: there is deliberately no engine::ExecOptions here —
  /// classification only runs the optimizer, never the executor, so
  /// intra-query execution knobs cannot affect it. The measurement stage
  /// (WorkloadOptions::exec) is where they apply.
  opt::OptimizeOptions optimizer;
};

/// One class Si of the partition.
struct PlanClass {
  std::string fingerprint;      ///< shared optimal plan (condition a)
  int64_t cost_bucket = 0;      ///< floor(log2(cost)/width) (condition b)
  double min_cout = 0;          ///< observed est. C_out range in the class
  double max_cout = 0;
  std::vector<sparql::ParameterBinding> members;
  /// A representative member (the one with median cost).
  sparql::ParameterBinding representative;

  /// Share of examined candidates falling into this class.
  double fraction = 0;
};

struct Classification {
  std::vector<PlanClass> classes;  ///< sorted by descending size
  uint64_t num_candidates = 0;
  /// Per-candidate (aligned with the enumeration order): class index.
  std::vector<uint32_t> class_of_candidate;
};

/// Runs the optimizer for every candidate binding and clusters by
/// (fingerprint, cost bucket). Deterministic.
[[nodiscard]] Result<Classification> ClassifyParameters(const sparql::QueryTemplate& tmpl,
                                          const ParameterDomain& domain,
                                          const rdf::TripleStore& store,
                                          const rdf::Dictionary& dict,
                                          const ClassifyOptions& options = {});

/// Stage 2, shared by every strategy and by ClassificationSession: groups
/// per-candidate optimizer results into plan classes. Fingerprints arrive
/// interned (`fingerprint_ids[i]` indexes `fingerprints`; equal ids iff
/// equal strings), so the grouping pass compares integers; the final
/// class order still tie-breaks on the fingerprint *strings*, keeping the
/// output byte-identical to grouping on raw strings. Deterministic.
Classification BuildClassification(
    const std::vector<sparql::ParameterBinding>& candidates,
    const std::vector<double>& couts,
    const std::vector<uint32_t>& fingerprint_ids,
    const std::vector<std::string>& fingerprints,
    double cost_bucket_log2_width);

/// Stratified sampling: n bindings drawn from one class (with replacement
/// if the class is smaller than n).
std::vector<sparql::ParameterBinding> SampleFromClass(const PlanClass& cls,
                                                      size_t n,
                                                      util::Rng* rng);

/// Cost bucket of a C_out value under the given log2 width. Total over
/// every double: width <= 0 / non-finite collapses to bucket 0; cout <= 0
/// or NaN gets the int64 min sentinel; cout = +infinity the int64 max.
int64_t CostBucket(double cout, double log2_width);

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_PLAN_CLASSIFIER_H_

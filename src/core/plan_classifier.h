// The paper's Section III problem, made executable:
//
//   PARAMETERS FOR RDF BENCHMARKS: split P into subsets S1..Sk such that
//   (a) every binding in Si yields the same C_out-optimal plan,
//   (b) the optimal plan's C_out is the same within Si,
//   (c) plans differ across classes.
//
// Finding the optimal plan per binding is itself NP-hard join ordering, so
// — exactly as the paper prescribes — we run the (exact, DP) optimizer per
// candidate binding and cluster the results. Condition (a) maps to equal
// plan fingerprints; condition (b), which cannot hold exactly over a
// continuous cost range, is relaxed to log-scale cost buckets of
// configurable width (an ablation knob); condition (c) holds by
// construction of the grouping key.
#ifndef RDFPARAMS_CORE_PLAN_CLASSIFIER_H_
#define RDFPARAMS_CORE_PLAN_CLASSIFIER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/parameter_domain.h"
#include "optimizer/optimizer.h"
#include "rdf/triple_store.h"
#include "sparql/query_template.h"
#include "util/status.h"

namespace rdfparams::core {

struct ClassifyOptions {
  /// Width of the log2(C_out) bucket implementing condition (b).
  /// +infinity (or <= 0) collapses to plan-fingerprint-only clustering.
  double cost_bucket_log2_width = 1.0;
  /// Candidates examined: Enumerate(max_candidates) over the domain.
  uint64_t max_candidates = 2000;
  /// Worker threads for the per-candidate optimizer runs. 1 = serial,
  /// 0 = hardware concurrency. The partition of candidates is merged in
  /// enumeration order, so the result is byte-identical for every thread
  /// count.
  int threads = 1;
  /// Note: there is deliberately no engine::ExecOptions here —
  /// classification only runs the optimizer, never the executor, so
  /// intra-query execution knobs cannot affect it. The measurement stage
  /// (WorkloadOptions::exec) is where they apply.
  opt::OptimizeOptions optimizer;
};

/// One class Si of the partition.
struct PlanClass {
  std::string fingerprint;      ///< shared optimal plan (condition a)
  int64_t cost_bucket = 0;      ///< floor(log2(cost)/width) (condition b)
  double min_cout = 0;          ///< observed est. C_out range in the class
  double max_cout = 0;
  std::vector<sparql::ParameterBinding> members;
  /// A representative member (the one with median cost).
  sparql::ParameterBinding representative;

  /// Share of examined candidates falling into this class.
  double fraction = 0;
};

struct Classification {
  std::vector<PlanClass> classes;  ///< sorted by descending size
  uint64_t num_candidates = 0;
  /// Per-candidate (aligned with the enumeration order): class index.
  std::vector<uint32_t> class_of_candidate;
};

/// Runs the optimizer for every candidate binding and clusters by
/// (fingerprint, cost bucket). Deterministic.
Result<Classification> ClassifyParameters(const sparql::QueryTemplate& tmpl,
                                          const ParameterDomain& domain,
                                          const rdf::TripleStore& store,
                                          const rdf::Dictionary& dict,
                                          const ClassifyOptions& options = {});

/// Stratified sampling: n bindings drawn from one class (with replacement
/// if the class is smaller than n).
std::vector<sparql::ParameterBinding> SampleFromClass(const PlanClass& cls,
                                                      size_t n,
                                                      util::Rng* rng);

/// Cost bucket of a C_out value under the given log2 width.
int64_t CostBucket(double cout, double log2_width);

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_PLAN_CLASSIFIER_H_

// Stability / representativeness analysis of workload measurements — the
// quantities the paper reports in E1-E4 and the P1-P3 properties the
// Section III clustering is supposed to restore.
#ifndef RDFPARAMS_CORE_ANALYSIS_H_
#define RDFPARAMS_CORE_ANALYSIS_H_

#include <string>
#include <vector>

#include "core/workload.h"
#include "stats/descriptive.h"
#include "stats/ks_test.h"

namespace rdfparams::core {

/// Aggregates of one parameter group (one "workload" of N bindings), the
/// rows of the paper's E2 table.
struct GroupAggregates {
  stats::Summary summary;
  double q10 = 0;
  double median = 0;
  double q90 = 0;
  double average = 0;
};

GroupAggregates AggregateGroup(const std::vector<double>& runtimes);

/// E2-style stability report over g independent groups.
struct StabilityReport {
  std::vector<GroupAggregates> groups;
  /// (max-min)/min across groups, per aggregate — the paper's "deviation
  /// in reported average runtime up to 40%".
  double average_spread = 0;
  double median_spread = 0;
  double q10_spread = 0;
  double q90_spread = 0;
  /// Largest two-sample KS distance between any two groups (property P2).
  double max_pairwise_ks = 0;
};

StabilityReport AnalyzeStability(
    const std::vector<std::vector<double>>& group_runtimes);

/// E3-style distribution shape report.
struct ShapeReport {
  stats::Summary summary;
  double mean_over_median = 0;      ///< >> 1 signals a heavy right mode
  double mid_mass_fraction = 0;     ///< ~0 signals a "clustered" bimodal dist
  stats::KsResult ks_vs_normal;     ///< E1: distance from fitted normal
};

ShapeReport AnalyzeShape(const std::vector<double>& runtimes);

/// Splits observations into g groups of equal size (truncating leftovers)
/// in order — used with independently sampled binding groups.
std::vector<std::vector<double>> SplitIntoGroups(
    const std::vector<double>& values, size_t g);

/// Property P1/P2/P3 check for a parameter class (paper Sec. III): runs
/// summary + plan uniqueness on per-class observations.
struct ClassQuality {
  size_t num_bindings = 0;
  size_t distinct_plans = 0;     ///< P3: should be 1
  double runtime_cv = 0;         ///< P1: coefficient of variation
  double cout_cv = 0;            ///< estimate spread within the class
  stats::Summary runtime_summary;
};

ClassQuality AnalyzeClass(const std::vector<RunObservation>& obs);

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_ANALYSIS_H_

// Incremental, signature-deduped parameter classification.
//
// A ClassificationSession answers repeated ClassifyParameters-style calls
// over one (template, store, dictionary) while persisting everything the
// expensive stage computed:
//
//   * a binding memo: candidate binding -> cardinality-signature id, so a
//     binding classified by an earlier call never re-enters the pipeline;
//   * a signature memo: signature -> {est_cout, fingerprint}, so a fresh
//     binding whose optimizer inputs were already seen skips the DP;
//   * the shared CardinalityCache (owned unless the options supply one),
//     so leaf counts and pair-join counts carry across calls.
//
// Growing the candidate budget (the ROADMAP's 2k -> 100k case) therefore
// only pays for the new suffix: ParameterDomain::Enumerate(100k) mostly
// re-produces bindings the 2k call already classified (always, once the
// budget covers the whole domain), and the new bindings collapse onto the
// signatures the skewed value distribution already exposed.
//
// Determinism contract: Classify(domain, k) is byte-identical — classes,
// fractions, representatives, class_of_candidate, and the first error in
// enumeration order — to a fresh ClassifyParameters call with the same
// options and budget, at every thread count, regardless of the session's
// history. The proof obligation is the signature property (equal
// signatures => equal Optimize() results; see optimizer/batch_cardinality.h)
// plus enumeration-order merges everywhere else.
//
// Sessions are single-caller objects (internal parallelism only); the
// referenced template/store/dictionary must outlive the session and stay
// frozen, exactly like the one-shot classifier's arguments.
#ifndef RDFPARAMS_CORE_CLASSIFICATION_SESSION_H_
#define RDFPARAMS_CORE_CLASSIFICATION_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/plan_classifier.h"
#include "optimizer/batch_cardinality.h"
#include "optimizer/cardinality_cache.h"

namespace rdfparams::core {

class ClassificationSession {
 public:
  /// `options.max_candidates` is ignored here; every Classify call passes
  /// its own budget. `options.optimizer.cardinality_cache`, when set,
  /// must outlive the session; otherwise the session owns one.
  ClassificationSession(const sparql::QueryTemplate& tmpl,
                        const rdf::TripleStore& store,
                        const rdf::Dictionary& dict,
                        const ClassifyOptions& options = {});

  ClassificationSession(const ClassificationSession&) = delete;
  ClassificationSession& operator=(const ClassificationSession&) = delete;

  /// Classifies domain.Enumerate(max_candidates). See the header comment
  /// for the reuse and determinism guarantees. On error the session state
  /// is unchanged (no partial memoization).
  [[nodiscard]] Result<Classification> Classify(const ParameterDomain& domain,
                                  uint64_t max_candidates);

  /// Statistics of the most recent Classify call (also copied to
  /// options.stats when that was set, on success and on error alike; a
  /// failed call reports the progress made up to the failure).
  const ClassifyStats& last_stats() const { return last_stats_; }

  /// Memoized bindings / distinct signatures accumulated so far.
  size_t memoized_bindings() const { return candidate_memo_.size(); }
  size_t memoized_signatures() const { return results_.size(); }

 private:
  /// Outcome of one DP run, shared by every binding with the signature.
  struct SignatureResult {
    double est_cout = 0;
    uint32_t fingerprint_id = 0;  // index into fingerprints_
  };

  uint32_t InternFingerprint(std::string fingerprint);

  const sparql::QueryTemplate& tmpl_;
  const rdf::TripleStore& store_;
  const rdf::Dictionary& dict_;
  ClassifyOptions options_;
  std::unique_ptr<opt::CardinalityCache> owned_cache_;
  opt::CardinalityCache* cache_;
  opt::BatchCardinality batch_;

  // Session memory. results_ is indexed by signature id; ids are dense
  // and append-only, so memo entries from earlier calls stay valid.
  std::map<sparql::ParameterBinding, uint32_t> candidate_memo_;
  std::map<opt::CardinalitySignature, uint32_t> signature_ids_;
  std::vector<SignatureResult> results_;
  std::vector<std::string> fingerprints_;
  std::map<std::string, uint32_t> fingerprint_ids_;
  ClassifyStats last_stats_;
};

}  // namespace rdfparams::core

#endif  // RDFPARAMS_CORE_CLASSIFICATION_SESSION_H_

#include "core/analysis.h"

#include <algorithm>

namespace rdfparams::core {

GroupAggregates AggregateGroup(const std::vector<double>& runtimes) {
  GroupAggregates g;
  g.summary = stats::Summarize(runtimes);
  g.q10 = g.summary.q10;
  g.median = g.summary.median;
  g.q90 = g.summary.q90;
  g.average = g.summary.mean;
  return g;
}

StabilityReport AnalyzeStability(
    const std::vector<std::vector<double>>& group_runtimes) {
  StabilityReport r;
  std::vector<double> avgs, medians, q10s, q90s;
  for (const std::vector<double>& g : group_runtimes) {
    GroupAggregates agg = AggregateGroup(g);
    avgs.push_back(agg.average);
    medians.push_back(agg.median);
    q10s.push_back(agg.q10);
    q90s.push_back(agg.q90);
    r.groups.push_back(std::move(agg));
  }
  r.average_spread = stats::RelativeSpread(avgs);
  r.median_spread = stats::RelativeSpread(medians);
  r.q10_spread = stats::RelativeSpread(q10s);
  r.q90_spread = stats::RelativeSpread(q90s);
  for (size_t i = 0; i < group_runtimes.size(); ++i) {
    for (size_t j = i + 1; j < group_runtimes.size(); ++j) {
      r.max_pairwise_ks =
          std::max(r.max_pairwise_ks,
                   stats::KsTwoSampleDistance(group_runtimes[i],
                                              group_runtimes[j]));
    }
  }
  return r;
}

ShapeReport AnalyzeShape(const std::vector<double>& runtimes) {
  ShapeReport r;
  r.summary = stats::Summarize(runtimes);
  r.mean_over_median =
      r.summary.median > 0 ? r.summary.mean / r.summary.median : 0;
  r.mid_mass_fraction = stats::MidRangeMassFraction(runtimes, 0.05, 0.95);
  r.ks_vs_normal = stats::KsTestAgainstFittedNormal(runtimes);
  return r;
}

std::vector<std::vector<double>> SplitIntoGroups(
    const std::vector<double>& values, size_t g) {
  std::vector<std::vector<double>> out;
  if (g == 0) return out;
  size_t per = values.size() / g;
  out.resize(g);
  for (size_t i = 0; i < g; ++i) {
    out[i].assign(values.begin() + static_cast<long>(i * per),
                  values.begin() + static_cast<long>((i + 1) * per));
  }
  return out;
}

ClassQuality AnalyzeClass(const std::vector<RunObservation>& obs) {
  ClassQuality q;
  q.num_bindings = obs.size();
  q.distinct_plans = DistinctPlans(obs);
  q.runtime_summary = stats::Summarize(RuntimesOf(obs));
  q.runtime_cv = q.runtime_summary.cv;
  stats::Summary cout_summary = stats::Summarize(EstimatedCoutsOf(obs));
  q.cout_cv = cout_summary.cv;
  return q;
}

}  // namespace rdfparams::core

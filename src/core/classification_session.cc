#include "core/classification_session.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "optimizer/optimizer.h"
#include "util/thread_pool.h"

namespace rdfparams::core {

ClassificationSession::ClassificationSession(const sparql::QueryTemplate& tmpl,
                                             const rdf::TripleStore& store,
                                             const rdf::Dictionary& dict,
                                             const ClassifyOptions& options)
    : tmpl_(tmpl),
      store_(store),
      dict_(dict),
      options_(options),
      owned_cache_(options.optimizer.cardinality_cache == nullptr
                       ? std::make_unique<opt::CardinalityCache>()
                       : nullptr),
      cache_(options.optimizer.cardinality_cache != nullptr
                 ? options.optimizer.cardinality_cache
                 : owned_cache_.get()),
      batch_(tmpl_, store_, dict_, cache_) {
  options_.optimizer.cardinality_cache = cache_;
}

uint32_t ClassificationSession::InternFingerprint(std::string fingerprint) {
  auto [it, inserted] = fingerprint_ids_.emplace(
      std::move(fingerprint), static_cast<uint32_t>(fingerprints_.size()));
  if (inserted) fingerprints_.push_back(it->first);
  return it->second;
}

Result<Classification> ClassificationSession::Classify(
    const ParameterDomain& domain, uint64_t max_candidates) {
  last_stats_ = ClassifyStats{};
  // Every exit syncs options_.stats with last_stats_, so an error call
  // reports the progress made up to the failure instead of leaving the
  // caller's struct stale from an earlier call.
  auto fail = [&](Status status) {
    if (options_.stats != nullptr) *options_.stats = last_stats_;
    return status;
  };
  if (Status st = domain.Validate(tmpl_); !st.ok()) return fail(std::move(st));
  std::vector<sparql::ParameterBinding> candidates =
      domain.Enumerate(max_candidates);
  if (candidates.empty()) {
    return fail(Status::InvalidArgument("parameter domain is empty"));
  }
  const size_t n = candidates.size();
  const uint64_t cache_hits_before = cache_->hits();
  const uint64_t cache_misses_before = cache_->misses();

  // Stage 0 — split candidates into memoized bindings and fresh ones.
  constexpr uint32_t kNoSignature = 0xFFFFFFFFu;
  std::vector<uint32_t> sig_of_candidate(n, kNoSignature);
  std::vector<size_t> fresh;  // candidate indices, ascending
  for (size_t i = 0; i < n; ++i) {
    auto it = candidate_memo_.find(candidates[i]);
    if (it != candidate_memo_.end()) {
      sig_of_candidate[i] = it->second;
    } else {
      fresh.push_back(i);
    }
  }
  last_stats_.num_candidates = n;
  last_stats_.reused_candidates = n - fresh.size();

  // Stage 1 — batch leaf counting: one co-sequential index sweep per
  // single-parameter pattern pre-fills the shared cache with every leaf
  // count the fresh candidates will need.
  if (!fresh.empty()) {
    opt::BatchPrefillStats prefill = batch_.PrefillLeafCounts(candidates, fresh);
    last_stats_.batched_counts = prefill.batched_counts;
    last_stats_.unbatched_patterns = prefill.unbatched_patterns;
  }

  const size_t threads = util::ThreadPool::ResolveThreads(options_.threads);
  util::ThreadPool pool(threads - 1);
  util::FirstFailureTracker tracker(n);
  std::vector<Status> failures(n);

  // Stage 2 — cardinality signatures for the fresh candidates. Workers
  // write to disjoint per-candidate slots; the shared cache is internally
  // synchronized; so the outcome is independent of scheduling.
  std::vector<opt::CardinalitySignature> fresh_sigs(fresh.size());
  std::vector<uint8_t> computed(fresh.size(), 0);
  pool.ParallelFor(0, fresh.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t k = lo; k < hi; ++k) {
      const size_t i = fresh[k];
      if (tracker.ShouldSkip(i)) continue;
      auto bound = tmpl_.Bind(candidates[i], dict_);
      if (!bound.ok()) {
        failures[i] = bound.status();
        tracker.Record(i);
        continue;
      }
      auto sig = batch_.Signature(*bound);
      if (!sig.ok()) {
        failures[i] = sig.status();
        tracker.Record(i);
        continue;
      }
      fresh_sigs[k] = std::move(sig).value();
      computed[k] = 1;
    }
  });

  // Stage 3 — serial merge in enumeration order: assign signature ids.
  // Fresh signatures already optimized by an earlier call reuse their
  // memoized result; genuinely new ones queue one DP run each, with the
  // lowest-index candidate as the group representative. Nothing is
  // committed to session state yet (errors must leave it untouched).
  struct PendingGroup {
    size_t representative;  // lowest candidate index with this signature
  };
  std::map<opt::CardinalitySignature, uint32_t> new_sig_ids;
  std::vector<PendingGroup> pending;
  for (size_t k = 0; k < fresh.size(); ++k) {
    if (!computed[k]) continue;  // skipped past the first failure
    const size_t i = fresh[k];
    uint32_t id;
    if (auto it = signature_ids_.find(fresh_sigs[k]);
        it != signature_ids_.end()) {
      id = it->second;
      ++last_stats_.reused_signatures;
    } else if (auto it2 = new_sig_ids.find(fresh_sigs[k]);
               it2 != new_sig_ids.end()) {
      id = it2->second;
    } else {
      id = static_cast<uint32_t>(results_.size() + pending.size());
      new_sig_ids.emplace(std::move(fresh_sigs[k]), id);
      pending.push_back(PendingGroup{i});
    }
    sig_of_candidate[i] = id;
  }

  // Stage 4 — one DP run per distinct new signature (parallel over
  // groups). The group's result is provably the result of every member
  // (see optimizer/batch_cardinality.h), and a failing group fails at its
  // representative — the lowest member index — which reproduces the
  // per-candidate path's first-failure-in-enumeration-order error.
  struct DpOutcome {
    double est_cout = 0;
    std::string fingerprint;
  };
  std::vector<DpOutcome> outcomes(pending.size());
  // Like the per-candidate path: count DP invocations actually made, so a
  // failed call's stats report attempts, not the queued group count.
  std::atomic<uint64_t> dp_attempts{0};
  pool.ParallelFor(0, pending.size(), [&](uint64_t lo, uint64_t hi) {
    for (uint64_t g = lo; g < hi; ++g) {
      const size_t rep = pending[g].representative;
      if (tracker.ShouldSkip(rep)) continue;
      auto bound = tmpl_.Bind(candidates[rep], dict_);
      if (!bound.ok()) {  // unreachable: stage 2 bound this candidate
        failures[rep] = bound.status();
        tracker.Record(rep);
        continue;
      }
      dp_attempts.fetch_add(1, std::memory_order_relaxed);
      auto plan = opt::Optimize(*bound, store_, dict_, options_.optimizer);
      if (!plan.ok()) {
        failures[rep] = plan.status();
        tracker.Record(rep);
        continue;
      }
      outcomes[g].est_cout = plan->est_cout;
      outcomes[g].fingerprint = std::move(plan->fingerprint);
    }
  });

  // Stats are settled before the error check so a failed call still
  // reports the work done: every signature computed, every DP attempted.
  // (kNoSignature entries only exist past the first failure.)
  {
    std::unordered_set<uint32_t> distinct;
    for (uint32_t sig : sig_of_candidate) {
      if (sig != kNoSignature) distinct.insert(sig);
    }
    last_stats_.distinct_signatures = distinct.size();
  }
  last_stats_.dp_runs = dp_attempts.load(std::memory_order_relaxed);
  last_stats_.dp_runs_saved = n - pending.size();
  last_stats_.cache_hits = cache_->hits() - cache_hits_before;
  last_stats_.cache_misses = cache_->misses() - cache_misses_before;
  if (tracker.any()) return fail(failures[tracker.first()]);

  // Stage 5 — success: commit to session state. Results append in group
  // order, matching the provisional ids handed out in stage 3.
  for (DpOutcome& outcome : outcomes) {
    results_.push_back(SignatureResult{
        outcome.est_cout, InternFingerprint(std::move(outcome.fingerprint))});
  }
  signature_ids_.merge(new_sig_ids);
  // Only fresh bindings need memoizing — the rest were answered *from* the
  // memo in stage 0, and emplace on a present key would still copy the
  // binding into a discarded map node (n copies of waste in the
  // mostly-reused steady state this session exists for).
  for (size_t i : fresh) {
    RDFPARAMS_DCHECK(sig_of_candidate[i] != kNoSignature);
    candidate_memo_.emplace(candidates[i], sig_of_candidate[i]);
  }

  // Stage 6 — per-candidate broadcast + the shared grouping stage.
  std::vector<double> couts(n);
  std::vector<uint32_t> fp_ids(n);
  for (size_t i = 0; i < n; ++i) {
    const SignatureResult& r = results_[sig_of_candidate[i]];
    couts[i] = r.est_cout;
    fp_ids[i] = r.fingerprint_id;
  }

  if (options_.stats != nullptr) *options_.stats = last_stats_;

  return BuildClassification(candidates, couts, fp_ids, fingerprints_,
                             options_.cost_bucket_log2_width);
}

}  // namespace rdfparams::core

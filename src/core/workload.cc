#include "core/workload.h"

#include <limits>
#include <set>

namespace rdfparams::core {

Result<RunObservation> WorkloadRunner::RunOnce(
    const sparql::QueryTemplate& tmpl,
    const sparql::ParameterBinding& binding, const WorkloadOptions& options) {
  RDFPARAMS_ASSIGN_OR_RETURN(sparql::SelectQuery q, tmpl.Bind(binding, *dict_));
  RDFPARAMS_ASSIGN_OR_RETURN(opt::OptimizedPlan plan,
                             opt::Optimize(q, store_, *dict_,
                                           options.optimizer));
  engine::Executor exec(store_, dict_);

  RunObservation obs;
  obs.binding = binding;
  obs.est_cout = plan.est_cout;
  obs.est_cardinality = plan.est_cardinality;
  obs.fingerprint = plan.fingerprint;
  obs.seconds = std::numeric_limits<double>::infinity();

  int reps = std::max(options.repetitions, 1);
  for (int r = 0; r < reps; ++r) {
    engine::ExecutionStats stats;
    RDFPARAMS_ASSIGN_OR_RETURN(engine::BindingTable result,
                               exec.Execute(q, *plan.root, &stats));
    obs.seconds = std::min(obs.seconds, stats.wall_seconds);
    obs.observed_cout = stats.intermediate_rows;
    obs.result_rows = stats.result_rows;
    (void)result;
  }
  return obs;
}

Result<std::vector<RunObservation>> WorkloadRunner::RunAll(
    const sparql::QueryTemplate& tmpl,
    const std::vector<sparql::ParameterBinding>& bindings,
    const WorkloadOptions& options) {
  std::vector<RunObservation> out;
  out.reserve(bindings.size());
  for (const sparql::ParameterBinding& b : bindings) {
    RDFPARAMS_ASSIGN_OR_RETURN(RunObservation obs,
                               RunOnce(tmpl, b, options));
    out.push_back(std::move(obs));
  }
  return out;
}

std::vector<double> RuntimesOf(const std::vector<RunObservation>& obs) {
  std::vector<double> out;
  out.reserve(obs.size());
  for (const RunObservation& o : obs) out.push_back(o.seconds);
  return out;
}

std::vector<double> ObservedCoutsOf(const std::vector<RunObservation>& obs) {
  std::vector<double> out;
  out.reserve(obs.size());
  for (const RunObservation& o : obs) {
    out.push_back(static_cast<double>(o.observed_cout));
  }
  return out;
}

std::vector<double> EstimatedCoutsOf(const std::vector<RunObservation>& obs) {
  std::vector<double> out;
  out.reserve(obs.size());
  for (const RunObservation& o : obs) out.push_back(o.est_cout);
  return out;
}

size_t DistinctPlans(const std::vector<RunObservation>& obs) {
  std::set<std::string> plans;
  for (const RunObservation& o : obs) plans.insert(o.fingerprint);
  return plans.size();
}

}  // namespace rdfparams::core

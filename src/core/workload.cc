#include "core/workload.h"

#include <atomic>
#include <limits>
#include <set>

#include "optimizer/cardinality_cache.h"
#include "util/thread_pool.h"

namespace rdfparams::core {

Result<RunObservation> WorkloadRunner::RunWith(
    engine::Executor* exec, const sparql::QueryTemplate& tmpl,
    const sparql::ParameterBinding& binding, const WorkloadOptions& options) {
  RDFPARAMS_ASSIGN_OR_RETURN(sparql::SelectQuery q, tmpl.Bind(binding, *dict_));
  RDFPARAMS_ASSIGN_OR_RETURN(opt::OptimizedPlan plan,
                             opt::Optimize(q, store_, *dict_,
                                           options.optimizer));

  RunObservation obs;
  obs.binding = binding;
  obs.est_cout = plan.est_cout;
  obs.est_cardinality = plan.est_cardinality;
  obs.fingerprint = plan.fingerprint;
  obs.seconds = std::numeric_limits<double>::infinity();

  int reps = std::max(options.repetitions, 1);
  for (int r = 0; r < reps; ++r) {
    engine::ExecutionStats stats;
    RDFPARAMS_ASSIGN_OR_RETURN(engine::BindingTable result,
                               exec->Execute(q, *plan.root, &stats,
                                             options.exec));
    obs.seconds = std::min(obs.seconds, stats.wall_seconds);
    obs.observed_cout = stats.intermediate_rows;
    obs.result_rows = stats.result_rows;
    (void)result;
  }
  return obs;
}

Result<RunObservation> WorkloadRunner::RunOnce(
    const sparql::QueryTemplate& tmpl,
    const sparql::ParameterBinding& binding, const WorkloadOptions& options) {
  if (mut_dict_ != nullptr) {
    engine::Executor exec(store_, mut_dict_);
    return RunWith(&exec, tmpl, binding, options);
  }
  engine::Executor exec(store_, *dict_);
  return RunWith(&exec, tmpl, binding, options);
}

Result<std::vector<RunObservation>> WorkloadRunner::RunAll(
    const sparql::QueryTemplate& tmpl,
    const std::vector<sparql::ParameterBinding>& bindings,
    const WorkloadOptions& options) {
  const size_t n = bindings.size();
  std::vector<RunObservation> out(n);
  std::vector<Status> failures(n);

  // Bindings of one template share most resolved patterns, so all workers
  // share one cardinality cache unless the caller brought their own.
  opt::CardinalityCache local_cache;
  WorkloadOptions run_options = options;
  if (run_options.optimizer.cardinality_cache == nullptr) {
    run_options.optimizer.cardinality_cache = &local_cache;
  }

  size_t threads = util::ThreadPool::ResolveThreads(options.threads);
  util::ThreadPool pool(threads - 1);
  util::FirstFailureTracker tracker(n);
  // Chunk size: dynamic by default; with intra-query parallelism on, each
  // chunk's executor lazily spins up its own inner worker pool (shared by
  // its morsel joins, group-by reduction, and parallel sort), so hand
  // every outer participant one contiguous chunk to create that pool once
  // per worker instead of once per chunk. (Results are slot-addressed and
  // thus independent of the chunking either way.)
  uint64_t chunk = 0;
  if (util::ThreadPool::ResolveThreads(options.exec.threads) > 1 && n > 0) {
    chunk = (n + threads - 1) / threads;
  }
  pool.ParallelFor(0, n, [&](uint64_t lo, uint64_t hi) {
    // Per-chunk executor state: a read-only view of the shared dictionary
    // plus a private scratch overlay for aggregate interning. The overlay
    // starts empty each chunk (cheap — a snapshot of the base size), which
    // keeps chunks fully independent of each other.
    engine::Executor exec(store_, *dict_);
    for (uint64_t i = lo; i < hi; ++i) {
      if (tracker.ShouldSkip(i)) continue;
      auto obs = RunWith(&exec, tmpl, bindings[i], run_options);
      if (obs.ok()) {
        out[i] = std::move(obs).value();
      } else {
        failures[i] = obs.status();
        tracker.Record(i);
      }
    }
  }, chunk);
  // Report the first failure in binding order (deterministic).
  if (tracker.any()) return failures[tracker.first()];
  return out;
}

std::vector<double> RuntimesOf(const std::vector<RunObservation>& obs) {
  std::vector<double> out;
  out.reserve(obs.size());
  for (const RunObservation& o : obs) out.push_back(o.seconds);
  return out;
}

std::vector<double> ObservedCoutsOf(const std::vector<RunObservation>& obs) {
  std::vector<double> out;
  out.reserve(obs.size());
  for (const RunObservation& o : obs) {
    out.push_back(static_cast<double>(o.observed_cout));
  }
  return out;
}

std::vector<double> EstimatedCoutsOf(const std::vector<RunObservation>& obs) {
  std::vector<double> out;
  out.reserve(obs.size());
  for (const RunObservation& o : obs) out.push_back(o.est_cout);
  return out;
}

size_t DistinctPlans(const std::vector<RunObservation>& obs) {
  std::set<std::string> plans;
  for (const RunObservation& o : obs) plans.insert(o.fingerprint);
  return plans.size();
}

}  // namespace rdfparams::core

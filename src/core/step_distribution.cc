#include "core/step_distribution.h"

namespace rdfparams::core {

StepSampler::StepSampler(const ParameterDomain* domain,
                         std::vector<double> weights)
    : domain_(domain),
      weights_(std::move(weights)),
      alias_(weights_),
      total_(domain->NumCombinations()) {}

Result<StepSampler> StepSampler::Create(const ParameterDomain* domain,
                                        std::vector<double> step_weights) {
  if (domain == nullptr || domain->NumCombinations() == 0) {
    return Status::InvalidArgument("step sampler needs a non-empty domain");
  }
  if (step_weights.empty()) {
    return Status::InvalidArgument("step sampler needs at least one step");
  }
  if (step_weights.size() > domain->NumCombinations()) {
    return Status::InvalidArgument(
        "more steps than domain combinations");
  }
  double total = 0;
  for (double w : step_weights) {
    if (w < 0) {
      return Status::InvalidArgument("step weights must be non-negative");
    }
    total += w;
  }
  if (total <= 0) {
    return Status::InvalidArgument("step weights must have positive sum");
  }
  return StepSampler(domain, std::move(step_weights));
}

std::pair<uint64_t, uint64_t> StepSampler::StepRange(size_t i) const {
  uint64_t k = weights_.size();
  uint64_t lo = total_ * i / k;
  uint64_t hi = total_ * (i + 1) / k;
  if (hi <= lo) hi = lo + 1;  // degenerate tiny domains
  return {lo, std::min(hi, total_)};
}

sparql::ParameterBinding StepSampler::Sample(util::Rng* rng) const {
  size_t step = alias_.Sample(rng);
  auto [lo, hi] = StepRange(step);
  uint64_t index = lo + rng->Uniform(hi - lo);
  return domain_->At(index);
}

std::vector<sparql::ParameterBinding> StepSampler::SampleN(util::Rng* rng,
                                                           size_t n) const {
  std::vector<sparql::ParameterBinding> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Sample(rng));
  return out;
}

}  // namespace rdfparams::core

#include "optimizer/plan.h"

#include "util/status.h"
#include "util/string_util.h"

namespace rdfparams::opt {

std::unique_ptr<PlanNode> PlanNode::MakeScan(size_t pattern_index,
                                             rdf::IndexOrder order) {
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kScan;
  node->pattern_index = pattern_index;
  node->index_order = order;
  node->pattern_set = uint64_t{1} << pattern_index;
  return node;
}

std::unique_ptr<PlanNode> PlanNode::MakeJoin(
    std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right,
    std::vector<std::string> join_vars) {
  RDFPARAMS_DCHECK(left && right);
  auto node = std::make_unique<PlanNode>();
  node->kind = Kind::kJoin;
  node->pattern_set = left->pattern_set | right->pattern_set;
  node->left = std::move(left);
  node->right = std::move(right);
  node->join_vars = std::move(join_vars);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->pattern_index = pattern_index;
  node->index_order = index_order;
  node->join_vars = join_vars;
  node->est_cardinality = est_cardinality;
  node->est_cout = est_cout;
  node->partition_hint = partition_hint;
  node->merge_join_hint = merge_join_hint;
  node->pattern_set = pattern_set;
  if (left) node->left = left->Clone();
  if (right) node->right = right->Clone();
  return node;
}

std::string PlanNode::Fingerprint() const {
  if (is_scan()) {
    return "S" + std::to_string(pattern_index);
  }
  return "J(" + left->Fingerprint() + "," + right->Fingerprint() + ")";
}

uint32_t HashJoinPartitionHint(double build_cardinality) {
  uint32_t p = 1;
  while (p < 64 && build_cardinality > 4096.0 * static_cast<double>(p)) {
    p *= 2;
  }
  return p;
}

bool MergeJoinHint(const PlanNode& join) {
  if (!join.is_join() || join.join_vars.size() != 1) return false;
  // Mirror ExecJoin's outer choice: the non-scan side drives the probe
  // loop (left when both inputs are scans, matching the right-first test).
  const PlanNode* outer = nullptr;
  if (join.right->is_scan()) {
    outer = join.left.get();
  } else if (join.left->is_scan()) {
    outer = join.right.get();
  }
  if (outer == nullptr) return false;  // hash join, no index to sweep
  return outer->est_cardinality >= kMergeJoinMinOuterRows;
}

size_t PlanNode::NumJoins() const {
  if (is_scan()) return 0;
  return 1 + left->NumJoins() + right->NumJoins();
}

void PlanNode::ExplainRec(const sparql::SelectQuery& query, int depth,
                          int exec_threads, std::string* out) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (is_scan()) {
    const sparql::TriplePattern& tp = query.patterns[pattern_index];
    out->append(util::StringPrintf(
        "IndexScan[%s] #%zu  %s  (est_card=%s)\n",
        rdf::IndexOrderName(index_order), pattern_index,
        tp.ToString().c_str(),
        util::FormatSig(est_cardinality, 3).c_str()));
    return;
  }
  std::string vars;
  for (size_t i = 0; i < join_vars.size(); ++i) {
    if (i > 0) vars += ",";
    vars += "?" + join_vars[i];
  }
  if (join_vars.empty()) vars = "<cross>";
  std::string parts;
  if (partition_hint > 1) {
    parts = util::StringPrintf(", partitions=%u", partition_hint);
  }
  // Index joins name the probe strategy the optimizer chose: a merge
  // sweep over the covering sorted index run vs per-row index probes
  // (the executor still falls back to probes when the outer key column
  // turns out unsorted at run time).
  if (left->is_scan() || right->is_scan()) {
    parts += merge_join_hint ? ", join=merge-sweep" : ", join=index-probe";
  }
  // Mirror the executor's operator choice (see engine::Executor::ExecJoin):
  // a scan input turns the join into an index nested-loop probe; otherwise
  // both sides materialize into a (possibly partitioned) hash join.
  std::string par;
  if (exec_threads > 1) {
    if (left->is_scan() || right->is_scan()) {
      par = ", par=morsel-probe";
    } else if (join_vars.empty()) {
      par = ", par=morsel-cross";
    } else {
      par = ", par=partitioned";
    }
  }
  out->append(util::StringPrintf(
      "HashJoin[%s]  (est_card=%s, cout=%s%s%s)\n", vars.c_str(),
      util::FormatSig(est_cardinality, 3).c_str(),
      util::FormatSig(est_cout, 3).c_str(), parts.c_str(), par.c_str()));
  left->ExplainRec(query, depth + 1, exec_threads, out);
  right->ExplainRec(query, depth + 1, exec_threads, out);
}

std::string PlanNode::Explain(const sparql::SelectQuery& query,
                              int exec_threads) const {
  std::string out;
  ExplainRec(query, 0, exec_threads, &out);
  // Solution-modifier operators are not plan nodes, but they are real
  // operators with real parallel strategies — show them so an EXPLAIN at
  // exec_threads > 1 names everything that will run on the pool.
  if (!query.aggregates.empty()) {
    out.append(util::StringPrintf(
        "GroupBy[%zu key(s), %zu aggregate(s)]  (%s)\n",
        query.group_by.size(), query.aggregates.size(),
        exec_threads > 1 ? "par=slice-merge, ascending-key emit"
                         : "slice-merge, ascending-key emit"));
  }
  if (!query.order_by.empty()) {
    out.append(util::StringPrintf(
        "OrderBy[%zu key(s)]  (%s)\n", query.order_by.size(),
        exec_threads > 1 ? "par=merge-sort, stable" : "stable sort"));
  }
  return out;
}

}  // namespace rdfparams::opt

#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

namespace rdfparams::opt {

namespace {

using sparql::SelectQuery;
using sparql::TriplePattern;

/// Picks the index whose sort prefix covers the bound slots of a pattern.
rdf::IndexOrder ChooseScanIndex(const TriplePattern& tp) {
  bool bs = tp.s.is_const();
  bool bp = tp.p.is_const();
  bool bo = tp.o.is_const();
  if (bs && bp) return rdf::IndexOrder::kSPO;
  if (bp && bo) return rdf::IndexOrder::kPOS;
  if (bo && bs) return rdf::IndexOrder::kOSP;
  if (bs) return rdf::IndexOrder::kSPO;
  if (bp) return rdf::IndexOrder::kPOS;
  if (bo) return rdf::IndexOrder::kOSP;
  return rdf::IndexOrder::kSPO;
}

/// A candidate subplan during enumeration.
struct Candidate {
  std::unique_ptr<PlanNode> plan;
  RelationInfo info;
  double cout = 0;
};

/// Smallest pattern index in a set (for deterministic tie-breaking).
int LowestBit(uint64_t mask) {
  return mask == 0 ? 64 : __builtin_ctzll(mask);
}

/// Canonical join: left (build) side is the smaller estimated input;
/// deterministic tie-break on the lowest covered pattern index.
std::unique_ptr<PlanNode> MakeCanonicalJoin(Candidate* a, Candidate* b,
                                            std::vector<std::string> vars) {
  bool a_left;
  if (a->info.cardinality != b->info.cardinality) {
    a_left = a->info.cardinality < b->info.cardinality;
  } else {
    a_left = LowestBit(a->plan->pattern_set) < LowestBit(b->plan->pattern_set);
  }
  auto left = a_left ? std::move(a->plan) : std::move(b->plan);
  auto right = a_left ? std::move(b->plan) : std::move(a->plan);
  return PlanNode::MakeJoin(std::move(left), std::move(right),
                            std::move(vars));
}

class DpOptimizer {
 public:
  DpOptimizer(const SelectQuery& query, const CardinalityEstimator& est,
              const OptimizeOptions& options)
      : query_(query), est_(est), options_(options) {}

  Result<OptimizedPlan> Run() {
    size_t n = query_.patterns.size();
    if (n == 0) return Status::InvalidArgument("query has no patterns");
    if (n > 63) return Status::Unsupported("more than 63 patterns");

    RDFPARAMS_RETURN_NOT_OK(PrepareLeaves());
    if (n == 1) return Finish(std::move(leaves_[0]));
    if (n > options_.dp_max_patterns) return RunGreedy();
    return RunDp();
  }

  Result<OptimizedPlan> RunGreedyPublic() {
    size_t n = query_.patterns.size();
    if (n == 0) return Status::InvalidArgument("query has no patterns");
    RDFPARAMS_RETURN_NOT_OK(PrepareLeaves());
    if (n == 1) return Finish(std::move(leaves_[0]));
    return RunGreedy();
  }

 private:
  Status PrepareLeaves() {
    size_t n = query_.patterns.size();
    leaves_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      RDFPARAMS_ASSIGN_OR_RETURN(RelationInfo info,
                                 est_.EstimatePattern(query_, i));
      Candidate c;
      c.plan = PlanNode::MakeScan(i, ChooseScanIndex(query_.patterns[i]));
      c.plan->est_cardinality = info.cardinality;
      c.plan->est_cout = 0;  // scans are free under C_out
      c.info = std::move(info);
      c.cout = 0;
      leaves_[i] = std::move(c);
    }
    return Status::OK();
  }

  /// Join estimate, with the exact pairwise count overriding the formula
  /// when both inputs are single scans (cached per pattern pair).
  RelationInfo JoinInfo(const Candidate& a, const Candidate& b) {
    RelationInfo joined = CardinalityEstimator::EstimateJoin(a.info, b.info);
    if (a.plan->is_scan() && b.plan->is_scan()) {
      size_t pi = a.plan->pattern_index;
      size_t pj = b.plan->pattern_index;
      auto key = std::make_pair(std::min(pi, pj), std::max(pi, pj));
      auto it = exact_cache_.find(key);
      if (it == exact_cache_.end()) {
        it = exact_cache_
                 .emplace(key, est_.ExactPairJoinCount(query_, pi, pj))
                 .first;
      }
      if (it->second.has_value()) {
        joined.cardinality = *it->second;
        for (auto& [var, d] : joined.var_distinct) {
          d = std::min(d, joined.cardinality);
          (void)var;
        }
      }
    }
    return joined;
  }

  /// Builds the join of two candidates, computing C_out.
  Candidate JoinCandidates(Candidate a, Candidate b) {
    std::vector<std::string> vars =
        CardinalityEstimator::SharedVars(a.info, b.info);
    RelationInfo joined = JoinInfo(a, b);
    Candidate out;
    out.cout = joined.cardinality + a.cout + b.cout;
    out.info = std::move(joined);
    out.plan = MakeCanonicalJoin(&a, &b, std::move(vars));
    out.plan->est_cardinality = out.info.cardinality;
    out.plan->est_cout = out.cout;
    out.plan->partition_hint =
        HashJoinPartitionHint(out.plan->left->est_cardinality);
    out.plan->merge_join_hint = MergeJoinHint(*out.plan);
    return out;
  }

  bool Connected(const RelationInfo& a, const RelationInfo& b) const {
    return !CardinalityEstimator::SharedVars(a, b).empty();
  }

  Result<OptimizedPlan> RunDp() {
    size_t n = query_.patterns.size();
    uint64_t full = (n == 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
    // best_[S] = optimal candidate covering pattern set S.
    best_.clear();
    for (size_t i = 0; i < n; ++i) {
      best_[uint64_t{1} << i] = std::move(leaves_[i]);
    }
    // Enumerate subsets in increasing size via counting; uint64 subset trick.
    std::vector<uint64_t> by_size;
    for (uint64_t s = 1; s <= full; ++s) {
      if (__builtin_popcountll(s) >= 2) by_size.push_back(s);
    }
    std::sort(by_size.begin(), by_size.end(), [](uint64_t a, uint64_t b) {
      int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
      return pa != pb ? pa < pb : a < b;
    });

    for (uint64_t s : by_size) {
      Candidate* best = nullptr;
      // Try connected splits first.
      for (int allow_cross = 0; allow_cross < 2; ++allow_cross) {
        if (allow_cross && (!options_.allow_cross_products ||
                            best_.count(s) != 0)) {
          break;
        }
        for (uint64_t sub = (s - 1) & s; sub != 0; sub = (sub - 1) & s) {
          uint64_t other = s ^ sub;
          if (sub > other) continue;  // unordered split: visit once
          auto it1 = best_.find(sub);
          auto it2 = best_.find(other);
          if (it1 == best_.end() || it2 == best_.end()) continue;
          bool connected = Connected(it1->second.info, it2->second.info);
          if (!connected && allow_cross == 0) continue;
          if (connected && allow_cross == 1) continue;  // already tried
          // Cheap pre-check before materializing the plan tree.
          RelationInfo info = JoinInfo(it1->second, it2->second);
          double cout = info.cardinality + it1->second.cout + it2->second.cout;
          auto cur = best_.find(s);
          if (cur != best_.end() && cout > cur->second.cout) continue;
          Candidate joined = JoinCandidates(CloneCandidate(it1->second),
                                            CloneCandidate(it2->second));
          cur = best_.find(s);  // JoinCandidates does not touch best_
          bool better =
              cur == best_.end() || joined.cout < cur->second.cout ||
              (joined.cout == cur->second.cout &&
               joined.plan->Fingerprint() < cur->second.plan->Fingerprint());
          if (better) {
            best_[s] = std::move(joined);
          }
        }
      }
      (void)best;
    }
    auto it = best_.find(full);
    if (it == best_.end()) {
      return Status::Internal(
          "DP found no complete plan (disconnected graph with cross "
          "products disabled?)");
    }
    return Finish(std::move(it->second));
  }

  static Candidate CloneCandidate(const Candidate& c) {
    Candidate out;
    out.plan = c.plan->Clone();
    out.info = c.info;
    out.cout = c.cout;
    return out;
  }

  Result<OptimizedPlan> RunGreedy() {
    // GOO: repeatedly merge the pair with the smallest resulting C_out
    // increment (join output cardinality), preferring connected pairs.
    std::vector<Candidate> parts = std::move(leaves_);
    while (parts.size() > 1) {
      double best_card = std::numeric_limits<double>::infinity();
      size_t bi = 0, bj = 1;
      bool best_connected = false;
      for (size_t i = 0; i < parts.size(); ++i) {
        for (size_t j = i + 1; j < parts.size(); ++j) {
          bool conn = Connected(parts[i].info, parts[j].info);
          if (!conn && (best_connected || !options_.allow_cross_products)) {
            continue;
          }
          RelationInfo joined = JoinInfo(parts[i], parts[j]);
          bool better = (conn && !best_connected) ||
                        (conn == best_connected &&
                         joined.cardinality < best_card);
          if (better) {
            best_card = joined.cardinality;
            bi = i;
            bj = j;
            best_connected = conn;
          }
        }
      }
      if (!best_connected && !options_.allow_cross_products) {
        return Status::Internal("disconnected query graph");
      }
      Candidate joined =
          JoinCandidates(std::move(parts[bi]), std::move(parts[bj]));
      parts.erase(parts.begin() + static_cast<long>(bj));
      parts[bi] = std::move(joined);
    }
    return Finish(std::move(parts[0]));
  }

  Result<OptimizedPlan> Finish(Candidate c) {
    OptimizedPlan out;
    out.est_cout = c.cout;
    out.est_cardinality = c.info.cardinality;
    out.fingerprint = c.plan->Fingerprint();
    out.root = std::move(c.plan);
    return out;
  }

  const SelectQuery& query_;
  const CardinalityEstimator& est_;
  const OptimizeOptions& options_;
  std::vector<Candidate> leaves_;
  std::unordered_map<uint64_t, Candidate> best_;
  std::map<std::pair<size_t, size_t>, std::optional<double>> exact_cache_;
};

}  // namespace

Result<OptimizedPlan> Optimize(const SelectQuery& query,
                               const rdf::TripleStore& store,
                               const rdf::Dictionary& dict,
                               const OptimizeOptions& options) {
  if (!query.IsGround()) {
    return Status::InvalidArgument(
        "query still contains unbound %parameters; bind the template first");
  }
  CardinalityEstimator est(store, dict, options.cardinality_cache);
  DpOptimizer dp(query, est, options);
  return dp.Run();
}

Result<OptimizedPlan> OptimizeGreedy(const SelectQuery& query,
                                     const rdf::TripleStore& store,
                                     const rdf::Dictionary& dict) {
  if (!query.IsGround()) {
    return Status::InvalidArgument(
        "query still contains unbound %parameters; bind the template first");
  }
  CardinalityEstimator est(store, dict);
  OptimizeOptions options;
  DpOptimizer dp(query, est, options);
  return dp.RunGreedyPublic();
}

}  // namespace rdfparams::opt

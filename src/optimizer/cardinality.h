// Cardinality estimation over the triple store.
//
// Leaf (triple pattern) cardinalities are *exact* — every bound-slot
// combination maps to a contiguous index range, so counting is two binary
// searches. Join cardinalities use the classical distinct-value
// (system-R style) formula with containment assumption. This mix mirrors
// what RDF engines (RDF-3X, Virtuoso) actually do and is what makes the
// paper's plan flips (E4) reproducible.
#ifndef RDFPARAMS_OPTIMIZER_CARDINALITY_H_
#define RDFPARAMS_OPTIMIZER_CARDINALITY_H_

#include <map>
#include <optional>
#include <string>

#include "optimizer/cardinality_cache.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/algebra.h"
#include "util/status.h"

namespace rdfparams::opt {

/// Cardinality + per-variable distinct-count estimates for a (sub)plan.
struct RelationInfo {
  double cardinality = 0;
  /// var name -> estimated number of distinct values.
  std::map<std::string, double> var_distinct;
};

class CardinalityEstimator {
 public:
  /// `cache` (optional, may be nullptr) memoizes pattern counts and exact
  /// pair-join counts across estimator instances; it may be shared between
  /// threads. Cached values are exact, so estimates are identical with and
  /// without a cache.
  CardinalityEstimator(const rdf::TripleStore& store,
                       const rdf::Dictionary& dict,
                       CardinalityCache* cache = nullptr)
      : store_(store), dict_(dict), cache_(cache) {}

  /// Estimates one ground triple pattern (no %params). Filters from `query`
  /// whose lhs variable is bound by this pattern and whose rhs is constant
  /// are folded in with heuristic selectivities.
  [[nodiscard]] Result<RelationInfo> EstimatePattern(const sparql::SelectQuery& query,
                                       size_t pattern_index) const;

  /// Combines two relation infos through an equi-join on their shared
  /// variables (cross product when none are shared).
  static RelationInfo EstimateJoin(const RelationInfo& a,
                                   const RelationInfo& b);

  /// Exact cardinality of joining two *single* triple patterns on their
  /// (single) shared variable, computed against the indexes:
  ///   * if one pattern matches few triples, per-value counting on the
  ///     other pattern (O(small * log N));
  ///   * else a hash-count pass when both ranges fit `max_work`;
  ///   * std::nullopt when too expensive or not applicable (0 or 2+ shared
  ///     variables, repeated variables inside one pattern).
  /// This mirrors the pairwise join statistics real RDF optimizers keep and
  /// is what lets correlated parameters flip plans (paper E4).
  /// Results are cached (when a cache is attached) only for the default
  /// work budget, since the budget changes which inputs are declined.
  static constexpr uint64_t kDefaultPairJoinMaxWork = 1u << 20;
  std::optional<double> ExactPairJoinCount(
      const sparql::SelectQuery& query, size_t pattern_a, size_t pattern_b,
      uint64_t max_work = kDefaultPairJoinMaxWork) const;

  /// Shared variables of two infos (ascending by name).
  static std::vector<std::string> SharedVars(const RelationInfo& a,
                                             const RelationInfo& b);

  const rdf::TripleStore& store() const { return store_; }
  const rdf::Dictionary& dict() const { return dict_; }
  CardinalityCache* cache() const { return cache_; }

 private:
  /// CountPattern through the shared cache (when one is attached).
  uint64_t CachedCount(rdf::TermId s, rdf::TermId p, rdf::TermId o) const;

  const rdf::TripleStore& store_;
  const rdf::Dictionary& dict_;
  CardinalityCache* cache_ = nullptr;
};

/// Heuristic selectivity of a filter op (used when the rhs is constant).
double FilterSelectivity(sparql::CompareOp op, double distinct_values);

}  // namespace rdfparams::opt

#endif  // RDFPARAMS_OPTIMIZER_CARDINALITY_H_

#include "optimizer/cardinality_cache.h"

#include <cmath>
#include <limits>

#include "util/hash.h"

namespace rdfparams::opt {

namespace {
// Sentinel for a cached "ExactPairJoinCount declined" result. NaN never
// collides with a real count (counts are finite and non-negative).
constexpr double kDeclined = std::numeric_limits<double>::quiet_NaN();
}  // namespace

CardinalityCache::CardinalityCache(size_t num_shards,
                                   size_t max_entries_per_shard)
    : shards_(num_shards == 0 ? 1 : num_shards),
      max_entries_per_shard_(max_entries_per_shard) {}

size_t CardinalityCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = util::Hash64((uint64_t{k.kind} << 16) |
                            (uint64_t{k.pos_a} << 8) | k.pos_b);
  for (rdf::TermId id : k.ids) h = util::HashCombine(h, id);
  return static_cast<size_t>(h);
}

CardinalityCache::Shard& CardinalityCache::ShardFor(const Key& key) const {
  return shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<double> CardinalityCache::LookupRaw(const Key& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Entry& entry = shard.slots[it->second];
  entry.referenced = true;  // second chance against the sweeping hand
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry.value;
}

void CardinalityCache::InsertRaw(const Key& key, double value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.index.count(key) != 0) return;  // first write wins (exact value)
  if (max_entries_per_shard_ == 0 ||
      shard.slots.size() < max_entries_per_shard_) {
    shard.index.emplace(key, static_cast<uint32_t>(shard.slots.size()));
    shard.slots.push_back(Entry{key, value, false});
    return;
  }
  // Clock sweep: clear reference bits until an unreferenced victim turns
  // up. Terminates within one full revolution plus one step, because the
  // first pass clears every bit it crosses.
  for (;;) {
    Entry& candidate = shard.slots[shard.clock_hand];
    if (candidate.referenced) {
      candidate.referenced = false;
      shard.clock_hand = (shard.clock_hand + 1) % shard.slots.size();
      continue;
    }
    shard.index.erase(candidate.key);
    shard.index.emplace(key, static_cast<uint32_t>(shard.clock_hand));
    candidate = Entry{key, value, false};
    shard.clock_hand = (shard.clock_hand + 1) % shard.slots.size();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
}

std::optional<uint64_t> CardinalityCache::LookupCount(rdf::TermId s,
                                                      rdf::TermId p,
                                                      rdf::TermId o) const {
  Key key{0, 0, 0, {s, p, o, 0, 0, 0}};
  std::optional<double> v = LookupRaw(key);
  if (!v) return std::nullopt;
  return static_cast<uint64_t>(*v);
}

void CardinalityCache::InsertCount(rdf::TermId s, rdf::TermId p,
                                   rdf::TermId o, uint64_t count) {
  Key key{0, 0, 0, {s, p, o, 0, 0, 0}};
  InsertRaw(key, static_cast<double>(count));
}

std::optional<std::optional<double>> CardinalityCache::LookupPairJoin(
    const std::array<rdf::TermId, 6>& pattern_ids, uint8_t pos_a,
    uint8_t pos_b) const {
  Key key{1, pos_a, pos_b, pattern_ids};
  std::optional<double> v = LookupRaw(key);
  if (!v) return std::nullopt;
  if (std::isnan(*v)) return std::optional<double>(std::nullopt);
  return std::optional<double>(*v);
}

void CardinalityCache::InsertPairJoin(
    const std::array<rdf::TermId, 6>& pattern_ids, uint8_t pos_a,
    uint8_t pos_b, std::optional<double> count) {
  Key key{1, pos_a, pos_b, pattern_ids};
  InsertRaw(key, count.has_value() ? *count : kDeclined);
}

double CardinalityCache::HitRate() const {
  uint64_t h = hits(), m = misses();
  return h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
}

size_t CardinalityCache::size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.slots.size();
  }
  return total;
}

void CardinalityCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.index.clear();
    shard.slots.clear();
    shard.clock_hand = 0;
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace rdfparams::opt

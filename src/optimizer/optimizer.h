// Join-order optimization minimizing the paper's C_out cost function:
//
//   C_out(T) = 0                                   if T is a scan
//   C_out(T) = |T| + C_out(T1) + C_out(T2)         if T = T1 JOIN T2
//
// Exact dynamic programming over pattern subsets (DPsub with connectivity)
// up to `dp_max_patterns`; greedy operator ordering (GOO) beyond that.
// Plans are canonicalized (build side = smaller estimated input) so that
// equal join trees yield equal fingerprints across parameter bindings.
#ifndef RDFPARAMS_OPTIMIZER_OPTIMIZER_H_
#define RDFPARAMS_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>

#include "optimizer/cardinality.h"
#include "optimizer/plan.h"
#include "sparql/algebra.h"
#include "util/status.h"

namespace rdfparams::opt {

struct OptimizeOptions {
  /// Above this pattern count, fall back from exact DP to greedy ordering.
  size_t dp_max_patterns = 13;
  /// Permit cross products when the query graph is disconnected.
  bool allow_cross_products = true;
  /// Optional shared cardinality cache (not owned; may be used from many
  /// threads concurrently). Hits never change the chosen plan, only the
  /// time it takes to find it.
  CardinalityCache* cardinality_cache = nullptr;
};

/// Optimizes a ground query (no unbound %parameters). Returns the
/// C_out-optimal join tree with estimates annotated on every node.
[[nodiscard]] Result<OptimizedPlan> Optimize(const sparql::SelectQuery& query,
                               const rdf::TripleStore& store,
                               const rdf::Dictionary& dict,
                               const OptimizeOptions& options = {});

/// Baseline for tests and ablations: left-deep greedy ordering only.
[[nodiscard]] Result<OptimizedPlan> OptimizeGreedy(const sparql::SelectQuery& query,
                                     const rdf::TripleStore& store,
                                     const rdf::Dictionary& dict);

}  // namespace rdfparams::opt

#endif  // RDFPARAMS_OPTIMIZER_OPTIMIZER_H_

// Logical/physical plan tree with the paper's C_out cost annotation and a
// canonical fingerprint used to compare plans across parameter bindings
// (condition (a) of the PARAMETERS FOR RDF BENCHMARKS problem).
#ifndef RDFPARAMS_OPTIMIZER_PLAN_H_
#define RDFPARAMS_OPTIMIZER_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/algebra.h"

namespace rdfparams::opt {

/// Node of a join tree. Leaves are index scans of one triple pattern;
/// inner nodes are (hash) joins on the shared variables of their inputs.
struct PlanNode {
  enum class Kind : uint8_t { kScan, kJoin };

  Kind kind = Kind::kScan;

  // --- kScan ---
  size_t pattern_index = 0;                       ///< index into query.patterns
  rdf::IndexOrder index_order = rdf::IndexOrder::kSPO;

  // --- kJoin ---
  std::unique_ptr<PlanNode> left;                 ///< build side
  std::unique_ptr<PlanNode> right;                ///< probe side
  std::vector<std::string> join_vars;             ///< empty => cross product

  // --- estimates (filled by the optimizer) ---
  double est_cardinality = 0;  ///< estimated output rows of this node
  double est_cout = 0;         ///< C_out of the subtree rooted here

  /// Suggested hash-join partition count for parallel execution, derived
  /// from the estimated build-side cardinality. The executor treats it as
  /// a floor, raising it from the actual (materialized) build row count
  /// when the estimate undershoots; 0 = no hint. A pure function of
  /// estimates and row counts, never of the thread count, so the
  /// partitioning — which cannot affect results either way — stays
  /// identical across execution configurations.
  uint32_t partition_hint = 0;

  /// For index joins (one input a scan): prefer the merge join over the
  /// covering sorted index run to per-row index probes. Set by the
  /// optimizer from RelationInfo cardinalities (see MergeJoinHint); the
  /// executor additionally verifies at run time that the pattern is
  /// sweep-eligible and the outer key column is actually sorted, falling
  /// back to probes otherwise. Like partition_hint, a pure function of
  /// estimates — never of execution configuration — and purely a
  /// performance switch: both operators emit identical rows.
  bool merge_join_hint = false;

  /// Bitmask of pattern indices covered by this subtree.
  uint64_t pattern_set = 0;

  static std::unique_ptr<PlanNode> MakeScan(size_t pattern_index,
                                            rdf::IndexOrder order);
  static std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> left,
                                            std::unique_ptr<PlanNode> right,
                                            std::vector<std::string> join_vars);

  bool is_scan() const { return kind == Kind::kScan; }
  bool is_join() const { return kind == Kind::kJoin; }

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;

  /// Canonical structural fingerprint, e.g. "J(S1,J(S0,S2))".
  /// Two plans for the same template with equal fingerprints have the same
  /// join tree over the same patterns — the paper's "same optimal plan".
  std::string Fingerprint() const;

  /// Number of join nodes in the subtree.
  size_t NumJoins() const;

  /// Human-readable EXPLAIN rendering with estimates; `query` supplies the
  /// pattern texts. With `exec_threads` > 1, every operator the executor
  /// would parallelize at that thread count is annotated with its strategy
  /// — joins with a scan input probe as outer-row morsels ("par=morsel-
  /// probe"), materialized joins build and probe partitioned hash tables
  /// ("par=partitioned"), keyless joins morsel over the build side
  /// ("par=morsel-cross") — and trailing GroupBy / OrderBy lines show the
  /// solution-modifier operators (parallel slice-merge reduction and
  /// parallel merge sort; see engine/group_merge.h, engine/parallel_sort.h).
  std::string Explain(const sparql::SelectQuery& query,
                      int exec_threads = 1) const;

 private:
  void ExplainRec(const sparql::SelectQuery& query, int depth,
                  int exec_threads, std::string* out) const;
};

/// Partition count for a hash join with `build_cardinality` build rows:
/// ~4k rows per partition, power of two, capped at 64. Deterministic, so
/// the same plan always carries the same hint.
uint32_t HashJoinPartitionHint(double build_cardinality);

/// Outer-row floor below which the merge join's setup (sortedness scan +
/// sweep-region equal_range) is not worth amortizing over per-row probes.
inline constexpr double kMergeJoinMinOuterRows = 32.0;

/// True when `join` should carry merge_join_hint: it will execute as an
/// index join (one input a scan), joins on exactly one variable (the
/// sweep has a single key slot), and the estimated outer cardinality
/// clears kMergeJoinMinOuterRows.
bool MergeJoinHint(const PlanNode& join);

/// Result of optimization: the plan plus template-level metadata.
struct OptimizedPlan {
  std::unique_ptr<PlanNode> root;
  double est_cout = 0;          ///< == root->est_cout
  double est_cardinality = 0;   ///< == root->est_cardinality
  std::string fingerprint;      ///< == root->Fingerprint()
};

}  // namespace rdfparams::opt

#endif  // RDFPARAMS_OPTIMIZER_PLAN_H_

#include "optimizer/batch_cardinality.h"

#include <algorithm>
#include <bit>

#include "rdf/triple.h"

namespace rdfparams::opt {

BatchCardinality::BatchCardinality(const sparql::QueryTemplate& tmpl,
                                   const rdf::TripleStore& store,
                                   const rdf::Dictionary& dict,
                                   CardinalityCache* cache)
    : tmpl_(tmpl), store_(store), dict_(dict), cache_(cache) {
  RDFPARAMS_DCHECK(cache_ != nullptr);
}

BatchPrefillStats BatchCardinality::PrefillLeafCounts(
    const std::vector<sparql::ParameterBinding>& candidates,
    std::span<const size_t> which) {
  BatchPrefillStats stats;
  const sparql::SelectQuery& query = tmpl_.query();
  const std::vector<std::string>& names = tmpl_.parameter_names();

  for (const sparql::TriplePattern& tp : query.patterns) {
    // Resolve the pattern the way EstimatePattern will after binding:
    // constants through the dictionary, variables to wildcards, and the
    // parameter slot (if any) marked as the varying position.
    int param_count = 0;
    rdf::TriplePos param_pos = rdf::TriplePos::kS;
    size_t param_index = 0;
    bool resolvable = true;
    rdf::Triple fixed(rdf::kWildcardId, rdf::kWildcardId, rdf::kWildcardId);
    const sparql::Slot* slots[3] = {&tp.s, &tp.p, &tp.o};
    for (int k = 0; k < 3; ++k) {
      const sparql::Slot& slot = *slots[k];
      if (slot.is_param()) {
        ++param_count;
        param_pos = static_cast<rdf::TriplePos>(k);
        auto it = std::find(names.begin(), names.end(), slot.name);
        RDFPARAMS_DCHECK(it != names.end());
        param_index = static_cast<size_t>(it - names.begin());
      } else if (slot.is_const()) {
        auto id = dict_.Find(slot.term);
        if (!id.has_value()) {
          // A constant absent from the data: EstimatePattern short-circuits
          // to cardinality 0 without ever counting, so there is nothing to
          // prefill for this pattern.
          resolvable = false;
          break;
        }
        rdf::SetPos(&fixed, static_cast<rdf::TriplePos>(k), *id);
      }
    }
    if (!resolvable || param_count != 1) {
      // Parameter-free patterns cost one probe total (the first worker
      // caches it); multi-parameter patterns fall back to on-demand
      // cached probes inside the estimator.
      ++stats.unbatched_patterns;
      continue;
    }

    // The candidate column for this parameter, ascending and deduplicated
    // (binding values are dictionary ids, i.e. already resolved).
    std::vector<rdf::TermId> values;
    values.reserve(which.size());
    for (size_t i : which) {
      const sparql::ParameterBinding& c = candidates[i];
      RDFPARAMS_DCHECK(param_index < c.values.size());
      values.push_back(c.values[param_index]);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());

    std::vector<uint64_t> counts = store_.CountPatternBatch(
        param_pos, fixed.s, fixed.p, fixed.o, values);
    for (size_t i = 0; i < values.size(); ++i) {
      rdf::Triple key = fixed;
      rdf::SetPos(&key, param_pos, values[i]);
      cache_->InsertCount(key.s, key.p, key.o, counts[i]);
    }
    stats.batched_counts += values.size();
  }
  return stats;
}

Result<CardinalitySignature> BatchCardinality::Signature(
    const sparql::SelectQuery& bound) const {
  CardinalityEstimator est(store_, dict_, cache_);
  const size_t n = bound.patterns.size();
  CardinalitySignature sig;
  sig.reserve(n * 4 + n * n);

  // (a) Leaf RelationInfos. The var_distinct keys are the template's
  // variables — identical for every candidate — so encoding the values in
  // map order keeps positions aligned across candidates.
  for (size_t i = 0; i < n; ++i) {
    RDFPARAMS_ASSIGN_OR_RETURN(RelationInfo info, est.EstimatePattern(bound, i));
    sig.push_back(std::bit_cast<uint64_t>(info.cardinality));
    for (const auto& [var, distinct] : info.var_distinct) {
      (void)var;
      sig.push_back(std::bit_cast<uint64_t>(distinct));
    }
  }

  // (b) Exact pair-join counts for every pattern pair. Pairs the DP never
  // overrides with an exact count (no single shared variable) return
  // nullopt from the cheap static checks, encoded as a presence flag so
  // "not computable" can never alias a real count. The computed values
  // land in the shared cache, where the deduped DP run finds them again.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      std::optional<double> count = est.ExactPairJoinCount(bound, i, j);
      sig.push_back(count.has_value() ? 1u : 0u);
      sig.push_back(count.has_value() ? std::bit_cast<uint64_t>(*count) : 0u);
    }
  }
  return sig;
}

}  // namespace rdfparams::opt

// Shared cardinality cache for the curation pipeline.
//
// Candidate bindings of one template share most triple patterns and differ
// only in the parameter slots, so the optimizer re-issues the same
// CountPattern lookups and exact pairwise join counts over and over — once
// per candidate. This cache memoizes both, keyed on the *resolved* (s,p,o)
// TermId patterns after binding substitution, which makes entries valid
// across candidates, templates, and threads (the underlying store is
// immutable after Finalize()).
//
// Thread model: sharded slot arrays + index maps, each shard behind its
// own mutex; the workload is read-mostly once the per-template working set
// is warm. Values are exact (CountPattern) or deterministic functions of
// the store (ExactPairJoinCount with a fixed work budget), so cache hits
// can never change an optimization result — only its latency.
//
// Bounding (for long-lived services): an optional per-shard entry cap with
// clock (second-chance) eviction. Lookups set a reference bit; when a full
// shard inserts, the clock hand sweeps slots, clearing reference bits,
// and evicts the first unreferenced entry. Eviction order under
// concurrency is scheduling-dependent, but since every cached value is an
// exact function of the immutable store, eviction can only cause
// recomputation — never a different plan. Default is unbounded, which is
// fine per-template; bound it when one cache outlives many templates.
#ifndef RDFPARAMS_OPTIMIZER_CARDINALITY_CACHE_H_
#define RDFPARAMS_OPTIMIZER_CARDINALITY_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"

namespace rdfparams::opt {

class CardinalityCache {
 public:
  /// `max_entries_per_shard` 0 (default) = unbounded; otherwise each shard
  /// holds at most that many entries and evicts with the clock policy.
  explicit CardinalityCache(size_t num_shards = 16,
                            size_t max_entries_per_shard = 0);

  /// Exact triple-pattern count, keyed on (s, p, o) with wildcards.
  /// Returns nullopt on a cache miss.
  std::optional<uint64_t> LookupCount(rdf::TermId s, rdf::TermId p,
                                      rdf::TermId o) const;
  /// Stores a triple-pattern count under its (s, p, o) key.
  void InsertCount(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                   uint64_t count);

  /// Exact pairwise join count, keyed on both resolved patterns plus the
  /// join positions. The cached value may itself be "not computable within
  /// budget" (nullopt), which is worth remembering too.
  /// Lookup returns nullopt on miss; on hit, the stored optional<double>.
  std::optional<std::optional<double>> LookupPairJoin(
      const std::array<rdf::TermId, 6>& pattern_ids, uint8_t pos_a,
      uint8_t pos_b) const;
  /// Stores a pair-join count (or the "not computable within budget"
  /// nullopt marker) under its resolved-pattern key.
  void InsertPairJoin(const std::array<rdf::TermId, 6>& pattern_ids,
                      uint8_t pos_a, uint8_t pos_b,
                      std::optional<double> count);

  /// Number of lookups answered from the cache since construction.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Number of lookups that missed (and presumably caused a computation).
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Number of entries evicted by the clock policy (0 when unbounded).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 when no lookups have happened yet.
  double HitRate() const;

  /// The per-shard entry cap this cache was constructed with (0 =
  /// unbounded).
  size_t max_entries_per_shard() const { return max_entries_per_shard_; }

  /// Total entries across both kinds of keys.
  size_t size() const;
  /// Drops every entry and resets the hit/miss/eviction counters.
  /// Thread-safe (locks each shard in turn), though clearing mid-workload
  /// naturally costs recomputation.
  void Clear();

 private:
  // One key type for both kinds: kind tag + up to 6 ids + positions.
  struct Key {
    uint8_t kind;  // 0 = count, 1 = pair join
    uint8_t pos_a = 0;
    uint8_t pos_b = 0;
    std::array<rdf::TermId, 6> ids;
    bool operator==(const Key& other) const {
      return kind == other.kind && pos_a == other.pos_a &&
             pos_b == other.pos_b && ids == other.ids;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  /// One cached entry: the slot array is the clock's circular buffer.
  struct Entry {
    Key key;
    double value = 0;
    bool referenced = false;  // set on hit, cleared by the sweeping hand
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, uint32_t, KeyHash> index;  // key -> slot
    std::vector<Entry> slots;
    size_t clock_hand = 0;
  };

  Shard& ShardFor(const Key& key) const;
  std::optional<double> LookupRaw(const Key& key) const;
  void InsertRaw(const Key& key, double value);

  mutable std::vector<Shard> shards_;
  size_t max_entries_per_shard_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace rdfparams::opt

#endif  // RDFPARAMS_OPTIMIZER_CARDINALITY_CACHE_H_

// Shared cardinality cache for the curation pipeline.
//
// Candidate bindings of one template share most triple patterns and differ
// only in the parameter slots, so the optimizer re-issues the same
// CountPattern lookups and exact pairwise join counts over and over — once
// per candidate. This cache memoizes both, keyed on the *resolved* (s,p,o)
// TermId patterns after binding substitution, which makes entries valid
// across candidates, templates, and threads (the underlying store is
// immutable after Finalize()).
//
// Thread model: sharded unordered maps, each behind its own mutex; the
// workload is read-mostly once the per-template working set is warm.
// Values are exact (CountPattern) or deterministic functions of the store
// (ExactPairJoinCount with a fixed work budget), so cache hits can never
// change an optimization result — only its latency.
#ifndef RDFPARAMS_OPTIMIZER_CARDINALITY_CACHE_H_
#define RDFPARAMS_OPTIMIZER_CARDINALITY_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"

namespace rdfparams::opt {

class CardinalityCache {
 public:
  explicit CardinalityCache(size_t num_shards = 16);

  /// Exact triple-pattern count, keyed on (s, p, o) with wildcards.
  std::optional<uint64_t> LookupCount(rdf::TermId s, rdf::TermId p,
                                      rdf::TermId o) const;
  void InsertCount(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                   uint64_t count);

  /// Exact pairwise join count, keyed on both resolved patterns plus the
  /// join positions. The cached value may itself be "not computable within
  /// budget" (nullopt), which is worth remembering too.
  /// Lookup returns nullopt on miss; on hit, the stored optional<double>.
  std::optional<std::optional<double>> LookupPairJoin(
      const std::array<rdf::TermId, 6>& pattern_ids, uint8_t pos_a,
      uint8_t pos_b) const;
  void InsertPairJoin(const std::array<rdf::TermId, 6>& pattern_ids,
                      uint8_t pos_a, uint8_t pos_b,
                      std::optional<double> count);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  double HitRate() const;

  /// Total entries across both kinds of keys.
  size_t size() const;
  void Clear();

 private:
  // One key type for both kinds: kind tag + up to 6 ids + positions.
  struct Key {
    uint8_t kind;  // 0 = count, 1 = pair join
    uint8_t pos_a = 0;
    uint8_t pos_b = 0;
    std::array<rdf::TermId, 6> ids;
    bool operator==(const Key& other) const {
      return kind == other.kind && pos_a == other.pos_a &&
             pos_b == other.pos_b && ids == other.ids;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, double, KeyHash> map;
  };

  Shard& ShardFor(const Key& key) const;
  std::optional<double> LookupRaw(const Key& key) const;
  void InsertRaw(const Key& key, double value);

  mutable std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace rdfparams::opt

#endif  // RDFPARAMS_OPTIMIZER_CARDINALITY_CACHE_H_

// Batched cardinality work for classifying many candidate bindings of one
// query template.
//
// Two jobs, both feeding the classification hot loop:
//
//  1. PrefillLeafCounts: every leaf count the optimizer will ask for —
//     one per (triple pattern, candidate) combination — is computed up
//     front and inserted into the shared CardinalityCache. Patterns in
//     which exactly one slot varies across candidates are answered by a
//     single co-sequential sweep over the covering index
//     (TripleStore::CountPatternBatch) instead of one binary-search probe
//     per candidate.
//
//  2. Signature: the *cardinality signature* of one bound candidate — the
//     bit patterns of every number the C_out join-ordering DP reads. The
//     DP's decisions (subset costs, canonical build sides, tie-breaks)
//     are a deterministic function of (a) the per-pattern RelationInfo
//     leaves and (b) the exact pair-join counts of single-scan pattern
//     pairs; everything else it consults (variable structure, pattern
//     indices, index choices) is a property of the template, identical
//     across candidates. Therefore two candidates with equal signatures
//     provably receive identical Optimize() results — same plan
//     fingerprint, same est_cout — and the DP only needs to run once per
//     distinct signature. Comparison is bitwise (stricter than ==), so a
//     shared signature can never produce a different classification than
//     the per-candidate path.
//
// Thread model: PrefillLeafCounts is called once, before workers start;
// Signature is const and safe to call from many threads concurrently (the
// shared cache is internally synchronized).
#ifndef RDFPARAMS_OPTIMIZER_BATCH_CARDINALITY_H_
#define RDFPARAMS_OPTIMIZER_BATCH_CARDINALITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "optimizer/cardinality.h"
#include "sparql/query_template.h"

namespace rdfparams::opt {

/// Bitwise image of every DP input for one candidate: per pattern, the
/// RelationInfo cardinality followed by its var_distinct values (map
/// order, whose keys are the template's variables and thus identical
/// across candidates); then, per pattern pair (i < j), a presence flag
/// and the exact pair-join count. Equal vectors => equal plans.
using CardinalitySignature = std::vector<uint64_t>;

struct BatchPrefillStats {
  /// Counts answered by CountPatternBatch sweeps.
  uint64_t batched_counts = 0;
  /// Patterns whose counts could not be batched (no parameter slot, two
  /// or more parameter occurrences, or an absent constant).
  uint64_t unbatched_patterns = 0;
};

class BatchCardinality {
 public:
  /// `cache` must be non-null: prefilled counts land there, and the
  /// signature pass both feeds from and feeds it. The referenced
  /// template/store/dict must outlive this object.
  BatchCardinality(const sparql::QueryTemplate& tmpl,
                   const rdf::TripleStore& store, const rdf::Dictionary& dict,
                   CardinalityCache* cache);

  /// Computes the leaf count of every (pattern, candidates[i]) combination
  /// for i in `which` and inserts it into the cache, batching
  /// single-parameter patterns through one CountPatternBatch sweep per
  /// pattern. Candidates are positional bindings of the template (as
  /// produced by ParameterDomain); `which` selects the subset to prefill
  /// (indices into `candidates`, so callers with a partial fresh set need
  /// not copy bindings).
  BatchPrefillStats PrefillLeafCounts(
      const std::vector<sparql::ParameterBinding>& candidates,
      std::span<const size_t> which);

  /// Cardinality signature of one bound candidate query (`bound` must be
  /// tmpl.Bind(candidate) for this object's template). Thread-safe.
  [[nodiscard]] Result<CardinalitySignature> Signature(const sparql::SelectQuery& bound)
      const;

 private:
  const sparql::QueryTemplate& tmpl_;
  const rdf::TripleStore& store_;
  const rdf::Dictionary& dict_;
  CardinalityCache* cache_;
};

}  // namespace rdfparams::opt

#endif  // RDFPARAMS_OPTIMIZER_BATCH_CARDINALITY_H_

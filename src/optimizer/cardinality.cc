#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace rdfparams::opt {

namespace {

using rdf::kWildcardId;
using rdf::TermId;
using sparql::Slot;
using sparql::SlotKind;

/// Resolves a constant slot to a TermId; kInvalidTermId when the term does
/// not occur in the data (=> pattern cardinality 0).
bool ResolveSlot(const Slot& slot, const rdf::Dictionary& dict, TermId* out,
                 bool* is_bound) {
  if (slot.is_var()) {
    *out = kWildcardId;
    *is_bound = false;
    return true;
  }
  if (slot.is_const()) {
    *is_bound = true;
    auto id = dict.Find(slot.term);
    *out = id.has_value() ? *id : rdf::kInvalidTermId;
    return id.has_value();
  }
  return false;  // parameter: caller must have bound it
}

}  // namespace

uint64_t CardinalityEstimator::CachedCount(rdf::TermId s, rdf::TermId p,
                                           rdf::TermId o) const {
  if (cache_ == nullptr) return store_.CountPattern(s, p, o);
  if (auto hit = cache_->LookupCount(s, p, o)) return *hit;
  uint64_t count = store_.CountPattern(s, p, o);
  cache_->InsertCount(s, p, o, count);
  return count;
}

double FilterSelectivity(sparql::CompareOp op, double distinct_values) {
  double d = std::max(distinct_values, 1.0);
  switch (op) {
    case sparql::CompareOp::kEq:
      return 1.0 / d;
    case sparql::CompareOp::kNe:
      return 1.0 - 1.0 / d;
    case sparql::CompareOp::kLt:
    case sparql::CompareOp::kLe:
    case sparql::CompareOp::kGt:
    case sparql::CompareOp::kGe:
      return 1.0 / 3.0;  // classical System R guess
  }
  return 1.0;
}

Result<RelationInfo> CardinalityEstimator::EstimatePattern(
    const sparql::SelectQuery& query, size_t pattern_index) const {
  if (pattern_index >= query.patterns.size()) {
    return Status::InvalidArgument("pattern index out of range");
  }
  const sparql::TriplePattern& tp = query.patterns[pattern_index];
  if (tp.s.is_param() || tp.p.is_param() || tp.o.is_param()) {
    return Status::InvalidArgument(
        "pattern still contains unbound %parameters");
  }

  TermId s = kWildcardId, p = kWildcardId, o = kWildcardId;
  bool bs = false, bp = false, bo = false;
  bool s_present = ResolveSlot(tp.s, dict_, &s, &bs);
  bool p_present = ResolveSlot(tp.p, dict_, &p, &bp);
  bool o_present = ResolveSlot(tp.o, dict_, &o, &bo);

  RelationInfo info;
  // A constant that is absent from the dictionary matches nothing.
  if (!s_present || !p_present || !o_present) {
    info.cardinality = 0;
    for (const std::string& v : tp.Variables()) info.var_distinct[v] = 0;
    return info;
  }

  // Exact match count through the covering index (memoized).
  double card = static_cast<double>(CachedCount(s, p, o));

  // Repeated variable inside one pattern (e.g. ?x :p ?x): the index range
  // over-counts; apply an equality selectivity between the two positions.
  bool s_eq_o = tp.s.is_var() && tp.o.is_var() && tp.s.name == tp.o.name;
  bool s_eq_p = tp.s.is_var() && tp.p.is_var() && tp.s.name == tp.p.name;
  bool p_eq_o = tp.p.is_var() && tp.o.is_var() && tp.p.name == tp.o.name;

  // Distinct-value estimates per variable position.
  auto global_distinct = [&](rdf::TriplePos pos) -> double {
    switch (pos) {
      case rdf::TriplePos::kS:
        return static_cast<double>(std::max<uint64_t>(
            store_.NumDistinctSubjects(), 1));
      case rdf::TriplePos::kP:
        return static_cast<double>(std::max<uint64_t>(
            store_.NumDistinctPredicates(), 1));
      case rdf::TriplePos::kO:
        return static_cast<double>(std::max<uint64_t>(
            store_.NumDistinctObjects(), 1));
    }
    return 1;
  };

  auto position_distinct = [&](rdf::TriplePos pos) -> double {
    // Predicate bound: use the per-predicate statistics.
    if (bp && p != rdf::kInvalidTermId) {
      if (pos == rdf::TriplePos::kS && !bs && !bo) {
        return static_cast<double>(
            std::max<uint64_t>(store_.DistinctSubjectsForPredicate(p), 1));
      }
      if (pos == rdf::TriplePos::kO && !bo && !bs) {
        return static_cast<double>(
            std::max<uint64_t>(store_.DistinctObjectsForPredicate(p), 1));
      }
    }
    // Otherwise: bounded by both the match count and the global distinct.
    return std::max(1.0, std::min(card, global_distinct(pos)));
  };

  if (s_eq_o) card /= std::max(position_distinct(rdf::TriplePos::kO), 1.0);
  if (s_eq_p) card /= std::max(position_distinct(rdf::TriplePos::kP), 1.0);
  if (p_eq_o) card /= std::max(position_distinct(rdf::TriplePos::kO), 1.0);

  info.cardinality = card;
  if (tp.s.is_var()) {
    info.var_distinct[tp.s.name] =
        std::min(card, position_distinct(rdf::TriplePos::kS));
  }
  if (tp.p.is_var()) {
    info.var_distinct[tp.p.name] =
        std::min(card, position_distinct(rdf::TriplePos::kP));
  }
  if (tp.o.is_var()) {
    info.var_distinct[tp.o.name] =
        std::min(card, position_distinct(rdf::TriplePos::kO));
  }

  // Fold in constant-rhs filters on variables this pattern produces.
  for (const sparql::FilterCondition& f : query.filters) {
    if (!f.rhs.is_const()) continue;
    auto it = info.var_distinct.find(f.lhs_var);
    if (it == info.var_distinct.end()) continue;
    double sel = FilterSelectivity(f.op, it->second);
    info.cardinality *= sel;
    for (auto& [var, d] : info.var_distinct) {
      d = std::max(1.0, std::min(d, info.cardinality));
      (void)var;
    }
  }
  return info;
}

namespace {

/// Where (if anywhere) does variable `var` sit in the pattern? Returns the
/// number of occurrences; `pos` receives the first occurrence.
int FindVarPosition(const sparql::TriplePattern& tp, const std::string& var,
                    rdf::TriplePos* pos) {
  int count = 0;
  if (tp.s.is_var() && tp.s.name == var) {
    if (count++ == 0) *pos = rdf::TriplePos::kS;
  }
  if (tp.p.is_var() && tp.p.name == var) {
    if (count++ == 0) *pos = rdf::TriplePos::kP;
  }
  if (tp.o.is_var() && tp.o.name == var) {
    if (count++ == 0) *pos = rdf::TriplePos::kO;
  }
  return count;
}

/// Resolves the pattern into a (s, p, o) id triple with wildcards for
/// variables; false when a constant is absent from the data.
bool ResolvePattern(const sparql::TriplePattern& tp,
                    const rdf::Dictionary& dict, rdf::TermId* s, rdf::TermId* p,
                    rdf::TermId* o) {
  bool bound = false;
  if (!ResolveSlot(tp.s, dict, s, &bound) && tp.s.is_const()) return false;
  if (!ResolveSlot(tp.p, dict, p, &bound) && tp.p.is_const()) return false;
  if (!ResolveSlot(tp.o, dict, o, &bound) && tp.o.is_const()) return false;
  return true;
}

/// Returns a copy of (s,p,o) with the slot at `pos` set to `value`.
void BindPosition(rdf::TriplePos pos, rdf::TermId value, rdf::TermId* s,
                  rdf::TermId* p, rdf::TermId* o) {
  switch (pos) {
    case rdf::TriplePos::kS: *s = value; break;
    case rdf::TriplePos::kP: *p = value; break;
    case rdf::TriplePos::kO: *o = value; break;
  }
}

}  // namespace

std::optional<double> CardinalityEstimator::ExactPairJoinCount(
    const sparql::SelectQuery& query, size_t pattern_a, size_t pattern_b,
    uint64_t max_work) const {
  if (pattern_a >= query.patterns.size() || pattern_b >= query.patterns.size())
    return std::nullopt;
  const sparql::TriplePattern& ta = query.patterns[pattern_a];
  const sparql::TriplePattern& tb = query.patterns[pattern_b];

  // Exactly one shared variable, occurring once on each side.
  std::vector<std::string> shared;
  for (const std::string& v : ta.Variables()) {
    for (const std::string& w : tb.Variables()) {
      if (v == w) shared.push_back(v);
    }
  }
  if (shared.size() != 1) return std::nullopt;
  rdf::TriplePos pos_a, pos_b;
  if (FindVarPosition(ta, shared[0], &pos_a) != 1) return std::nullopt;
  if (FindVarPosition(tb, shared[0], &pos_b) != 1) return std::nullopt;

  rdf::TermId sa = rdf::kWildcardId, pa = rdf::kWildcardId,
              oa = rdf::kWildcardId;
  rdf::TermId sb = rdf::kWildcardId, pb = rdf::kWildcardId,
              ob = rdf::kWildcardId;
  if (!ResolvePattern(ta, dict_, &sa, &pa, &oa)) return 0.0;
  if (!ResolvePattern(tb, dict_, &sb, &pb, &ob)) return 0.0;

  // The whole result is a deterministic function of the resolved patterns
  // and join positions, so it can be memoized across candidate bindings.
  // Only the default work budget is cached: the budget changes which
  // inputs are declined, so differently-budgeted calls must not alias.
  const bool cacheable =
      cache_ != nullptr && max_work == kDefaultPairJoinMaxWork;
  const std::array<rdf::TermId, 6> pair_key = {sa, pa, oa, sb, pb, ob};
  const auto pos_key_a = static_cast<uint8_t>(pos_a);
  const auto pos_key_b = static_cast<uint8_t>(pos_b);
  if (cacheable) {
    if (auto hit = cache_->LookupPairJoin(pair_key, pos_key_a, pos_key_b)) {
      return *hit;
    }
  }
  auto memoize = [&](std::optional<double> result) {
    if (cacheable) {
      cache_->InsertPairJoin(pair_key, pos_key_a, pos_key_b, result);
    }
    return result;
  };

  uint64_t size_a = CachedCount(sa, pa, oa);
  uint64_t size_b = CachedCount(sb, pb, ob);
  if (size_a == 0 || size_b == 0) return memoize(0.0);

  // Iterate the smaller side.
  bool a_smaller = size_a <= size_b;
  const sparql::TriplePattern& small_tp = a_smaller ? ta : tb;
  rdf::TriplePos small_pos = a_smaller ? pos_a : pos_b;
  rdf::TriplePos big_pos = a_smaller ? pos_b : pos_a;
  rdf::TermId ss = a_smaller ? sa : sb, sp = a_smaller ? pa : pb,
              so = a_smaller ? oa : ob;
  rdf::TermId bs = a_smaller ? sb : sa, bp = a_smaller ? pb : pa,
              bo = a_smaller ? ob : oa;
  uint64_t small_size = std::min(size_a, size_b);
  uint64_t big_size = std::max(size_a, size_b);
  (void)small_tp;

  constexpr uint64_t kPerValueLimit = 4096;
  if (small_size <= kPerValueLimit) {
    // Per-value counting: for each binding of the shared variable on the
    // small side, binary-search the big side.
    double total = 0;
    auto range = store_.Range(store_.ChooseIndex(ss, sp, so), ss, sp, so);
    for (const rdf::Triple& t : range) {
      rdf::TermId v = rdf::GetPos(t, small_pos);
      rdf::TermId qs = bs, qp = bp, qo = bo;
      BindPosition(big_pos, v, &qs, &qp, &qo);
      total += static_cast<double>(store_.CountPattern(qs, qp, qo));
    }
    return memoize(total);
  }

  if (small_size + big_size > max_work) return memoize(std::nullopt);

  // Hash-count pass: value -> multiplicity from the small side, then sum
  // products over the big side.
  std::unordered_map<rdf::TermId, uint64_t> counts;
  counts.reserve(small_size * 2);
  {
    auto range = store_.Range(store_.ChooseIndex(ss, sp, so), ss, sp, so);
    for (const rdf::Triple& t : range) {
      ++counts[rdf::GetPos(t, small_pos)];
    }
  }
  double total = 0;
  {
    auto range = store_.Range(store_.ChooseIndex(bs, bp, bo), bs, bp, bo);
    for (const rdf::Triple& t : range) {
      auto it = counts.find(rdf::GetPos(t, big_pos));
      if (it != counts.end()) total += static_cast<double>(it->second);
    }
  }
  return memoize(total);
}

std::vector<std::string> CardinalityEstimator::SharedVars(
    const RelationInfo& a, const RelationInfo& b) {
  std::vector<std::string> shared;
  for (const auto& [var, d] : a.var_distinct) {
    (void)d;
    if (b.var_distinct.count(var) > 0) shared.push_back(var);
  }
  return shared;  // std::map iteration is already sorted by name
}

RelationInfo CardinalityEstimator::EstimateJoin(const RelationInfo& a,
                                                const RelationInfo& b) {
  RelationInfo out;
  std::vector<std::string> shared = SharedVars(a, b);
  double selectivity = 1.0;
  for (const std::string& v : shared) {
    double da = std::max(a.var_distinct.at(v), 1.0);
    double db = std::max(b.var_distinct.at(v), 1.0);
    selectivity /= std::max(da, db);
  }
  out.cardinality = a.cardinality * b.cardinality * selectivity;

  // Propagate distinct counts: shared vars keep the smaller side
  // (containment assumption); exclusive vars carry over. All are capped by
  // the output cardinality.
  for (const auto& [var, da] : a.var_distinct) {
    double d = da;
    auto it = b.var_distinct.find(var);
    if (it != b.var_distinct.end()) d = std::min(d, it->second);
    out.var_distinct[var] = std::max(0.0, std::min(d, out.cardinality));
  }
  for (const auto& [var, db] : b.var_distinct) {
    if (out.var_distinct.count(var) == 0) {
      out.var_distinct[var] = std::max(0.0, std::min(db, out.cardinality));
    }
  }
  return out;
}

}  // namespace rdfparams::opt

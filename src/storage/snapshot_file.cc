#include "storage/snapshot_file.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/coding.h"
#include "util/crc32.h"

namespace rdfparams::storage {

Result<std::unique_ptr<SnapshotFile>> SnapshotFile::Open(
    const std::string& path) {
  RDFPARAMS_ASSIGN_OR_RETURN(auto file, util::RandomAccessFile::Open(path));
  const uint64_t size = file->size();
  if (size == 0) {
    return Status::ParseError(path + ": empty file is not a snapshot");
  }
  if (size < kMinPageSize) {
    return Status::ParseError(path + ": file smaller than a snapshot page");
  }

  // Bootstrap: magic / version / page_size live at fixed offsets right
  // after the header page's CRC, so they can be read before the page size
  // (and hence the CRC span) is known.
  uint8_t prologue[kPageCrcBytes + sizeof(kHeaderMagic) + 8];
  RDFPARAMS_RETURN_NOT_OK(
      file->ReadExact(0, std::span<uint8_t>(prologue, sizeof(prologue))));
  if (std::memcmp(prologue + kPageCrcBytes, kHeaderMagic,
                  sizeof(kHeaderMagic)) != 0) {
    return Status::ParseError(path + ": not a rdfparams snapshot (bad magic)");
  }
  uint32_t version =
      util::LoadU32(prologue + kPageCrcBytes + sizeof(kHeaderMagic));
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return Status::ParseError(path + ": unsupported snapshot version " +
                              std::to_string(version));
  }
  uint32_t page_size =
      util::LoadU32(prologue + kPageCrcBytes + sizeof(kHeaderMagic) + 4);
  if (!ValidPageSize(page_size)) {
    return Status::ParseError(path + ": invalid snapshot page size " +
                              std::to_string(page_size));
  }
  if (size % page_size != 0 || size / page_size < 2) {
    return Status::ParseError(path + ": truncated snapshot (size " +
                              std::to_string(size) + " is not a whole number "
                              "of pages with a header and a footer)");
  }

  // Full header page: CRC, then the complete decode.
  std::vector<uint8_t> page(page_size);
  RDFPARAMS_RETURN_NOT_OK(file->ReadExact(0, page));
  RDFPARAMS_RETURN_NOT_OK(VerifyPage(0, page));
  RDFPARAMS_ASSIGN_OR_RETURN(
      SnapshotHeader header,
      DecodeHeaderPayload(std::span<const uint8_t>(page).subspan(kPageCrcBytes),
                          size));

  // Footer page: CRC, magic, page-count agreement; remember the file CRC.
  uint64_t footer_id = header.page_count - 1;
  RDFPARAMS_RETURN_NOT_OK(file->ReadExact(footer_id * page_size, page));
  RDFPARAMS_RETURN_NOT_OK(VerifyPage(footer_id, page));
  RDFPARAMS_ASSIGN_OR_RETURN(
      uint32_t footer_crc,
      DecodeFooterPayload(std::span<const uint8_t>(page).subspan(kPageCrcBytes),
                          header.page_count));

  return std::unique_ptr<SnapshotFile>(new SnapshotFile(
      std::move(file), std::move(header), footer_crc, path));
}

Status SnapshotFile::ReadPage(uint64_t page_id, std::span<uint8_t> out) const {
  RDFPARAMS_DCHECK(out.size() == page_size());
  if (page_id >= page_count()) {
    return Status::OutOfRange("page " + std::to_string(page_id) +
                              " beyond snapshot end");
  }
  if (IsRawPage(page_id)) {
    return Status::InvalidArgument("page " + std::to_string(page_id) +
                                   " belongs to a raw section");
  }
  RDFPARAMS_RETURN_NOT_OK(
      file_->ReadExact(page_id * static_cast<uint64_t>(page_size()), out));
  return VerifyPage(page_id, out);
}

bool SnapshotFile::IsRawPage(uint64_t page_id) const {
  for (const SectionInfo& s : header_.sections) {
    if (IsRawSectionKind(s.kind) && s.page_count > 0 &&
        page_id >= s.first_page && page_id < s.first_page + s.page_count) {
      return true;
    }
  }
  return false;
}

Status SnapshotFile::ReadRawSection(const SectionInfo& section,
                                    std::string* out) const {
  RDFPARAMS_DCHECK(IsRawSectionKind(section.kind));
  out->resize(section.byte_length);
  if (section.byte_length > 0) {
    RDFPARAMS_RETURN_NOT_OK(file_->ReadExact(
        section.first_page * static_cast<uint64_t>(page_size()),
        std::span<uint8_t>(reinterpret_cast<uint8_t*>(out->data()),
                           out->size())));
  }
  uint32_t crc = util::Crc32Seeded(section.kind, out->data(), out->size());
  if (crc != section.crc32) {
    return Status::DataLoss(path_ + ": section " +
                            std::to_string(section.kind) +
                            " checksum mismatch");
  }
  return Status::OK();
}

Status SnapshotFile::VerifyFileChecksum() const {
  const uint64_t covered =
      (page_count() - 1) * static_cast<uint64_t>(page_size());
  std::vector<uint8_t> chunk(1 << 20);
  uint32_t crc = 0;
  uint64_t offset = 0;
  while (offset < covered) {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(chunk.size(), covered - offset));
    RDFPARAMS_RETURN_NOT_OK(
        file_->ReadExact(offset, std::span<uint8_t>(chunk.data(), n)));
    crc = util::Crc32Extend(crc, chunk.data(), n);
    offset += n;
  }
  if (crc != footer_file_crc_) {
    return Status::DataLoss(path_ + ": whole-file checksum mismatch");
  }
  return Status::OK();
}

Status SnapshotFile::VerifyFileChecksum(
    std::span<const uint8_t> file_bytes) const {
  const uint64_t covered =
      (page_count() - 1) * static_cast<uint64_t>(page_size());
  RDFPARAMS_DCHECK(file_bytes.size() >= covered);
  if (util::Crc32(file_bytes.data(), covered) != footer_file_crc_) {
    return Status::DataLoss(path_ + ": whole-file checksum mismatch");
  }
  return Status::OK();
}

}  // namespace rdfparams::storage

#include "storage/paged_reader.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"

namespace rdfparams::storage {

PagedByteReader::PagedByteReader(BufferPool* pool, const SectionInfo& section)
    : pool_(pool),
      section_(section),
      payload_size_(PayloadSize(pool->page_size())) {}

Status PagedByteReader::Read(void* out, size_t n) {
  if (n > remaining()) {
    return Status::ParseError("snapshot section truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()));
  }
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (n > 0) {
    uint64_t page_index = pos_ / payload_size_;
    uint64_t offset = pos_ % payload_size_;
    uint64_t page_id = section_.first_page + page_index;
    if (!current_.valid() || current_.page_id() != page_id) {
      current_.Release();
      RDFPARAMS_ASSIGN_OR_RETURN(current_, pool_->Fetch(page_id));
    }
    size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(n, payload_size_ - offset));
    std::memcpy(dst, current_.payload().data() + offset, chunk);
    dst += chunk;
    pos_ += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Result<uint8_t> PagedByteReader::ReadU8() {
  uint8_t v = 0;
  RDFPARAMS_RETURN_NOT_OK(Read(&v, 1));
  return v;
}

Result<uint32_t> PagedByteReader::ReadU32() {
  uint8_t buf[4];
  RDFPARAMS_RETURN_NOT_OK(Read(buf, 4));
  return util::LoadU32(buf);
}

Result<std::string> PagedByteReader::ReadLengthPrefixed() {
  RDFPARAMS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  if (len > remaining()) {
    return Status::ParseError("snapshot string length " + std::to_string(len) +
                              " exceeds section remainder");
  }
  std::string s(len, '\0');
  RDFPARAMS_RETURN_NOT_OK(Read(s.data(), len));
  return s;
}

PagedTripleCursor::PagedTripleCursor(BufferPool* pool,
                                     const SectionInfo& section)
    : pool_(pool),
      section_(section),
      per_page_(TriplesPerPage(pool->page_size())) {}

Result<rdf::Triple> PagedTripleCursor::At(uint64_t i) {
  if (i >= section_.item_count) {
    return Status::OutOfRange("triple index beyond index run");
  }
  uint64_t page_id = section_.first_page + i / per_page_;
  if (!current_.valid() || current_.page_id() != page_id) {
    current_.Release();
    RDFPARAMS_ASSIGN_OR_RETURN(current_, pool_->Fetch(page_id));
  }
  size_t offset = static_cast<size_t>((i % per_page_) * kTripleBytes);
  const uint8_t* p = current_.payload().data() + offset;
  return rdf::Triple(util::LoadU32(p), util::LoadU32(p + 4),
                     util::LoadU32(p + 8));
}

}  // namespace rdfparams::storage

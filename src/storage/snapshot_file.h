// SnapshotFile: a validated, read-only handle on one snapshot file.
//
// Open() performs the cheap structural checks (size, header page CRC,
// header decode, footer page CRC, footer/header agreement) so every
// consumer — the BufferPool, the snapshot opener, the CLI inspector —
// starts from a file whose geometry is known good. Page payloads are only
// checked as they are read (ReadPage verifies the per-page CRC);
// VerifyFileChecksum() streams the whole file against the footer CRC for
// the paranoid full check the snapshot opener runs by default.
#ifndef RDFPARAMS_STORAGE_SNAPSHOT_FILE_H_
#define RDFPARAMS_STORAGE_SNAPSHOT_FILE_H_

#include <memory>
#include <span>
#include <string>

#include "storage/format.h"
#include "util/file_io.h"
#include "util/status.h"

namespace rdfparams::storage {

class SnapshotFile {
 public:
  /// Opens and structurally validates a snapshot. Fails with a clean
  /// ParseError / DataLoss / IOError on anything malformed: zero-length
  /// or truncated files, wrong magic/version/page size, header or footer
  /// corruption.
  [[nodiscard]] static Result<std::unique_ptr<SnapshotFile>> Open(const std::string& path);

  const SnapshotHeader& header() const { return header_; }
  uint32_t page_size() const { return header_.page_size; }
  uint64_t page_count() const { return header_.page_count; }
  const std::string& path() const { return path_; }

  /// Reads page `page_id` (full page bytes, CRC verified) into `out`,
  /// which must be exactly page_size() bytes. Refuses raw-section pages:
  /// they carry no per-page CRC, so VerifyPage would misfire on them.
  [[nodiscard]] Status ReadPage(uint64_t page_id, std::span<uint8_t> out) const;

  /// True when `page_id` falls inside a raw (uncrc'd, contiguous) section.
  bool IsRawPage(uint64_t page_id) const;

  /// Reads a raw section's meaningful bytes into `out` and verifies the
  /// section CRC stored in its table entry. DataLoss on mismatch.
  [[nodiscard]] Status ReadRawSection(const SectionInfo& section,
                                      std::string* out) const;

  /// Streams the entire file and compares against the footer's whole-file
  /// CRC. Catches flips in padding or CRC fields that no payload read
  /// would ever touch.
  [[nodiscard]] Status VerifyFileChecksum() const;

  /// Same check over an in-memory image of the file (an mmap'd open
  /// passes its mapping to skip the re-read). `file_bytes` must be the
  /// whole file.
  [[nodiscard]] Status VerifyFileChecksum(
      std::span<const uint8_t> file_bytes) const;

 private:
  SnapshotFile(std::unique_ptr<util::RandomAccessFile> file,
               SnapshotHeader header, uint32_t footer_crc, std::string path)
      : file_(std::move(file)),
        header_(std::move(header)),
        footer_file_crc_(footer_crc),
        path_(std::move(path)) {}

  std::unique_ptr<util::RandomAccessFile> file_;
  SnapshotHeader header_;
  uint32_t footer_file_crc_;
  std::string path_;
};

}  // namespace rdfparams::storage

#endif  // RDFPARAMS_STORAGE_SNAPSHOT_FILE_H_

// Paged accessors over snapshot sections, reading through a BufferPool.
//
// PagedByteReader treats a byte-stream section (dictionary, app meta) as
// one sequential stream: records may straddle pages, and exactly one page
// is pinned at a time — memory stays bounded no matter how large the
// section is.
//
// PagedTripleCursor addresses a record section (an index run): triples
// never straddle pages (format.h), so At(i) is a page fetch plus a fixed
// offset. Sequential scans keep the current page pinned and hit the pool
// map once per TriplesPerPage() triples. This is the accessor that makes
// larger-than-memory index runs scannable: the working set is the pool
// capacity, not the run length.
#ifndef RDFPARAMS_STORAGE_PAGED_READER_H_
#define RDFPARAMS_STORAGE_PAGED_READER_H_

#include <cstdint>
#include <string>

#include "rdf/triple.h"
#include "storage/buffer_pool.h"
#include "storage/format.h"
#include "util/status.h"

namespace rdfparams::storage {

/// Sequential reader over a byte-stream section.
class PagedByteReader {
 public:
  /// `pool` must outlive the reader; `section` must describe a byte-stream
  /// section of the pool's snapshot.
  PagedByteReader(BufferPool* pool, const SectionInfo& section);

  uint64_t remaining() const { return section_.byte_length - pos_; }

  /// Reads exactly `n` bytes; fails (ParseError) when fewer remain —
  /// a truncated record is a format error, not an EOF.
  [[nodiscard]] Status Read(void* out, size_t n);

  [[nodiscard]] Result<uint8_t> ReadU8();
  [[nodiscard]] Result<uint32_t> ReadU32();
  /// u32 length prefix + bytes; the prefix is validated against
  /// remaining() before any allocation.
  [[nodiscard]] Result<std::string> ReadLengthPrefixed();

 private:
  BufferPool* pool_;
  SectionInfo section_;
  uint64_t payload_size_;
  uint64_t pos_ = 0;
  PageRef current_;  ///< pinned page containing pos_, when loaded
};

/// Random/sequential access over an index-run section.
class PagedTripleCursor {
 public:
  PagedTripleCursor(BufferPool* pool, const SectionInfo& section);

  uint64_t count() const { return section_.item_count; }

  /// Triple `i` (i < count()). Sequential calls on ascending `i` reuse the
  /// pinned page.
  [[nodiscard]] Result<rdf::Triple> At(uint64_t i);

 private:
  BufferPool* pool_;
  SectionInfo section_;
  uint64_t per_page_;
  PageRef current_;
};

}  // namespace rdfparams::storage

#endif  // RDFPARAMS_STORAGE_PAGED_READER_H_

#include "storage/snapshot.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/paged_reader.h"
#include "storage/snapshot_file.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/mmap_file.h"

namespace rdfparams::storage {

namespace {

/// Streams section payloads as sealed pages: fills one page buffer, seals
/// it with its page CRC, folds the sealed bytes into the running file CRC,
/// and appends it to the writer. EndSection zero-pads and flushes the
/// partial page so the next section starts on a fresh page.
class PageWriter {
 public:
  PageWriter(util::SequentialFileWriter* out, uint32_t page_size)
      : out_(out), page_(page_size, 0), payload_size_(PayloadSize(page_size)) {}

  uint64_t next_page() const { return next_page_; }
  uint32_t file_crc() const { return file_crc_; }

  /// Byte-stream discipline: bytes straddle pages freely.
  Status AppendBytes(const void* data, size_t n) {
    const uint8_t* src = static_cast<const uint8_t*>(data);
    while (n > 0) {
      size_t chunk = std::min(n, payload_size_ - pos_);
      std::memcpy(page_.data() + kPageCrcBytes + pos_, src, chunk);
      src += chunk;
      pos_ += chunk;
      n -= chunk;
      if (pos_ == payload_size_) RDFPARAMS_RETURN_NOT_OK(FlushPage());
    }
    return Status::OK();
  }

  /// Record discipline: the record never straddles a page.
  Status AppendRecord(const void* data, size_t n) {
    RDFPARAMS_DCHECK(n <= payload_size_);
    if (payload_size_ - pos_ < n) RDFPARAMS_RETURN_NOT_OK(FlushPage());
    std::memcpy(page_.data() + kPageCrcBytes + pos_, data, n);
    pos_ += n;
    return Status::OK();
  }

  /// Flushes the trailing partial page (zero padding already in place).
  Status EndSection() {
    if (pos_ > 0) RDFPARAMS_RETURN_NOT_OK(FlushPage());
    return Status::OK();
  }

  /// Raw discipline: `bytes` fill whole pages verbatim — no per-page CRC
  /// field — so the section is contiguous in the file and mmap-adoptable.
  /// The pages still count into the whole-file CRC like any others;
  /// per-section integrity is the table entry's own CRC32.
  Status AppendRawSection(std::string_view bytes) {
    RDFPARAMS_DCHECK(pos_ == 0);
    size_t off = 0;
    while (off < bytes.size()) {
      size_t chunk = std::min(page_.size(), bytes.size() - off);
      std::memcpy(page_.data(), bytes.data() + off, chunk);
      if (chunk < page_.size()) {
        std::memset(page_.data() + chunk, 0, page_.size() - chunk);
      }
      file_crc_ = util::Crc32Extend(file_crc_, page_.data(), page_.size());
      RDFPARAMS_RETURN_NOT_OK(out_->Append(page_.data(), page_.size()));
      ++next_page_;
      off += chunk;
    }
    std::memset(page_.data(), 0, page_.size());
    return Status::OK();
  }

  /// Writes one standalone page (header / footer) whose payload is
  /// `payload` followed by zeros. `count_in_file_crc` is false only for
  /// the footer, which the file CRC does not cover.
  Status WritePage(std::string_view payload, bool count_in_file_crc) {
    RDFPARAMS_DCHECK(pos_ == 0 && payload.size() <= payload_size_);
    std::memcpy(page_.data() + kPageCrcBytes, payload.data(), payload.size());
    return FlushPage(count_in_file_crc);
  }

 private:
  Status FlushPage(bool count_in_file_crc = true) {
    SealPage(next_page_, page_);
    if (count_in_file_crc) {
      file_crc_ = util::Crc32Extend(file_crc_, page_.data(), page_.size());
    }
    RDFPARAMS_RETURN_NOT_OK(out_->Append(page_.data(), page_.size()));
    ++next_page_;
    pos_ = 0;
    std::memset(page_.data(), 0, page_.size());
    return Status::OK();
  }

  util::SequentialFileWriter* out_;
  std::vector<uint8_t> page_;
  size_t payload_size_;
  size_t pos_ = 0;
  uint64_t next_page_ = 0;
  uint32_t file_crc_ = 0;
};

uint64_t DictionaryByteLength(const rdf::Dictionary& dict) {
  uint64_t n = 0;
  for (size_t i = 0; i < dict.size(); ++i) {
    const rdf::TermView t = dict.term(static_cast<rdf::TermId>(i));
    n += 1 + 4 + t.lexical.size() + 4 + t.datatype.size() + 4 + t.lang.size();
  }
  return n;
}

std::vector<rdf::IndexOrder> SerializedOrders(bool all_indexes) {
  std::vector<rdf::IndexOrder> orders = {
      rdf::IndexOrder::kSPO, rdf::IndexOrder::kPOS, rdf::IndexOrder::kOSP};
  if (all_indexes) {
    orders.insert(orders.end(), {rdf::IndexOrder::kSOP, rdf::IndexOrder::kPSO,
                                 rdf::IndexOrder::kOPS});
  }
  return orders;
}

Status ReadIndexRun(BufferPool* pool, const SectionInfo& section,
                    size_t dict_size, std::vector<rdf::Triple>* out) {
  // Page-at-a-time bulk decode: one Fetch per page, then a straight
  // memcpy of its fixed-size records (the serialized form is exactly the
  // in-memory Triple layout on little-endian platforms), with one
  // branch-free max-scan for the id bounds check afterwards — measurably
  // faster than per-triple decode on multi-hundred-thousand-triple runs.
  static_assert(sizeof(rdf::Triple) == kTripleBytes);
  static_assert(std::is_trivially_copyable_v<rdf::Triple>);
  const uint64_t per_page = TriplesPerPage(pool->page_size());
  out->clear();
  out->resize(section.item_count);
  uint64_t filled = 0;
  uint64_t remaining = section.item_count;
  for (uint64_t page = 0; remaining > 0; ++page) {
    RDFPARAMS_ASSIGN_OR_RETURN(PageRef ref,
                               pool->Fetch(section.first_page + page));
    const uint8_t* p = ref.payload().data();
    uint64_t n = std::min<uint64_t>(per_page, remaining);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data() + filled, p, n * kTripleBytes);
    } else {
      for (uint64_t i = 0; i < n; ++i, p += kTripleBytes) {
        (*out)[filled + i] = rdf::Triple(
            util::LoadU32(p), util::LoadU32(p + 4), util::LoadU32(p + 8));
      }
    }
    filled += n;
    remaining -= n;
  }
  rdf::TermId max_id = 0;
  for (const rdf::Triple& t : *out) {
    max_id = std::max(max_id, std::max(t.s, std::max(t.p, t.o)));
  }
  if (!out->empty() && max_id >= dict_size) {
    return Status::ParseError("snapshot triple refers to term id beyond "
                              "dictionary (" +
                              std::to_string(dict_size) + " terms)");
  }
  return Status::OK();
}

}  // namespace

Status Snapshot::Save(const rdf::Dictionary& dict,
                      const rdf::TripleStore& store, std::string_view app_meta,
                      const std::string& path, const SaveOptions& options) {
  if (!store.finalized()) {
    return Status::InvalidArgument("cannot snapshot an unfinalized store");
  }
  if (!ValidPageSize(options.page_size)) {
    return Status::InvalidArgument("invalid snapshot page size " +
                                   std::to_string(options.page_size));
  }
  if (options.format_version < kMinFormatVersion ||
      options.format_version > kFormatVersion) {
    return Status::InvalidArgument("cannot write snapshot format version " +
                                   std::to_string(options.format_version));
  }
  const bool v2 = options.format_version >= 2;
  const uint32_t page_size = options.page_size;
  const uint64_t payload = PayloadSize(page_size);
  const uint64_t per_page = TriplesPerPage(page_size);
  const bool all_indexes = store.all_indexes_built();

  // Section table first: the header is page 0, so every extent must be
  // known before any payload is written.
  SnapshotHeader header;
  header.version = options.format_version;
  header.page_size = page_size;
  header.flags = all_indexes ? kFlagAllIndexes : 0;
  uint64_t next_page = 1;
  auto add_section = [&](uint32_t kind, uint64_t byte_length,
                         uint64_t item_count, uint64_t page_count) {
    SectionInfo s;
    s.kind = kind;
    s.byte_length = byte_length;
    s.item_count = item_count;
    s.page_count = page_count;
    s.first_page = page_count == 0 ? 0 : next_page;
    next_page += page_count;
    header.sections.push_back(s);
  };
  auto add_raw_section = [&](uint32_t kind, std::string_view bytes,
                             uint64_t item_count) {
    add_section(kind, bytes.size(), item_count,
                RawSectionPages(bytes.size(), page_size));
    header.sections.back().crc32 =
        util::Crc32Seeded(kind, bytes.data(), bytes.size());
  };

  // v2: the dictionary's wire sections, serialized verbatim. The hash
  // section must have the canonical capacity for size() terms so open-time
  // validation can demand the exact shape; rebuild it when the live table
  // was over-Reserved.
  std::string hash_rebuilt;
  std::string_view hash_bytes;
  uint64_t dict_bytes = 0;
  if (v2) {
    if (dict.hash_is_canonical()) {
      hash_bytes = dict.hash_slots();
    } else {
      hash_rebuilt = dict.BuildHashSlots(rdf::HashCapacityFor(dict.size()));
      hash_bytes = hash_rebuilt;
    }
    add_raw_section(kSectionDictArena, dict.arena(), 0);
    add_raw_section(kSectionDictRecords, dict.records(), dict.size());
    add_raw_section(kSectionDictHash, hash_bytes, 0);
  } else {
    dict_bytes = DictionaryByteLength(dict);
    add_section(kSectionDictionary, dict_bytes, dict.size(),
                (dict_bytes + payload - 1) / payload);
  }
  for (rdf::IndexOrder order : SerializedOrders(all_indexes)) {
    uint64_t n = store.IndexRun(order).size();
    add_section(SectionKindForIndex(order), n * kTripleBytes, n,
                (n + per_page - 1) / per_page);
  }
  if (!app_meta.empty()) {
    add_section(kSectionAppMeta, app_meta.size(), 0,
                (app_meta.size() + payload - 1) / payload);
  }
  header.page_count = next_page + 1;  // + footer

  RDFPARAMS_ASSIGN_OR_RETURN(auto file, util::SequentialFileWriter::Create(path));
  PageWriter writer(file.get(), page_size);

  RDFPARAMS_ASSIGN_OR_RETURN(std::string header_payload,
                             EncodeHeaderPayload(header));
  RDFPARAMS_RETURN_NOT_OK(writer.WritePage(header_payload, true));

  if (v2) {
    RDFPARAMS_RETURN_NOT_OK(writer.AppendRawSection(dict.arena()));
    RDFPARAMS_RETURN_NOT_OK(writer.AppendRawSection(dict.records()));
    RDFPARAMS_RETURN_NOT_OK(writer.AppendRawSection(hash_bytes));
  } else {
    // v1: terms in id order, each (kind u8, lexical, datatype, lang).
    std::string record;
    for (size_t i = 0; i < dict.size(); ++i) {
      const rdf::TermView t = dict.term(static_cast<rdf::TermId>(i));
      record.clear();
      util::AppendU8(&record, static_cast<uint8_t>(t.kind));
      util::AppendLengthPrefixed(&record, t.lexical);
      util::AppendLengthPrefixed(&record, t.datatype);
      util::AppendLengthPrefixed(&record, t.lang);
      RDFPARAMS_RETURN_NOT_OK(writer.AppendBytes(record.data(), record.size()));
    }
    RDFPARAMS_RETURN_NOT_OK(writer.EndSection());
  }

  for (rdf::IndexOrder order : SerializedOrders(all_indexes)) {
    uint8_t buf[kTripleBytes];
    for (const rdf::Triple& t : store.IndexRun(order)) {
      util::StoreU32(buf, t.s);
      util::StoreU32(buf + 4, t.p);
      util::StoreU32(buf + 8, t.o);
      RDFPARAMS_RETURN_NOT_OK(writer.AppendRecord(buf, kTripleBytes));
    }
    RDFPARAMS_RETURN_NOT_OK(writer.EndSection());
  }

  if (!app_meta.empty()) {
    RDFPARAMS_RETURN_NOT_OK(
        writer.AppendBytes(app_meta.data(), app_meta.size()));
    RDFPARAMS_RETURN_NOT_OK(writer.EndSection());
  }

  if (writer.next_page() != header.page_count - 1) {
    return Status::Internal("snapshot layout drifted from section table");
  }
  RDFPARAMS_RETURN_NOT_OK(writer.WritePage(
      EncodeFooterPayload(header.page_count, writer.file_crc()), false));
  return file->Finish();
}

Result<OpenedSnapshot> Snapshot::Open(const std::string& path,
                                      const OpenOptions& options) {
  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  OpenStats discard;
  OpenStats& stats = options.stats != nullptr ? *options.stats : discard;
  stats = OpenStats();

  RDFPARAMS_ASSIGN_OR_RETURN(auto file, SnapshotFile::Open(path));
  const SnapshotHeader& header = file->header();
  stats.format_version = header.version;
  const uint64_t page_size = file->page_size();

  // Map the file when asked (or by default when the platform can). kAuto
  // degrades to the copied path on any mapping failure; kOn surfaces it.
  std::shared_ptr<const util::MmapFile> mapping;
  if (options.mmap != MmapMode::kOff) {
    if (!util::MmapFile::Supported()) {
      if (options.mmap == MmapMode::kOn) {
        return Status::Unsupported(
            path + ": mmap open requested but unsupported on this platform");
      }
    } else {
      Result<std::shared_ptr<util::MmapFile>> mapped =
          util::MmapFile::Map(path);
      if (!mapped.ok()) {
        if (options.mmap == MmapMode::kOn) return mapped.status();
      } else if ((*mapped)->size() != header.page_count * page_size) {
        if (options.mmap == MmapMode::kOn) {
          return Status::IOError(
              path + ": mapped size does not match snapshot geometry");
        }
      } else {
        mapping = *std::move(mapped);
      }
    }
  }
  stats.mmap_used = mapping != nullptr;

  if (options.verify_file_checksum) {
    Clock::time_point t0 = Clock::now();
    if (mapping != nullptr) {
      // CRC straight over the mapping — no second read of the file.
      RDFPARAMS_RETURN_NOT_OK(file->VerifyFileChecksum(
          std::span<const uint8_t>(mapping->data(), mapping->size())));
    } else {
      RDFPARAMS_RETURN_NOT_OK(file->VerifyFileChecksum());
    }
    stats.checksum_seconds = seconds_since(t0);
  }

  std::optional<BufferPool> pool;
  if (mapping != nullptr) {
    pool.emplace(file.get(), mapping);
    if (options.verify_file_checksum) {
      // The file CRC just verified every byte of this mapping; per-page
      // CRC checks on the same bytes would only repeat the work.
      pool->MarkAllVerified();
    }
  } else {
    pool.emplace(file.get(), options.pool_pages);
  }

  OpenedSnapshot out;

  Clock::time_point t_dict = Clock::now();
  if (header.version >= 2) {
    // v2: adopt the dictionary's wire sections verbatim — borrowed views
    // into the mapping, or bulk-read into owned buffers. Raw pages have no
    // page CRC, so every open still checks their bytes exactly once: the
    // whole-file CRC covers them when enabled; otherwise (or whenever the
    // bytes are re-read from disk, as in the copied path) the per-section
    // CRC runs before adoption.
    const SectionInfo* arena_s = header.FindSection(kSectionDictArena);
    const SectionInfo* records_s = header.FindSection(kSectionDictRecords);
    const SectionInfo* hash_s = header.FindSection(kSectionDictHash);
    if (arena_s == nullptr || records_s == nullptr || hash_s == nullptr) {
      return Status::ParseError(path +
                                ": snapshot is missing a dictionary section");
    }
    if (mapping != nullptr) {
      auto raw_view = [&](const SectionInfo& s) {
        return std::string_view(
            reinterpret_cast<const char*>(mapping->data()) +
                s.first_page * page_size,
            s.byte_length);
      };
      if (!options.verify_file_checksum) {
        // The whole-file CRC already covers these exact mapped bytes when
        // it runs; only when the caller opted out do the sections need
        // their own check before adoption.
        for (const SectionInfo* s : {arena_s, records_s, hash_s}) {
          std::string_view bytes = raw_view(*s);
          if (util::Crc32Seeded(s->kind, bytes.data(), bytes.size()) !=
              s->crc32) {
            return Status::DataLoss(path + ": section " +
                                    std::to_string(s->kind) +
                                    " checksum mismatch");
          }
        }
      }
      RDFPARAMS_ASSIGN_OR_RETURN(
          out.dict, rdf::Dictionary::Adopt(raw_view(*arena_s),
                                           raw_view(*records_s),
                                           raw_view(*hash_s),
                                           records_s->item_count, mapping));
    } else {
      std::string arena, records, slots;
      RDFPARAMS_RETURN_NOT_OK(file->ReadRawSection(*arena_s, &arena));
      RDFPARAMS_RETURN_NOT_OK(file->ReadRawSection(*records_s, &records));
      RDFPARAMS_RETURN_NOT_OK(file->ReadRawSection(*hash_s, &slots));
      RDFPARAMS_ASSIGN_OR_RETURN(
          out.dict, rdf::Dictionary::Adopt(std::move(arena),
                                           std::move(records),
                                           std::move(slots),
                                           records_s->item_count));
    }
  } else {
    // v1: re-intern in id order. Interning is what rebuilds the id<->term
    // maps; the id check catches duplicate terms in the stream.
    const SectionInfo* dict_section = header.FindSection(kSectionDictionary);
    if (dict_section == nullptr) {
      return Status::ParseError(path + ": snapshot has no dictionary section");
    }
    PagedByteReader reader(&*pool, *dict_section);
    out.dict.Reserve(dict_section->item_count);
    for (uint64_t i = 0; i < dict_section->item_count; ++i) {
      rdf::Term term;
      RDFPARAMS_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
      if (kind > static_cast<uint8_t>(rdf::TermKind::kLiteral)) {
        return Status::ParseError(path + ": invalid term kind " +
                                  std::to_string(kind));
      }
      term.kind = static_cast<rdf::TermKind>(kind);
      RDFPARAMS_ASSIGN_OR_RETURN(term.lexical, reader.ReadLengthPrefixed());
      RDFPARAMS_ASSIGN_OR_RETURN(term.datatype, reader.ReadLengthPrefixed());
      RDFPARAMS_ASSIGN_OR_RETURN(term.lang, reader.ReadLengthPrefixed());
      if (out.dict.Intern(std::move(term)) != i) {
        return Status::ParseError(path +
                                  ": duplicate term in snapshot dictionary");
      }
    }
    if (reader.remaining() != 0) {
      return Status::ParseError(path + ": dictionary section has " +
                                std::to_string(reader.remaining()) +
                                " trailing bytes");
    }
  }
  stats.dict_seconds = seconds_since(t_dict);

  // Index runs, adopted verbatim (validated sorted by AdoptSortedRuns).
  Clock::time_point t_runs = Clock::now();
  std::vector<rdf::Triple> runs[6];
  for (rdf::IndexOrder order : SerializedOrders(header.all_indexes())) {
    const SectionInfo* section = header.FindSection(SectionKindForIndex(order));
    if (section == nullptr) {
      return Status::ParseError(path + ": snapshot is missing the " +
                                rdf::IndexOrderName(order) + " index run");
    }
    RDFPARAMS_RETURN_NOT_OK(ReadIndexRun(&*pool, *section, out.dict.size(),
                                         &runs[static_cast<size_t>(order)]));
  }
  RDFPARAMS_RETURN_NOT_OK(out.store.AdoptSortedRuns(
      std::move(runs[0]), std::move(runs[1]), std::move(runs[2]),
      std::move(runs[3]), std::move(runs[4]), std::move(runs[5]),
      header.all_indexes()));
  stats.runs_seconds = seconds_since(t_runs);

  Clock::time_point t_meta = Clock::now();
  const SectionInfo* meta = header.FindSection(kSectionAppMeta);
  if (meta != nullptr) {
    PagedByteReader reader(&*pool, *meta);
    out.app_meta.resize(meta->byte_length);
    RDFPARAMS_RETURN_NOT_OK(
        reader.Read(out.app_meta.data(), out.app_meta.size()));
    out.has_app_meta = true;
  }
  stats.meta_seconds = seconds_since(t_meta);
  return out;
}

Result<SnapshotInfo> Snapshot::Inspect(const std::string& path) {
  RDFPARAMS_ASSIGN_OR_RETURN(auto file, SnapshotFile::Open(path));
  RDFPARAMS_RETURN_NOT_OK(file->VerifyFileChecksum());
  SnapshotInfo info;
  info.header = file->header();
  info.file_size = file->header().page_count *
                   static_cast<uint64_t>(file->page_size());
  return info;
}

}  // namespace rdfparams::storage

#include "storage/buffer_pool.h"

namespace rdfparams::storage {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    payload_ = other.payload_;
    other.pool_ = nullptr;
    other.payload_ = {};
  }
  return *this;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    if (frame_ != BufferPool::kBorrowedFrame) pool_->Unpin(frame_);
    pool_ = nullptr;
    payload_ = {};
  }
}

BufferPool::BufferPool(const SnapshotFile* file, size_t capacity)
    : file_(file), frames_(capacity == 0 ? 1 : capacity) {
  for (Frame& f : frames_) f.data.resize(file_->page_size());
}

BufferPool::BufferPool(const SnapshotFile* file,
                       std::shared_ptr<const util::MmapFile> mapping)
    : file_(file),
      mapping_(std::move(mapping)),
      verified_(file->page_count(), false) {
  RDFPARAMS_DCHECK(mapping_->size() >=
                   file_->page_count() *
                       static_cast<uint64_t>(file_->page_size()));
}

void BufferPool::MarkAllVerified() {
  RDFPARAMS_DCHECK(mapping_ != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  verified_.assign(verified_.size(), true);
}

Result<PageRef> BufferPool::FetchBorrowed(uint64_t page_id) {
  if (page_id >= file_->page_count()) {
    return Status::OutOfRange("page " + std::to_string(page_id) +
                              " beyond snapshot end");
  }
  if (file_->IsRawPage(page_id)) {
    return Status::InvalidArgument("page " + std::to_string(page_id) +
                                   " belongs to a raw section");
  }
  std::span<const uint8_t> page(
      mapping_->data() + page_id * static_cast<uint64_t>(page_size()),
      page_size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!verified_[page_id]) {
      ++stats_.misses;
      RDFPARAMS_RETURN_NOT_OK(VerifyPage(page_id, page));
      verified_[page_id] = true;
    } else {
      ++stats_.hits;
    }
  }
  return PageRef(this, kBorrowedFrame, page_id,
                 page.subspan(kPageCrcBytes));
}

Result<PageRef> BufferPool::Fetch(uint64_t page_id) {
  if (mapping_ != nullptr) return FetchBorrowed(page_id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frame_of_page_.find(page_id);
  if (it != frame_of_page_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    f.referenced = true;
    ++stats_.hits;
    return PageRef(this, it->second, page_id,
                   std::span<const uint8_t>(f.data).subspan(kPageCrcBytes));
  }
  ++stats_.misses;

  // Clock sweep: two full revolutions are enough — the first clears every
  // reference bit, so the second must find any unpinned frame.
  size_t victim = frames_.size();
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& f = frames_[hand_];
    if (f.pins == 0) {
      if (f.referenced) {
        f.referenced = false;
      } else {
        victim = hand_;
        hand_ = (hand_ + 1) % frames_.size();
        break;
      }
    }
    hand_ = (hand_ + 1) % frames_.size();
  }
  if (victim == frames_.size()) {
    return Status::Unavailable(
        "buffer pool exhausted: all " + std::to_string(frames_.size()) +
        " frames pinned");
  }

  Frame& f = frames_[victim];
  if (f.valid) {
    frame_of_page_.erase(f.page_id);
    f.valid = false;
    ++stats_.evictions;
  }
  // Load under the lock: concurrent readers of cached pages only pay the
  // map probe; concurrent misses serialize (see header).
  RDFPARAMS_RETURN_NOT_OK(file_->ReadPage(page_id, f.data));
  f.page_id = page_id;
  f.pins = 1;
  f.referenced = true;
  f.valid = true;
  frame_of_page_[page_id] = victim;
  return PageRef(this, victim, page_id,
                 std::span<const uint8_t>(f.data).subspan(kPageCrcBytes));
}

void BufferPool::Unpin(size_t frame_idx) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame_idx];
  RDFPARAMS_DCHECK(f.pins > 0);
  --f.pins;
}

size_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Frame& f : frames_) n += f.pins > 0 ? 1 : 0;
  return n;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace rdfparams::storage

// BufferPool: a fixed set of page frames over one SnapshotFile.
//
// Fetch(page) returns a pinned PageRef; while any ref to a frame is alive
// the frame cannot be evicted, so the returned payload span stays valid.
// Capacity misses pick a victim with the classic clock (second-chance)
// sweep: every frame has a reference bit set on use; the hand clears set
// bits and evicts the first unpinned frame whose bit is already clear.
// Given the same operation sequence the eviction order is deterministic —
// asserted by tests/storage_buffer_pool_test.cc.
//
// Thread-safe for concurrent readers: one mutex guards the frame table,
// and page loads happen under it (reads serialize on a miss; hits only
// hold the lock for the map probe). This is the simple-and-correct
// baseline the TSan CI job locks in; sharding the map is future work.
//
// The pool is what bounds memory to capacity * page_size regardless of
// snapshot size: the snapshot opener streams dictionary bytes and index
// runs through it, and the paged accessors (paged_reader.h) let scans
// touch arbitrarily large runs with a handful of resident pages.
#ifndef RDFPARAMS_STORAGE_BUFFER_POOL_H_
#define RDFPARAMS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/snapshot_file.h"
#include "util/status.h"

namespace rdfparams::storage {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferPool;

/// RAII pin on one cached page. Movable, not copyable; releasing the last
/// ref makes the frame evictable again (the cached bytes stay until the
/// clock actually reuses the frame).
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  uint64_t page_id() const { return page_id_; }
  /// Payload bytes (the page minus its CRC field).
  std::span<const uint8_t> payload() const { return payload_; }

  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame, uint64_t page_id,
          std::span<const uint8_t> payload)
      : pool_(pool), frame_(frame), page_id_(page_id), payload_(payload) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  uint64_t page_id_ = 0;
  std::span<const uint8_t> payload_;
};

class BufferPool {
 public:
  /// `file` must outlive the pool. `capacity` is in pages (>= 1).
  BufferPool(const SnapshotFile* file, size_t capacity);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned ref to the page, loading (and CRC-verifying) it on a
  /// miss. Fails with kUnavailable when every frame is pinned, and with
  /// the underlying DataLoss/IOError when the page cannot be loaded.
  [[nodiscard]] Result<PageRef> Fetch(uint64_t page_id);

  size_t capacity() const { return frames_.size(); }
  uint32_t page_size() const { return file_->page_size(); }
  /// Number of frames with at least one live pin.
  size_t pinned_frames() const;
  BufferPoolStats stats() const;

 private:
  friend class PageRef;

  struct Frame {
    uint64_t page_id = 0;
    uint32_t pins = 0;
    bool referenced = false;
    bool valid = false;
    std::vector<uint8_t> data;
  };

  void Unpin(size_t frame_idx);

  const SnapshotFile* file_;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> frame_of_page_;
  size_t hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace rdfparams::storage

#endif  // RDFPARAMS_STORAGE_BUFFER_POOL_H_

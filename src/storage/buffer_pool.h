// BufferPool: a fixed set of page frames over one SnapshotFile.
//
// Fetch(page) returns a pinned PageRef; while any ref to a frame is alive
// the frame cannot be evicted, so the returned payload span stays valid.
// Capacity misses pick a victim with the classic clock (second-chance)
// sweep: every frame has a reference bit set on use; the hand clears set
// bits and evicts the first unpinned frame whose bit is already clear.
// Given the same operation sequence the eviction order is deterministic —
// asserted by tests/storage_buffer_pool_test.cc.
//
// Thread-safe for concurrent readers: one mutex guards the frame table,
// and page loads happen under it (reads serialize on a miss; hits only
// hold the lock for the map probe). This is the simple-and-correct
// baseline the TSan CI job locks in; sharding the map is future work.
//
// The pool is what bounds memory to capacity * page_size regardless of
// snapshot size: the snapshot opener streams dictionary bytes and index
// runs through it, and the paged accessors (paged_reader.h) let scans
// touch arbitrarily large runs with a handful of resident pages.
//
// Borrowed-frame mode (mmap-backed opens): constructed over a memory
// mapping, the pool owns no frames at all — Fetch returns a PageRef whose
// payload points straight into the mapping, and the per-page CRC is
// verified once on first touch (a bitset under the same mutex). PageRefs
// from a borrowed pool carry a sentinel frame index and never pin or
// unpin; the mapping's shared_ptr keeps the bytes alive. The paged
// accessors work unchanged over either mode.
#ifndef RDFPARAMS_STORAGE_BUFFER_POOL_H_
#define RDFPARAMS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/snapshot_file.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace rdfparams::storage {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferPool;

/// RAII pin on one cached page. Movable, not copyable; releasing the last
/// ref makes the frame evictable again (the cached bytes stay until the
/// clock actually reuses the frame).
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  uint64_t page_id() const { return page_id_; }
  /// Payload bytes (the page minus its CRC field).
  std::span<const uint8_t> payload() const { return payload_; }

  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame, uint64_t page_id,
          std::span<const uint8_t> payload)
      : pool_(pool), frame_(frame), page_id_(page_id), payload_(payload) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  uint64_t page_id_ = 0;
  std::span<const uint8_t> payload_;
};

class BufferPool {
 public:
  /// Sentinel frame index for refs handed out by a borrowed pool.
  static constexpr size_t kBorrowedFrame = static_cast<size_t>(-1);

  /// `file` must outlive the pool. `capacity` is in pages (>= 1).
  BufferPool(const SnapshotFile* file, size_t capacity);
  /// Borrowed-frame mode: pages are served as views into `mapping`, which
  /// must cover the whole file. CRCs are verified once per page on first
  /// touch. `file` must outlive the pool; the mapping is kept alive here.
  BufferPool(const SnapshotFile* file,
             std::shared_ptr<const util::MmapFile> mapping);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned ref to the page, loading (and CRC-verifying) it on a
  /// miss. Fails with kUnavailable when every frame is pinned, and with
  /// the underlying DataLoss/IOError when the page cannot be loaded.
  /// Raw-section pages are refused in both modes — they have no page CRC.
  [[nodiscard]] Result<PageRef> Fetch(uint64_t page_id);

  /// Borrowed mode only: marks every page as CRC-verified. Sound exactly
  /// when the whole-file checksum has just been verified over this same
  /// mapping — the file CRC covers every pre-footer byte, so each page is
  /// already known intact and the per-page check would be redundant work.
  void MarkAllVerified();

  bool borrowed() const { return mapping_ != nullptr; }
  size_t capacity() const { return frames_.size(); }
  uint32_t page_size() const { return file_->page_size(); }
  /// Number of frames with at least one live pin (always 0 when borrowed).
  size_t pinned_frames() const;
  BufferPoolStats stats() const;

 private:
  friend class PageRef;

  struct Frame {
    uint64_t page_id = 0;
    uint32_t pins = 0;
    bool referenced = false;
    bool valid = false;
    std::vector<uint8_t> data;
  };

  void Unpin(size_t frame_idx);
  [[nodiscard]] Result<PageRef> FetchBorrowed(uint64_t page_id);

  const SnapshotFile* file_;
  std::shared_ptr<const util::MmapFile> mapping_;  // null in copied mode
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, size_t> frame_of_page_;
  std::vector<bool> verified_;  // borrowed mode: page CRC checked already
  size_t hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace rdfparams::storage

#endif  // RDFPARAMS_STORAGE_BUFFER_POOL_H_

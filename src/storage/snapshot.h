// Snapshot: save/open an entire dictionary + triple store as one
// checksummed paged file (format.h).
//
// The contract is byte-identity: a store opened from a snapshot is
// indistinguishable from the fresh load that produced it — same TermIds
// (terms are re-interned in id order), same index runs (adopted verbatim,
// never re-sorted), same derived statistics (recomputed by the same code
// path Finalize uses). tests/storage_snapshot_test.cc enforces this
// differentially, down to classify/run/explain output bytes.
//
// `app_meta` is an opaque blob the storage layer round-trips untouched;
// the server layer uses it for workload metadata (generator entity lists)
// so `serve --snapshot` can rebuild templates without re-generating.
#ifndef RDFPARAMS_STORAGE_SNAPSHOT_H_
#define RDFPARAMS_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "storage/format.h"
#include "util/status.h"

namespace rdfparams::storage {

struct SaveOptions {
  uint32_t page_size = kDefaultPageSize;
};

struct OpenOptions {
  /// Buffer pool capacity in pages while restoring.
  size_t pool_pages = 256;
  /// Verify the footer's whole-file CRC with a streaming pass before
  /// decoding anything. Catches flips in padding and page CRC fields that
  /// per-page checks cannot see; costs one sequential read of the file.
  bool verify_file_checksum = true;
};

/// Everything a snapshot restores.
struct OpenedSnapshot {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  std::string app_meta;       ///< empty when has_app_meta is false
  bool has_app_meta = false;  ///< whether the file carried an app-meta section
};

/// Decoded header plus file facts, for the CLI `open` (inspect) verb.
struct SnapshotInfo {
  SnapshotHeader header;
  uint64_t file_size = 0;
};

class Snapshot {
 public:
  /// Writes `dict` + `store` (+ optional `app_meta`, skipped when empty) to
  /// `path` atomically (temp file + rename). The store must be finalized;
  /// all built index runs are serialized, and the all-indexes flag records
  /// which set. Fails without touching `path` on any error.
  [[nodiscard]] static Status Save(const rdf::Dictionary& dict,
                     const rdf::TripleStore& store, std::string_view app_meta,
                     const std::string& path, const SaveOptions& options = {});

  /// Opens a snapshot: verifies checksums, re-interns the dictionary in id
  /// order, adopts the index runs verbatim, and returns the restored parts.
  /// Any corruption or format violation is a clean DataLoss / ParseError —
  /// never a crash or a silently wrong store.
  [[nodiscard]] static Result<OpenedSnapshot> Open(const std::string& path,
                                     const OpenOptions& options = {});

  /// Validates checksums and returns the decoded header without restoring
  /// the store (the cheap integrity check behind the CLI `open` verb).
  [[nodiscard]] static Result<SnapshotInfo> Inspect(const std::string& path);
};

}  // namespace rdfparams::storage

#endif  // RDFPARAMS_STORAGE_SNAPSHOT_H_

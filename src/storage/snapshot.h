// Snapshot: save/open an entire dictionary + triple store as one
// checksummed paged file (format.h).
//
// The contract is byte-identity: a store opened from a snapshot is
// indistinguishable from the fresh load that produced it — same TermIds
// (terms are re-interned in id order), same index runs (adopted verbatim,
// never re-sorted), same derived statistics (recomputed by the same code
// path Finalize uses). tests/storage_snapshot_test.cc enforces this
// differentially, down to classify/run/explain output bytes.
//
// `app_meta` is an opaque blob the storage layer round-trips untouched;
// the server layer uses it for workload metadata (generator entity lists)
// so `serve --snapshot` can rebuild templates without re-generating.
#ifndef RDFPARAMS_STORAGE_SNAPSHOT_H_
#define RDFPARAMS_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "storage/format.h"
#include "util/status.h"

namespace rdfparams::storage {

struct SaveOptions {
  uint32_t page_size = kDefaultPageSize;
  /// On-disk format to write. 2 (default) serializes the dictionary's raw
  /// arena/records/hash sections; 1 writes the legacy byte-stream
  /// dictionary for downgrade compatibility.
  uint32_t format_version = kFormatVersion;
};

/// Whether Open memory-maps the file and borrows pages/dictionary bytes
/// from the mapping instead of copying them.
enum class MmapMode {
  kOff,   ///< always copy (RandomAccessFile reads)
  kOn,    ///< require mmap; fail if unavailable
  kAuto,  ///< mmap when the platform supports it, else fall back to copy
};

/// Filled by Open when OpenOptions::stats is set: which path ran and where
/// the time went. Phase seconds are wall-clock (steady_clock).
struct OpenStats {
  uint32_t format_version = 0;
  bool mmap_used = false;
  double checksum_seconds = 0;  ///< whole-file CRC verification pass
  double dict_seconds = 0;      ///< dictionary restore (re-intern or adopt)
  double runs_seconds = 0;      ///< index-run decode + adoption
  double meta_seconds = 0;      ///< app-meta read
};

struct OpenOptions {
  /// Buffer pool capacity in pages while restoring (copied mode only; a
  /// borrowed pool has no frames).
  size_t pool_pages = 256;
  /// Verify the footer's whole-file CRC with a streaming pass before
  /// decoding anything. Catches flips in padding and page CRC fields that
  /// per-page checks cannot see; costs one sequential read of the file.
  bool verify_file_checksum = true;
  /// Zero-copy open mode (see MmapMode).
  MmapMode mmap = MmapMode::kAuto;
  /// When non-null, receives open-path statistics and phase timings.
  OpenStats* stats = nullptr;
};

/// Everything a snapshot restores.
struct OpenedSnapshot {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  std::string app_meta;       ///< empty when has_app_meta is false
  bool has_app_meta = false;  ///< whether the file carried an app-meta section
};

/// Decoded header plus file facts, for the CLI `open` (inspect) verb.
struct SnapshotInfo {
  SnapshotHeader header;
  uint64_t file_size = 0;
};

class Snapshot {
 public:
  /// Writes `dict` + `store` (+ optional `app_meta`, skipped when empty) to
  /// `path` atomically (temp file + rename). The store must be finalized;
  /// all built index runs are serialized, and the all-indexes flag records
  /// which set. Fails without touching `path` on any error.
  [[nodiscard]] static Status Save(const rdf::Dictionary& dict,
                     const rdf::TripleStore& store, std::string_view app_meta,
                     const std::string& path, const SaveOptions& options = {});

  /// Opens a snapshot: verifies checksums, restores the dictionary (v2:
  /// adopts the raw arena/records/hash sections verbatim, borrowed from
  /// the mapping when mmap'd; v1: re-interns in id order), adopts the
  /// index runs, and returns the restored parts. Output is byte-identical
  /// across format versions and open modes. Any corruption or format
  /// violation is a clean DataLoss / ParseError — never a crash or a
  /// silently wrong store.
  [[nodiscard]] static Result<OpenedSnapshot> Open(const std::string& path,
                                     const OpenOptions& options = {});

  /// Validates checksums and returns the decoded header without restoring
  /// the store (the cheap integrity check behind the CLI `open` verb).
  [[nodiscard]] static Result<SnapshotInfo> Inspect(const std::string& path);
};

}  // namespace rdfparams::storage

#endif  // RDFPARAMS_STORAGE_SNAPSHOT_H_

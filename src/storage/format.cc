#include "storage/format.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32.h"

namespace rdfparams::storage {

bool ValidPageSize(uint32_t page_size) {
  return page_size >= kMinPageSize && page_size <= kMaxPageSize &&
         (page_size & (page_size - 1)) == 0;
}

const SectionInfo* SnapshotHeader::FindSection(uint32_t kind) const {
  for (const SectionInfo& s : sections) {
    if (s.kind == kind) return &s;
  }
  return nullptr;
}

void SealPage(uint64_t page_id, std::span<uint8_t> page) {
  RDFPARAMS_DCHECK(page.size() > kPageCrcBytes);
  uint32_t crc = util::Crc32Seeded(page_id, page.data() + kPageCrcBytes,
                                   page.size() - kPageCrcBytes);
  util::StoreU32(page.data(), crc);
}

Status VerifyPage(uint64_t page_id, std::span<const uint8_t> page) {
  RDFPARAMS_DCHECK(page.size() > kPageCrcBytes);
  uint32_t stored = util::LoadU32(page.data());
  uint32_t actual = util::Crc32Seeded(page_id, page.data() + kPageCrcBytes,
                                      page.size() - kPageCrcBytes);
  if (stored != actual) {
    return Status::DataLoss("page " + std::to_string(page_id) +
                            " checksum mismatch");
  }
  return Status::OK();
}

Result<std::string> EncodeHeaderPayload(const SnapshotHeader& header) {
  std::string out;
  out.append(kHeaderMagic, sizeof(kHeaderMagic));
  util::AppendU32(&out, header.version);
  util::AppendU32(&out, header.page_size);
  util::AppendU64(&out, header.page_count);
  util::AppendU32(&out, header.flags);
  util::AppendU32(&out, static_cast<uint32_t>(header.sections.size()));
  for (const SectionInfo& s : header.sections) {
    util::AppendU32(&out, s.kind);
    util::AppendU64(&out, s.first_page);
    util::AppendU64(&out, s.page_count);
    util::AppendU64(&out, s.byte_length);
    util::AppendU64(&out, s.item_count);
    if (header.version >= 2) util::AppendU32(&out, s.crc32);
  }
  if (out.size() > PayloadSize(header.page_size)) {
    return Status::Internal("snapshot header does not fit one page");
  }
  return out;
}

Result<SnapshotHeader> DecodeHeaderPayload(std::span<const uint8_t> payload,
                                           uint64_t file_size) {
  if (payload.size() < sizeof(kHeaderMagic) ||
      std::memcmp(payload.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return Status::ParseError("not a rdfparams snapshot (bad magic)");
  }
  util::Decoder dec(std::string_view(
      reinterpret_cast<const char*>(payload.data()) + sizeof(kHeaderMagic),
      payload.size() - sizeof(kHeaderMagic)));

  SnapshotHeader header;
  RDFPARAMS_ASSIGN_OR_RETURN(header.version, dec.ReadU32());
  if (header.version < kMinFormatVersion || header.version > kFormatVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(header.version));
  }
  RDFPARAMS_ASSIGN_OR_RETURN(header.page_size, dec.ReadU32());
  if (!ValidPageSize(header.page_size)) {
    return Status::ParseError("invalid snapshot page size " +
                              std::to_string(header.page_size));
  }
  RDFPARAMS_ASSIGN_OR_RETURN(header.page_count, dec.ReadU64());
  if (header.page_count < 2 ||
      header.page_count != file_size / header.page_size ||
      file_size % header.page_size != 0) {
    return Status::ParseError("snapshot page count does not match file size");
  }
  RDFPARAMS_ASSIGN_OR_RETURN(header.flags, dec.ReadU32());
  if ((header.flags & ~kFlagAllIndexes) != 0) {
    return Status::ParseError("unknown snapshot flags");
  }
  uint32_t section_count = 0;
  RDFPARAMS_ASSIGN_OR_RETURN(section_count, dec.ReadU32());
  // The table must fit the header page, which bounds section_count tightly.
  if (section_count >
      PayloadSize(header.page_size) / SectionEntryBytes(header.version)) {
    return Status::ParseError("snapshot section table too large");
  }
  uint64_t next_free_page = 1;  // pages 0 (header) and N-1 (footer) are fixed
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionInfo s;
    RDFPARAMS_ASSIGN_OR_RETURN(s.kind, dec.ReadU32());
    RDFPARAMS_ASSIGN_OR_RETURN(s.first_page, dec.ReadU64());
    RDFPARAMS_ASSIGN_OR_RETURN(s.page_count, dec.ReadU64());
    RDFPARAMS_ASSIGN_OR_RETURN(s.byte_length, dec.ReadU64());
    RDFPARAMS_ASSIGN_OR_RETURN(s.item_count, dec.ReadU64());
    if (header.version >= 2) {
      RDFPARAMS_ASSIGN_OR_RETURN(s.crc32, dec.ReadU32());
    }
    // v1 carries the byte-stream dictionary; v2 carries the raw
    // arena/records/hash triple instead. Neither accepts the other's kinds.
    bool known =
        s.kind == kSectionAppMeta ||
        (s.kind >= kSectionIndexBase && s.kind < kSectionIndexBase + 6) ||
        (header.version == 1 ? s.kind == kSectionDictionary
                             : IsRawSectionKind(s.kind));
    if (!known) {
      return Status::ParseError("unknown snapshot section kind " +
                                std::to_string(s.kind));
    }
    if (header.FindSection(s.kind) != nullptr) {
      return Status::ParseError("duplicate snapshot section kind " +
                                std::to_string(s.kind));
    }
    // Lengths are bounded by the file itself (every item/byte occupies at
    // least one file byte), which also rules out overflow below.
    if (s.byte_length > file_size || s.item_count > file_size) {
      return Status::ParseError("snapshot section length inconsistent");
    }
    // The exact page count is implied by the packing discipline.
    uint64_t payload = PayloadSize(header.page_size);
    uint64_t expected_pages;
    if (s.kind >= kSectionIndexBase && s.kind < kSectionIndexBase + 6) {
      uint64_t per_page = TriplesPerPage(header.page_size);
      if (s.byte_length != s.item_count * kTripleBytes) {
        return Status::ParseError("snapshot section length inconsistent");
      }
      expected_pages = (s.item_count + per_page - 1) / per_page;
    } else if (IsRawSectionKind(s.kind)) {
      expected_pages = RawSectionPages(s.byte_length, header.page_size);
    } else {
      expected_pages = (s.byte_length + payload - 1) / payload;
    }
    if (s.page_count != expected_pages) {
      return Status::ParseError("snapshot section length inconsistent");
    }
    if (s.page_count == 0) {
      if (s.first_page != 0) {
        return Status::ParseError("empty snapshot section with payload");
      }
    } else {
      // Sections are laid out in table order, densely, between the header
      // and the footer.
      if (s.first_page != next_free_page ||
          s.first_page + s.page_count > header.page_count - 1) {
        return Status::ParseError("snapshot section out of bounds");
      }
      next_free_page = s.first_page + s.page_count;
    }
    header.sections.push_back(s);
  }
  if (next_free_page != header.page_count - 1) {
    return Status::ParseError("snapshot sections do not cover the file");
  }
  return header;
}

std::string EncodeFooterPayload(uint64_t page_count, uint32_t file_crc) {
  std::string out;
  out.append(kFooterMagic, sizeof(kFooterMagic));
  util::AppendU64(&out, page_count);
  util::AppendU32(&out, file_crc);
  return out;
}

Result<uint32_t> DecodeFooterPayload(std::span<const uint8_t> payload,
                                     uint64_t expected_page_count) {
  if (payload.size() < sizeof(kFooterMagic) + 12 ||
      std::memcmp(payload.data(), kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return Status::ParseError("snapshot footer magic missing");
  }
  uint64_t page_count = util::LoadU64(payload.data() + sizeof(kFooterMagic));
  if (page_count != expected_page_count) {
    return Status::ParseError("snapshot footer page count mismatch");
  }
  return util::LoadU32(payload.data() + sizeof(kFooterMagic) + 8);
}

}  // namespace rdfparams::storage

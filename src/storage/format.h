// On-disk snapshot format: a single file of fixed-size checksummed pages.
//
//   page 0            header: magic, version, page size, section table
//   pages 1..N-2      section payloads (dictionary, index runs, app meta)
//   page N-1          footer: magic, page count, whole-file CRC32
//
// Every page is `page_size` bytes: a u32 CRC32 of the payload (seeded with
// the page number, so a page copied to the wrong offset fails even when
// its bytes are internally intact) followed by `page_size - 4` payload
// bytes. The footer's file CRC covers every byte before the footer page —
// including the other pages' CRC fields and padding — so any single bit
// flip anywhere in the file is caught either by a page CRC or by the file
// CRC, and always as a clean Status, never as a wrong answer.
//
// Sections start on a fresh page. Three packing disciplines:
//   * byte-stream sections (v1 dictionary, app meta): payload areas of the
//     section's pages concatenate into one byte stream; records straddle
//     page boundaries freely.
//   * record sections (index runs): fixed 12-byte triples that never
//     straddle a page — floor(payload / 12) triples per page, the rest
//     zero padding — so triple i is addressable as (page, offset) without
//     reading its neighbours. This is what makes the paged accessors and
//     larger-than-memory scans O(1) per step.
//   * raw sections (v2 dictionary arena / records / hash): the payload
//     fills entire pages with NO per-page CRC field, so the section's
//     bytes are contiguous in the file and an mmap'd open can adopt them
//     verbatim (a per-page CRC hole would force a gather copy). Integrity
//     keeps two layers regardless: the section's own CRC32 (stored in its
//     table entry, seeded with the section kind, verified on every open)
//     plus the footer's whole-file CRC, which covers raw pages like any
//     other pre-footer byte.
//
// Format v2 (kFormatVersion): replaces the v1 byte-stream dictionary
// section with three raw sections — string arena, fixed-width term
// records, open-addressing term->id hash — serialized straight from
// rdf::Dictionary's wire representation, and widens each section-table
// entry with the raw-section CRC32 field. v1 files still open through the
// re-intern path; v1 never contains raw kinds, v2 never contains kind 1.
#ifndef RDFPARAMS_STORAGE_FORMAT_H_
#define RDFPARAMS_STORAGE_FORMAT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "util/status.h"

namespace rdfparams::storage {

inline constexpr char kHeaderMagic[8] = {'R', 'D', 'F', 'P',
                                         'S', 'N', 'P', '1'};
inline constexpr char kFooterMagic[8] = {'R', 'D', 'F', 'P',
                                         'F', 'T', 'R', '1'};
inline constexpr uint32_t kFormatVersion = 2;
/// Oldest version this build still opens (v1 via the re-intern path).
inline constexpr uint32_t kMinFormatVersion = 1;

inline constexpr uint32_t kMinPageSize = 512;
inline constexpr uint32_t kMaxPageSize = 1u << 20;
inline constexpr uint32_t kDefaultPageSize = 4096;

/// CRC field at the front of every page.
inline constexpr size_t kPageCrcBytes = 4;

/// Serialized triple record width (3 x u32 little-endian).
inline constexpr size_t kTripleBytes = 12;

/// True iff `page_size` is a power of two within the supported range.
bool ValidPageSize(uint32_t page_size);

inline size_t PayloadSize(uint32_t page_size) {
  return page_size - kPageCrcBytes;
}

inline uint64_t TriplesPerPage(uint32_t page_size) {
  return PayloadSize(page_size) / kTripleBytes;
}

enum SectionKind : uint32_t {
  kSectionDictionary = 1,  ///< v1 only: byte-stream of (kind, lex, dt, lang)
  // Index runs: kSectionIndexBase + static_cast<uint32_t>(IndexOrder).
  kSectionIndexBase = 2,
  kSectionAppMeta = 8,
  // v2 raw dictionary sections (rdf::Dictionary wire representation).
  kSectionDictArena = 16,
  kSectionDictRecords = 17,
  kSectionDictHash = 18,
};

inline uint32_t SectionKindForIndex(rdf::IndexOrder order) {
  return kSectionIndexBase + static_cast<uint32_t>(order);
}

/// True for sections stored with the raw discipline (full pages, no page
/// CRC, contiguous bytes, per-section CRC in the table entry).
inline bool IsRawSectionKind(uint32_t kind) {
  return kind >= kSectionDictArena && kind <= kSectionDictHash;
}

/// Pages occupied by a raw section of `byte_length` bytes.
inline uint64_t RawSectionPages(uint64_t byte_length, uint32_t page_size) {
  return (byte_length + page_size - 1) / page_size;
}

/// Header flag bits.
inline constexpr uint32_t kFlagAllIndexes = 1u << 0;

/// One entry of the header's section table. v1 entries are 36 bytes; v2
/// entries append the 4-byte section CRC (meaningful for raw sections,
/// zero otherwise).
struct SectionInfo {
  uint32_t kind = 0;
  uint64_t first_page = 0;   ///< 0 for empty sections
  uint64_t page_count = 0;
  uint64_t byte_length = 0;  ///< meaningful payload bytes, excluding padding
  uint64_t item_count = 0;   ///< terms / triples; 0 for byte-only sections
  uint32_t crc32 = 0;        ///< raw sections: Crc32Seeded(kind, bytes)
};

/// Serialized section-table entry size for a given format version.
inline size_t SectionEntryBytes(uint32_t version) {
  return version >= 2 ? 40 : 36;
}

/// Decoded header page.
struct SnapshotHeader {
  uint32_t version = kFormatVersion;
  uint32_t page_size = kDefaultPageSize;
  uint64_t page_count = 0;  ///< total pages, including header and footer
  uint32_t flags = 0;
  std::vector<SectionInfo> sections;

  bool all_indexes() const { return (flags & kFlagAllIndexes) != 0; }
  const SectionInfo* FindSection(uint32_t kind) const;
};

/// Seals a page in place: computes the payload CRC (seeded with `page_id`)
/// and stores it in the page's first four bytes. `page` must be the full
/// page_size bytes.
void SealPage(uint64_t page_id, std::span<uint8_t> page);

/// Verifies a sealed page's CRC. DataLoss on mismatch.
[[nodiscard]] Status VerifyPage(uint64_t page_id, std::span<const uint8_t> page);

/// Encodes the header payload (magic .. section table). Fails if the
/// encoding does not fit one page payload.
[[nodiscard]] Result<std::string> EncodeHeaderPayload(const SnapshotHeader& header);

/// Decodes and validates a header payload: magic, version, page size,
/// section table sanity (pages in range, no overlap with header/footer).
/// `file_size` bounds the page table. ParseError on any format violation.
[[nodiscard]] Result<SnapshotHeader> DecodeHeaderPayload(std::span<const uint8_t> payload,
                                           uint64_t file_size);

/// Encodes the footer payload (magic, page count, whole-file CRC).
std::string EncodeFooterPayload(uint64_t page_count, uint32_t file_crc);

/// Decodes a footer payload; checks the magic and that `page_count`
/// matches the header's. Returns the stored whole-file CRC.
[[nodiscard]] Result<uint32_t> DecodeFooterPayload(std::span<const uint8_t> payload,
                                     uint64_t expected_page_count);

}  // namespace rdfparams::storage

#endif  // RDFPARAMS_STORAGE_FORMAT_H_

// SNB-style social network generator (the project's S3G2 / LDBC substitute).
//
// The correlations the paper's E2/E4 experiments rely on are generated
// explicitly:
//   * first names correlate with the home country (name regions), so the
//     intro example (firstName x livesIn) has wildly varying selectivity;
//   * friendship edges prefer same-country pairs and node degrees are
//     heavy-tailed, so "posts of my friends" (Q2) fan-out is skewed;
//   * country visits combine home, neighbors and tourism popularity, so
//     |visitors(X) CAP visitors(Y)| spans orders of magnitude across pairs
//     (USA+Canada large, Finland+Zimbabwe nearly empty) — the E4 plan flip.
#ifndef RDFPARAMS_SNB_GENERATOR_H_
#define RDFPARAMS_SNB_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace rdfparams::snb {

struct GeneratorConfig {
  uint64_t num_persons = 2000;
  /// Average number of knows-edges per person (each edge stored in both
  /// directions).
  double avg_degree = 12.0;
  /// Zipf exponent of the degree distribution (larger = more skew).
  double degree_zipf_s = 1.4;
  /// Probability that a friend lives in the same country.
  double same_country_friend_prob = 0.7;
  /// Mean number of posts per person (exponential, heavy right tail).
  double posts_per_person = 15.0;
  uint64_t max_posts_per_person = 400;
  /// Number of distinct tags for posts.
  uint32_t num_tags = 400;
  /// Probability that a first name is drawn from the home region's pool
  /// (the rest is drawn from the global pool) — the name/country
  /// correlation knob.
  double regional_name_prob = 0.85;
  uint64_t seed = 7;
};

struct Vocabulary {
  std::string rdf_type;
  std::string person_class;
  std::string post_class;
  std::string first_name;     ///< snb:firstName (literal)
  std::string lives_in;       ///< snb:livesIn (country IRI)
  std::string knows;          ///< snb:knows (person, symmetric)
  std::string has_creator;    ///< snb:hasCreator (post -> person)
  std::string creation_date;  ///< snb:creationDate (integer timestamp)
  std::string has_tag;        ///< snb:hasTag (post -> tag)
  std::string has_been_to;    ///< snb:hasBeenTo (person -> country)
  std::string has_interest;   ///< snb:hasInterest (person -> tag)

  static Vocabulary Default();
};

/// Static country metadata used by the generator.
struct CountryInfo {
  const char* name;
  uint32_t region;           ///< name-region index
  double population_weight;  ///< P(person lives here)
  double tourism_weight;     ///< attractiveness for visits
  std::vector<int> neighbors;
};

/// The built-in country table (~32 entries).
const std::vector<CountryInfo>& Countries();

/// Generated dataset plus the entity lists used for parameter domains.
struct Dataset {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  Vocabulary vocab;

  std::vector<rdf::TermId> persons;
  std::vector<rdf::TermId> countries;  ///< aligned with Countries()
  std::vector<rdf::TermId> tags;
  std::vector<rdf::TermId> posts;
  std::vector<rdf::TermId> first_names;  ///< distinct name literals

  /// persons[i] lives in countries[home_country[i]].
  std::vector<uint32_t> home_country;
};

Dataset Generate(const GeneratorConfig& config);

}  // namespace rdfparams::snb

#endif  // RDFPARAMS_SNB_GENERATOR_H_

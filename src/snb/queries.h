// LDBC-style query templates over the social network dataset, including the
// two queries the paper measures:
//   Q2 — the newest 20 posts of %person's friends    (E2 group table)
//   Q3 — 2-hop friends who visited both %countryX and %countryY
//        (E4: the optimal plan flips with the country pair)
#ifndef RDFPARAMS_SNB_QUERIES_H_
#define RDFPARAMS_SNB_QUERIES_H_

#include <vector>

#include "snb/generator.h"
#include "sparql/query_template.h"

namespace rdfparams::snb {

/// Q1 (the paper's intro example): persons by first name and country.
sparql::QueryTemplate MakeQ1(const Dataset& ds);

/// Q2: newest 20 posts of the friends of %person.
sparql::QueryTemplate MakeQ2(const Dataset& ds);

/// Q3: distinct friends-of-friends of %person who have been to both
/// %countryX and %countryY.
sparql::QueryTemplate MakeQ3(const Dataset& ds);

/// Q4: posts of %person's friends carrying %tag.
sparql::QueryTemplate MakeQ4(const Dataset& ds);

std::vector<sparql::QueryTemplate> AllTemplates(const Dataset& ds);

/// Parameter domains ---------------------------------------------------------

std::vector<rdf::TermId> PersonDomain(const Dataset& ds);
std::vector<rdf::TermId> CountryDomain(const Dataset& ds);
std::vector<rdf::TermId> NameDomain(const Dataset& ds);
std::vector<rdf::TermId> TagDomain(const Dataset& ds);

/// All unordered country pairs (X != Y) as explicit 2-tuples, for Q3.
std::vector<sparql::ParameterBinding> CountryPairDomain(const Dataset& ds);

}  // namespace rdfparams::snb

#endif  // RDFPARAMS_SNB_QUERIES_H_

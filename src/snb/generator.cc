#include "snb/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "rdf/vocab.h"
#include "util/hash.h"
#include "util/rng.h"

namespace rdfparams::snb {

using rdf::TermId;

Vocabulary Vocabulary::Default() {
  const std::string ns(rdf::vocab::kSnbNs);
  Vocabulary v;
  v.rdf_type = std::string(rdf::vocab::kRdfType);
  v.person_class = ns + "Person";
  v.post_class = ns + "Post";
  v.first_name = ns + "firstName";
  v.lives_in = ns + "livesIn";
  v.knows = ns + "knows";
  v.has_creator = ns + "hasCreator";
  v.creation_date = ns + "creationDate";
  v.has_tag = ns + "hasTag";
  v.has_been_to = ns + "hasBeenTo";
  v.has_interest = ns + "hasInterest";
  return v;
}

const std::vector<CountryInfo>& Countries() {
  // Regions: 0=NorthAmerica 1=LatinAmerica 2=WestEurope 3=NorthEurope
  //          4=EastEurope 5=EastAsia 6=SouthAsia 7=Africa/Oceania
  static const std::vector<CountryInfo> kCountries = [] {
    std::vector<CountryInfo> c;
    auto add = [&](const char* name, uint32_t region, double pop, double tour,
                   std::vector<int> neighbors) {
      c.push_back(CountryInfo{name, region, pop, tour, std::move(neighbors)});
    };
    //    name            region  pop    tour   neighbors (indices)
    add("USA",               0,  22.0,  30.0, {1, 2});        // 0
    add("Canada",            0,   4.0,  12.0, {0});           // 1
    add("Mexico",            1,   8.0,  10.0, {0});           // 2
    add("Brazil",            1,  12.0,   9.0, {4, 5});        // 3
    add("Argentina",         1,   3.0,   5.0, {3, 5});        // 4
    add("Chile",             1,   1.5,   3.0, {3, 4});        // 5
    add("UnitedKingdom",     2,   6.0,  18.0, {7, 8});        // 6
    add("France",            2,   6.0,  25.0, {6, 8, 9});     // 7
    add("Germany",           2,   8.0,  16.0, {7, 9, 10, 16});// 8
    add("Spain",             2,   4.5,  20.0, {7});           // 9
    add("Netherlands",       2,   1.7,   8.0, {8});           // 10
    add("Italy",             2,   5.5,  19.0, {7, 8});        // 11
    add("Sweden",            3,   1.0,   4.0, {13, 14});      // 12
    add("Norway",            3,   0.6,   3.5, {12, 14});      // 13
    add("Finland",           3,   0.6,   2.5, {12, 13});      // 14
    add("Denmark",           3,   0.6,   3.0, {8, 12});       // 15
    add("Poland",            4,   3.8,   4.0, {8, 17});       // 16
    add("Ukraine",           4,   3.5,   1.5, {16, 18});      // 17
    add("Russia",            4,  12.0,   4.0, {17, 19});      // 18
    add("Kazakhstan",        4,   1.5,   0.8, {18, 20});      // 19
    add("China",             5,  60.0,  14.0, {19, 21, 22, 24}); // 20
    add("Japan",             5,  11.0,  12.0, {20, 22});      // 21
    add("SouthKorea",        5,   5.0,   6.0, {20, 21});      // 22
    add("Vietnam",           5,   8.0,   4.0, {20});          // 23
    add("India",             6,  55.0,   9.0, {20, 25});      // 24
    add("Pakistan",          6,  15.0,   1.2, {24});          // 25
    add("Indonesia",         6,  20.0,   5.0, {23});          // 26
    add("Egypt",             7,   8.0,   6.0, {28});          // 27
    add("Nigeria",           7,  16.0,   1.0, {27});          // 28
    add("SouthAfrica",       7,   5.0,   4.0, {30});          // 29
    add("Zimbabwe",          7,   1.2,   0.5, {29});          // 30
    add("Australia",         7,   2.2,   8.0, {31});          // 31  (region reuse)
    return c;
  }();
  return kCountries;
}

namespace {

/// Regional first-name pools; region index matches CountryInfo::region.
const std::vector<std::vector<const char*>>& NamePools() {
  static const std::vector<std::vector<const char*>> kPools = {
      /*0 NA*/ {"John", "Mary", "James", "Jennifer", "Robert", "Linda",
                "Michael", "Elizabeth", "William", "Barbara"},
      /*1 LA*/ {"Jose", "Maria", "Juan", "Guadalupe", "Luis", "Carmen",
                "Carlos", "Ana", "Jorge", "Sofia"},
      /*2 WE*/ {"Jean", "Marie", "Hans", "Anna", "Pierre", "Emma",
                "Giovanni", "Laura", "Pablo", "Lucia"},
      /*3 NE*/ {"Erik", "Astrid", "Lars", "Ingrid", "Mikko", "Aino",
                "Soren", "Freja", "Olav", "Sigrid"},
      /*4 EE*/ {"Ivan", "Olga", "Piotr", "Katarzyna", "Dmitri", "Natasha",
                "Andriy", "Oksana", "Sergei", "Elena"},
      /*5 EA*/ {"Li", "Wei", "Chen", "Yuki", "Hiroshi", "Sakura",
                "Minjun", "Jiwoo", "Wang", "Mei"},
      /*6 SA*/ {"Raj", "Priya", "Amit", "Ananya", "Muhammad", "Fatima",
                "Arjun", "Lakshmi", "Budi", "Siti"},
      /*7 AF*/ {"Ahmed", "Amara", "Kwame", "Zanele", "Chinedu", "Ngozi",
                "Tendai", "Thabo", "Jack", "Olivia"},
  };
  return kPools;
}

}  // namespace

Dataset Generate(const GeneratorConfig& config) {
  Dataset ds;
  ds.vocab = Vocabulary::Default();
  const Vocabulary& V = ds.vocab;
  const std::string inst(rdf::vocab::kSnbInst);
  const std::vector<CountryInfo>& countries = Countries();

  rdf::Dictionary& dict = ds.dict;
  rdf::TripleStore& store = ds.store;

  TermId p_type = dict.InternIri(V.rdf_type);
  TermId c_person = dict.InternIri(V.person_class);
  TermId c_post = dict.InternIri(V.post_class);
  TermId p_first_name = dict.InternIri(V.first_name);
  TermId p_lives_in = dict.InternIri(V.lives_in);
  TermId p_knows = dict.InternIri(V.knows);
  TermId p_has_creator = dict.InternIri(V.has_creator);
  TermId p_creation_date = dict.InternIri(V.creation_date);
  TermId p_has_tag = dict.InternIri(V.has_tag);
  TermId p_has_been_to = dict.InternIri(V.has_been_to);
  TermId p_has_interest = dict.InternIri(V.has_interest);

  util::Rng base(config.seed);
  util::Rng person_rng = base.Fork(1);
  util::Rng friend_rng = base.Fork(2);
  util::Rng post_rng = base.Fork(3);
  util::Rng travel_rng = base.Fork(4);

  // Countries and tags.
  for (size_t i = 0; i < countries.size(); ++i) {
    TermId id = dict.InternIri(inst + "Country_" + countries[i].name);
    ds.countries.push_back(id);
  }
  for (uint32_t i = 0; i < config.num_tags; ++i) {
    ds.tags.push_back(dict.InternIri(inst + "Tag" + std::to_string(i)));
  }

  // Name literals per region plus the flat global list.
  const auto& pools = NamePools();
  std::vector<std::vector<TermId>> region_names(pools.size());
  std::vector<TermId> all_names;
  for (size_t r = 0; r < pools.size(); ++r) {
    for (const char* name : pools[r]) {
      TermId id = dict.InternLiteral(name);
      region_names[r].push_back(id);
      all_names.push_back(id);
    }
  }
  ds.first_names = all_names;
  std::sort(ds.first_names.begin(), ds.first_names.end());
  ds.first_names.erase(
      std::unique(ds.first_names.begin(), ds.first_names.end()),
      ds.first_names.end());

  // Country assignment by population; name popularity within a region is
  // itself Zipf-skewed (a few very common names).
  std::vector<double> pop_weights;
  for (const CountryInfo& c : countries) pop_weights.push_back(c.population_weight);
  util::AliasTable country_table(pop_weights);
  util::ZipfDistribution name_rank(10, 0.9);

  // ---------------------------------------------------------------------
  // Persons.
  // ---------------------------------------------------------------------
  uint64_t n = config.num_persons;
  ds.persons.reserve(n);
  ds.home_country.reserve(n);
  std::vector<std::vector<uint32_t>> persons_by_country(countries.size());
  for (uint64_t i = 0; i < n; ++i) {
    TermId person = dict.InternIri(inst + "Person" + std::to_string(i));
    ds.persons.push_back(person);
    uint32_t country = static_cast<uint32_t>(country_table.Sample(&person_rng));
    ds.home_country.push_back(country);
    persons_by_country[country].push_back(static_cast<uint32_t>(i));

    store.Add(person, p_type, c_person);
    store.Add(person, p_lives_in, ds.countries[country]);

    // First name: regional pool with high probability, global otherwise.
    TermId name;
    if (person_rng.Bernoulli(config.regional_name_prob)) {
      const auto& pool = region_names[countries[country].region];
      name = pool[static_cast<size_t>(name_rank.Sample(&person_rng) - 1) %
                  pool.size()];
    } else {
      name = all_names[static_cast<size_t>(
          person_rng.Uniform(all_names.size()))];
    }
    store.Add(person, p_first_name, name);

    // Interests.
    util::ZipfDistribution tag_zipf(config.num_tags, 1.1);
    uint64_t n_interests = 1 + person_rng.Uniform(4);
    for (uint64_t k = 0; k < n_interests; ++k) {
      store.Add(person, p_has_interest,
                ds.tags[static_cast<size_t>(tag_zipf.Sample(&person_rng) - 1)]);
    }
  }

  // ---------------------------------------------------------------------
  // Friendships: heavy-tailed degrees, country-correlated endpoints.
  // ---------------------------------------------------------------------
  std::vector<uint32_t> degree(n, 0);
  {
    // Target degree per person: 1 + Zipf-distributed extra edges scaled so
    // the mean lands near avg_degree.
    util::ZipfDistribution degree_zipf(512, config.degree_zipf_s);
    std::vector<uint32_t> target(n);
    double mean_raw = 0;
    for (uint64_t i = 0; i < n; ++i) {
      target[i] = static_cast<uint32_t>(degree_zipf.Sample(&friend_rng));
      mean_raw += target[i];
    }
    mean_raw /= static_cast<double>(n);
    double scale = config.avg_degree / std::max(mean_raw, 1e-9);
    std::unordered_set<uint64_t> edges;
    auto edge_key = [](uint32_t a, uint32_t b) {
      return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    };
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t want = static_cast<uint32_t>(
          std::max(1.0, std::round(target[i] * scale)));
      for (uint32_t e = 0; e < want; ++e) {
        uint32_t other;
        uint32_t attempts = 0;
        do {
          if (friend_rng.Bernoulli(config.same_country_friend_prob)) {
            const auto& pool = persons_by_country[ds.home_country[i]];
            other = pool[static_cast<size_t>(friend_rng.Uniform(pool.size()))];
          } else {
            other = static_cast<uint32_t>(friend_rng.Uniform(n));
          }
        } while (other == i && ++attempts < 8);
        if (other == i) continue;
        uint64_t key = edge_key(static_cast<uint32_t>(i), other);
        if (!edges.insert(key).second) continue;
        store.Add(ds.persons[i], p_knows, ds.persons[other]);
        store.Add(ds.persons[other], p_knows, ds.persons[i]);
        ++degree[i];
        ++degree[other];
      }
    }
  }

  // ---------------------------------------------------------------------
  // Posts with creation dates and tags.
  // ---------------------------------------------------------------------
  {
    util::ZipfDistribution tag_zipf(config.num_tags, 1.1);
    uint64_t post_counter = 0;
    for (uint64_t i = 0; i < n; ++i) {
      // A small celebrity fraction is hyper-active: a workload binding
      // whose person happens to know a celebrity is an order of magnitude
      // slower — the rare-heavy tail behind the paper's E2 instability.
      // (Ordinary posting activity is independent of the degree; the
      // degree's own Zipf tail already contributes heavy bindings.)
      bool celebrity = post_rng.Bernoulli(0.002);
      double mean = config.posts_per_person * (celebrity ? 100.0 : 1.0);
      uint64_t cap = celebrity ? config.max_posts_per_person * 10
                               : config.max_posts_per_person;
      uint64_t count = static_cast<uint64_t>(
          std::floor(post_rng.NextExponential(1.0 / std::max(mean, 1e-9))));
      count = std::min(count, cap);
      for (uint64_t k = 0; k < count; ++k) {
        TermId post =
            dict.InternIri(inst + "Post" + std::to_string(post_counter++));
        ds.posts.push_back(post);
        store.Add(post, p_type, c_post);
        store.Add(post, p_has_creator, ds.persons[i]);
        // Timestamp: integer seconds over a ~3-year window.
        int64_t ts = post_rng.UniformRange(1262304000, 1356998400);
        store.Add(post, p_creation_date, dict.InternInteger(ts));
        uint64_t n_tags = 1 + post_rng.Uniform(3);
        for (uint64_t t = 0; t < n_tags; ++t) {
          store.Add(post, p_has_tag,
                    ds.tags[static_cast<size_t>(
                        tag_zipf.Sample(&post_rng) - 1)]);
        }
      }
    }
  }

  // ---------------------------------------------------------------------
  // Travel: home + neighbors (likely) + tourism-popular extras.
  // ---------------------------------------------------------------------
  {
    std::vector<double> tourism;
    for (const CountryInfo& c : countries) tourism.push_back(c.tourism_weight);
    util::AliasTable tourism_table(tourism);
    for (uint64_t i = 0; i < n; ++i) {
      std::unordered_set<uint32_t> visited;
      uint32_t home = ds.home_country[i];
      visited.insert(home);
      for (int nb : countries[home].neighbors) {
        if (travel_rng.Bernoulli(0.45)) {
          visited.insert(static_cast<uint32_t>(nb));
        }
      }
      uint64_t extra = travel_rng.Uniform(4);  // 0-3 tourist trips
      for (uint64_t k = 0; k < extra; ++k) {
        visited.insert(static_cast<uint32_t>(tourism_table.Sample(&travel_rng)));
      }
      for (uint32_t c : visited) {
        store.Add(ds.persons[i], p_has_been_to, ds.countries[c]);
      }
    }
  }

  store.Finalize();
  return ds;
}

}  // namespace rdfparams::snb

#include "snb/queries.h"

#include "util/status.h"

namespace rdfparams::snb {

namespace {

sparql::QueryTemplate MustParse(const char* name, const std::string& text) {
  auto t = sparql::QueryTemplate::Parse(name, text);
  RDFPARAMS_DCHECK(t.ok());
  return std::move(t).value();
}

std::string Prefixes() {
  return "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
         "PREFIX snb: <http://rdfparams.org/snb/vocabulary#>\n";
}

}  // namespace

sparql::QueryTemplate MakeQ1(const Dataset& ds) {
  (void)ds;
  return MustParse("SNB-Q1", Prefixes() + R"(
SELECT ?person WHERE {
  ?person snb:firstName %name .
  ?person snb:livesIn %country .
}
)");
}

sparql::QueryTemplate MakeQ2(const Dataset& ds) {
  (void)ds;
  return MustParse("SNB-Q2", Prefixes() + R"(
SELECT ?post ?date WHERE {
  %person snb:knows ?friend .
  ?post snb:hasCreator ?friend .
  ?post snb:creationDate ?date .
}
ORDER BY DESC(?date)
LIMIT 20
)");
}

sparql::QueryTemplate MakeQ3(const Dataset& ds) {
  (void)ds;
  return MustParse("SNB-Q3", Prefixes() + R"(
SELECT DISTINCT ?f2 WHERE {
  %person snb:knows ?f1 .
  ?f1 snb:knows ?f2 .
  ?f2 snb:hasBeenTo %countryX .
  ?f2 snb:hasBeenTo %countryY .
}
)");
}

sparql::QueryTemplate MakeQ4(const Dataset& ds) {
  (void)ds;
  return MustParse("SNB-Q4", Prefixes() + R"(
SELECT ?post WHERE {
  %person snb:knows ?friend .
  ?post snb:hasCreator ?friend .
  ?post snb:hasTag %tag .
}
)");
}

std::vector<sparql::QueryTemplate> AllTemplates(const Dataset& ds) {
  std::vector<sparql::QueryTemplate> out;
  out.push_back(MakeQ1(ds));
  out.push_back(MakeQ2(ds));
  out.push_back(MakeQ3(ds));
  out.push_back(MakeQ4(ds));
  return out;
}

std::vector<rdf::TermId> PersonDomain(const Dataset& ds) { return ds.persons; }

std::vector<rdf::TermId> CountryDomain(const Dataset& ds) {
  return ds.countries;
}

std::vector<rdf::TermId> NameDomain(const Dataset& ds) {
  return ds.first_names;
}

std::vector<rdf::TermId> TagDomain(const Dataset& ds) { return ds.tags; }

std::vector<sparql::ParameterBinding> CountryPairDomain(const Dataset& ds) {
  std::vector<sparql::ParameterBinding> out;
  for (size_t x = 0; x < ds.countries.size(); ++x) {
    for (size_t y = x + 1; y < ds.countries.size(); ++y) {
      sparql::ParameterBinding b;
      b.values = {ds.countries[x], ds.countries[y]};
      out.push_back(std::move(b));
    }
  }
  return out;
}

}  // namespace rdfparams::snb

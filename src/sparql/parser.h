// Parser for the SPARQL subset (see algebra.h), extended with %parameter
// placeholders in any term position, as in the paper's query templates:
//
//   PREFIX sn: <http://example.org/sn#>
//   SELECT * WHERE {
//     ?person sn:firstName %name .
//     ?person sn:livesIn %country .
//   }
#ifndef RDFPARAMS_SPARQL_PARSER_H_
#define RDFPARAMS_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/algebra.h"
#include "util/status.h"

namespace rdfparams::sparql {

/// Parses a query text into a SelectQuery. Error messages carry 1-based
/// line numbers.
[[nodiscard]] Result<SelectQuery> ParseQuery(std::string_view text);

}  // namespace rdfparams::sparql

#endif  // RDFPARAMS_SPARQL_PARSER_H_

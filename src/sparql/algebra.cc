#include "sparql/algebra.h"

#include <algorithm>

namespace rdfparams::sparql {

Slot Slot::Var(std::string name) {
  Slot s;
  s.kind = SlotKind::kVariable;
  s.name = std::move(name);
  return s;
}

Slot Slot::Const(rdf::Term term) {
  Slot s;
  s.kind = SlotKind::kConstant;
  s.term = std::move(term);
  return s;
}

Slot Slot::Param(std::string name) {
  Slot s;
  s.kind = SlotKind::kParameter;
  s.name = std::move(name);
  return s;
}

bool Slot::operator==(const Slot& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case SlotKind::kVariable:
    case SlotKind::kParameter:
      return name == other.name;
    case SlotKind::kConstant:
      return term == other.term;
  }
  return false;
}

std::string Slot::ToString() const {
  switch (kind) {
    case SlotKind::kVariable: return "?" + name;
    case SlotKind::kParameter: return "%" + name;
    case SlotKind::kConstant: return term.ToNTriples();
  }
  return "<?>";
}

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  for (const Slot* slot : {&s, &p, &o}) {
    if (slot->is_var() &&
        std::find(out.begin(), out.end(), slot->name) == out.end()) {
      out.push_back(slot->name);
    }
  }
  return out;
}

std::string TriplePattern::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

std::string FilterCondition::ToString() const {
  return "FILTER(?" + lhs_var + " " + CompareOpName(op) + " " +
         rhs.ToString() + ")";
}

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount: return "COUNT";
    case AggregateKind::kSum: return "SUM";
    case AggregateKind::kAvg: return "AVG";
    case AggregateKind::kMin: return "MIN";
    case AggregateKind::kMax: return "MAX";
  }
  return "?";
}

std::string Aggregate::ToString() const {
  std::string arg = var.empty() ? "*" : "?" + var;
  return std::string("(") + AggregateKindName(kind) + "(" + arg + ") AS ?" +
         as_name + ")";
}

std::vector<std::string> SelectQuery::PatternVariables() const {
  std::vector<std::string> out;
  for (const TriplePattern& tp : patterns) {
    for (const std::string& v : tp.Variables()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

std::vector<std::string> SelectQuery::ParameterNames() const {
  std::vector<std::string> out;
  auto add = [&](const Slot& slot) {
    if (slot.is_param() &&
        std::find(out.begin(), out.end(), slot.name) == out.end()) {
      out.push_back(slot.name);
    }
  };
  for (const TriplePattern& tp : patterns) {
    add(tp.s);
    add(tp.p);
    add(tp.o);
  }
  for (const FilterCondition& f : filters) add(f.rhs);
  return out;
}

bool SelectQuery::IsGround() const { return ParameterNames().empty(); }

std::string SelectQuery::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_vars.empty() && aggregates.empty()) {
    out += "*";
  } else {
    bool first = true;
    for (const std::string& v : select_vars) {
      if (!first) out += " ";
      out += "?" + v;
      first = false;
    }
    for (const Aggregate& a : aggregates) {
      if (!first) out += " ";
      out += a.ToString();
      first = false;
    }
  }
  out += "\nWHERE {\n";
  for (const TriplePattern& tp : patterns) {
    out += "  " + tp.ToString() + "\n";
  }
  for (const FilterCondition& f : filters) {
    out += "  " + f.ToString() + "\n";
  }
  out += "}";
  if (!group_by.empty()) {
    out += "\nGROUP BY";
    for (const std::string& v : group_by) out += " ?" + v;
  }
  if (!order_by.empty()) {
    out += "\nORDER BY";
    for (const OrderKey& k : order_by) {
      out += k.descending ? " DESC(?" + k.var + ")" : " ASC(?" + k.var + ")";
    }
  }
  if (limit >= 0) out += "\nLIMIT " + std::to_string(limit);
  if (offset > 0) out += "\nOFFSET " + std::to_string(offset);
  return out;
}

}  // namespace rdfparams::sparql

#include "sparql/query_template.h"

#include "sparql/parser.h"

namespace rdfparams::sparql {

QueryTemplate::QueryTemplate(std::string name, SelectQuery query)
    : name_(std::move(name)), query_(std::move(query)) {
  parameter_names_ = query_.ParameterNames();
}

Result<QueryTemplate> QueryTemplate::Parse(std::string name,
                                           std::string_view text) {
  RDFPARAMS_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(text));
  return QueryTemplate(std::move(name), std::move(q));
}

namespace {

void SubstituteSlot(Slot* slot, const std::map<std::string, rdf::Term>& values) {
  if (!slot->is_param()) return;
  auto it = values.find(slot->name);
  if (it != values.end()) {
    *slot = Slot::Const(it->second);
  }
}

}  // namespace

Result<SelectQuery> QueryTemplate::BindNamed(
    const std::map<std::string, rdf::Term>& values) const {
  for (const std::string& p : parameter_names_) {
    if (values.find(p) == values.end()) {
      return Status::InvalidArgument("template " + name_ +
                                     ": missing binding for %" + p);
    }
  }
  SelectQuery q = query_;
  for (TriplePattern& tp : q.patterns) {
    SubstituteSlot(&tp.s, values);
    SubstituteSlot(&tp.p, values);
    SubstituteSlot(&tp.o, values);
  }
  for (FilterCondition& f : q.filters) {
    SubstituteSlot(&f.rhs, values);
  }
  RDFPARAMS_DCHECK(q.IsGround());
  return q;
}

Result<SelectQuery> QueryTemplate::Bind(const ParameterBinding& binding,
                                        const rdf::Dictionary& dict) const {
  if (binding.values.size() != parameter_names_.size()) {
    return Status::InvalidArgument(
        "template " + name_ + ": expected " +
        std::to_string(parameter_names_.size()) + " parameters, got " +
        std::to_string(binding.values.size()));
  }
  std::map<std::string, rdf::Term> values;
  for (size_t i = 0; i < parameter_names_.size(); ++i) {
    values[parameter_names_[i]] = dict.term(binding.values[i]).ToTerm();
  }
  return BindNamed(values);
}

}  // namespace rdfparams::sparql

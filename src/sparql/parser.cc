#include "sparql/parser.h"

#include <cctype>
#include <map>

#include "rdf/ntriples.h"
#include "util/string_util.h"

namespace rdfparams::sparql {

namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

enum class TokKind {
  kKeyword,   // SELECT, WHERE, ... (uppercased)
  kVar,       // ?x
  kParam,     // %x
  kIri,       // <...> (resolved)
  kPname,     // prefix:local (resolved to IRI at lex time when possible)
  kLiteral,   // "..." with optional @lang/^^
  kNumber,    // bare numeric literal
  kPunct,     // { } ( ) . ; , * = != < <= > >=
  kA,         // the 'a' keyword
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;    // keyword name / var name / punct
  rdf::Term term;      // for kIri, kPname (resolved), kLiteral, kNumber
  size_t line;
};

bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "PREFIX", "SELECT", "DISTINCT", "WHERE",  "FILTER", "GROUP",
      "BY",     "ORDER",  "ASC",      "DESC",   "LIMIT",  "OFFSET",
      "AS",     "COUNT",  "SUM",      "AVG",    "MIN",    "MAX"};
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) {
        out->push_back({TokKind::kEnd, "", {}, line_});
        return Status::OK();
      }
      char c = text_[pos_];
      if (c == '?' || c == '$') {
        ++pos_;
        std::string name = LexName();
        if (name.empty()) return Err("empty variable name");
        out->push_back({TokKind::kVar, name, {}, line_});
        continue;
      }
      if (c == '%') {
        ++pos_;
        std::string name = LexName();
        if (name.empty()) return Err("empty parameter name");
        out->push_back({TokKind::kParam, name, {}, line_});
        continue;
      }
      if (c == '<') {
        // Operator when followed by space or '='; IRI otherwise.
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          out->push_back({TokKind::kPunct, "<=", {}, line_});
          continue;
        }
        size_t gt = text_.find('>', pos_ + 1);
        size_t ws = text_.find_first_of(" \t\r\n", pos_ + 1);
        if (gt != std::string_view::npos &&
            (ws == std::string_view::npos || gt < ws)) {
          std::string iri(text_.substr(pos_ + 1, gt - pos_ - 1));
          pos_ = gt + 1;
          out->push_back({TokKind::kIri, "", rdf::Term::Iri(std::move(iri)),
                          line_});
          continue;
        }
        ++pos_;
        out->push_back({TokKind::kPunct, "<", {}, line_});
        continue;
      }
      if (c == '"') {
        size_t local = 0;
        std::string_view rest = text_.substr(pos_);
        auto term = rdf::ParseNTriplesTerm(rest, &local);
        if (!term.ok()) return Err(term.status().message());
        pos_ += local;
        out->push_back({TokKind::kLiteral, "", std::move(term).value(), line_});
        continue;
      }
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        out->push_back(LexNumber());
        continue;
      }
      if (c == '!' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        pos_ += 2;
        out->push_back({TokKind::kPunct, "!=", {}, line_});
        continue;
      }
      if (c == '>') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          out->push_back({TokKind::kPunct, ">=", {}, line_});
        } else {
          ++pos_;
          out->push_back({TokKind::kPunct, ">", {}, line_});
        }
        continue;
      }
      if (std::string_view("{}().;,*=").find(c) != std::string_view::npos) {
        ++pos_;
        out->push_back({TokKind::kPunct, std::string(1, c), {}, line_});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        std::string name = LexName();
        if (pos_ < text_.size() && text_[pos_] == ':') {
          // Prefixed name.
          ++pos_;
          std::string local = LexName();
          auto it = prefixes_.find(name);
          if (it == prefixes_.end()) {
            return Err("undefined prefix '" + name + ":'");
          }
          out->push_back({TokKind::kPname, "",
                          rdf::Term::Iri(it->second + local), line_});
          continue;
        }
        std::string upper;
        for (char ch : name) {
          upper.push_back(static_cast<char>(std::toupper(
              static_cast<unsigned char>(ch))));
        }
        if (name == "a") {
          out->push_back({TokKind::kA, "a", {}, line_});
          continue;
        }
        if (upper == "PREFIX") {
          RDFPARAMS_RETURN_NOT_OK(LexPrefixDecl());
          continue;
        }
        if (upper == "TRUE" || upper == "FALSE") {
          out->push_back({TokKind::kLiteral, "",
                          rdf::Term::Boolean(upper == "TRUE"), line_});
          continue;
        }
        if (IsKeyword(upper)) {
          out->push_back({TokKind::kKeyword, upper, {}, line_});
          continue;
        }
        (void)start;
        return Err("unexpected identifier '" + name + "'");
      }
      return Err(std::string("unexpected character '") + c + "'");
    }
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string LexName() {
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Token LexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '+' || text_[pos_] == '-') ++pos_;
    bool dot = false, exp = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !dot && !exp && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !exp) {
        exp = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    std::string text(text_.substr(start, pos_ - start));
    rdf::Term term =
        exp ? rdf::Term::TypedLiteral(text, std::string(rdf::kXsdDouble))
        : dot ? rdf::Term::TypedLiteral(text, std::string(rdf::kXsdDecimal))
              : rdf::Term::TypedLiteral(text, std::string(rdf::kXsdInteger));
    return {TokKind::kNumber, text, std::move(term), line_};
  }

  Status LexPrefixDecl() {
    SkipWs();
    std::string prefix = LexName();
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      return Err("expected ':' in PREFIX declaration");
    }
    ++pos_;
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Err("expected <IRI> in PREFIX declaration");
    }
    size_t gt = text_.find('>', pos_ + 1);
    if (gt == std::string_view::npos) return Err("unterminated IRI");
    prefixes_[prefix] = std::string(text_.substr(pos_ + 1, gt - pos_ - 1));
    pos_ = gt + 1;
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::map<std::string, std::string> prefixes_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<SelectQuery> Parse() {
    SelectQuery q;
    RDFPARAMS_RETURN_NOT_OK(Expect(TokKind::kKeyword, "SELECT"));
    if (PeekKeyword("DISTINCT")) {
      Next();
      q.distinct = true;
    }
    // Projection: '*' | (?var | (AGG(?x) AS ?y))+
    if (PeekPunct("*")) {
      Next();
    } else {
      while (true) {
        if (Peek().kind == TokKind::kVar) {
          q.select_vars.push_back(Next().text);
        } else if (PeekPunct("(")) {
          RDFPARAMS_ASSIGN_OR_RETURN(Aggregate agg, ParseAggregate());
          q.aggregates.push_back(std::move(agg));
        } else {
          break;
        }
      }
      if (q.select_vars.empty() && q.aggregates.empty()) {
        return Err("SELECT needs '*', variables, or aggregates");
      }
    }
    RDFPARAMS_RETURN_NOT_OK(Expect(TokKind::kKeyword, "WHERE"));
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct("{"));
    while (!PeekPunct("}")) {
      if (PeekKeyword("FILTER")) {
        Next();
        RDFPARAMS_ASSIGN_OR_RETURN(FilterCondition f, ParseFilter());
        q.filters.push_back(std::move(f));
        // Optional '.' after a filter.
        if (PeekPunct(".")) Next();
        continue;
      }
      RDFPARAMS_ASSIGN_OR_RETURN(TriplePattern tp, ParseTriplePattern());
      q.patterns.push_back(std::move(tp));
      if (PeekPunct(".")) Next();
    }
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct("}"));

    // Modifiers in any sensible order: GROUP BY, ORDER BY, LIMIT, OFFSET.
    while (Peek().kind != TokKind::kEnd) {
      if (PeekKeyword("GROUP")) {
        Next();
        RDFPARAMS_RETURN_NOT_OK(Expect(TokKind::kKeyword, "BY"));
        while (Peek().kind == TokKind::kVar) {
          q.group_by.push_back(Next().text);
        }
        if (q.group_by.empty()) return Err("GROUP BY needs variables");
        continue;
      }
      if (PeekKeyword("ORDER")) {
        Next();
        RDFPARAMS_RETURN_NOT_OK(Expect(TokKind::kKeyword, "BY"));
        while (true) {
          OrderKey key;
          if (PeekKeyword("ASC") || PeekKeyword("DESC")) {
            key.descending = Next().text == "DESC";
            RDFPARAMS_RETURN_NOT_OK(ExpectPunct("("));
            if (Peek().kind != TokKind::kVar) {
              return Err("ORDER BY expects a variable");
            }
            key.var = Next().text;
            RDFPARAMS_RETURN_NOT_OK(ExpectPunct(")"));
          } else if (Peek().kind == TokKind::kVar) {
            key.var = Next().text;
          } else {
            break;
          }
          q.order_by.push_back(std::move(key));
        }
        if (q.order_by.empty()) return Err("ORDER BY needs keys");
        continue;
      }
      if (PeekKeyword("LIMIT")) {
        Next();
        RDFPARAMS_ASSIGN_OR_RETURN(int64_t n, ParseInt());
        q.limit = n;
        continue;
      }
      if (PeekKeyword("OFFSET")) {
        Next();
        RDFPARAMS_ASSIGN_OR_RETURN(int64_t n, ParseInt());
        q.offset = n;
        continue;
      }
      return Err("unexpected trailing token");
    }
    return q;
  }

 private:
  const Token& Peek() const { return toks_[idx_]; }
  Token Next() { return toks_[idx_++]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kKeyword && Peek().text == kw;
  }
  bool PeekPunct(const char* p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }

  Status Expect(TokKind kind, const char* text) {
    if (Peek().kind != kind || Peek().text != text) {
      return Err(std::string("expected ") + text);
    }
    Next();
    return Status::OK();
  }
  Status ExpectPunct(const char* p) { return Expect(TokKind::kPunct, p); }

  Status Err(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(Peek().line) + ": " +
                              msg);
  }

  Result<int64_t> ParseInt() {
    if (Peek().kind != TokKind::kNumber) return Err("expected integer");
    Token t = Next();
    auto v = t.term.AsInteger();
    if (!v) return Err("expected integer, got '" + t.text + "'");
    return *v;
  }

  Result<Slot> ParseSlot(bool allow_a) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kVar: return Slot::Var(Next().text);
      case TokKind::kParam: return Slot::Param(Next().text);
      case TokKind::kIri:
      case TokKind::kPname:
      case TokKind::kLiteral:
      case TokKind::kNumber:
        return Slot::Const(Next().term);
      case TokKind::kA:
        if (allow_a) {
          Next();
          return Slot::Const(rdf::Term::Iri(std::string(kRdfType)));
        }
        return Err("'a' is only allowed in predicate position");
      default:
        return Err("expected a term");
    }
  }

  Result<TriplePattern> ParseTriplePattern() {
    RDFPARAMS_ASSIGN_OR_RETURN(Slot s, ParseSlot(false));
    RDFPARAMS_ASSIGN_OR_RETURN(Slot p, ParseSlot(true));
    RDFPARAMS_ASSIGN_OR_RETURN(Slot o, ParseSlot(false));
    return TriplePattern(std::move(s), std::move(p), std::move(o));
  }

  Result<FilterCondition> ParseFilter() {
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct("("));
    if (Peek().kind != TokKind::kVar) {
      return Err("FILTER left-hand side must be a variable");
    }
    FilterCondition f;
    f.lhs_var = Next().text;
    if (Peek().kind != TokKind::kPunct) return Err("expected comparison");
    std::string op = Next().text;
    if (op == "=") f.op = CompareOp::kEq;
    else if (op == "!=") f.op = CompareOp::kNe;
    else if (op == "<") f.op = CompareOp::kLt;
    else if (op == "<=") f.op = CompareOp::kLe;
    else if (op == ">") f.op = CompareOp::kGt;
    else if (op == ">=") f.op = CompareOp::kGe;
    else return Err("unknown comparison '" + op + "'");
    RDFPARAMS_ASSIGN_OR_RETURN(Slot rhs, ParseSlot(false));
    f.rhs = std::move(rhs);
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct(")"));
    return f;
  }

  Result<Aggregate> ParseAggregate() {
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct("("));
    if (Peek().kind != TokKind::kKeyword) return Err("expected aggregate");
    std::string name = Next().text;
    Aggregate agg;
    if (name == "COUNT") agg.kind = AggregateKind::kCount;
    else if (name == "SUM") agg.kind = AggregateKind::kSum;
    else if (name == "AVG") agg.kind = AggregateKind::kAvg;
    else if (name == "MIN") agg.kind = AggregateKind::kMin;
    else if (name == "MAX") agg.kind = AggregateKind::kMax;
    else return Err("unknown aggregate " + name);
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct("("));
    if (PeekPunct("*")) {
      Next();
      if (agg.kind != AggregateKind::kCount) {
        return Err("'*' argument is only valid for COUNT");
      }
    } else if (Peek().kind == TokKind::kVar) {
      agg.var = Next().text;
    } else {
      return Err("aggregate expects a variable or '*'");
    }
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct(")"));
    RDFPARAMS_RETURN_NOT_OK(Expect(TokKind::kKeyword, "AS"));
    if (Peek().kind != TokKind::kVar) return Err("expected output variable");
    agg.as_name = Next().text;
    RDFPARAMS_RETURN_NOT_OK(ExpectPunct(")"));
    return agg;
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

}  // namespace

Result<SelectQuery> ParseQuery(std::string_view text) {
  Lexer lexer(text);
  std::vector<Token> toks;
  RDFPARAMS_RETURN_NOT_OK(lexer.Tokenize(&toks));
  Parser parser(std::move(toks));
  RDFPARAMS_ASSIGN_OR_RETURN(SelectQuery q, parser.Parse());
  if (q.patterns.empty()) {
    return Status::ParseError("query has no triple patterns");
  }
  return q;
}

}  // namespace rdfparams::sparql

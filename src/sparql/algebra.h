// Query algebra for the SPARQL subset used by the benchmarks:
// basic graph patterns with FILTER, DISTINCT, GROUP BY + aggregates,
// ORDER BY and LIMIT/OFFSET. Triple pattern slots are variables, constants,
// or named substitution parameters (`%param`), the paper's central notion.
#ifndef RDFPARAMS_SPARQL_ALGEBRA_H_
#define RDFPARAMS_SPARQL_ALGEBRA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfparams::sparql {

enum class SlotKind : uint8_t {
  kVariable = 0,   ///< ?x
  kConstant = 1,   ///< IRI / literal
  kParameter = 2,  ///< %param — replaced by the workload generator
};

/// One position of a triple pattern.
struct Slot {
  SlotKind kind = SlotKind::kVariable;
  std::string name;  ///< variable or parameter name (without ? / %)
  rdf::Term term;    ///< constant value if kind == kConstant

  static Slot Var(std::string name);
  static Slot Const(rdf::Term term);
  static Slot Param(std::string name);

  bool is_var() const { return kind == SlotKind::kVariable; }
  bool is_const() const { return kind == SlotKind::kConstant; }
  bool is_param() const { return kind == SlotKind::kParameter; }

  bool operator==(const Slot& other) const;

  /// "?x", "%type", or the constant's N-Triples form.
  std::string ToString() const;
};

struct TriplePattern {
  Slot s, p, o;

  TriplePattern() = default;
  TriplePattern(Slot s_, Slot p_, Slot o_)
      : s(std::move(s_)), p(std::move(p_)), o(std::move(o_)) {}

  /// Variables mentioned (deduplicated, in s,p,o order).
  std::vector<std::string> Variables() const;

  std::string ToString() const;
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// FILTER(?lhs op rhs); rhs may be a variable, constant or parameter.
struct FilterCondition {
  std::string lhs_var;
  CompareOp op = CompareOp::kEq;
  Slot rhs;

  std::string ToString() const;
};

enum class AggregateKind : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateKindName(AggregateKind kind);

/// e.g. (AVG(?price) AS ?avgPrice); var empty means COUNT(*).
struct Aggregate {
  AggregateKind kind = AggregateKind::kCount;
  std::string var;      ///< aggregated variable ("" = COUNT(*))
  std::string as_name;  ///< output variable name

  std::string ToString() const;
};

struct OrderKey {
  std::string var;
  bool descending = false;
};

/// A SELECT query over one basic graph pattern.
struct SelectQuery {
  std::vector<std::string> select_vars;  ///< empty means SELECT *
  bool distinct = false;
  std::vector<TriplePattern> patterns;
  std::vector<FilterCondition> filters;
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;  ///< -1: none
  int64_t offset = 0;

  /// All variables used in patterns (deduplicated, first-occurrence order).
  std::vector<std::string> PatternVariables() const;

  /// Names of all %parameters in patterns and filters (deduplicated).
  std::vector<std::string> ParameterNames() const;

  /// True if no slot/filter still holds an unbound parameter.
  bool IsGround() const;

  /// Round-trippable textual form (parsable by sparql::ParseQuery).
  std::string ToString() const;
};

}  // namespace rdfparams::sparql

#endif  // RDFPARAMS_SPARQL_ALGEBRA_H_

// Query templates with named substitution parameters — the unit of work of
// the paper. A template is a SelectQuery whose %parameters are replaced by
// concrete terms (a ParameterBinding) to obtain executable queries.
#ifndef RDFPARAMS_SPARQL_QUERY_TEMPLATE_H_
#define RDFPARAMS_SPARQL_QUERY_TEMPLATE_H_

#include <map>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/algebra.h"
#include "util/status.h"

namespace rdfparams::sparql {

/// One assignment of terms to the template's parameters, in the order of
/// QueryTemplate::parameter_names().
struct ParameterBinding {
  std::vector<rdf::TermId> values;

  bool operator==(const ParameterBinding& other) const {
    return values == other.values;
  }
  bool operator<(const ParameterBinding& other) const {
    return values < other.values;
  }
};

/// A named query template (e.g. "BSBM-BI Q4") plus its parameter list.
class QueryTemplate {
 public:
  QueryTemplate() = default;
  QueryTemplate(std::string name, SelectQuery query);

  /// Parses the text and wraps it. Fails if the text is malformed.
  [[nodiscard]] static Result<QueryTemplate> Parse(std::string name, std::string_view text);

  const std::string& name() const { return name_; }
  const SelectQuery& query() const { return query_; }

  /// Parameter names in first-occurrence order.
  const std::vector<std::string>& parameter_names() const {
    return parameter_names_;
  }
  size_t arity() const { return parameter_names_.size(); }

  /// Substitutes the binding (positional, aligned with parameter_names())
  /// and returns a ground query. Fails on arity mismatch.
  [[nodiscard]] Result<SelectQuery> Bind(const ParameterBinding& binding,
                           const rdf::Dictionary& dict) const;

  /// Substitutes by name; every parameter must be present.
  [[nodiscard]] Result<SelectQuery> BindNamed(
      const std::map<std::string, rdf::Term>& values) const;

 private:
  std::string name_;
  SelectQuery query_;
  std::vector<std::string> parameter_names_;
};

}  // namespace rdfparams::sparql

#endif  // RDFPARAMS_SPARQL_QUERY_TEMPLATE_H_

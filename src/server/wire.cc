#include "server/wire.h"

#include <cstring>

namespace rdfparams::server {

namespace {

uint32_t LoadLe32(const char* p) {
  // Bytewise load: independent of host endianness and alignment.
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

void AppendLe32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

}  // namespace

std::string EncodeFrame(Opcode opcode, std::string_view payload) {
  RDFPARAMS_DCHECK(payload.size() < kMaxFrameBytes);
  std::string out;
  out.reserve(5 + payload.size());
  AppendLe32(static_cast<uint32_t>(1 + payload.size()), &out);
  out.push_back(static_cast<char>(opcode));
  out.append(payload);
  return out;
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeErrorPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::ParseError("error payload missing the status byte");
  }
  return Status(static_cast<StatusCode>(static_cast<uint8_t>(payload[0])),
                std::string(payload.substr(1)));
}

Status FrameDecoder::Feed(std::string_view bytes) {
  if (!error_.ok()) return error_;
  buf_.append(bytes);
  // Validate every fully buffered length prefix eagerly, so a hostile
  // length is rejected as soon as it arrives — not once 64 MiB of
  // never-coming payload "times out".
  size_t probe = pos_;
  while (buf_.size() - probe >= 4) {
    uint32_t length = LoadLe32(buf_.data() + probe);
    if (length == 0) {
      error_ = Status::ParseError("frame length 0 (no room for the opcode)");
      return error_;
    }
    if (length > kMaxFrameBytes) {
      error_ = Status::ParseError(
          "frame length " + std::to_string(length) + " exceeds the " +
          std::to_string(kMaxFrameBytes) + "-byte limit");
      return error_;
    }
    if (buf_.size() - probe - 4 < length) break;  // frame still incomplete
    probe += 4 + length;
  }
  return Status::OK();
}

std::optional<Frame> FrameDecoder::Next() {
  if (!error_.ok()) return std::nullopt;
  if (buf_.size() - pos_ < 4) return std::nullopt;
  uint32_t length = LoadLe32(buf_.data() + pos_);
  // Feed() already vetted the prefix; a valid one may still be waiting for
  // its payload.
  if (buf_.size() - pos_ - 4 < length) return std::nullopt;
  Frame frame;
  frame.opcode = static_cast<uint8_t>(buf_[pos_ + 4]);
  frame.payload.assign(buf_, pos_ + 5, length - 1);
  pos_ += 4 + length;
  // Reclaim consumed bytes once they dominate the buffer.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return frame;
}

}  // namespace rdfparams::server

// A Workbench is the read-only world a server (or CLI invocation) serves:
// one deterministic dataset, its query templates, and the default
// parameter domain of each template. Built once at startup; immutable
// afterwards, which is what makes it safely shareable across every
// connection-handler thread.
//
// This used to live as anonymous-namespace helpers inside the CLI; the
// daemon needs the same context, so it is a library now and the CLI is a
// client of it.
#ifndef RDFPARAMS_SERVER_WORKBENCH_H_
#define RDFPARAMS_SERVER_WORKBENCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bsbm/generator.h"
#include "core/parameter_domain.h"
#include "snb/generator.h"
#include "sparql/query_template.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace rdfparams::server {

struct WorkbenchConfig {
  std::string workload = "bsbm";  ///< "bsbm" or "snb"
  uint64_t products = 6000;       ///< BSBM scale
  uint64_t persons = 8000;        ///< SNB scale
  uint64_t seed = 42;
};

/// Dataset + templates + per-template default domains.
struct Workbench {
  std::unique_ptr<bsbm::Dataset> bsbm_ds;
  std::unique_ptr<snb::Dataset> snb_ds;
  std::vector<sparql::QueryTemplate> templates;

  rdf::Dictionary* mutable_dict() {
    return bsbm_ds ? &bsbm_ds->dict : &snb_ds->dict;
  }
  const rdf::Dictionary& dict() const {
    return bsbm_ds ? bsbm_ds->dict : snb_ds->dict;
  }
  const rdf::TripleStore& store() const {
    return bsbm_ds ? bsbm_ds->store : snb_ds->store;
  }
};

/// Generates the dataset deterministically from the config and wraps it
/// with its workload's templates.
[[nodiscard]] Result<Workbench> BuildWorkbench(const WorkbenchConfig& config);

/// Template `query` (1-based, the CLI/wire numbering).
[[nodiscard]] Result<const sparql::QueryTemplate*> PickTemplate(const Workbench& wb,
                                                  int64_t query);

/// Default parameter domain for a built-in template (validated).
[[nodiscard]] Result<core::ParameterDomain> MakeDomain(const Workbench& wb,
                                         const sparql::QueryTemplate& tmpl);

/// Serializes the workload identity and generator entity lists (the parts
/// of a Dataset that are not derivable from dict + store) as the
/// snapshot's opaque app-meta blob. The storage layer round-trips it
/// untouched; only this module interprets it.
std::string EncodeWorkbenchMeta(const Workbench& wb);

/// Rebuilds a Workbench from restored snapshot parts: moves dict + store
/// into the right Dataset shape, decodes the entity lists from `meta`
/// (validating every id against the dictionary), and reattaches the
/// workload's templates. The result is indistinguishable from the
/// BuildWorkbench that produced the snapshot.
[[nodiscard]] Result<Workbench> WorkbenchFromSnapshotParts(rdf::Dictionary dict,
                                             rdf::TripleStore store,
                                             std::string_view meta);

/// Saves a workbench (dataset + workload metadata) as one snapshot file.
[[nodiscard]] Status SaveWorkbenchSnapshot(const Workbench& wb, const std::string& path,
                             const storage::SaveOptions& options = {});

/// Opens a workbench snapshot saved by SaveWorkbenchSnapshot. Fails with
/// InvalidArgument on a bare snapshot (one saved without workload
/// metadata, e.g. from `save --input=FILE.nt`).
[[nodiscard]] Result<Workbench> OpenWorkbenchSnapshot(const std::string& path,
                                        const storage::OpenOptions& options = {});

}  // namespace rdfparams::server

#endif  // RDFPARAMS_SERVER_WORKBENCH_H_

// A Workbench is the read-only world a server (or CLI invocation) serves:
// one deterministic dataset, its query templates, and the default
// parameter domain of each template. Built once at startup; immutable
// afterwards, which is what makes it safely shareable across every
// connection-handler thread.
//
// This used to live as anonymous-namespace helpers inside the CLI; the
// daemon needs the same context, so it is a library now and the CLI is a
// client of it.
#ifndef RDFPARAMS_SERVER_WORKBENCH_H_
#define RDFPARAMS_SERVER_WORKBENCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bsbm/generator.h"
#include "core/parameter_domain.h"
#include "snb/generator.h"
#include "sparql/query_template.h"
#include "util/status.h"

namespace rdfparams::server {

struct WorkbenchConfig {
  std::string workload = "bsbm";  ///< "bsbm" or "snb"
  uint64_t products = 6000;       ///< BSBM scale
  uint64_t persons = 8000;        ///< SNB scale
  uint64_t seed = 42;
};

/// Dataset + templates + per-template default domains.
struct Workbench {
  std::unique_ptr<bsbm::Dataset> bsbm_ds;
  std::unique_ptr<snb::Dataset> snb_ds;
  std::vector<sparql::QueryTemplate> templates;

  rdf::Dictionary* mutable_dict() {
    return bsbm_ds ? &bsbm_ds->dict : &snb_ds->dict;
  }
  const rdf::Dictionary& dict() const {
    return bsbm_ds ? bsbm_ds->dict : snb_ds->dict;
  }
  const rdf::TripleStore& store() const {
    return bsbm_ds ? bsbm_ds->store : snb_ds->store;
  }
};

/// Generates the dataset deterministically from the config and wraps it
/// with its workload's templates.
Result<Workbench> BuildWorkbench(const WorkbenchConfig& config);

/// Template `query` (1-based, the CLI/wire numbering).
Result<const sparql::QueryTemplate*> PickTemplate(const Workbench& wb,
                                                  int64_t query);

/// Default parameter domain for a built-in template (validated).
Result<core::ParameterDomain> MakeDomain(const Workbench& wb,
                                         const sparql::QueryTemplate& tmpl);

}  // namespace rdfparams::server

#endif  // RDFPARAMS_SERVER_WORKBENCH_H_

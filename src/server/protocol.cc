#include "server/protocol.h"

#include <cerrno>
#include <cstdlib>

#include "util/string_util.h"

namespace rdfparams::server {

namespace {

/// Round-trip-exact float rendering shared by every formatter.
std::string Fmt(double v) { return util::StringPrintf("%.17g", v); }

/// Binding terms in N-Triples syntax, tab-separated (workload_io order).
std::string FmtBinding(const sparql::ParameterBinding& binding,
                       const rdf::Dictionary& dict) {
  std::string out;
  for (size_t i = 0; i < binding.values.size(); ++i) {
    if (i > 0) out += "\t";
    out += dict.term(binding.values[i]).ToNTriples();
  }
  return out;
}

}  // namespace

Result<int64_t> Request::GetInt64(const std::string& key,
                                  int64_t fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("field '" + key + "': bad integer '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> Request::GetDouble(const std::string& key,
                                  double fallback) const {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("field '" + key + "': bad number '" +
                                   it->second + "'");
  }
  return v;
}

std::string Request::GetString(const std::string& key,
                               const std::string& fallback) const {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

Status Request::CheckAllowedKeys(
    const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : fields) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown request field '" + key + "'");
    }
  }
  return Status::OK();
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  for (const auto& [key, value] : request.fields) {
    out += key;
    out += "=";
    out += value;
    out += "\n";
  }
  if (!request.body.empty()) {
    out += "\n";
    out += request.body;
  }
  return out;
}

Result<Request> ParseRequest(std::string_view payload) {
  Request request;
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t eol = payload.find('\n', pos);
    std::string_view line = payload.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                          : eol - pos);
    size_t next = eol == std::string_view::npos ? payload.size() : eol + 1;
    if (util::Trim(line).empty()) {
      // Blank line: the rest is the body, verbatim.
      request.body.assign(payload.substr(next));
      return request;
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("request header line without '=': '" +
                                std::string(line) + "'");
    }
    request.fields[std::string(line.substr(0, eq))] =
        std::string(line.substr(eq + 1));
    pos = next;
  }
  return request;
}

std::string FormatClassification(const sparql::QueryTemplate& tmpl,
                                 const core::Classification& classification,
                                 const rdf::Dictionary& dict) {
  std::string out;
  out += "template=" + tmpl.name() + "\n";
  out += "candidates=" + std::to_string(classification.num_candidates) + "\n";
  out += "classes=" + std::to_string(classification.classes.size()) + "\n";
  for (size_t i = 0; i < classification.classes.size(); ++i) {
    const core::PlanClass& cls = classification.classes[i];
    out += "S" + std::to_string(i);
    out += "\tsize=" + std::to_string(cls.members.size());
    out += "\tshare=" + Fmt(cls.fraction);
    out += "\tbucket=" + std::to_string(cls.cost_bucket);
    out += "\tcout=[" + Fmt(cls.min_cout) + "," + Fmt(cls.max_cout) + "]";
    out += "\tplan=" + cls.fingerprint;
    out += "\trep=" + FmtBinding(cls.representative, dict);
    out += "\n";
  }
  out += "classmap=";
  for (size_t i = 0; i < classification.class_of_candidate.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(classification.class_of_candidate[i]);
  }
  out += "\n";
  return out;
}

std::string FormatObservations(const sparql::QueryTemplate& tmpl,
                               const std::vector<core::RunObservation>& obs,
                               const rdf::Dictionary& dict) {
  std::string out;
  out += "template=" + tmpl.name() + "\n";
  out += "observations=" + std::to_string(obs.size()) + "\n";
  for (size_t i = 0; i < obs.size(); ++i) {
    const core::RunObservation& o = obs[i];
    out += std::to_string(i);
    out += "\trows=" + std::to_string(o.result_rows);
    out += "\tcout=" + std::to_string(o.observed_cout);
    out += "\test_cout=" + Fmt(o.est_cout);
    out += "\test_card=" + Fmt(o.est_cardinality);
    out += "\tplan=" + o.fingerprint;
    out += "\tbinding=" + FmtBinding(o.binding, dict);
    out += "\n";
  }
  return out;
}

std::string FormatExplain(const sparql::QueryTemplate& tmpl,
                          const sparql::SelectQuery& bound_query,
                          const sparql::ParameterBinding& binding,
                          const opt::OptimizedPlan& plan,
                          const rdf::Dictionary& dict) {
  std::string out;
  out += "template=" + tmpl.name() + "\n";
  out += "binding=" + FmtBinding(binding, dict) + "\n";
  out += "plan=" + plan.fingerprint + "\n";
  out += "est_cout=" + Fmt(plan.est_cout) + "\n";
  out += "est_cardinality=" + Fmt(plan.est_cardinality) + "\n";
  out += plan.root->Explain(bound_query);
  return out;
}

}  // namespace rdfparams::server

// Blocking client for the workload server: one TCP connection, one
// request-response exchange per Call(). Used by the CLI's `client`
// subcommand, bench/bench_server.cc, and the wire-level tests.
#ifndef RDFPARAMS_SERVER_CLIENT_H_
#define RDFPARAMS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/wire.h"
#include "util/socket.h"
#include "util/status.h"

namespace rdfparams::server {

class Client {
 public:
  Client() = default;

  /// Connects; fails if the server is not reachable. A server at
  /// capacity still accepts — its rejection arrives as the first frame
  /// (surface it by sending any request, or via ReadFrame()).
  [[nodiscard]] Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_.valid(); }

  /// Sends one request frame and blocks for the next response frame.
  /// Transport failures are IOError; a kError response is returned as a
  /// Frame (decode its payload with DecodeErrorPayload).
  [[nodiscard]] Result<Frame> Call(Opcode opcode, std::string_view payload);

  /// Lower-level pieces, for tests that interleave or half-close.
  [[nodiscard]] Status Send(Opcode opcode, std::string_view payload);
  [[nodiscard]] Status SendRaw(std::string_view bytes);  ///< malformed-frame injection
  [[nodiscard]] Result<Frame> ReadFrame();

  /// Half-closes the write side (the server sees EOF after the frames
  /// already sent); responses can still be read.
  void CloseWrite();
  void Close() { fd_.reset(); }
  int fd() const { return fd_.get(); }

 private:
  util::UniqueFd fd_;
  FrameDecoder decoder_;
};

/// Convenience for one-shot exchanges: connect, send, read one response,
/// close. A kError response comes back as the decoded carried Status.
[[nodiscard]] Result<std::string> CallOnce(const std::string& host, uint16_t port,
                             Opcode opcode, std::string_view payload);

}  // namespace rdfparams::server

#endif  // RDFPARAMS_SERVER_CLIENT_H_

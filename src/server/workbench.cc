#include "server/workbench.h"

#include "bsbm/queries.h"
#include "snb/queries.h"

namespace rdfparams::server {

Result<Workbench> BuildWorkbench(const WorkbenchConfig& config) {
  Workbench wb;
  if (config.workload == "bsbm") {
    bsbm::GeneratorConfig gen;
    gen.num_products = config.products;
    gen.offers_per_product = 3.0;
    gen.seed = config.seed;
    wb.bsbm_ds = std::make_unique<bsbm::Dataset>(bsbm::Generate(gen));
    wb.templates = bsbm::AllTemplates(*wb.bsbm_ds);
    return wb;
  }
  if (config.workload == "snb") {
    snb::GeneratorConfig gen;
    gen.num_persons = config.persons;
    gen.seed = config.seed;
    wb.snb_ds = std::make_unique<snb::Dataset>(snb::Generate(gen));
    wb.templates = snb::AllTemplates(*wb.snb_ds);
    return wb;
  }
  return Status::InvalidArgument("unknown workload '" + config.workload +
                                 "' (use bsbm or snb)");
}

Result<const sparql::QueryTemplate*> PickTemplate(const Workbench& wb,
                                                  int64_t query) {
  if (query < 1 || static_cast<size_t>(query) > wb.templates.size()) {
    return Status::InvalidArgument(
        "query must be 1.." + std::to_string(wb.templates.size()));
  }
  return &wb.templates[static_cast<size_t>(query - 1)];
}

Result<core::ParameterDomain> MakeDomain(const Workbench& wb,
                                         const sparql::QueryTemplate& tmpl) {
  core::ParameterDomain domain;
  for (const std::string& p : tmpl.parameter_names()) {
    if (wb.bsbm_ds) {
      const bsbm::Dataset& ds = *wb.bsbm_ds;
      if (p == "type" || p == "ProductType") {
        domain.AddSingle(p, bsbm::TypeDomain(ds));
      } else if (p == "product") {
        domain.AddSingle(p, bsbm::ProductDomain(ds));
      } else if (p == "feature") {
        domain.AddSingle(p, bsbm::FeatureDomain(ds));
      } else {
        return Status::Unsupported("no default domain for %" + p);
      }
    } else {
      const snb::Dataset& ds = *wb.snb_ds;
      if (p == "person") {
        domain.AddSingle(p, snb::PersonDomain(ds));
      } else if (p == "name") {
        domain.AddSingle(p, snb::NameDomain(ds));
      } else if (p == "country") {
        domain.AddSingle(p, snb::CountryDomain(ds));
      } else if (p == "tag") {
        domain.AddSingle(p, snb::TagDomain(ds));
      } else if (p == "countryX") {
        // countryX/countryY are grouped as correlated pairs.
        std::vector<std::vector<rdf::TermId>> pairs;
        for (const auto& b : snb::CountryPairDomain(ds)) {
          pairs.push_back(b.values);
        }
        domain.AddTuples({"countryX", "countryY"}, std::move(pairs));
      } else if (p == "countryY") {
        continue;  // consumed by the countryX group
      } else {
        return Status::Unsupported("no default domain for %" + p);
      }
    }
  }
  RDFPARAMS_RETURN_NOT_OK(domain.Validate(tmpl));
  return domain;
}

}  // namespace rdfparams::server

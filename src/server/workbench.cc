#include "server/workbench.h"

#include <utility>

#include "bsbm/queries.h"
#include "snb/queries.h"
#include "util/coding.h"

namespace rdfparams::server {

Result<Workbench> BuildWorkbench(const WorkbenchConfig& config) {
  Workbench wb;
  if (config.workload == "bsbm") {
    bsbm::GeneratorConfig gen;
    gen.num_products = config.products;
    gen.offers_per_product = 3.0;
    gen.seed = config.seed;
    wb.bsbm_ds = std::make_unique<bsbm::Dataset>(bsbm::Generate(gen));
    wb.templates = bsbm::AllTemplates(*wb.bsbm_ds);
    return wb;
  }
  if (config.workload == "snb") {
    snb::GeneratorConfig gen;
    gen.num_persons = config.persons;
    gen.seed = config.seed;
    wb.snb_ds = std::make_unique<snb::Dataset>(snb::Generate(gen));
    wb.templates = snb::AllTemplates(*wb.snb_ds);
    return wb;
  }
  return Status::InvalidArgument("unknown workload '" + config.workload +
                                 "' (use bsbm or snb)");
}

Result<const sparql::QueryTemplate*> PickTemplate(const Workbench& wb,
                                                  int64_t query) {
  if (query < 1 || static_cast<size_t>(query) > wb.templates.size()) {
    return Status::InvalidArgument(
        "query must be 1.." + std::to_string(wb.templates.size()));
  }
  return &wb.templates[static_cast<size_t>(query - 1)];
}

Result<core::ParameterDomain> MakeDomain(const Workbench& wb,
                                         const sparql::QueryTemplate& tmpl) {
  core::ParameterDomain domain;
  for (const std::string& p : tmpl.parameter_names()) {
    if (wb.bsbm_ds) {
      const bsbm::Dataset& ds = *wb.bsbm_ds;
      if (p == "type" || p == "ProductType") {
        domain.AddSingle(p, bsbm::TypeDomain(ds));
      } else if (p == "product") {
        domain.AddSingle(p, bsbm::ProductDomain(ds));
      } else if (p == "feature") {
        domain.AddSingle(p, bsbm::FeatureDomain(ds));
      } else {
        return Status::Unsupported("no default domain for %" + p);
      }
    } else {
      const snb::Dataset& ds = *wb.snb_ds;
      if (p == "person") {
        domain.AddSingle(p, snb::PersonDomain(ds));
      } else if (p == "name") {
        domain.AddSingle(p, snb::NameDomain(ds));
      } else if (p == "country") {
        domain.AddSingle(p, snb::CountryDomain(ds));
      } else if (p == "tag") {
        domain.AddSingle(p, snb::TagDomain(ds));
      } else if (p == "countryX") {
        // countryX/countryY are grouped as correlated pairs.
        std::vector<std::vector<rdf::TermId>> pairs;
        for (const auto& b : snb::CountryPairDomain(ds)) {
          pairs.push_back(b.values);
        }
        domain.AddTuples({"countryX", "countryY"}, std::move(pairs));
      } else if (p == "countryY") {
        continue;  // consumed by the countryX group
      } else {
        return Status::Unsupported("no default domain for %" + p);
      }
    }
  }
  RDFPARAMS_RETURN_NOT_OK(domain.Validate(tmpl));
  return domain;
}

namespace {

// Workbench meta blob: u8 version, u8 workload (1 = bsbm, 2 = snb),
// then the workload's entity lists. Both generators always build their
// vocabulary from Vocabulary::Default(), so the vocab needs no bytes.
constexpr uint8_t kMetaVersion = 1;
constexpr uint8_t kMetaBsbm = 1;
constexpr uint8_t kMetaSnb = 2;

void AppendIdVector(std::string* out, const std::vector<rdf::TermId>& ids) {
  util::AppendU64(out, ids.size());
  for (rdf::TermId id : ids) util::AppendU32(out, id);
}

Result<std::vector<rdf::TermId>> ReadIdVector(util::Decoder* dec,
                                              size_t dict_size) {
  RDFPARAMS_ASSIGN_OR_RETURN(uint64_t n, dec->ReadU64());
  if (n > dec->remaining() / 4) {
    return Status::ParseError("workbench meta id list longer than blob");
  }
  std::vector<rdf::TermId> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    RDFPARAMS_ASSIGN_OR_RETURN(rdf::TermId id, dec->ReadU32());
    if (id >= dict_size) {
      return Status::ParseError("workbench meta id beyond dictionary");
    }
    ids.push_back(id);
  }
  return ids;
}

}  // namespace

std::string EncodeWorkbenchMeta(const Workbench& wb) {
  std::string out;
  util::AppendU8(&out, kMetaVersion);
  if (wb.bsbm_ds) {
    const bsbm::Dataset& ds = *wb.bsbm_ds;
    util::AppendU8(&out, kMetaBsbm);
    util::AppendU64(&out, ds.types.size());
    for (const bsbm::TypeNode& t : ds.types) {
      util::AppendU32(&out, t.id);
      util::AppendU32(&out, t.level);
      util::AppendU64(&out, static_cast<uint64_t>(
                                static_cast<int64_t>(t.parent)));
      util::AppendU64(&out, t.num_products);
      util::AppendU64(&out, t.feature_pool.size());
      for (uint32_t f : t.feature_pool) util::AppendU32(&out, f);
    }
    AppendIdVector(&out, ds.products);
    AppendIdVector(&out, ds.features);
    AppendIdVector(&out, ds.producers);
    AppendIdVector(&out, ds.vendors);
    AppendIdVector(&out, ds.reviewers);
  } else {
    const snb::Dataset& ds = *wb.snb_ds;
    util::AppendU8(&out, kMetaSnb);
    AppendIdVector(&out, ds.persons);
    AppendIdVector(&out, ds.countries);
    AppendIdVector(&out, ds.tags);
    AppendIdVector(&out, ds.posts);
    AppendIdVector(&out, ds.first_names);
    util::AppendU64(&out, ds.home_country.size());
    for (uint32_t c : ds.home_country) util::AppendU32(&out, c);
  }
  return out;
}

Result<Workbench> WorkbenchFromSnapshotParts(rdf::Dictionary dict,
                                             rdf::TripleStore store,
                                             std::string_view meta) {
  const size_t dict_size = dict.size();
  util::Decoder dec(meta);
  RDFPARAMS_ASSIGN_OR_RETURN(uint8_t version, dec.ReadU8());
  if (version != kMetaVersion) {
    return Status::ParseError("unsupported workbench meta version " +
                              std::to_string(version));
  }
  RDFPARAMS_ASSIGN_OR_RETURN(uint8_t workload, dec.ReadU8());

  Workbench wb;
  if (workload == kMetaBsbm) {
    auto ds = std::make_unique<bsbm::Dataset>();
    ds->vocab = bsbm::Vocabulary::Default();
    RDFPARAMS_ASSIGN_OR_RETURN(uint64_t num_types, dec.ReadU64());
    if (num_types > meta.size()) {
      return Status::ParseError("workbench meta type list longer than blob");
    }
    ds->types.reserve(num_types);
    for (uint64_t i = 0; i < num_types; ++i) {
      bsbm::TypeNode t;
      RDFPARAMS_ASSIGN_OR_RETURN(t.id, dec.ReadU32());
      if (t.id >= dict_size) {
        return Status::ParseError("workbench meta id beyond dictionary");
      }
      RDFPARAMS_ASSIGN_OR_RETURN(t.level, dec.ReadU32());
      RDFPARAMS_ASSIGN_OR_RETURN(uint64_t parent_bits, dec.ReadU64());
      int64_t parent = static_cast<int64_t>(parent_bits);
      // Parents precede children (the tree is stored in BFS order).
      if (parent < -1 || parent >= static_cast<int64_t>(i)) {
        return Status::ParseError("workbench meta type parent out of order");
      }
      t.parent = static_cast<int>(parent);
      RDFPARAMS_ASSIGN_OR_RETURN(t.num_products, dec.ReadU64());
      RDFPARAMS_ASSIGN_OR_RETURN(uint64_t pool, dec.ReadU64());
      if (pool > dec.remaining() / 4) {
        return Status::ParseError("workbench meta feature pool truncated");
      }
      t.feature_pool.reserve(pool);
      for (uint64_t k = 0; k < pool; ++k) {
        RDFPARAMS_ASSIGN_OR_RETURN(uint32_t f, dec.ReadU32());
        t.feature_pool.push_back(f);
      }
      ds->types.push_back(std::move(t));
    }
    RDFPARAMS_ASSIGN_OR_RETURN(ds->products, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->features, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->producers, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->vendors, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->reviewers, ReadIdVector(&dec, dict_size));
    for (const bsbm::TypeNode& t : ds->types) {
      for (uint32_t f : t.feature_pool) {
        if (f >= ds->features.size()) {
          return Status::ParseError("workbench meta feature index beyond "
                                    "feature list");
        }
      }
    }
    if (!dec.done()) {
      return Status::ParseError("workbench meta has trailing bytes");
    }
    ds->dict = std::move(dict);
    ds->store = std::move(store);
    wb.bsbm_ds = std::move(ds);
    wb.templates = bsbm::AllTemplates(*wb.bsbm_ds);
    return wb;
  }
  if (workload == kMetaSnb) {
    auto ds = std::make_unique<snb::Dataset>();
    ds->vocab = snb::Vocabulary::Default();
    RDFPARAMS_ASSIGN_OR_RETURN(ds->persons, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->countries, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->tags, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->posts, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(ds->first_names, ReadIdVector(&dec, dict_size));
    RDFPARAMS_ASSIGN_OR_RETURN(uint64_t nh, dec.ReadU64());
    if (nh != ds->persons.size()) {
      return Status::ParseError("workbench meta home_country size mismatch");
    }
    ds->home_country.reserve(nh);
    for (uint64_t i = 0; i < nh; ++i) {
      RDFPARAMS_ASSIGN_OR_RETURN(uint32_t c, dec.ReadU32());
      if (c >= ds->countries.size()) {
        return Status::ParseError("workbench meta home country index beyond "
                                  "country list");
      }
      ds->home_country.push_back(c);
    }
    if (!dec.done()) {
      return Status::ParseError("workbench meta has trailing bytes");
    }
    ds->dict = std::move(dict);
    ds->store = std::move(store);
    wb.snb_ds = std::move(ds);
    wb.templates = snb::AllTemplates(*wb.snb_ds);
    return wb;
  }
  return Status::ParseError("unknown workbench meta workload " +
                            std::to_string(workload));
}

Status SaveWorkbenchSnapshot(const Workbench& wb, const std::string& path,
                             const storage::SaveOptions& options) {
  return storage::Snapshot::Save(wb.dict(), wb.store(),
                                 EncodeWorkbenchMeta(wb), path, options);
}

Result<Workbench> OpenWorkbenchSnapshot(const std::string& path,
                                        const storage::OpenOptions& options) {
  RDFPARAMS_ASSIGN_OR_RETURN(storage::OpenedSnapshot snap,
                             storage::Snapshot::Open(path, options));
  if (!snap.has_app_meta) {
    return Status::InvalidArgument(
        path + ": snapshot has no workload metadata (saved from a raw "
        "N-Triples load?); it cannot serve workload templates");
  }
  return WorkbenchFromSnapshotParts(std::move(snap.dict),
                                    std::move(snap.store), snap.app_meta);
}

}  // namespace rdfparams::server

#include "server/service.h"

#include <bit>
#include <utility>

#include "core/workload.h"
#include "optimizer/optimizer.h"
#include "rdf/ntriples.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace rdfparams::server {

namespace {

// Per-request work caps: one request must never be able to park a worker
// on an effectively unbounded computation. Violations get a clean
// InvalidArgument frame, the connection stays usable.
constexpr int64_t kMaxRunBindings = 65536;
constexpr int64_t kMaxClassifyCandidates = 1 << 20;

// Bound on the shared cache so a long-lived daemon cannot grow it without
// limit under parameter churn (16 shards; ~1M entries total).
constexpr size_t kCacheShards = 16;
constexpr size_t kCacheEntriesPerShard = 64 * 1024;

Result<int64_t> GetBounded(const Request& request, const std::string& key,
                           int64_t fallback, int64_t lo, int64_t hi) {
  RDFPARAMS_ASSIGN_OR_RETURN(int64_t v, request.GetInt64(key, fallback));
  if (v < lo || v > hi) {
    return Status::InvalidArgument(
        "field '" + key + "': " + std::to_string(v) + " out of range [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

}  // namespace

Service::Service(const Workbench& wb)
    : wb_(wb), cache_(kCacheShards, kCacheEntriesPerShard) {
  domains_.resize(wb.templates.size());
  domain_errors_.resize(wb.templates.size());
  for (size_t i = 0; i < wb.templates.size(); ++i) {
    auto domain = MakeDomain(wb, wb.templates[i]);
    if (domain.ok()) {
      domains_[i].emplace(std::move(domain).value());
    } else {
      domain_errors_[i] = domain.status();
    }
  }
}

Result<std::string> Service::Handle(uint8_t opcode,
                                    const std::string& payload,
                                    Session* session) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
      return payload;  // echo, zero-length payloads included
    case Opcode::kClassify:
    case Opcode::kRun:
    case Opcode::kExplain: {
      RDFPARAMS_ASSIGN_OR_RETURN(Request request, ParseRequest(payload));
      if (opcode == static_cast<uint8_t>(Opcode::kClassify)) {
        return HandleClassify(request, session);
      }
      if (opcode == static_cast<uint8_t>(Opcode::kRun)) {
        return HandleRun(request, session);
      }
      return HandleExplain(request, session);
    }
    case Opcode::kShutdown:
      // Lifecycle events are the server's job; reaching here is a wiring
      // bug, not a client error.
      return Status::Internal("shutdown must be handled by the server");
    default:
      return Status::InvalidArgument("unknown opcode " +
                                     std::to_string(opcode));
  }
}

Result<std::pair<const sparql::QueryTemplate*, const core::ParameterDomain*>>
Service::PickQuery(const Request& request) {
  RDFPARAMS_ASSIGN_OR_RETURN(int64_t query, request.GetInt64("query", 1));
  RDFPARAMS_ASSIGN_OR_RETURN(const sparql::QueryTemplate* tmpl,
                             PickTemplate(wb_, query));
  size_t index = static_cast<size_t>(query - 1);
  if (!domains_[index].has_value()) return domain_errors_[index];
  return std::pair<const sparql::QueryTemplate*, const core::ParameterDomain*>(
      tmpl, &*domains_[index]);
}

Result<std::vector<sparql::ParameterBinding>> Service::ParseInlineBindings(
    const sparql::QueryTemplate& tmpl, const std::string& body,
    Session* session) {
  // Same grammar as core::ReadBindings, but interning goes through the
  // session's scratch overlay: the shared dictionary must stay frozen
  // under concurrent sessions. Terms that land in the overlay (id >=
  // base size) do not exist in the store — downstream layers would have
  // no data for them — so they are rejected per-request instead of being
  // silently folded into shared state.
  std::vector<sparql::ParameterBinding> out;
  size_t line_no = 0;
  for (const std::string& raw : util::Split(body, '\n')) {
    ++line_no;
    std::string_view line = util::Trim(raw);
    if (line.empty()) continue;
    if (line[0] == '#') {
      constexpr std::string_view kTemplateTag = "# template: ";
      if (util::StartsWith(line, kTemplateTag) &&
          line.substr(kTemplateTag.size()) != tmpl.name()) {
        return Status::InvalidArgument(
            "bindings are for template '" +
            std::string(line.substr(kTemplateTag.size())) + "', expected '" +
            tmpl.name() + "'");
      }
      continue;
    }
    std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() != tmpl.arity()) {
      return Status::ParseError(
          "bindings line " + std::to_string(line_no) + ": expected " +
          std::to_string(tmpl.arity()) + " terms, got " +
          std::to_string(fields.size()));
    }
    sparql::ParameterBinding binding;
    binding.values.reserve(fields.size());
    for (const std::string& field : fields) {
      size_t pos = 0;
      auto term = rdf::ParseNTriplesTerm(util::Trim(field), &pos);
      if (!term.ok()) {
        return Status::ParseError("bindings line " + std::to_string(line_no) +
                                  ": " + term.status().message());
      }
      rdf::TermId id = session->scratch_.Intern(*term);
      if (id >= session->scratch_.base_size()) {
        return Status::NotFound("bindings line " + std::to_string(line_no) +
                                ": term " + term->ToNTriples() +
                                " is not in the store dictionary");
      }
      binding.values.push_back(id);
    }
    out.push_back(std::move(binding));
  }
  return out;
}

Result<std::string> Service::HandleClassify(const Request& request,
                                            Session* session) {
  RDFPARAMS_RETURN_NOT_OK(request.CheckAllowedKeys(
      {"query", "max_candidates", "bucket_width", "strategy"}));
  auto picked = PickQuery(request);
  if (!picked.ok()) return picked.status();
  const auto [tmpl, domain] = *picked;

  RDFPARAMS_ASSIGN_OR_RETURN(
      int64_t max_candidates,
      GetBounded(request, "max_candidates", 2000, 1, kMaxClassifyCandidates));
  RDFPARAMS_ASSIGN_OR_RETURN(double bucket_width,
                             request.GetDouble("bucket_width", 1.0));
  std::string strategy_name = request.GetString("strategy", "batched");
  core::ClassifyStrategy strategy;
  if (strategy_name == "batched") {
    strategy = core::ClassifyStrategy::kBatched;
  } else if (strategy_name == "per-candidate") {
    strategy = core::ClassifyStrategy::kPerCandidate;
  } else {
    return Status::InvalidArgument("unknown strategy '" + strategy_name +
                                   "' (use batched or per-candidate)");
  }

  // One incremental session per distinct classify configuration on this
  // connection: repeated calls (e.g. a growing-budget sweep) only pay for
  // the fresh suffix, and the session contract keeps every response
  // byte-identical to a fresh one-shot call.
  RDFPARAMS_ASSIGN_OR_RETURN(int64_t query, request.GetInt64("query", 1));
  auto key = std::make_tuple(query, std::bit_cast<uint64_t>(bucket_width),
                             static_cast<int>(strategy));
  auto it = session->classify_sessions_.find(key);
  if (it == session->classify_sessions_.end()) {
    core::ClassifyOptions options;
    options.cost_bucket_log2_width = bucket_width;
    options.strategy = strategy;
    options.threads = 1;  // concurrency comes from sessions, not requests
    options.optimizer.cardinality_cache = &cache_;
    it = session->classify_sessions_
             .emplace(key, std::make_unique<core::ClassificationSession>(
                               *tmpl, wb_.store(), wb_.dict(), options))
             .first;
  }
  RDFPARAMS_ASSIGN_OR_RETURN(
      core::Classification classification,
      it->second->Classify(*domain, static_cast<uint64_t>(max_candidates)));
  return FormatClassification(*tmpl, classification, wb_.dict());
}

Result<std::string> Service::HandleRun(const Request& request,
                                       Session* session) {
  RDFPARAMS_RETURN_NOT_OK(request.CheckAllowedKeys({"query", "n", "seed"}));
  auto picked = PickQuery(request);
  if (!picked.ok()) return picked.status();
  const auto [tmpl, domain] = *picked;

  std::vector<sparql::ParameterBinding> bindings;
  if (!request.body.empty()) {
    RDFPARAMS_ASSIGN_OR_RETURN(
        bindings, ParseInlineBindings(*tmpl, request.body, session));
    if (static_cast<int64_t>(bindings.size()) > kMaxRunBindings) {
      return Status::InvalidArgument(
          std::to_string(bindings.size()) + " inline bindings exceed the " +
          std::to_string(kMaxRunBindings) + "-binding request cap");
    }
  } else {
    RDFPARAMS_ASSIGN_OR_RETURN(
        int64_t n, GetBounded(request, "n", 100, 1, kMaxRunBindings));
    RDFPARAMS_ASSIGN_OR_RETURN(int64_t seed, request.GetInt64("seed", 42));
    // Same stream the CLI's sample/run fallback uses: seed + 1000.
    util::Rng rng(static_cast<uint64_t>(seed) + 1000);
    bindings = domain->SampleN(&rng, static_cast<size_t>(n));
  }

  // Read-only runner: executors intern into private overlays, the shared
  // dictionary is never written. Exec options stay at the serial
  // defaults — any value is byte-identical anyway (the repo's determinism
  // contract), serial just avoids nested pools under many sessions.
  core::WorkloadRunner runner(wb_.store(), wb_.dict());
  core::WorkloadOptions options;
  options.threads = 1;
  options.optimizer.cardinality_cache = &cache_;
  RDFPARAMS_ASSIGN_OR_RETURN(std::vector<core::RunObservation> obs,
                             runner.RunAll(*tmpl, bindings, options));
  return FormatObservations(*tmpl, obs, wb_.dict());
}

Result<std::string> Service::HandleExplain(const Request& request,
                                           Session* session) {
  RDFPARAMS_RETURN_NOT_OK(request.CheckAllowedKeys({"query", "seed"}));
  auto picked = PickQuery(request);
  if (!picked.ok()) return picked.status();
  const auto [tmpl, domain] = *picked;

  sparql::ParameterBinding binding;
  if (!request.body.empty()) {
    RDFPARAMS_ASSIGN_OR_RETURN(
        std::vector<sparql::ParameterBinding> bindings,
        ParseInlineBindings(*tmpl, request.body, session));
    if (bindings.size() != 1) {
      return Status::InvalidArgument(
          "explain takes exactly one inline binding, got " +
          std::to_string(bindings.size()));
    }
    binding = std::move(bindings[0]);
  } else {
    RDFPARAMS_ASSIGN_OR_RETURN(int64_t seed, request.GetInt64("seed", 42));
    util::Rng rng(static_cast<uint64_t>(seed) + 1000);
    binding = domain->Sample(&rng);
  }

  RDFPARAMS_ASSIGN_OR_RETURN(sparql::SelectQuery bound,
                             tmpl->Bind(binding, wb_.dict()));
  opt::OptimizeOptions options;
  options.cardinality_cache = &cache_;
  RDFPARAMS_ASSIGN_OR_RETURN(
      opt::OptimizedPlan plan,
      opt::Optimize(bound, wb_.store(), wb_.dict(), options));
  return FormatExplain(*tmpl, bound, binding, plan, wb_.dict());
}

}  // namespace rdfparams::server

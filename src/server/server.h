// Long-lived TCP daemon serving classify / run / explain over the wire
// protocol (server/wire.h), built on the existing util::ThreadPool.
//
// Threading model:
//   * One accept thread owns the listening socket and performs admission
//     control. It never executes requests.
//   * Admitted connections become pool tasks; each task serves its whole
//     connection (read frames -> dispatch -> respond, strictly in order)
//     on one worker. With `threads` workers, at most `threads` sessions
//     make progress at a time; further admitted sessions wait in the pool
//     queue — that queue is the backpressure buffer.
//
// Admission control (checked on the accept thread, before any request
// bytes are read):
//   * at most `max_conns` admitted (queued + serving) sessions;
//   * at most `queue_depth` of them waiting for a worker.
// A connection over either limit receives a single kError frame carrying
// StatusCode::kUnavailable with a deterministic message, then the socket
// closes. Clients can retry; the daemon never silently drops a connection
// it accepted, and it never blocks the accept loop on a saturated pool.
//
// Shutdown: RequestStop() (also triggered by a kShutdown frame) stops
// admission and wakes AwaitShutdown(); Stop() then half-closes every live
// session socket, drains the pool, and joins. A request already being
// served finishes and its response is written before the session closes.
//
// Testability: `port` 0 binds an ephemeral port, reported by port() and
// printed by the CLI. Start() ignores SIGPIPE process-wide — a client
// vanishing mid-response must surface as a write error on that session,
// not kill the daemon.
#ifndef RDFPARAMS_SERVER_SERVER_H_
#define RDFPARAMS_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/service.h"
#include "server/wire.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdfparams::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// TCP port; 0 = ephemeral (read the result from port()).
  uint16_t port = 0;
  /// Connection-handler workers; <= 0 = hardware concurrency.
  int threads = 0;
  /// Max admitted (queued + serving) sessions; above it: rejection frame.
  int max_conns = 64;
  /// Max admitted sessions waiting for a worker; above it: rejection frame.
  int queue_depth = 64;
  /// listen(2) backlog (pre-admission kernel queue).
  int backlog = 128;
};

class Server {
 public:
  /// `service` must outlive the server.
  Server(Service* service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens, spawns the worker pool and the accept thread.
  [[nodiscard]] Status Start();

  /// The actually bound port (valid after Start(); the point of port 0).
  uint16_t port() const { return port_; }

  /// Blocks until RequestStop() — e.g. a client's kShutdown frame.
  void AwaitShutdown();

  /// Stops admission and wakes AwaitShutdown(). Safe from any thread,
  /// including connection handlers; does not join (call Stop() for that).
  void RequestStop();

  /// Full teardown: RequestStop + half-close live sessions + drain the
  /// pool + join everything. Idempotent.
  void Stop();

  // Lifetime counters (for tests and the bench harness).
  uint64_t accepted_connections() const { return accepted_.load(); }
  uint64_t rejected_connections() const { return rejected_.load(); }
  uint64_t served_requests() const { return served_requests_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd, uint64_t id);

  /// Writes one frame; returns false when the client is gone (EPIPE et
  /// al. — with SIGPIPE ignored these are plain errors).
  static bool WriteFrame(int fd, Opcode opcode, std::string_view payload);

  Service* service_;
  ServerConfig config_;
  uint16_t port_ = 0;

  /// Guards listen_fd_ against the RequestStop (wake accept) vs Stop
  /// (close) race; the accept thread itself reads the fd only while it
  /// is guaranteed open (Stop joins it before resetting).
  std::mutex listen_mu_;
  util::UniqueFd listen_fd_;
  std::thread accept_thread_;
  std::unique_ptr<util::ThreadPool> pool_;

  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // guarded by stop_mu_: Stop() ran to completion
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  // Admission accounting. admitted_ is only incremented on the accept
  // thread, so the max_conns cap is strict; queued_ decrements happen on
  // workers, so the queue_depth check is conservative (never under-counts
  // waiting sessions).
  std::atomic<int> admitted_{0};
  std::atomic<int> queued_{0};

  // Live session sockets, so Stop() can unblock handlers parked in
  // read(). Handlers deregister before closing; ids are never reused.
  std::mutex conns_mu_;
  std::map<uint64_t, int> conns_;
  uint64_t next_conn_id_ = 0;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> served_requests_{0};
};

}  // namespace rdfparams::server

#endif  // RDFPARAMS_SERVER_SERVER_H_

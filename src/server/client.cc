#include "server/client.h"

namespace rdfparams::server {

Status Client::Connect(const std::string& host, uint16_t port) {
  util::IgnoreSigpipe();  // a dying server must not kill the client either
  RDFPARAMS_ASSIGN_OR_RETURN(fd_, util::ConnectTcp(host, port));
  decoder_ = FrameDecoder();
  return Status::OK();
}

Status Client::Send(Opcode opcode, std::string_view payload) {
  return SendRaw(EncodeFrame(opcode, payload));
}

Status Client::SendRaw(std::string_view bytes) {
  if (!fd_.valid()) return Status::Internal("client is not connected");
  return util::WriteFull(fd_.get(), bytes.data(), bytes.size());
}

Result<Frame> Client::ReadFrame() {
  if (!fd_.valid()) return Status::Internal("client is not connected");
  char buf[64 * 1024];
  for (;;) {
    if (auto frame = decoder_.Next()) return *frame;
    RDFPARAMS_ASSIGN_OR_RETURN(size_t got,
                               util::ReadSome(fd_.get(), buf, sizeof(buf)));
    if (got == 0) {
      return Status::IOError("server closed the connection" +
                             (decoder_.buffered() > 0
                                  ? " mid-frame (" +
                                        std::to_string(decoder_.buffered()) +
                                        " bytes buffered)"
                                  : std::string()));
    }
    RDFPARAMS_RETURN_NOT_OK(decoder_.Feed(std::string_view(buf, got)));
  }
}

Result<Frame> Client::Call(Opcode opcode, std::string_view payload) {
  RDFPARAMS_RETURN_NOT_OK(Send(opcode, payload));
  return ReadFrame();
}

void Client::CloseWrite() {
  if (fd_.valid()) util::ShutdownWrite(fd_.get());
}

Result<std::string> CallOnce(const std::string& host, uint16_t port,
                             Opcode opcode, std::string_view payload) {
  Client client;
  RDFPARAMS_RETURN_NOT_OK(client.Connect(host, port));
  RDFPARAMS_ASSIGN_OR_RETURN(Frame frame, client.Call(opcode, payload));
  if (frame.opcode == static_cast<uint8_t>(Opcode::kError)) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != static_cast<uint8_t>(Opcode::kOk)) {
    return Status::ParseError("unexpected response opcode " +
                              std::to_string(frame.opcode));
  }
  return std::move(frame.payload);
}

}  // namespace rdfparams::server

// Request dispatch for the workload server: maps a decoded frame onto the
// existing pipeline — core::ClassificationSession for classify,
// core::WorkloadRunner (read-only mode) for run, opt::Optimize for
// explain — and renders the response payload with the protocol formatters.
//
// Isolation model (the reason thousands of concurrent sessions can share
// one store):
//   * The Workbench (store, dictionary, templates, domains) is immutable
//     after startup. Handlers only read it.
//   * Each connection owns a Service::Session. Terms a request interns —
//     parsing inline bindings — go into the session's private
//     rdf::ScratchDictionary overlay, never into the shared dictionary;
//     executors additionally run in read-only mode with their own
//     overlays (engine::Executor read-only constructor). A session can
//     therefore never contaminate the shared store, and two sessions can
//     never observe each other.
//   * Execution rejects bindings whose terms live only in a session
//     overlay (they do not exist in the store, so downstream layers have
//     no ids for them) with a clean error frame.
//   * The only shared mutable state is the opt::CardinalityCache, which
//     is sharded, thread-safe, and value-stable: hits never change any
//     result, only the time it takes to compute (the property the
//     differential harness leans on).
//
// Every per-request option that could change result bytes (optimizer
// thread count, exec knobs) is pinned to the serial defaults: concurrency
// comes from serving many sessions at once, and responses stay
// byte-identical to in-process serial calls by construction.
#ifndef RDFPARAMS_SERVER_SERVICE_H_
#define RDFPARAMS_SERVER_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/classification_session.h"
#include "core/plan_classifier.h"
#include "optimizer/cardinality_cache.h"
#include "server/protocol.h"
#include "server/wire.h"
#include "server/workbench.h"
#include "util/status.h"

namespace rdfparams::server {

class Service {
 public:
  /// Per-connection state. Created by the server when a connection is
  /// admitted, destroyed when it closes; only ever touched by the one
  /// handler task serving that connection.
  class Session {
   public:
    explicit Session(const rdf::Dictionary& base_dict)
        : scratch_(base_dict) {}

   private:
    friend class Service;
    /// Absorbs request-side interning (inline binding terms unknown to
    /// the store) so the shared dictionary stays frozen.
    rdf::ScratchDictionary scratch_;
    /// Incremental classification state, one per distinct classify
    /// configuration seen on this connection. Repeated classify requests
    /// (e.g. a growing max_candidates sweep) pay only for the fresh
    /// suffix; the session contract guarantees responses byte-identical
    /// to fresh one-shot calls regardless.
    std::map<std::tuple<int64_t, uint64_t, int>,
             std::unique_ptr<core::ClassificationSession>>
        classify_sessions_;
  };

  /// `wb` must outlive the service and stay frozen.
  explicit Service(const Workbench& wb);

  /// Handles one request frame; returns the kOk response payload or the
  /// Status to encode into a kError frame. kShutdown is not handled here
  /// (the server intercepts it — it is a lifecycle event, not a query).
  [[nodiscard]] Result<std::string> Handle(uint8_t opcode, const std::string& payload,
                             Session* session);

  /// The shared cardinality cache (exposed for bench/stat reporting).
  const opt::CardinalityCache& cache() const { return cache_; }

  /// The frozen base dictionary sessions overlay (the server constructs
  /// one Session per admitted connection).
  const rdf::Dictionary& base_dict() const { return wb_.dict(); }

 private:
  [[nodiscard]] Result<std::string> HandleClassify(const Request& request,
                                     Session* session);
  [[nodiscard]] Result<std::string> HandleRun(const Request& request, Session* session);
  [[nodiscard]] Result<std::string> HandleExplain(const Request& request,
                                    Session* session);

  /// Template + its startup-built default domain for a request's `query`
  /// field (1-based). Templates whose domain construction failed at
  /// startup yield that error per-request.
  [[nodiscard]] Result<std::pair<const sparql::QueryTemplate*,
                                 const core::ParameterDomain*>>
  PickQuery(const Request& request);

  /// Parses the request body as workload_io bindings TSV through the
  /// session's scratch overlay; fails cleanly if any term is absent from
  /// the shared store dictionary.
  [[nodiscard]] Result<std::vector<sparql::ParameterBinding>> ParseInlineBindings(
      const sparql::QueryTemplate& tmpl, const std::string& body,
      Session* session);

  const Workbench& wb_;
  /// Default domain per template, built once at startup (index = template
  /// position). Domains are deterministic functions of the dataset, so
  /// building them per request would only add latency, not freshness.
  std::vector<std::optional<core::ParameterDomain>> domains_;
  std::vector<Status> domain_errors_;
  /// Shared across sessions; sharded + thread-safe. Bounded so that a
  /// long-lived daemon under adversarial parameter churn cannot grow it
  /// without limit.
  opt::CardinalityCache cache_;
};

}  // namespace rdfparams::server

#endif  // RDFPARAMS_SERVER_SERVICE_H_

// Request payloads and response formatting for the workload server.
//
// Requests are text: `key=value` lines, optionally followed by one blank
// line and a free-form body (e.g. inline parameter bindings in the
// workload_io TSV format). Text keeps the protocol greppable on the wire
// while the framing (server/wire.h) stays binary.
//
// Responses are produced by the Format* functions below. They are the
// determinism anchor of the whole server: the differential harness
// (tests/server_differential_test.cc) computes the same classification /
// observations / plan *in process* and formats them with these same
// functions — the bytes coming back over the socket must match exactly,
// at every server thread count and client concurrency. Every float is
// rendered with "%.17g" (round-trip exact), and the non-deterministic
// wall-clock field of RunObservation is deliberately excluded.
#ifndef RDFPARAMS_SERVER_PROTOCOL_H_
#define RDFPARAMS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/plan_classifier.h"
#include "core/workload.h"
#include "optimizer/plan.h"
#include "sparql/query_template.h"
#include "util/status.h"

namespace rdfparams::server {

/// A parsed request payload: header fields plus an optional body (the
/// text after the first blank line, verbatim).
struct Request {
  std::map<std::string, std::string> fields;
  std::string body;

  /// Typed field access with defaults; malformed values are errors.
  [[nodiscard]] Result<int64_t> GetInt64(const std::string& key, int64_t fallback) const;
  [[nodiscard]] Result<double> GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Fails if any field key is not in `allowed` — typos in a request
  /// must produce an error frame, not a silently ignored knob.
  [[nodiscard]] Status CheckAllowedKeys(const std::vector<std::string>& allowed) const;
};

/// Serializes fields (sorted by key) and the optional body.
std::string EncodeRequest(const Request& request);

/// Parses a payload. Fails on lines without '=' in the header section.
[[nodiscard]] Result<Request> ParseRequest(std::string_view payload);

// ---------------------------------------------------------------------------
// Response formatters (shared by the server and the differential tests).
// ---------------------------------------------------------------------------

/// Classification result: header, one line per class (size, share, cost
/// bucket, C_out range, fingerprint, representative binding), and the
/// full candidate->class map.
std::string FormatClassification(const sparql::QueryTemplate& tmpl,
                                 const core::Classification& classification,
                                 const rdf::Dictionary& dict);

/// Run observations, one line per binding, excluding the wall-clock
/// `seconds` field (a measurement, not a value).
std::string FormatObservations(const sparql::QueryTemplate& tmpl,
                               const std::vector<core::RunObservation>& obs,
                               const rdf::Dictionary& dict);

/// Optimizer verdict for one bound query: fingerprint, estimates, and the
/// EXPLAIN rendering.
std::string FormatExplain(const sparql::QueryTemplate& tmpl,
                          const sparql::SelectQuery& bound_query,
                          const sparql::ParameterBinding& binding,
                          const opt::OptimizedPlan& plan,
                          const rdf::Dictionary& dict);

}  // namespace rdfparams::server

#endif  // RDFPARAMS_SERVER_PROTOCOL_H_

#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace rdfparams::server {

namespace {

// Deterministic rejection messages: the stress test asserts these bytes.
std::string MaxConnsMessage(int max_conns) {
  return "server at capacity: max connections (" + std::to_string(max_conns) +
         ") reached";
}
std::string QueueDepthMessage(int queue_depth) {
  return "server at capacity: pending queue full (depth " +
         std::to_string(queue_depth) + ")";
}

}  // namespace

Server::Server(Service* service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  // A dropped client must surface as EPIPE on its own session, never as a
  // process-killing signal (satellite-tested in server_stress_test).
  util::IgnoreSigpipe();

  RDFPARAMS_ASSIGN_OR_RETURN(
      listen_fd_,
      util::ListenTcp(config_.host, config_.port, config_.backlog, &port_));

  size_t threads = util::ThreadPool::ResolveThreads(config_.threads);
  // Handlers run entirely on pool workers (never inline on the accept
  // thread), so the accept loop stays responsive for admission control
  // even when every worker is busy.
  pool_ = std::make_unique<util::ThreadPool>(threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      break;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // The listener is broken beyond repair (EMFILE storms included);
      // surface it as a shutdown instead of spinning.
      RequestStop();
      break;
    }

    // Admission control. admitted_ only grows here, so the cap is strict.
    if (admitted_.load(std::memory_order_acquire) >= config_.max_conns) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      WriteFrame(fd, Opcode::kError,
                 EncodeErrorPayload(
                     Status::Unavailable(MaxConnsMessage(config_.max_conns))));
      ::close(fd);
      continue;
    }
    if (queued_.load(std::memory_order_acquire) >= config_.queue_depth) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      WriteFrame(fd, Opcode::kError,
                 EncodeErrorPayload(Status::Unavailable(
                     QueueDepthMessage(config_.queue_depth))));
      ::close(fd);
      continue;
    }

    accepted_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_acq_rel);
    queued_.fetch_add(1, std::memory_order_acq_rel);

    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      id = next_conn_id_++;
      conns_[id] = fd;
    }
    pool_->Submit([this, fd, id] { HandleConnection(fd, id); });
  }
}

void Server::HandleConnection(int fd, uint64_t id) {
  queued_.fetch_sub(1, std::memory_order_acq_rel);

  Service::Session session(service_->base_dict());
  FrameDecoder decoder;
  char buf[64 * 1024];
  bool shutdown_requested = false;

  for (;;) {
    auto got = util::ReadSome(fd, buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;  // peer closed or socket torn down
    Status fed = decoder.Feed(std::string_view(buf, *got));
    if (!fed.ok()) {
      // Malformed framing: answer once, then the connection is beyond
      // salvage (we can no longer find frame boundaries).
      WriteFrame(fd, Opcode::kError, EncodeErrorPayload(fed));
      break;
    }
    bool client_gone = false;
    while (auto frame = decoder.Next()) {
      served_requests_.fetch_add(1, std::memory_order_relaxed);
      if (frame->opcode == static_cast<uint8_t>(Opcode::kShutdown)) {
        // Acknowledge before initiating teardown, so the requesting
        // client always gets its response.
        WriteFrame(fd, Opcode::kOk, "shutting down");
        shutdown_requested = true;
        break;
      }
      auto response = service_->Handle(frame->opcode, frame->payload,
                                       &session);
      bool wrote =
          response.ok()
              ? WriteFrame(fd, Opcode::kOk, *response)
              : WriteFrame(fd, Opcode::kError,
                           EncodeErrorPayload(response.status()));
      if (!wrote) {  // client vanished (EPIPE under SIG_IGN); drop session
        client_gone = true;
        break;
      }
    }
    if (shutdown_requested || client_gone) break;
  }

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(id);
  }
  ::close(fd);
  admitted_.fetch_sub(1, std::memory_order_acq_rel);
  if (shutdown_requested) RequestStop();
}

bool Server::WriteFrame(int fd, Opcode opcode, std::string_view payload) {
  std::string frame = EncodeFrame(opcode, payload);
  return util::WriteFull(fd, frame.data(), frame.size()).ok();
}

void Server::AwaitShutdown() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] {
    return stopping_.load(std::memory_order_acquire);
  });
}

void Server::RequestStop() {
  bool was_stopping = stopping_.exchange(true, std::memory_order_acq_rel);
  if (!was_stopping) {
    // Wakes the accept thread out of accept(2); the fd itself stays open
    // until Stop() joins the thread (closing a blocked-on fd is UB-ish).
    // listen_mu_ orders this against Stop()'s reset — a handler-initiated
    // RequestStop (kShutdown frame) can run concurrently with Stop().
    std::lock_guard<std::mutex> lock(listen_mu_);
    if (listen_fd_.valid()) util::ShutdownBoth(listen_fd_.get());
  }
  stop_cv_.notify_all();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(listen_mu_);
    listen_fd_.reset();
  }

  // Unblock handlers parked in read() by half-closing the *read* side of
  // every live session. A dispatch already in flight still owns a working
  // write side, so its response reaches the client before the handler
  // sees EOF on its next read — accepted requests are served, not lost.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, fd] : conns_) util::ShutdownRead(fd);
  }
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();  // joins workers
  }
}

}  // namespace rdfparams::server

// The workload server's wire protocol: length-prefixed binary frames.
//
//   frame   := u32 length (little-endian) | u8 opcode | payload
//   length  := 1 + |payload|   (counts the opcode byte, not itself)
//
// Requests carry a request opcode; every request is answered by exactly
// one response frame — kOk with an opcode-specific payload, or kError
// with `u8 StatusCode + utf-8 message`. The protocol is deliberately
// dumb: no negotiation, no versioning handshake, no pipelined response
// reordering — requests on one connection are answered strictly in order,
// which is what makes the differential harness's byte-for-byte comparison
// against in-process calls meaningful.
//
// FrameDecoder is a pure incremental parser (no I/O): feed it whatever
// byte slices the transport produces — frames split across reads, many
// frames in one read — and pop complete frames. Malformed input (a length
// of 0, which cannot hold the opcode, or a length beyond kMaxFrameBytes)
// puts the decoder into a sticky error state; the server answers with one
// error frame and closes, it never crashes or hangs.
#ifndef RDFPARAMS_SERVER_WIRE_H_
#define RDFPARAMS_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rdfparams::server {

enum class Opcode : uint8_t {
  // Requests.
  kPing = 1,      ///< payload echoed back verbatim in the kOk response
  kClassify = 2,  ///< key=value request; response: FormatClassification
  kRun = 3,       ///< key=value [+ inline bindings]; FormatObservations
  kExplain = 4,   ///< key=value [+ inline binding]; FormatExplain
  kShutdown = 5,  ///< asks the daemon to stop; answered before teardown
  // Responses.
  kOk = 0x80,
  kError = 0x81,
};

/// Hard cap on the length prefix. A frame claiming more is treated as
/// malformed immediately — the decoder never buffers toward an absurd
/// length a hostile client will not deliver.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

struct Frame {
  uint8_t opcode = 0;
  std::string payload;
};

/// Serializes one frame (length prefix + opcode + payload).
std::string EncodeFrame(Opcode opcode, std::string_view payload);

/// kError payload: u8 StatusCode + message bytes.
std::string EncodeErrorPayload(const Status& status);

/// Decodes a kError payload back into the carried Status; an empty
/// payload (no status byte) decodes as a ParseError about itself.
[[nodiscard]] Status DecodeErrorPayload(std::string_view payload);

/// Incremental frame parser. Feed() appends transport bytes and validates
/// every length prefix as soon as its 4 bytes are buffered; Next() pops
/// the earliest complete frame. After Feed() returns an error the decoder
/// stays in that error state (Feed keeps returning it, Next returns
/// nothing) — the connection is beyond salvage by then.
class FrameDecoder {
 public:
  [[nodiscard]] Status Feed(std::string_view bytes);
  std::optional<Frame> Next();

  /// Bytes buffered but not yet returned by Next().
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status error_ = Status::OK();
};

}  // namespace rdfparams::server

#endif  // RDFPARAMS_SERVER_WIRE_H_

#include "bsbm/generator.h"

#include <cmath>
#include <deque>

#include "rdf/vocab.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace rdfparams::bsbm {

using rdf::Term;
using rdf::TermId;

Vocabulary Vocabulary::Default() {
  const std::string ns(rdf::vocab::kBsbmNs);
  Vocabulary v;
  v.rdf_type = std::string(rdf::vocab::kRdfType);
  v.rdfs_label = std::string(rdf::vocab::kRdfsLabel);
  v.rdfs_subclass_of = std::string(rdf::vocab::kRdfsSubClassOf);
  v.product_type_class = ns + "ProductType";
  v.product_class = ns + "Product";
  v.product_feature = ns + "productFeature";
  v.producer = ns + "producer";
  v.product = ns + "product";
  v.vendor = ns + "vendor";
  v.price = ns + "price";
  v.review_for = ns + "reviewFor";
  v.reviewer = ns + "reviewer";
  v.rating = ns + "rating";
  v.numeric_prop1 = ns + "productPropertyNumeric1";
  return v;
}

std::vector<TermId> Dataset::TypeIds() const {
  std::vector<TermId> out;
  out.reserve(types.size());
  for (const TypeNode& t : types) out.push_back(t.id);
  return out;
}

std::vector<TermId> Dataset::LeafTypeIds() const {
  std::vector<TermId> out;
  std::vector<char> has_child(types.size(), 0);
  for (const TypeNode& t : types) {
    if (t.parent >= 0) has_child[static_cast<size_t>(t.parent)] = 1;
  }
  for (size_t i = 0; i < types.size(); ++i) {
    if (!has_child[i]) out.push_back(types[i].id);
  }
  return out;
}

namespace {

/// Geometric-ish count with the given mean, capped for safety.
uint64_t SampleCount(util::Rng* rng, double mean, uint64_t cap) {
  if (mean <= 0) return 0;
  double x = rng->NextExponential(1.0 / mean);
  uint64_t n = static_cast<uint64_t>(std::floor(x));
  return std::min(n, cap);
}

}  // namespace

Dataset Generate(const GeneratorConfig& config) {
  Dataset ds;
  ds.vocab = Vocabulary::Default();
  const Vocabulary& V = ds.vocab;
  const std::string inst(rdf::vocab::kBsbmInst);

  util::Rng root_rng(config.seed);
  util::Rng prod_rng =
      root_rng.Fork(util::SeedFromLabel(config.seed, "products"));
  util::Rng offer_rng =
      root_rng.Fork(util::SeedFromLabel(config.seed, "offers"));
  util::Rng review_rng =
      root_rng.Fork(util::SeedFromLabel(config.seed, "reviews"));

  rdf::Dictionary& dict = ds.dict;
  rdf::TripleStore& store = ds.store;

  TermId p_type = dict.InternIri(V.rdf_type);
  TermId p_label = dict.InternIri(V.rdfs_label);
  TermId p_subclass = dict.InternIri(V.rdfs_subclass_of);
  TermId c_product_type = dict.InternIri(V.product_type_class);
  TermId c_product = dict.InternIri(V.product_class);
  TermId p_feature = dict.InternIri(V.product_feature);
  TermId p_producer = dict.InternIri(V.producer);
  TermId p_product = dict.InternIri(V.product);
  TermId p_vendor = dict.InternIri(V.vendor);
  TermId p_price = dict.InternIri(V.price);
  TermId p_review_for = dict.InternIri(V.review_for);
  TermId p_reviewer = dict.InternIri(V.reviewer);
  TermId p_rating = dict.InternIri(V.rating);
  TermId p_numeric1 = dict.InternIri(V.numeric_prop1);

  // ---------------------------------------------------------------------
  // Product type tree (BFS), with per-node feature pools.
  // ---------------------------------------------------------------------
  uint32_t feature_counter = 0;
  auto new_features = [&](TypeNode* node) {
    for (uint32_t i = 0; i < config.features_per_type; ++i) {
      TermId f = dict.InternIri(
          inst + "ProductFeature" + std::to_string(feature_counter++));
      node->feature_pool.push_back(static_cast<uint32_t>(ds.features.size()));
      ds.features.push_back(f);
    }
  };

  {
    TypeNode root;
    root.id = dict.InternIri(inst + "ProductType0");
    root.level = 0;
    root.parent = -1;
    new_features(&root);
    store.Add(root.id, p_type, c_product_type);
    store.Add(root.id, p_label,
              dict.InternLiteral("product type 0 (root)"));
    ds.types.push_back(std::move(root));
  }
  {
    size_t begin = 0;
    uint32_t counter = 1;
    for (uint32_t level = 1; level <= config.type_depth; ++level) {
      size_t end = ds.types.size();
      for (size_t parent = begin; parent < end; ++parent) {
        for (uint32_t child = 0; child < config.type_branching; ++child) {
          TypeNode node;
          node.id =
              dict.InternIri(inst + "ProductType" + std::to_string(counter));
          node.level = level;
          node.parent = static_cast<int>(parent);
          new_features(&node);
          store.Add(node.id, p_type, c_product_type);
          store.Add(node.id, p_subclass, ds.types[parent].id);
          store.Add(node.id, p_label,
                    dict.InternLiteral(util::StringPrintf(
                        "product type %u (level %u)", counter, level)));
          ds.types.push_back(std::move(node));
          ++counter;
        }
      }
      begin = end;
    }
  }
  // Leaf list for product assignment.
  std::vector<size_t> leaf_indexes;
  {
    std::vector<char> has_child(ds.types.size(), 0);
    for (const TypeNode& t : ds.types) {
      if (t.parent >= 0) has_child[static_cast<size_t>(t.parent)] = 1;
    }
    for (size_t i = 0; i < ds.types.size(); ++i) {
      if (!has_child[i]) leaf_indexes.push_back(i);
    }
  }

  // ---------------------------------------------------------------------
  // Producers and vendors.
  // ---------------------------------------------------------------------
  uint32_t num_producers =
      config.num_producers > 0
          ? config.num_producers
          : static_cast<uint32_t>(config.num_products / 30 + 1);
  uint32_t num_vendors =
      config.num_vendors > 0
          ? config.num_vendors
          : static_cast<uint32_t>(config.num_products / 50 + 1);
  for (uint32_t i = 0; i < num_producers; ++i) {
    TermId id = dict.InternIri(inst + "Producer" + std::to_string(i));
    store.Add(id, p_label,
              dict.InternLiteral("producer " + std::to_string(i)));
    ds.producers.push_back(id);
  }
  for (uint32_t i = 0; i < num_vendors; ++i) {
    TermId id = dict.InternIri(inst + "Vendor" + std::to_string(i));
    store.Add(id, p_label, dict.InternLiteral("vendor " + std::to_string(i)));
    ds.vendors.push_back(id);
  }
  uint32_t num_reviewers =
      static_cast<uint32_t>(config.num_products / 10 + 10);
  for (uint32_t i = 0; i < num_reviewers; ++i) {
    ds.reviewers.push_back(
        dict.InternIri(inst + "Reviewer" + std::to_string(i)));
  }

  // Producer popularity is skewed (big brands make more products).
  util::ZipfDistribution producer_zipf(num_producers, 0.8);
  util::ZipfDistribution vendor_zipf(num_vendors, 0.7);
  util::ZipfDistribution reviewer_zipf(num_reviewers, 0.9);

  // ---------------------------------------------------------------------
  // Products with hierarchy-materialized types, features, offers, reviews.
  // ---------------------------------------------------------------------
  uint64_t offer_counter = 0;
  uint64_t review_counter = 0;
  for (uint64_t i = 0; i < config.num_products; ++i) {
    TermId prod = dict.InternIri(inst + "Product" + std::to_string(i));
    ds.products.push_back(prod);
    store.Add(prod, p_type, c_product);
    store.Add(prod, p_label,
              dict.InternLiteral("product " + std::to_string(i)));
    store.Add(prod, p_numeric1,
              dict.InternInteger(prod_rng.UniformRange(1, 2000)));

    // Leaf type, uniformly; materialize the whole ancestor chain.
    size_t leaf =
        leaf_indexes[static_cast<size_t>(prod_rng.Uniform(leaf_indexes.size()))];
    for (int node = static_cast<int>(leaf); node >= 0;
         node = ds.types[static_cast<size_t>(node)].parent) {
      TypeNode& tn = ds.types[static_cast<size_t>(node)];
      store.Add(prod, p_type, tn.id);
      ++tn.num_products;
    }

    // Features from the pools along the root-to-leaf path, so products of
    // sibling types share high-level features (similarity!). The number
    // taken per level varies (0-3 at inner levels, 1-3 at the leaf) and
    // picks within a pool are Zipf-skewed: some products end up with
    // several very popular generic features, others with none — this is
    // what makes the Q2 "similar products" runtime distribution far from
    // normal (paper E1).
    {
      util::ZipfDistribution pool_zipf(config.features_per_type, 1.0);
      bool at_leaf = true;
      for (int node = static_cast<int>(leaf); node >= 0;
           node = ds.types[static_cast<size_t>(node)].parent) {
        const TypeNode& tn = ds.types[static_cast<size_t>(node)];
        // Leaf: 1-3 specific features. Inner levels: heavy-tailed count —
        // most products carry no generic feature of that level, a few carry
        // many. Generic features are owned by thousands of products, so the
        // per-product cost of feature-similarity queries (Q2) becomes
        // mostly-cheap-with-a-long-tail, i.e. far from normal (paper E1).
        uint64_t take = at_leaf ? 1 + prod_rng.Uniform(3)
                                : SampleCount(&prod_rng, 0.55, 6);
        at_leaf = false;
        for (uint64_t k = 0; k < take; ++k) {
          size_t pick = static_cast<size_t>(pool_zipf.Sample(&prod_rng) - 1) %
                        tn.feature_pool.size();
          uint32_t fi = tn.feature_pool[pick];
          store.Add(prod, p_feature, ds.features[fi]);
        }
      }
    }

    // Producer.
    TermId producer =
        ds.producers[static_cast<size_t>(producer_zipf.Sample(&prod_rng) - 1)];
    store.Add(prod, p_producer, producer);

    // Offers.
    uint64_t n_offers = SampleCount(&offer_rng, config.offers_per_product, 40);
    for (uint64_t k = 0; k < n_offers; ++k) {
      TermId offer =
          dict.InternIri(inst + "Offer" + std::to_string(offer_counter++));
      store.Add(offer, p_product, prod);
      store.Add(offer, p_vendor,
                ds.vendors[static_cast<size_t>(
                    vendor_zipf.Sample(&offer_rng) - 1)]);
      // Price: log-normal-ish positive value.
      double price = std::exp(3.0 + 1.2 * offer_rng.NextGaussian());
      store.Add(offer, p_price,
                dict.InternDouble(std::round(price * 100.0) / 100.0));
    }

    // Reviews.
    uint64_t n_reviews =
        SampleCount(&review_rng, config.reviews_per_product, 60);
    for (uint64_t k = 0; k < n_reviews; ++k) {
      TermId review =
          dict.InternIri(inst + "Review" + std::to_string(review_counter++));
      store.Add(review, p_review_for, prod);
      store.Add(review, p_reviewer,
                ds.reviewers[static_cast<size_t>(
                    reviewer_zipf.Sample(&review_rng) - 1)]);
      store.Add(review, p_rating,
                dict.InternInteger(review_rng.UniformRange(1, 10)));
    }
  }

  store.Finalize();
  return ds;
}

}  // namespace rdfparams::bsbm

// BSBM-BI-style query templates over the generated dataset, including the
// two templates the paper measures:
//   Q2 — top-10 products most similar to %product   (E1b, E2b)
//   Q4 — price aggregation per feature for products of %ProductType
//        (E1a, E3: bimodal runtime driven by type generality)
#ifndef RDFPARAMS_BSBM_QUERIES_H_
#define RDFPARAMS_BSBM_QUERIES_H_

#include <vector>

#include "bsbm/generator.h"
#include "sparql/query_template.h"

namespace rdfparams::bsbm {

/// Q1: products of %type that carry %feature (lookup join).
sparql::QueryTemplate MakeQ1(const Dataset& ds);

/// Q2: top-10 products sharing the most features with %product.
sparql::QueryTemplate MakeQ2(const Dataset& ds);

/// Q3: best-reviewed products of %type (rating >= 8).
sparql::QueryTemplate MakeQ3(const Dataset& ds);

/// Q4: per-feature average offer price over products of %ProductType.
sparql::QueryTemplate MakeQ4(const Dataset& ds);

/// Q5: vendors ranked by offer count/price over products of %type.
sparql::QueryTemplate MakeQ5(const Dataset& ds);

/// All templates above, in order Q1..Q5.
std::vector<sparql::QueryTemplate> AllTemplates(const Dataset& ds);

/// Parameter domain helpers -------------------------------------------------

/// Domain of %type / %ProductType: every node of the type tree.
std::vector<rdf::TermId> TypeDomain(const Dataset& ds);

/// Domain of %product: every product.
std::vector<rdf::TermId> ProductDomain(const Dataset& ds);

/// Domain of %feature: every product feature.
std::vector<rdf::TermId> FeatureDomain(const Dataset& ds);

}  // namespace rdfparams::bsbm

#endif  // RDFPARAMS_BSBM_QUERIES_H_

#include "bsbm/queries.h"

#include "util/status.h"

namespace rdfparams::bsbm {

namespace {

sparql::QueryTemplate MustParse(const char* name, const std::string& text) {
  auto t = sparql::QueryTemplate::Parse(name, text);
  RDFPARAMS_DCHECK(t.ok());
  return std::move(t).value();
}

std::string Prefixes(const Dataset& ds) {
  (void)ds;
  return "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
         "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
         "PREFIX bsbm: <http://rdfparams.org/bsbm/vocabulary#>\n";
}

}  // namespace

sparql::QueryTemplate MakeQ1(const Dataset& ds) {
  return MustParse("BSBM-Q1", Prefixes(ds) + R"(
SELECT ?p WHERE {
  ?p rdf:type %type .
  ?p bsbm:productFeature %feature .
}
)");
}

sparql::QueryTemplate MakeQ2(const Dataset& ds) {
  return MustParse("BSBM-Q2", Prefixes(ds) + R"(
SELECT ?other (COUNT(?f) AS ?common) WHERE {
  %product bsbm:productFeature ?f .
  ?other bsbm:productFeature ?f .
}
GROUP BY ?other
ORDER BY DESC(?common)
LIMIT 10
)");
}

sparql::QueryTemplate MakeQ3(const Dataset& ds) {
  return MustParse("BSBM-Q3", Prefixes(ds) + R"(
SELECT ?p (COUNT(?r) AS ?cnt) WHERE {
  ?p rdf:type %type .
  ?r bsbm:reviewFor ?p .
  ?r bsbm:rating ?rating .
  FILTER(?rating >= 8)
}
GROUP BY ?p
ORDER BY DESC(?cnt)
LIMIT 10
)");
}

sparql::QueryTemplate MakeQ4(const Dataset& ds) {
  // The paper's Q4 computes, per feature of the type, the ratio between
  // the average price WITH the feature and WITHOUT it. The "without" side
  // aggregates over all offers of the type for every feature — i.e. the
  // query is inherently (features of T) x (offers of T), super-linear in
  // the type's subtree. We keep that shape: the (?p,?f) component and the
  // (?p2,?offer,?price) component share no variable, so the optimizer must
  // place a cross product whose volume explodes for generic types. The
  // executor streams the root aggregation, exactly like a columnar engine.
  return MustParse("BSBM-Q4", Prefixes(ds) + R"(
SELECT ?f (AVG(?price) AS ?typeAvg) (COUNT(?offer) AS ?volume) WHERE {
  ?p rdf:type %ProductType .
  ?p bsbm:productFeature ?f .
  ?p2 rdf:type %ProductType .
  ?offer bsbm:product ?p2 .
  ?offer bsbm:price ?price .
}
GROUP BY ?f
ORDER BY DESC(?volume)
LIMIT 10
)");
}

sparql::QueryTemplate MakeQ5(const Dataset& ds) {
  return MustParse("BSBM-Q5", Prefixes(ds) + R"(
SELECT ?v (COUNT(?offer) AS ?cnt) (AVG(?price) AS ?avg) WHERE {
  ?offer bsbm:vendor ?v .
  ?offer bsbm:product ?p .
  ?p rdf:type %type .
  ?offer bsbm:price ?price .
}
GROUP BY ?v
ORDER BY DESC(?cnt)
LIMIT 10
)");
}

std::vector<sparql::QueryTemplate> AllTemplates(const Dataset& ds) {
  std::vector<sparql::QueryTemplate> out;
  out.push_back(MakeQ1(ds));
  out.push_back(MakeQ2(ds));
  out.push_back(MakeQ3(ds));
  out.push_back(MakeQ4(ds));
  out.push_back(MakeQ5(ds));
  return out;
}

std::vector<rdf::TermId> TypeDomain(const Dataset& ds) { return ds.TypeIds(); }

std::vector<rdf::TermId> ProductDomain(const Dataset& ds) {
  return ds.products;
}

std::vector<rdf::TermId> FeatureDomain(const Dataset& ds) {
  return ds.features;
}

}  // namespace rdfparams::bsbm

// BSBM-style data generator (Berlin SPARQL Benchmark, e-commerce domain).
//
// The structural property the paper's E1/E3 experiments depend on is the
// *product type hierarchy*: every product carries rdf:type triples for its
// leaf type and all ancestors, so a type high in the tree matches a large
// fraction of all products while a leaf matches only a handful. Everything
// else (producers, features, offers with prices, reviews with ratings)
// exists so that the BI-style join queries touch realistic amounts of data.
#ifndef RDFPARAMS_BSBM_GENERATOR_H_
#define RDFPARAMS_BSBM_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace rdfparams::bsbm {

struct GeneratorConfig {
  /// Number of products; total triples are roughly 40-50x this.
  uint64_t num_products = 2000;
  /// Depth of the product type tree (root = level 0).
  uint32_t type_depth = 4;
  /// Children per internal type node.
  uint32_t type_branching = 4;
  /// Features attached to each type node's pool.
  uint32_t features_per_type = 6;
  /// Mean offers per product (geometric-ish).
  double offers_per_product = 4.0;
  /// Mean reviews per product.
  double reviews_per_product = 3.0;
  uint32_t num_producers = 0;  ///< 0 = derived (num_products / 30 + 1)
  uint32_t num_vendors = 0;    ///< 0 = derived (num_products / 50 + 1)
  uint64_t seed = 42;
};

/// IRIs of the BSBM vocabulary used by generator and query templates.
struct Vocabulary {
  std::string rdf_type;
  std::string rdfs_label;
  std::string rdfs_subclass_of;
  std::string product_type_class;  ///< bsbm:ProductType
  std::string product_class;       ///< bsbm:Product
  std::string product_feature;     ///< bsbm:productFeature
  std::string producer;            ///< bsbm:producer
  std::string product;             ///< bsbm:product   (offer -> product)
  std::string vendor;              ///< bsbm:vendor    (offer -> vendor)
  std::string price;               ///< bsbm:price     (offer -> double)
  std::string review_for;          ///< bsbm:reviewFor (review -> product)
  std::string reviewer;            ///< bsbm:reviewer
  std::string rating;              ///< bsbm:rating    (review -> 1..10)
  std::string numeric_prop1;       ///< bsbm:productPropertyNumeric1

  static Vocabulary Default();
};

/// Node of the generated product type tree.
struct TypeNode {
  rdf::TermId id = rdf::kInvalidTermId;
  uint32_t level = 0;        ///< 0 = root (most generic)
  int parent = -1;           ///< index into `types`, -1 for root
  std::vector<uint32_t> feature_pool;  ///< indices into dataset features
  uint64_t num_products = 0; ///< products whose type path includes this node
};

/// The generated dataset: dictionary + finalized store + the entity lists
/// that parameter domains are extracted from.
struct Dataset {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  Vocabulary vocab;

  std::vector<TypeNode> types;        ///< tree in BFS order, [0] = root
  std::vector<rdf::TermId> products;
  std::vector<rdf::TermId> features;
  std::vector<rdf::TermId> producers;
  std::vector<rdf::TermId> vendors;
  std::vector<rdf::TermId> reviewers;

  /// TermIds of all product types (same order as `types`).
  std::vector<rdf::TermId> TypeIds() const;
  /// TermIds of leaf product types only.
  std::vector<rdf::TermId> LeafTypeIds() const;
};

/// Generates a dataset; deterministic for a fixed config.
Dataset Generate(const GeneratorConfig& config);

}  // namespace rdfparams::bsbm

#endif  // RDFPARAMS_BSBM_GENERATOR_H_

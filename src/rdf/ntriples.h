// N-Triples parser and writer (the project's Serd substitute).
//
// Implements the line-based W3C N-Triples grammar: IRIs in angle brackets,
// blank nodes, literals with language tags or datatypes, #-comments, and
// \-escapes. Parsing reports precise line numbers on error.
#ifndef RDFPARAMS_RDF_NTRIPLES_H_
#define RDFPARAMS_RDF_NTRIPLES_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace rdfparams::rdf {

/// Parses a single N-Triples term starting at *pos in `line`; advances *pos
/// past the term. Exposed for reuse by the Turtle parser and for tests.
Result<Term> ParseNTriplesTerm(std::string_view line, size_t* pos);

/// Streaming parser: invokes `sink` for every triple. Stops at the first
/// malformed line and reports its 1-based number.
Status ParseNTriples(
    std::string_view document,
    const std::function<void(const Term& s, const Term& p, const Term& o)>&
        sink);

/// Parses a whole document into a dictionary + store (store not finalized).
Status LoadNTriples(std::string_view document, Dictionary* dict,
                    TripleStore* store);

/// Reads the file at `path` and loads it. Errors include the path.
Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store);

/// Serializes one triple as an N-Triples line (no trailing newline).
std::string ToNTriplesLine(const Term& s, const Term& p, const Term& o);

/// Writes the whole store in SPO order.
Status WriteNTriples(const Dictionary& dict, const TripleStore& store,
                     std::ostream& os);

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_NTRIPLES_H_

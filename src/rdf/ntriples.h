// N-Triples parser and writer (the project's Serd substitute).
//
// Implements the line-based W3C N-Triples grammar: IRIs in angle brackets,
// blank nodes, literals with language tags or datatypes, #-comments, and
// \-escapes. Parsing reports precise line numbers on error. CRLF line
// endings are accepted (the '\r' is treated as trailing whitespace).
//
// Loading comes in two flavors:
//   * the streaming path (LoadNTriples without options): parse lines in
//     order on the calling thread, interning as it goes;
//   * the sharded path (LoadOptions{threads > 1}): the document is split
//     into byte-range chunks aligned to line boundaries, each chunk is
//     parsed on a util::ThreadPool worker into a private triple buffer
//     keyed by a ScratchDictionary overlay, and the per-chunk results are
//     merged deterministically — overlays fold into the global Dictionary
//     in chunk order (reproducing the serial first-appearance TermId
//     assignment byte-for-byte) and triple buffers append in chunk order
//     (reproducing the serial Add() sequence). The result is identical to
//     the streaming path for every thread count and chunking.
#ifndef RDFPARAMS_RDF_NTRIPLES_H_
#define RDFPARAMS_RDF_NTRIPLES_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace rdfparams::util {
class ThreadPool;
}  // namespace rdfparams::util

namespace rdfparams::rdf {

/// Parses a single N-Triples term starting at *pos in `line`; advances *pos
/// past the term. Exposed for reuse by the Turtle parser and for tests.
[[nodiscard]] Result<Term> ParseNTriplesTerm(std::string_view line, size_t* pos);

/// Streaming parser: invokes `sink` for every triple. Stops at the first
/// malformed line and reports its number (1-based, offset by `first_line`
/// - 1 so chunk parses can report document-global numbers).
[[nodiscard]] Status ParseNTriples(
    std::string_view document,
    const std::function<void(const Term& s, const Term& p, const Term& o)>&
        sink,
    size_t first_line = 1);

/// Splits `document` into roughly `target_chunks` contiguous chunks whose
/// boundaries fall immediately after a '\n', so no N-Triples statement
/// straddles two chunks. The chunks concatenate back to the document.
/// Deterministic in (document, target_chunks). Exposed for tests and for
/// other line-based formats.
std::vector<std::string_view> SplitLineChunks(std::string_view document,
                                              size_t target_chunks);

/// Options for the sharded load path.
struct LoadOptions {
  /// Worker threads for parsing: 1 = serial streaming path, <= 0 = all
  /// hardware cores. Results are byte-identical for every value.
  int threads = 1;
  /// Optional external pool; when set it is used instead of spawning one
  /// and the effective thread count is pool->size() + 1. The pool must be
  /// otherwise idle for the duration of the load.
  util::ThreadPool* pool = nullptr;
  /// Never split the document into chunks smaller than this; inputs too
  /// small to shard run through the same buffered merge path as a single
  /// chunk (keeping the atomic-on-error guarantee). Tests lower it to
  /// force many chunks on tiny documents.
  size_t min_chunk_bytes = 256 * 1024;
};

/// Parses a whole document into a dictionary + store (store not finalized).
[[nodiscard]] Status LoadNTriples(std::string_view document, Dictionary* dict,
                    TripleStore* store);

/// Sharded variant. Identical output to the streaming path at every
/// thread count; unlike it, on a parse error the dictionary and store are
/// left untouched (the streaming path has already interned the triples
/// preceding the bad line). The atomic-on-error guarantee holds for every
/// input — documents too small to shard run through the same buffered
/// merge path as a single chunk.
[[nodiscard]] Status LoadNTriples(std::string_view document, Dictionary* dict,
                    TripleStore* store, const LoadOptions& options);

/// Reads the file at `path` (one buffer, no double-copy) and loads it.
/// Errors include the path.
[[nodiscard]] Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store);

/// Sharded variant of LoadNTriplesFile.
[[nodiscard]] Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store, const LoadOptions& options);

/// Serializes one triple as an N-Triples line (no trailing newline).
std::string ToNTriplesLine(const Term& s, const Term& p, const Term& o);
std::string ToNTriplesLine(const TermView& s, const TermView& p,
                           const TermView& o);

/// Writes the whole store in SPO order.
[[nodiscard]] Status WriteNTriples(const Dictionary& dict, const TripleStore& store,
                     std::ostream& os);

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_NTRIPLES_H_

#include "rdf/turtle.h"

#include <map>

#include "rdf/ntriples.h"
#include "util/string_util.h"

namespace rdfparams::rdf {

namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Character-level cursor with line tracking and prefix table.
class TurtleParser {
 public:
  TurtleParser(std::string_view doc,
               const std::function<void(const Term&, const Term&,
                                        const Term&)>& sink)
      : doc_(doc), sink_(sink) {}

  Status Run() {
    while (true) {
      SkipWsAndComments();
      if (AtEnd()) return Status::OK();
      if (Peek() == '@') {
        RDFPARAMS_RETURN_NOT_OK(ParseDirective());
        continue;
      }
      RDFPARAMS_RETURN_NOT_OK(ParseStatement());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= doc_.size(); }
  char Peek() const { return doc_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < doc_.size() ? doc_[pos_ + off] : '\0';
  }

  void Advance() {
    if (doc_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void SkipWsAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  bool IsLocalNameChar(char c) const {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == '%';
  }

  Status ParseDirective() {
    // "@prefix p: <iri> ." or "@base <iri> ."
    size_t start = pos_;
    while (!AtEnd() && Peek() != ' ' && Peek() != '\t') Advance();
    std::string_view word = doc_.substr(start, pos_ - start);
    SkipWsAndComments();
    if (word == "@prefix") {
      size_t pstart = pos_;
      while (!AtEnd() && Peek() != ':') Advance();
      if (AtEnd()) return Err("expected ':' in @prefix");
      std::string prefix(doc_.substr(pstart, pos_ - pstart));
      Advance();  // ':'
      SkipWsAndComments();
      RDFPARAMS_ASSIGN_OR_RETURN(Term iri, ParseIriRef());
      prefixes_[prefix] = iri.lexical;
      SkipWsAndComments();
      if (AtEnd() || Peek() != '.') return Err("expected '.' after @prefix");
      Advance();
      return Status::OK();
    }
    if (word == "@base") {
      RDFPARAMS_ASSIGN_OR_RETURN(Term iri, ParseIriRef());
      base_ = iri.lexical;
      SkipWsAndComments();
      if (AtEnd() || Peek() != '.') return Err("expected '.' after @base");
      Advance();
      return Status::OK();
    }
    return Err("unknown directive '" + std::string(word) + "'");
  }

  Result<Term> ParseIriRef() {
    if (AtEnd() || Peek() != '<') return Err("expected IRI");
    size_t end = doc_.find('>', pos_ + 1);
    if (end == std::string_view::npos) return Err("unterminated IRI");
    std::string iri(doc_.substr(pos_ + 1, end - pos_ - 1));
    // Track newlines skipped inside the IRI (unusual but cheap to support).
    for (size_t i = pos_; i <= end; ++i) {
      if (doc_[i] == '\n') ++line_;
    }
    pos_ = end + 1;
    if (!iri.empty() && iri.find(':') == std::string::npos && !base_.empty()) {
      iri = base_ + iri;  // resolve relative against @base (string concat)
    }
    return Term::Iri(std::move(iri));
  }

  Result<Term> ParsePrefixedName() {
    size_t start = pos_;
    while (!AtEnd() && Peek() != ':' && IsLocalNameChar(Peek())) Advance();
    if (AtEnd() || Peek() != ':') return Err("expected ':' in prefixed name");
    std::string prefix(doc_.substr(start, pos_ - start));
    Advance();  // ':'
    size_t lstart = pos_;
    while (!AtEnd() && IsLocalNameChar(Peek())) Advance();
    std::string local(doc_.substr(lstart, pos_ - lstart));
    // A trailing '.' belongs to the statement, not the name.
    while (!local.empty() && local.back() == '.') {
      local.pop_back();
      --pos_;
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Err("undefined prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  Result<Term> ParseLiteral() {
    // Delegate quoted literals to the N-Triples term parser; it shares the
    // escape rules. We hand it the rest of the current line.
    size_t line_end = doc_.find('\n', pos_);
    std::string_view rest =
        doc_.substr(pos_, line_end == std::string_view::npos
                              ? std::string_view::npos
                              : line_end - pos_);
    size_t local = 0;
    Result<Term> t = ParseNTriplesTerm(rest, &local);
    if (!t.ok()) return Err(t.status().message());
    pos_ += local;
    return t;
  }

  Result<Term> ParseNumberOrBool() {
    size_t start = pos_;
    if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
    bool saw_digit = false, saw_dot = false, saw_exp = false;
    while (!AtEnd()) {
      char c = Peek();
      if (c >= '0' && c <= '9') {
        saw_digit = true;
        Advance();
      } else if (c == '.' && !saw_dot && !saw_exp) {
        // Lookahead: '.' followed by digit is a decimal point, else it is
        // the statement terminator.
        if (PeekAt(1) >= '0' && PeekAt(1) <= '9') {
          saw_dot = true;
          Advance();
        } else {
          break;
        }
      } else if ((c == 'e' || c == 'E') && saw_digit && !saw_exp) {
        saw_exp = true;
        Advance();
        if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      } else {
        break;
      }
    }
    std::string text(doc_.substr(start, pos_ - start));
    if (!saw_digit) {
      // Maybe a boolean keyword.
      if (util::StartsWith(doc_.substr(start), "true")) {
        pos_ = start + 4;
        return Term::Boolean(true);
      }
      if (util::StartsWith(doc_.substr(start), "false")) {
        pos_ = start + 5;
        return Term::Boolean(false);
      }
      return Err("expected numeric literal");
    }
    if (saw_exp) {
      return Term::TypedLiteral(text, std::string(kXsdDouble));
    }
    if (saw_dot) {
      return Term::TypedLiteral(text, std::string(kXsdDecimal));
    }
    return Term::TypedLiteral(text, std::string(kXsdInteger));
  }

  Result<Term> ParseTerm(bool allow_keyword_a) {
    SkipWsAndComments();
    if (AtEnd()) return Err("unexpected end of document");
    char c = Peek();
    if (c == '<') return ParseIriRef();
    if (c == '"') return ParseLiteral();
    if (c == '_' && PeekAt(1) == ':') {
      Advance();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && IsLocalNameChar(Peek())) Advance();
      std::string label(doc_.substr(start, pos_ - start));
      while (!label.empty() && label.back() == '.') {
        label.pop_back();
        --pos_;
      }
      if (label.empty()) return Err("empty blank node label");
      return Term::Blank(std::move(label));
    }
    if (c == '[') return Err("blank node property lists are not supported");
    if (c == '(') return Err("collections are not supported");
    if (allow_keyword_a && c == 'a') {
      char next = PeekAt(1);
      if (next == ' ' || next == '\t' || next == '<' || next == '\n') {
        Advance();
        return Term::Iri(std::string(kRdfType));
      }
    }
    if (c == '+' || c == '-' || (c >= '0' && c <= '9')) {
      return ParseNumberOrBool();
    }
    if (util::StartsWith(doc_.substr(pos_), "true") ||
        util::StartsWith(doc_.substr(pos_), "false")) {
      return ParseNumberOrBool();
    }
    return ParsePrefixedName();
  }

  Status ParseStatement() {
    RDFPARAMS_ASSIGN_OR_RETURN(Term subject, ParseTerm(false));
    if (subject.is_literal()) return Err("subject must not be a literal");
    while (true) {
      RDFPARAMS_ASSIGN_OR_RETURN(Term predicate, ParseTerm(true));
      if (!predicate.is_iri()) return Err("predicate must be an IRI");
      while (true) {
        RDFPARAMS_ASSIGN_OR_RETURN(Term object, ParseTerm(false));
        sink_(subject, predicate, object);
        SkipWsAndComments();
        if (!AtEnd() && Peek() == ',') {
          Advance();
          continue;
        }
        break;
      }
      SkipWsAndComments();
      if (!AtEnd() && Peek() == ';') {
        Advance();
        SkipWsAndComments();
        // A ';' directly before '.' is legal Turtle.
        if (!AtEnd() && Peek() == '.') break;
        continue;
      }
      break;
    }
    SkipWsAndComments();
    if (AtEnd() || Peek() != '.') return Err("expected '.' at end of statement");
    Advance();
    return Status::OK();
  }

  std::string_view doc_;
  const std::function<void(const Term&, const Term&, const Term&)>& sink_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

Status ParseTurtle(
    std::string_view document,
    const std::function<void(const Term& s, const Term& p, const Term& o)>&
        sink) {
  TurtleParser parser(document, sink);
  return parser.Run();
}

Status LoadTurtle(std::string_view document, Dictionary* dict,
                  TripleStore* store) {
  return ParseTurtle(document,
                     [&](const Term& s, const Term& p, const Term& o) {
                       // Sequenced like the N-Triples loader so id
                       // assignment never hinges on evaluation order.
                       TermId si = dict->Intern(s);
                       TermId pi = dict->Intern(p);
                       TermId oi = dict->Intern(o);
                       store->Add(si, pi, oi);
                     });
}

Status LoadTurtleFile(const std::string& path, Dictionary* dict,
                      TripleStore* store) {
  RDFPARAMS_ASSIGN_OR_RETURN(std::string data, util::ReadFileToString(path));
  Status st = LoadTurtle(data, dict, store);
  if (!st.ok()) {
    return Status::ParseError(path + ": " + st.message());
  }
  return Status::OK();
}

}  // namespace rdfparams::rdf

// Well-known vocabulary IRIs shared by the generators and query templates.
#ifndef RDFPARAMS_RDF_VOCAB_H_
#define RDFPARAMS_RDF_VOCAB_H_

#include <string_view>

namespace rdfparams::rdf::vocab {

inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr std::string_view kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";

/// BSBM-style namespace (products, offers, reviews).
inline constexpr std::string_view kBsbmNs =
    "http://rdfparams.org/bsbm/vocabulary#";
/// BSBM instance namespace.
inline constexpr std::string_view kBsbmInst =
    "http://rdfparams.org/bsbm/instances/";

/// SNB-style namespace (social network).
inline constexpr std::string_view kSnbNs =
    "http://rdfparams.org/snb/vocabulary#";
inline constexpr std::string_view kSnbInst =
    "http://rdfparams.org/snb/instances/";

}  // namespace rdfparams::rdf::vocab

#endif  // RDFPARAMS_RDF_VOCAB_H_

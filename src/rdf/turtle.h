// Turtle-subset parser.
//
// Supported grammar (sufficient for hand-written test fixtures and the
// generators' vocabulary files):
//   @prefix / @base directives, prefixed names, the 'a' keyword,
//   predicate lists with ';', object lists with ',', blank nodes (_:x),
//   string literals with @lang / ^^datatype, bare integers, decimals,
//   doubles and booleans, and '#' comments.
// Not supported (rejected with ParseError): collections '( )', blank node
// property lists '[ ]', multi-line ("""...""") strings.
#ifndef RDFPARAMS_RDF_TURTLE_H_
#define RDFPARAMS_RDF_TURTLE_H_

#include <functional>
#include <string>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace rdfparams::rdf {

/// Streaming Turtle parsing; `sink` receives each triple.
[[nodiscard]] Status ParseTurtle(
    std::string_view document,
    const std::function<void(const Term& s, const Term& p, const Term& o)>&
        sink);

/// Parses into a dictionary + store (store left unfinalized).
[[nodiscard]] Status LoadTurtle(std::string_view document, Dictionary* dict,
                  TripleStore* store);

/// Reads the file at `path` through the same single-buffer reader the
/// N-Triples loader uses and parses it. Turtle deliberately has no
/// sharded variant: statements span lines (';' / ',' continuations) and
/// @prefix/@base are document-global state, so byte-range chunks cannot
/// be parsed independently. Convert to N-Triples for parallel loading.
[[nodiscard]] Status LoadTurtleFile(const std::string& path, Dictionary* dict,
                      TripleStore* store);

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_TURTLE_H_

// Dictionary-encoded triple and triple pattern over TermIds.
#ifndef RDFPARAMS_RDF_TRIPLE_H_
#define RDFPARAMS_RDF_TRIPLE_H_

#include <cstdint>

#include "rdf/dictionary.h"

namespace rdfparams::rdf {

/// A fully-ground triple of dictionary ids.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  Triple() = default;
  Triple(TermId s_, TermId p_, TermId o_) : s(s_), p(p_), o(o_) {}

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  bool operator!=(const Triple& other) const { return !(*this == other); }
};

/// Positions inside a triple. Used to describe index permutations.
enum class TriplePos : uint8_t { kS = 0, kP = 1, kO = 2 };

inline TermId GetPos(const Triple& t, TriplePos pos) {
  switch (pos) {
    case TriplePos::kS: return t.s;
    case TriplePos::kP: return t.p;
    case TriplePos::kO: return t.o;
  }
  return kInvalidTermId;
}

inline void SetPos(Triple* t, TriplePos pos, TermId value) {
  switch (pos) {
    case TriplePos::kS: t->s = value; break;
    case TriplePos::kP: t->p = value; break;
    case TriplePos::kO: t->o = value; break;
  }
}

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_TRIPLE_H_

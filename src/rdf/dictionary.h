// Dictionary encoding: bidirectional mapping between Terms and dense
// 32-bit TermIds. All store/optimizer/executor code works on TermIds.
//
// Storage layout (since format v2): one contiguous byte arena holds every
// lexical form plus a deduplicated pool of datatype IRIs and language
// tags; a flat array of fixed-width 40-byte records (offsets/lengths into
// the arena, kind, cached numeric payload) maps ids to terms; and a flat
// open-addressing u32 hash table over the records maps terms back to ids.
// All three pieces are raw little-endian bytes, so a snapshot can adopt
// them verbatim — either copied into owned buffers or borrowed from an
// mmap'd file (kept alive by a shared owner) — and skip re-interning.
#ifndef RDFPARAMS_RDF_DICTIONARY_H_
#define RDFPARAMS_RDF_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace rdfparams::rdf {

using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0xFFFFFFFFu;

class ScratchDictionary;

/// Fixed-width term record, little-endian fields at these byte offsets:
///   [0]  u32 lexical offset    [4]  u32 lexical length
///   [8]  u32 datatype offset   [12] u32 datatype length
///   [16] u32 lang offset       [20] u32 lang length
///   [24] u32 kind (low byte) | flags
///   [28] u32 reserved, must be 0
///   [32] u64 IEEE-754 bits of the cached strtod value
inline constexpr size_t kTermRecordBytes = 40;
inline constexpr uint32_t kTermFlagHasDouble = 1u << 8;
inline constexpr uint32_t kTermFlagNumericType = 1u << 9;

/// Empty slot marker in the serialized hash table (all-FF bytes).
inline constexpr uint32_t kEmptyHashSlot = 0xFFFFFFFFu;

/// Deterministic open-addressing capacity for n terms: 0 for an empty
/// table, else the smallest power of two >= 2n, floored at 16 (max load
/// factor 1/2). Reserve()-then-fill, incremental doubling, and snapshot
/// adoption all converge on this exact capacity, so the serialized hash
/// section is a pure function of the intern sequence.
uint32_t HashCapacityFor(size_t n);

/// Stable 64-bit hash of a term's identity tuple. `datatype`/`lang` must
/// already be normalized through TermKeyTail. Both the in-memory table and
/// the snapshot v2 hash section depend on this exact function (FNV-1a /
/// SplitMix64 based, identical on every platform).
uint64_t HashTermKey(TermKind kind, std::string_view lexical,
                     std::string_view datatype, std::string_view lang);

/// Append-only term dictionary. Ids are dense and start at 0.
/// Not thread-safe for writes; concurrent reads after loading are fine.
/// TermViews returned by term() are invalidated by the next Intern.
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing or freshly assigned).
  TermId Intern(const Term& term);
  TermId Intern(Term&& term) { return Intern(static_cast<const Term&>(term)); }

  /// Pre-sizes the record buffer and hash table for `n` terms — worth
  /// calling before a bulk restore to avoid rehash churn. The final table
  /// capacity is unchanged by this call (see HashCapacityFor).
  void Reserve(size_t n);

  /// Convenience interners.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternLiteral(std::string s) {
    return Intern(Term::Literal(std::move(s)));
  }
  TermId InternInteger(int64_t v) { return Intern(Term::Integer(v)); }
  TermId InternDouble(double v) { return Intern(Term::Double(v)); }

  /// Lookup without interning; nullopt if absent. The string_view
  /// overloads probe the hash table directly — no Term materialization,
  /// no canonical-string allocation.
  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> Find(const TermView& term) const;
  std::optional<TermId> FindIri(std::string_view iri) const;

  /// Id -> term view into the arena. Asserts id < size().
  TermView term(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return size_; }

  /// N-Triples rendering of an id (convenience for EXPLAIN / debugging).
  std::string ToString(TermId id) const;

  /// Folds an overlay built on *this* dictionary into it: every scratch
  /// term is interned in overlay id order, and result[i] is the global id
  /// of overlay scratch term i (i.e. of overlay id base_size() + i).
  ///
  /// This is the merge step of the sharded loader: folding per-chunk
  /// overlays in chunk order reproduces the serial first-appearance id
  /// assignment exactly — chunk 0 is a document prefix, so its scratch
  /// terms fold in document order; a term seen in several chunks gets its
  /// id from the earliest chunk; later folds find it already present.
  std::vector<TermId> FoldScratch(const ScratchDictionary& overlay);

  // --- serialized representation (snapshot v2 sections) -------------------

  /// Raw bytes of the three sections, serializable verbatim.
  std::string_view arena() const { return ArenaBytes(); }
  std::string_view records() const { return RecordBytes(); }
  std::string_view hash_slots() const { return SlotBytes(); }

  /// True while the storage is borrowed from an external owner (mmap).
  /// The first Intern after adoption copies everything into owned buffers.
  bool borrowed() const { return borrowed_; }

  /// True when hash_slots() already has the canonical capacity for size()
  /// terms. (Only an over-estimating Reserve can make it larger.)
  bool hash_is_canonical() const {
    return SlotBytes().size() ==
           static_cast<size_t>(HashCapacityFor(size_)) * 4;
  }

  /// Rebuilds the hash section at the given capacity (id insertion order,
  /// linear probing). Snapshot save uses this with HashCapacityFor(size())
  /// when the live table was over-Reserved, so the serialized section is a
  /// pure function of the intern sequence.
  std::string BuildHashSlots(uint32_t capacity) const;

  /// Builds a dictionary over serialized sections without re-interning.
  /// The borrowed overload keeps views into caller memory alive via
  /// `owner` (e.g. a shared MmapFile); the owning overload moves the
  /// buffers in. Validation is structural and O(n): record geometry,
  /// arena bounds, flag bits, and hash-slot shape — content integrity is
  /// the storage layer's CRC contract.
  [[nodiscard]] static Result<Dictionary> Adopt(
      std::string_view arena, std::string_view records,
      std::string_view hash_slots, size_t num_terms,
      std::shared_ptr<const void> owner);
  [[nodiscard]] static Result<Dictionary> Adopt(std::string arena,
                                                std::string records,
                                                std::string hash_slots,
                                                size_t num_terms);

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::string_view ArenaBytes() const {
    return borrowed_ ? arena_ : std::string_view(arena_owned_);
  }
  std::string_view RecordBytes() const {
    return borrowed_ ? records_ : std::string_view(records_owned_);
  }
  std::string_view SlotBytes() const {
    return borrowed_ ? slots_ : std::string_view(slots_owned_);
  }

  TermView ViewAt(TermId id) const;

  /// Hash-probes for the normalized key; fills *insert_slot (when the
  /// table has capacity) with the empty slot that terminated the probe.
  std::optional<TermId> Probe(TermKind kind, std::string_view lexical,
                              std::string_view key_dt, std::string_view key_lang,
                              uint64_t hash, size_t* insert_slot) const;

  /// Copies borrowed storage into owned buffers and/or rebuilds the
  /// datatype/lang dedup pool; required before any mutation.
  void EnsureMutable();

  /// Rebuilds the slot array at `capacity` from records 0..size_-1.
  void Rehash(uint32_t capacity);

  /// Returns (offset, length) of `s` in the arena, appending on first use.
  std::pair<uint32_t, uint32_t> InternValueBytes(std::string_view s);

  [[nodiscard]] static Status ValidateSections(std::string_view arena,
                                               std::string_view records,
                                               std::string_view hash_slots,
                                               size_t num_terms);

  size_t size_ = 0;

  // Owned storage (authoritative when !borrowed_).
  std::string arena_owned_;
  std::string records_owned_;
  std::string slots_owned_;

  // Borrowed storage: views into `owner_`-kept memory (mmap'd snapshot).
  std::string_view arena_;
  std::string_view records_;
  std::string_view slots_;
  std::shared_ptr<const void> owner_;
  bool borrowed_ = false;

  // Datatype/lang dedup pool: value -> (arena offset, length) of its first
  // appearance. Lazily rebuilt from the records after adoption (lookup
  // only — never iterated, so no ordering leaks into output).
  std::unordered_map<std::string, std::pair<uint32_t, uint32_t>, StringHash,
                     StringEq>
      value_pool_;
  bool pool_built_ = true;
};

/// Copy-on-write overlay over an immutable base dictionary.
///
/// Interning resolves against the base first; terms absent from the base
/// are assigned ids past the base's snapshot size and stored locally. This
/// lets many workers "intern" scratch terms (filter constants, aggregate
/// outputs) concurrently against one shared base without synchronization —
/// each worker owns its overlay, and base ids stay globally consistent.
/// The base must not grow while overlays onto it are alive.
class ScratchDictionary {
 public:
  explicit ScratchDictionary(const Dictionary& base)
      : base_(base), base_size_(base.size()) {}
  ScratchDictionary(const ScratchDictionary&) = delete;
  ScratchDictionary& operator=(const ScratchDictionary&) = delete;

  /// Returns the base id when the term exists there, else a local id
  /// >= base_size() (interning into the overlay on first sight).
  TermId Intern(const Term& term);

  /// Lookup across base + overlay without interning.
  std::optional<TermId> Find(const Term& term) const;

  /// Resolves either a base id or an overlay id. Overlay views carry a
  /// numeric payload computed on access (the overlay is tiny).
  TermView term(TermId id) const;

  size_t size() const { return base_size_ + local_.size(); }
  size_t base_size() const { return base_size_; }
  size_t num_scratch() const { return local_.size(); }
  const Dictionary& base() const { return base_; }

  /// The i-th scratch term, in interning order (i < num_scratch()).
  /// Used by Dictionary::FoldScratch to replay this overlay's interning.
  const Term& scratch_term(size_t i) const { return local_[i]; }

 private:
  const Dictionary& base_;
  size_t base_size_;
  std::vector<Term> local_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_DICTIONARY_H_

// Dictionary encoding: bidirectional mapping between Terms and dense
// 32-bit TermIds. All store/optimizer/executor code works on TermIds.
#ifndef RDFPARAMS_RDF_DICTIONARY_H_
#define RDFPARAMS_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace rdfparams::rdf {

using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0xFFFFFFFFu;

/// Append-only term dictionary. Ids are dense and start at 0.
/// Not thread-safe for writes; concurrent reads after loading are fine.
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing or freshly assigned).
  TermId Intern(const Term& term);

  /// Convenience interners.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternLiteral(std::string s) {
    return Intern(Term::Literal(std::move(s)));
  }
  TermId InternInteger(int64_t v) { return Intern(Term::Integer(v)); }
  TermId InternDouble(double v) { return Intern(Term::Double(v)); }

  /// Lookup without interning; nullopt if absent.
  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> FindIri(const std::string& iri) const {
    return Find(Term::Iri(iri));
  }

  /// Id -> term. Asserts id < size().
  const Term& term(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return terms_.size(); }

  /// N-Triples rendering of an id (convenience for EXPLAIN / debugging).
  std::string ToString(TermId id) const;

 private:
  std::vector<Term> terms_;
  // Key: canonical N-Triples form, which is unique per term.
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_DICTIONARY_H_

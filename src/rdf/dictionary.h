// Dictionary encoding: bidirectional mapping between Terms and dense
// 32-bit TermIds. All store/optimizer/executor code works on TermIds.
#ifndef RDFPARAMS_RDF_DICTIONARY_H_
#define RDFPARAMS_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace rdfparams::rdf {

using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0xFFFFFFFFu;

class ScratchDictionary;

/// Append-only term dictionary. Ids are dense and start at 0.
/// Not thread-safe for writes; concurrent reads after loading are fine.
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns a term, returning its id (existing or freshly assigned).
  TermId Intern(const Term& term);
  TermId Intern(Term&& term);

  /// Pre-sizes the id vector and the key map for `n` terms — worth calling
  /// before a bulk restore (e.g. a snapshot open) to avoid rehash churn.
  void Reserve(size_t n);

  /// Convenience interners.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternLiteral(std::string s) {
    return Intern(Term::Literal(std::move(s)));
  }
  TermId InternInteger(int64_t v) { return Intern(Term::Integer(v)); }
  TermId InternDouble(double v) { return Intern(Term::Double(v)); }

  /// Lookup without interning; nullopt if absent.
  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> FindIri(const std::string& iri) const {
    return Find(Term::Iri(iri));
  }

  /// Id -> term. Asserts id < size().
  const Term& term(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return terms_.size(); }

  /// N-Triples rendering of an id (convenience for EXPLAIN / debugging).
  std::string ToString(TermId id) const;

  /// Folds an overlay built on *this* dictionary into it: every scratch
  /// term is interned in overlay id order, and result[i] is the global id
  /// of overlay scratch term i (i.e. of overlay id base_size() + i).
  ///
  /// This is the merge step of the sharded loader: folding per-chunk
  /// overlays in chunk order reproduces the serial first-appearance id
  /// assignment exactly — chunk 0 is a document prefix, so its scratch
  /// terms fold in document order; a term seen in several chunks gets its
  /// id from the earliest chunk; later folds find it already present.
  std::vector<TermId> FoldScratch(const ScratchDictionary& overlay);

 private:
  std::vector<Term> terms_;
  // Key: canonical N-Triples form, which is unique per term.
  std::unordered_map<std::string, TermId> index_;
};

/// Copy-on-write overlay over an immutable base dictionary.
///
/// Interning resolves against the base first; terms absent from the base
/// are assigned ids past the base's snapshot size and stored locally. This
/// lets many workers "intern" scratch terms (filter constants, aggregate
/// outputs) concurrently against one shared base without synchronization —
/// each worker owns its overlay, and base ids stay globally consistent.
/// The base must not grow while overlays onto it are alive.
class ScratchDictionary {
 public:
  explicit ScratchDictionary(const Dictionary& base)
      : base_(base), base_size_(base.size()) {}
  ScratchDictionary(const ScratchDictionary&) = delete;
  ScratchDictionary& operator=(const ScratchDictionary&) = delete;

  /// Returns the base id when the term exists there, else a local id
  /// >= base_size() (interning into the overlay on first sight).
  TermId Intern(const Term& term);

  /// Lookup across base + overlay without interning.
  std::optional<TermId> Find(const Term& term) const;

  /// Resolves either a base id or an overlay id.
  const Term& term(TermId id) const;

  size_t size() const { return base_size_ + local_.size(); }
  size_t base_size() const { return base_size_; }
  size_t num_scratch() const { return local_.size(); }
  const Dictionary& base() const { return base_; }

  /// The i-th scratch term, in interning order (i < num_scratch()).
  /// Used by Dictionary::FoldScratch to replay this overlay's interning.
  const Term& scratch_term(size_t i) const { return local_[i]; }

 private:
  const Dictionary& base_;
  size_t base_size_;
  std::vector<Term> local_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_DICTIONARY_H_

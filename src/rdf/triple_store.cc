#include "rdf/triple_store.h"

#include <algorithm>

#include "util/status.h"
#include "util/thread_pool.h"

namespace rdfparams::rdf {

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSPO: return "SPO";
    case IndexOrder::kPOS: return "POS";
    case IndexOrder::kOSP: return "OSP";
    case IndexOrder::kSOP: return "SOP";
    case IndexOrder::kPSO: return "PSO";
    case IndexOrder::kOPS: return "OPS";
  }
  return "???";
}

std::array<TriplePos, 3> IndexPermutation(IndexOrder order) {
  using P = TriplePos;
  switch (order) {
    case IndexOrder::kSPO: return {P::kS, P::kP, P::kO};
    case IndexOrder::kPOS: return {P::kP, P::kO, P::kS};
    case IndexOrder::kOSP: return {P::kO, P::kS, P::kP};
    case IndexOrder::kSOP: return {P::kS, P::kO, P::kP};
    case IndexOrder::kPSO: return {P::kP, P::kS, P::kO};
    case IndexOrder::kOPS: return {P::kO, P::kP, P::kS};
  }
  return {P::kS, P::kP, P::kO};
}

namespace {

/// Comparator sorting triples by a permutation of their positions.
struct PermutedLess {
  std::array<TriplePos, 3> perm;
  bool operator()(const Triple& a, const Triple& b) const {
    for (TriplePos pos : perm) {
      TermId va = GetPos(a, pos);
      TermId vb = GetPos(b, pos);
      if (va != vb) return va < vb;
    }
    return false;
  }
};

TermId Triple::* MemberFor(TriplePos pos) {
  switch (pos) {
    case TriplePos::kS: return &Triple::s;
    case TriplePos::kP: return &Triple::p;
    case TriplePos::kO: return &Triple::o;
  }
  return &Triple::s;
}

/// First position where `v` violates the `perm` sort order (`strict`
/// additionally forbids equal neighbours), or v.size() when sorted.
/// Member pointers resolved once per run keep the hot loop free of the
/// per-element position switch — this is the snapshot-open validation
/// path over every adopted index run.
size_t FirstUnsorted(const std::vector<Triple>& v,
                     const std::array<TriplePos, 3>& perm, bool strict) {
  TermId Triple::*m0 = MemberFor(perm[0]);
  TermId Triple::*m1 = MemberFor(perm[1]);
  TermId Triple::*m2 = MemberFor(perm[2]);
  for (size_t i = 1; i < v.size(); ++i) {
    const Triple& a = v[i - 1];
    const Triple& b = v[i];
    if (a.*m0 != b.*m0) {
      if (a.*m0 < b.*m0) continue;
      return i;
    }
    if (a.*m1 != b.*m1) {
      if (a.*m1 < b.*m1) continue;
      return i;
    }
    if (a.*m2 != b.*m2) {
      if (a.*m2 < b.*m2) continue;
      return i;
    }
    if (strict) return i;
  }
  return v.size();
}

}  // namespace

void TripleStore::Add(TermId s, TermId p, TermId o) {
  RDFPARAMS_DCHECK(s != kWildcardId && p != kWildcardId && o != kWildcardId);
  spo_.emplace_back(s, p, o);
  finalized_ = false;
}

void TripleStore::SortIndex(IndexOrder order, std::vector<Triple>* v) const {
  std::sort(v->begin(), v->end(), PermutedLess{IndexPermutation(order)});
}

void TripleStore::BuildSortedCopies(
    util::ThreadPool* pool,
    const std::vector<std::pair<IndexOrder, std::vector<Triple>*>>& targets) {
  // One task per index (on the pool when it has workers, inline
  // otherwise). Tasks touch disjoint index vectors, so they need no
  // synchronization beyond the pool's completion barrier; they must not
  // use the pool themselves (a nested ParallelFor from a Submit task
  // would deadlock in Wait), so each copy sorts serially within its task.
  auto build = [this](IndexOrder order, std::vector<Triple>* v) {
    *v = spo_;
    SortIndex(order, v);
  };
  if (pool != nullptr && pool->size() > 0) {
    for (const auto& [order, v] : targets) {
      pool->Submit([build, order = order, v = v] { build(order, v); });
    }
    pool->Wait();
  } else {
    for (const auto& [order, v] : targets) build(order, v);
  }
}

std::vector<std::pair<IndexOrder, std::vector<Triple>*>>
TripleStore::ExtraIndexTargets() {
  return {{IndexOrder::kSOP, &sop_},
          {IndexOrder::kPSO, &pso_},
          {IndexOrder::kOPS, &ops_}};
}

void TripleStore::Finalize(util::ThreadPool* pool) {
  if (finalized_) return;
  util::PoolSort(pool, spo_.begin(), spo_.end(),
                 PermutedLess{IndexPermutation(IndexOrder::kSPO)});
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  std::vector<std::pair<IndexOrder, std::vector<Triple>*>> targets = {
      {IndexOrder::kPOS, &pos_}, {IndexOrder::kOSP, &osp_}};
  if (all_indexes_) {
    for (auto target : ExtraIndexTargets()) targets.push_back(target);
  }
  BuildSortedCopies(pool, targets);
  ComputePredicateStats();
  finalized_ = true;
}

void TripleStore::BuildAllIndexes(util::ThreadPool* pool) {
  all_indexes_ = true;
  if (finalized_) BuildSortedCopies(pool, ExtraIndexTargets());
}

Status TripleStore::AdoptSortedRuns(std::vector<Triple> spo,
                                    std::vector<Triple> pos,
                                    std::vector<Triple> osp,
                                    std::vector<Triple> sop,
                                    std::vector<Triple> pso,
                                    std::vector<Triple> ops,
                                    bool all_indexes) {
  struct Run {
    IndexOrder order;
    std::vector<Triple>* v;
    bool strict;  // SPO is deduplicated, so it must be strictly ascending
  };
  Run runs[] = {{IndexOrder::kSPO, &spo, true},
                {IndexOrder::kPOS, &pos, false},
                {IndexOrder::kOSP, &osp, false},
                {IndexOrder::kSOP, &sop, false},
                {IndexOrder::kPSO, &pso, false},
                {IndexOrder::kOPS, &ops, false}};
  for (const Run& run : runs) {
    bool extra = run.order == IndexOrder::kSOP ||
                 run.order == IndexOrder::kPSO ||
                 run.order == IndexOrder::kOPS;
    size_t expected = extra && !all_indexes ? 0 : spo.size();
    if (run.v->size() != expected) {
      return Status::InvalidArgument(
          std::string("index run ") + IndexOrderName(run.order) + " has " +
          std::to_string(run.v->size()) + " triples, expected " +
          std::to_string(expected));
    }
    size_t bad =
        FirstUnsorted(*run.v, IndexPermutation(run.order), run.strict);
    if (bad != run.v->size()) {
      return Status::InvalidArgument(
          std::string("index run ") + IndexOrderName(run.order) +
          " is not sorted at position " + std::to_string(bad));
    }
  }
  spo_ = std::move(spo);
  pos_ = std::move(pos);
  osp_ = std::move(osp);
  sop_ = std::move(sop);
  pso_ = std::move(pso);
  ops_ = std::move(ops);
  all_indexes_ = all_indexes;
  ComputePredicateStats();
  finalized_ = true;
  return Status::OK();
}

void TripleStore::ComputePredicateStats() {
  distinct_s_ = 0;
  distinct_p_ = 0;
  distinct_o_ = 0;
  predicates_.clear();
  pred_count_.clear();
  pred_distinct_s_.clear();
  pred_distinct_o_.clear();

  // Distinct subjects from SPO (sorted by s first).
  TermId prev = kInvalidTermId;
  for (const Triple& t : spo_) {
    if (t.s != prev) {
      ++distinct_s_;
      prev = t.s;
    }
  }
  // Distinct objects from OSP (sorted by o first).
  prev = kInvalidTermId;
  for (const Triple& t : osp_) {
    if (t.o != prev) {
      ++distinct_o_;
      prev = t.o;
    }
  }
  // Per-predicate stats from POS (sorted by p, then o, then s). Distinct
  // subjects per predicate use one epoch array over subject ids instead of
  // sorting each slice: seen[s] == this predicate's ordinal marks s as
  // already counted. O(n) total, same counts as the sort+unique it
  // replaced — this runs on every snapshot open, so it is hot.
  TermId max_s = 0;
  for (const Triple& t : spo_) max_s = std::max(max_s, t.s);
  std::vector<uint32_t> seen(spo_.empty() ? 0 : max_s + 1, 0);
  size_t i = 0;
  while (i < pos_.size()) {
    TermId p = pos_[i].p;
    size_t begin = i;
    uint64_t distinct_o = 0;
    uint64_t distinct_s = 0;
    const uint32_t epoch = static_cast<uint32_t>(predicates_.size()) + 1;
    TermId prev_o = kInvalidTermId;
    while (i < pos_.size() && pos_[i].p == p) {
      if (pos_[i].o != prev_o) {
        ++distinct_o;
        prev_o = pos_[i].o;
      }
      if (seen[pos_[i].s] != epoch) {
        seen[pos_[i].s] = epoch;
        ++distinct_s;
      }
      ++i;
    }
    predicates_.push_back(p);
    pred_count_.push_back(i - begin);
    pred_distinct_s_.push_back(distinct_s);
    pred_distinct_o_.push_back(distinct_o);
  }
  distinct_p_ = predicates_.size();
}

const std::vector<Triple>& TripleStore::IndexVector(IndexOrder order) const {
  switch (order) {
    case IndexOrder::kSPO: return spo_;
    case IndexOrder::kPOS: return pos_;
    case IndexOrder::kOSP: return osp_;
    case IndexOrder::kSOP: return sop_;
    case IndexOrder::kPSO: return pso_;
    case IndexOrder::kOPS: return ops_;
  }
  return spo_;
}

IndexOrder TripleStore::ChooseIndex(TermId s, TermId p, TermId o) const {
  bool bs = s != kWildcardId, bp = p != kWildcardId, bo = o != kWildcardId;
  // Full triple or nothing bound: SPO works.
  if (bs && bp) return IndexOrder::kSPO;               // covers S, SP, SPO
  if (bp && bo) return IndexOrder::kPOS;               // covers P, PO
  if (bo && bs) return IndexOrder::kOSP;               // covers O, OS
  if (bs) return IndexOrder::kSPO;
  if (bp) return IndexOrder::kPOS;
  if (bo) return IndexOrder::kOSP;
  return IndexOrder::kSPO;
}

std::span<const Triple> TripleStore::Range(IndexOrder order, TermId s,
                                           TermId p, TermId o) const {
  RDFPARAMS_DCHECK(finalized_);
  const std::vector<Triple>& index = IndexVector(order);
  RDFPARAMS_DCHECK(!index.empty() || spo_.empty());
  auto perm = IndexPermutation(order);
  Triple pattern(s, p, o);
  // The bound slots must be a prefix of the permutation.
  int prefix = 0;
  for (int k = 0; k < 3; ++k) {
    if (GetPos(pattern, perm[static_cast<size_t>(k)]) != kWildcardId) {
      RDFPARAMS_DCHECK(prefix == k && "bound slots must form an index prefix");
      prefix = k + 1;
    }
  }
  if (prefix == 0) return {index.data(), index.size()};

  auto less_prefix = [&](const Triple& a, const Triple& b) {
    for (int k = 0; k < prefix; ++k) {
      TriplePos pos = perm[static_cast<size_t>(k)];
      TermId va = GetPos(a, pos);
      TermId vb = GetPos(b, pos);
      if (va != vb) return va < vb;
    }
    return false;
  };
  auto range = std::equal_range(index.begin(), index.end(), pattern,
                                less_prefix);
  return {&*range.first, static_cast<size_t>(range.second - range.first)};
}

uint64_t TripleStore::CountPattern(TermId s, TermId p, TermId o) const {
  IndexOrder order = ChooseIndex(s, p, o);
  return Range(order, s, p, o).size();
}

namespace {

/// First triple in [first, last) whose `pos` slot is >= value: exponential
/// probing from `first`, then a binary search inside the final window. The
/// probe makes a sweep over ascending values O(k·log(n/k) + k) instead of
/// k full-range binary searches.
const Triple* GallopLowerBound(const Triple* first, const Triple* last,
                               TriplePos pos, TermId value) {
  const size_t n = static_cast<size_t>(last - first);
  size_t prev = 0;
  size_t step = 1;
  while (prev + step <= n && GetPos(first[prev + step - 1], pos) < value) {
    prev += step;
    step *= 2;
  }
  return std::lower_bound(
      first + prev, first + std::min(prev + step, n), value,
      [pos](const Triple& t, TermId v) { return GetPos(t, pos) < v; });
}

/// First triple in [first, last) whose `pos` slot is > value (same scheme).
const Triple* GallopUpperBound(const Triple* first, const Triple* last,
                               TriplePos pos, TermId value) {
  const size_t n = static_cast<size_t>(last - first);
  size_t prev = 0;
  size_t step = 1;
  while (prev + step <= n && GetPos(first[prev + step - 1], pos) <= value) {
    prev += step;
    step *= 2;
  }
  return std::upper_bound(
      first + prev, first + std::min(prev + step, n), value,
      [pos](TermId v, const Triple& t) { return v < GetPos(t, pos); });
}

}  // namespace

PatternSweep::PatternSweep(const TripleStore& store, TriplePos key_pos,
                           TermId s, TermId p, TermId o)
    : key_pos_(key_pos), fixed_(s, p, o) {
  RDFPARAMS_DCHECK(store.finalized());
  SetPos(&fixed_, key_pos, kWildcardId);  // whatever was at key_pos is ignored
  const bool fixed_bound[3] = {fixed_.s != kWildcardId,
                               fixed_.p != kWildcardId,
                               fixed_.o != kWildcardId};
  nf_ = static_cast<size_t>(fixed_bound[0]) +
        static_cast<size_t>(fixed_bound[1]) +
        static_cast<size_t>(fixed_bound[2]);

  // Pick the available index whose sort prefix of length nf+1 is exactly
  // the fixed slots plus key_pos, preferring the one sorting the key slot
  // latest: slots before it are pinned by one equal_range, slots after it
  // restrict each run, and a later key position leaves fewer of those.
  IndexOrder best_order = IndexOrder::kSPO;
  for (IndexOrder order : store.BuiltIndexes()) {
    auto candidate_perm = IndexPermutation(order);
    int k = -1;
    bool usable = true;
    for (size_t i = 0; i <= nf_; ++i) {
      if (candidate_perm[i] == key_pos) {
        k = static_cast<int>(i);
      } else if (!fixed_bound[static_cast<size_t>(candidate_perm[i])]) {
        usable = false;
        break;
      }
    }
    if (usable && k > best_k_) {
      best_k_ = k;
      best_order = order;
      perm_ = candidate_perm;
    }
  }
  if (best_k_ < 0) return;

  // One equal_range over the fixed slots sorted before the key slot gives
  // the sweep region; inside it, triples are ordered by the key slot next.
  Triple region_pattern(kWildcardId, kWildcardId, kWildcardId);
  for (int i = 0; i < best_k_; ++i) {
    SetPos(&region_pattern, perm_[static_cast<size_t>(i)],
           GetPos(fixed_, perm_[static_cast<size_t>(i)]));
  }
  std::span<const Triple> region = store.Range(
      best_order, region_pattern.s, region_pattern.p, region_pattern.o);
  cur_ = region.data();
  end_ = region.data() + region.size();

  // Fixed slots sorted *after* the key slot (present when the key is not
  // the last prefix position) restrict each run via a bounded equal_range.
  has_tail_ = static_cast<size_t>(best_k_) + 1 <= nf_;
}

std::span<const Triple> PatternSweep::Next(TermId key) {
  RDFPARAMS_DCHECK(valid());
  RDFPARAMS_DCHECK((first_ || last_key_ <= key) &&
                   "PatternSweep keys must be non-decreasing");
  first_ = false;
  last_key_ = key;
  if (cur_ == end_) return {};
  const Triple* lo = GallopLowerBound(cur_, end_, key_pos_, key);
  cur_ = lo;  // not past the run: repeated keys re-find it
  if (lo == end_ || GetPos(*lo, key_pos_) != key) return {};  // key absent
  const Triple* hi = GallopUpperBound(lo, end_, key_pos_, key);
  if (!has_tail_) return {lo, static_cast<size_t>(hi - lo)};
  const size_t tail_begin = static_cast<size_t>(best_k_) + 1;
  auto tail_less = [&](const Triple& a, const Triple& b) {
    for (size_t i = tail_begin; i <= nf_; ++i) {
      TermId va = GetPos(a, perm_[i]);
      TermId vb = GetPos(b, perm_[i]);
      if (va != vb) return va < vb;
    }
    return false;
  };
  auto run = std::equal_range(lo, hi, fixed_, tail_less);
  return {run.first, static_cast<size_t>(run.second - run.first)};
}

std::vector<IndexOrder> TripleStore::BuiltIndexes() const {
  std::vector<IndexOrder> available = {IndexOrder::kSPO, IndexOrder::kPOS,
                                       IndexOrder::kOSP};
  if (all_indexes_) {
    available.insert(available.end(), {IndexOrder::kSOP, IndexOrder::kPSO,
                                       IndexOrder::kOPS});
  }
  return available;
}

std::vector<uint64_t> TripleStore::CountPatternBatch(
    TriplePos var_pos, TermId s, TermId p, TermId o,
    std::span<const TermId> candidates) const {
  RDFPARAMS_DCHECK(finalized_);
  std::vector<uint64_t> counts(candidates.size(), 0);
  if (candidates.empty()) return counts;

  PatternSweep sweep(*this, var_pos, s, p, o);
  if (!sweep.valid()) {
    // No covering sort prefix among the built indexes (cannot happen with
    // the three defaults, but stays correct for any index configuration).
    Triple fixed(s, p, o);
    SetPos(&fixed, var_pos, kWildcardId);
    for (size_t i = 0; i < candidates.size(); ++i) {
      Triple q = fixed;
      SetPos(&q, var_pos, candidates[i]);
      counts[i] = CountPattern(q.s, q.p, q.o);
    }
    return counts;
  }

  for (size_t i = 0; i < candidates.size(); ++i) {
    RDFPARAMS_DCHECK(i == 0 || candidates[i - 1] <= candidates[i]);
    counts[i] = sweep.Next(candidates[i]).size();
  }
  return counts;
}

void TripleStore::ScanPattern(
    TermId s, TermId p, TermId o,
    const std::function<void(const Triple&)>& fn) const {
  IndexOrder order = ChooseIndex(s, p, o);
  for (const Triple& t : Range(order, s, p, o)) fn(t);
}

uint64_t TripleStore::DistinctSubjectsForPredicate(TermId p) const {
  auto it = std::lower_bound(predicates_.begin(), predicates_.end(), p);
  if (it == predicates_.end() || *it != p) return 0;
  return pred_distinct_s_[static_cast<size_t>(it - predicates_.begin())];
}

uint64_t TripleStore::DistinctObjectsForPredicate(TermId p) const {
  auto it = std::lower_bound(predicates_.begin(), predicates_.end(), p);
  if (it == predicates_.end() || *it != p) return 0;
  return pred_distinct_o_[static_cast<size_t>(it - predicates_.begin())];
}

std::vector<TermId> TripleStore::DistinctObjectsOf(TermId p) const {
  std::vector<TermId> out;
  TermId prev = kInvalidTermId;
  for (const Triple& t : Range(IndexOrder::kPOS, kWildcardId, p, kWildcardId)) {
    if (t.o != prev) {
      out.push_back(t.o);
      prev = t.o;
    }
  }
  return out;
}

std::vector<TermId> TripleStore::DistinctSubjectsOf(TermId p) const {
  std::vector<TermId> out;
  for (const Triple& t : Range(IndexOrder::kPOS, kWildcardId, p, kWildcardId)) {
    out.push_back(t.s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t TripleStore::MemoryBytes() const {
  size_t per = sizeof(Triple);
  size_t n = spo_.capacity() + pos_.capacity() + osp_.capacity() +
             sop_.capacity() + pso_.capacity() + ops_.capacity();
  return n * per;
}

}  // namespace rdfparams::rdf

#include "rdf/term.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace rdfparams::rdf {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind = TermKind::kIri;
  t.lexical = std::move(iri);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind = TermKind::kBlank;
  t.lexical = std::move(label);
  return t;
}

Term Term::Literal(std::string lexical) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.lexical = std::move(lexical);
  return t;
}

Term Term::TypedLiteral(std::string lexical, std::string datatype) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.lexical = std::move(lexical);
  t.datatype = std::move(datatype);
  return t;
}

Term Term::LangLiteral(std::string lexical, std::string lang) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.lexical = std::move(lexical);
  t.lang = std::move(lang);
  return t;
}

Term Term::Integer(int64_t value) {
  return TypedLiteral(std::to_string(value), std::string(kXsdInteger));
}

Term Term::Double(double value) {
  return TypedLiteral(util::StringPrintf("%.17g", value),
                      std::string(kXsdDouble));
}

Term Term::Boolean(bool value) {
  return TypedLiteral(value ? "true" : "false", std::string(kXsdBoolean));
}

Term Term::DateTime(std::string iso8601) {
  return TypedLiteral(std::move(iso8601), std::string(kXsdDateTime));
}

bool Term::is_numeric() const {
  if (!is_literal()) return false;
  return datatype == kXsdInteger || datatype == kXsdDouble ||
         datatype == kXsdDecimal;
}

std::optional<int64_t> Term::AsInteger() const {
  if (!is_literal()) return std::nullopt;
  const char* s = lexical.c_str();
  char* end = nullptr;
  long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> Term::AsDouble() const {
  if (!is_literal()) return std::nullopt;
  const char* s = lexical.c_str();
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return std::nullopt;
  return v;
}

std::string EscapeNTriplesString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += util::StringPrintf("\\u%04X", c);
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

Result<std::string> UnescapeNTriplesString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::ParseError("dangling backslash in literal");
    }
    char esc = s[++i];
    switch (esc) {
      case 't': out.push_back('\t'); break;
      case 'b': out.push_back('\b'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 'f': out.push_back('\f'); break;
      case '"': out.push_back('"'); break;
      case '\'': out.push_back('\''); break;
      case '\\': out.push_back('\\'); break;
      case 'u':
      case 'U': {
        size_t len = esc == 'u' ? 4 : 8;
        if (i + len >= s.size()) {
          return Status::ParseError("truncated \\u escape");
        }
        uint32_t cp = 0;
        for (size_t k = 0; k < len; ++k) {
          char h = s[i + 1 + k];
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
          else return Status::ParseError("bad hex digit in \\u escape");
        }
        i += len;
        // Encode the code point as UTF-8.
        if (cp < 0x80) {
          out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape \\") + esc);
    }
  }
  return out;
}

void AppendTermNTriples(TermKind kind, std::string_view lexical,
                        std::string_view datatype, std::string_view lang,
                        std::string* out) {
  switch (kind) {
    case TermKind::kIri:
      out->push_back('<');
      out->append(lexical);
      out->push_back('>');
      return;
    case TermKind::kBlank:
      out->append("_:");
      out->append(lexical);
      return;
    case TermKind::kLiteral:
      out->push_back('"');
      out->append(EscapeNTriplesString(lexical));
      out->push_back('"');
      if (!lang.empty()) {
        out->push_back('@');
        out->append(lang);
      } else if (!datatype.empty() && datatype != kXsdString) {
        out->append("^^<");
        out->append(datatype);
        out->push_back('>');
      }
      return;
  }
}

std::string Term::ToNTriples() const {
  std::string out;
  out.reserve(lexical.size() + datatype.size() + lang.size() + 8);
  AppendTermNTriples(kind, lexical, datatype, lang, &out);
  return out;
}

std::string TermView::ToNTriples() const {
  std::string out;
  out.reserve(lexical.size() + datatype.size() + lang.size() + 8);
  AppendTermNTriples(kind, lexical, datatype, lang, &out);
  return out;
}

namespace {

// SPARQL ordering: blank nodes < IRIs < literals.
int KindRank(TermKind k) {
  switch (k) {
    case TermKind::kBlank: return 0;
    case TermKind::kIri: return 1;
    case TermKind::kLiteral: return 2;
  }
  return 3;
}

int CompareStringViews(std::string_view a, std::string_view b) {
  int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace

int TermView::Compare(const TermView& other) const {
  int ra = KindRank(kind), rb = KindRank(other.kind);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (kind == TermKind::kLiteral && is_numeric() && other.is_numeric() &&
      num.has_double && other.num.has_double) {
    if (num.value < other.num.value) return -1;
    if (num.value > other.num.value) return 1;
    return 0;
  }
  int c = CompareStringViews(lexical, other.lexical);
  if (c != 0) return c;
  c = CompareStringViews(datatype, other.datatype);
  if (c != 0) return c;
  return CompareStringViews(lang, other.lang);
}

int Term::Compare(const Term& other) const {
  return view().Compare(other.view());
}

std::optional<int64_t> TermView::AsInteger() const {
  if (!is_literal()) return std::nullopt;
  // strtoll needs a NUL terminator the arena does not provide; numeric
  // lexical forms are short, so a bounded copy keeps Term::AsInteger
  // semantics (leading whitespace, sign handling) exactly.
  if (lexical.size() > 64) return std::nullopt;
  char buf[65];
  std::memcpy(buf, lexical.data(), lexical.size());
  buf[lexical.size()] = '\0';
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (end == buf || *end != '\0' ||
      static_cast<size_t>(end - buf) != lexical.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(v);
}

Term TermView::ToTerm() const {
  Term t;
  t.kind = kind;
  t.lexical.assign(lexical);
  t.datatype.assign(datatype);
  t.lang.assign(lang);
  return t;
}

TermNumerics ComputeTermNumerics(const Term& term) {
  TermNumerics n;
  if (!term.is_literal()) return n;
  n.numeric_type = term.is_numeric();
  if (auto d = term.AsDouble()) {
    n.has_double = true;
    n.value = *d;
  }
  return n;
}

TermView Term::view() const {
  TermView v;
  v.kind = kind;
  v.lexical = lexical;
  v.datatype = datatype;
  v.lang = lang;
  v.num = ComputeTermNumerics(*this);
  return v;
}

std::pair<std::string_view, std::string_view> TermKeyTail(
    TermKind kind, std::string_view datatype, std::string_view lang) {
  if (kind != TermKind::kLiteral) return {{}, {}};
  if (!lang.empty()) return {{}, lang};
  if (datatype == kXsdString) return {{}, lang};
  return {datatype, lang};
}

}  // namespace rdfparams::rdf

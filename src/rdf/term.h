// RDF term model: IRIs, blank nodes, and literals (plain / typed / tagged).
//
// Terms carry their full lexical form. Inside the store they are always
// referred to by TermId via the Dictionary; Term objects appear only at the
// edges (parsing, generation, result rendering).
#ifndef RDFPARAMS_RDF_TERM_H_
#define RDFPARAMS_RDF_TERM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rdfparams::rdf {

enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kLiteral = 2,
};

/// Well-known XSD datatype IRIs.
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr std::string_view kXsdDateTime =
    "http://www.w3.org/2001/XMLSchema#dateTime";
inline constexpr std::string_view kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";

/// One RDF term. Equality is structural over all four fields.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;   ///< IRI, blank label, or literal lexical form
  std::string datatype;  ///< datatype IRI; empty for plain literals / non-literals
  std::string lang;      ///< language tag; empty if none

  Term() = default;

  static Term Iri(std::string iri);
  static Term Blank(std::string label);
  static Term Literal(std::string lexical);
  static Term TypedLiteral(std::string lexical, std::string datatype);
  static Term LangLiteral(std::string lexical, std::string lang);
  static Term Integer(int64_t value);
  static Term Double(double value);
  static Term Boolean(bool value);
  /// "YYYY-MM-DDThh:mm:ss" xsd:dateTime from a unix-like day/second pair.
  static Term DateTime(std::string iso8601);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_literal() const { return kind == TermKind::kLiteral; }

  /// True for literals whose datatype is one of the XSD numeric types.
  bool is_numeric() const;

  /// Parses the lexical form as an integer / double when sensible.
  std::optional<int64_t> AsInteger() const;
  std::optional<double> AsDouble() const;

  /// Canonical N-Triples serialization; also the dictionary key.
  std::string ToNTriples() const;

  /// SPARQL-ordering comparison: blank < IRI < literal; numeric literals
  /// compare by value, others lexically. Returns <0, 0, >0.
  int Compare(const Term& other) const;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && lang == other.lang;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const { return Compare(other) < 0; }
};

/// Escapes a string for N-Triples (quotes, backslash, control chars).
std::string EscapeNTriplesString(std::string_view s);

/// Reverses EscapeNTriplesString; fails on malformed escapes.
[[nodiscard]] Result<std::string> UnescapeNTriplesString(std::string_view s);

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_TERM_H_

// RDF term model: IRIs, blank nodes, and literals (plain / typed / tagged).
//
// Terms carry their full lexical form. Inside the store they are always
// referred to by TermId via the Dictionary; Term objects appear only at the
// edges (parsing, generation, result rendering).
#ifndef RDFPARAMS_RDF_TERM_H_
#define RDFPARAMS_RDF_TERM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace rdfparams::rdf {

enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kLiteral = 2,
};

/// Well-known XSD datatype IRIs.
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr std::string_view kXsdDateTime =
    "http://www.w3.org/2001/XMLSchema#dateTime";
inline constexpr std::string_view kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";

struct Term;
struct TermView;

/// Cached numeric payload of a term, computed once at intern time so the
/// executor's hot paths never re-run strtod. `has_double` mirrors
/// Term::AsDouble (strtod consumes the whole lexical form of a literal);
/// `numeric_type` mirrors Term::is_numeric (datatype is an XSD numeric
/// type). The two are independent: "5"^^xsd:string parses but is not
/// numeric-typed; "x"^^xsd:integer is numeric-typed but does not parse.
struct TermNumerics {
  bool has_double = false;
  bool numeric_type = false;
  double value = 0.0;

  bool operator==(const TermNumerics&) const = default;
};

/// Non-owning view of a term: the Dictionary's arena-backed accessor type.
/// Field semantics and equality match Term exactly; the numeric payload is
/// carried along so AsDouble / Compare need no NUL-terminated buffer.
/// Views returned by Dictionary::term stay valid until the next Intern.
struct TermView {
  TermKind kind = TermKind::kIri;
  std::string_view lexical;
  std::string_view datatype;
  std::string_view lang;
  TermNumerics num;

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_numeric() const { return is_literal() && num.numeric_type; }

  std::optional<int64_t> AsInteger() const;
  std::optional<double> AsDouble() const {
    if (!is_literal() || !num.has_double) return std::nullopt;
    return num.value;
  }

  std::string ToNTriples() const;
  int Compare(const TermView& other) const;
  /// Materializes an owning Term (for callers that outlive the arena).
  Term ToTerm() const;

  bool operator==(const TermView& o) const {
    return kind == o.kind && lexical == o.lexical && datatype == o.datatype &&
           lang == o.lang;
  }
  bool operator!=(const TermView& o) const { return !(*this == o); }
  bool operator<(const TermView& o) const { return Compare(o) < 0; }
};

/// One RDF term. Equality is structural over all four fields.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;   ///< IRI, blank label, or literal lexical form
  std::string datatype;  ///< datatype IRI; empty for plain literals / non-literals
  std::string lang;      ///< language tag; empty if none

  Term() = default;

  static Term Iri(std::string iri);
  static Term Blank(std::string label);
  static Term Literal(std::string lexical);
  static Term TypedLiteral(std::string lexical, std::string datatype);
  static Term LangLiteral(std::string lexical, std::string lang);
  static Term Integer(int64_t value);
  static Term Double(double value);
  static Term Boolean(bool value);
  /// "YYYY-MM-DDThh:mm:ss" xsd:dateTime from a unix-like day/second pair.
  static Term DateTime(std::string iso8601);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_literal() const { return kind == TermKind::kLiteral; }

  /// True for literals whose datatype is one of the XSD numeric types.
  bool is_numeric() const;

  /// Parses the lexical form as an integer / double when sensible.
  std::optional<int64_t> AsInteger() const;
  std::optional<double> AsDouble() const;

  /// Canonical N-Triples serialization; also the dictionary key.
  std::string ToNTriples() const;

  /// SPARQL-ordering comparison: blank < IRI < literal; numeric literals
  /// compare by value, others lexically. Returns <0, 0, >0.
  int Compare(const Term& other) const;

  /// Non-owning view of this term, with the numeric payload computed
  /// (one strtod for literals). Valid while *this* is alive and unchanged.
  TermView view() const;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && lang == other.lang;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const { return Compare(other) < 0; }

  bool operator==(const TermView& o) const {
    return kind == o.kind && lexical == o.lexical && datatype == o.datatype &&
           lang == o.lang;
  }
  bool operator!=(const TermView& o) const { return !(*this == o); }
};

inline bool operator==(const TermView& a, const Term& b) { return b == a; }
inline bool operator!=(const TermView& a, const Term& b) { return !(b == a); }

/// Computes the cached numeric payload for a term's fields. The Dictionary
/// stamps this into every arena record at intern time; Term::view() calls
/// it on demand.
TermNumerics ComputeTermNumerics(const Term& term);

/// Appends the canonical N-Triples form of a term to `out`. Shared by
/// Term::ToNTriples and TermView::ToNTriples so the two serializations
/// cannot drift: a literal's `^^<...#string>` suffix is suppressed, a
/// language tag suppresses the datatype entirely.
void AppendTermNTriples(TermKind kind, std::string_view lexical,
                        std::string_view datatype, std::string_view lang,
                        std::string* out);

/// The (datatype, lang) pair a term's identity actually depends on — the
/// tail of the canonical N-Triples form. Non-literals carry neither; a
/// language tag hides the datatype; xsd:string is the implicit default and
/// normalizes away. Dictionary hashing/equality key on this so structural
/// keying merges exactly the terms the canonical-string keying merged.
std::pair<std::string_view, std::string_view> TermKeyTail(
    TermKind kind, std::string_view datatype, std::string_view lang);

/// Escapes a string for N-Triples (quotes, backslash, control chars).
std::string EscapeNTriplesString(std::string_view s);

/// Reverses EscapeNTriplesString; fails on malformed escapes.
[[nodiscard]] Result<std::string> UnescapeNTriplesString(std::string_view s);

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_TERM_H_

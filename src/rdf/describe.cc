#include "rdf/describe.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/table.h"

namespace rdfparams::rdf {

std::string ShortenIri(std::string_view iri) {
  size_t cut = iri.find_last_of("#/");
  if (cut == std::string_view::npos || cut + 1 >= iri.size()) {
    return std::string(iri);
  }
  return std::string(iri.substr(cut + 1));
}

std::string DescribeStore(const TripleStore& store, const Dictionary& dict,
                          const DescribeOptions& options) {
  std::string out = util::StringPrintf(
      "%s triples | %s subjects | %zu predicates | %s objects\n\n",
      util::FormatCount(store.size()).c_str(),
      util::FormatCount(store.NumDistinctSubjects()).c_str(),
      static_cast<size_t>(store.NumDistinctPredicates()),
      util::FormatCount(store.NumDistinctObjects()).c_str());

  struct Row {
    TermId p;
    uint64_t count;
  };
  std::vector<Row> rows;
  for (TermId p : store.Predicates()) {
    rows.push_back({p, store.CountPattern(kWildcardId, p, kWildcardId)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.count > b.count; });
  if (options.max_predicates > 0 && rows.size() > options.max_predicates) {
    rows.resize(options.max_predicates);
  }

  util::TablePrinter table({"predicate", "triples", "distinct S",
                            "distinct O", "fan-out", "fan-in"});
  for (const Row& row : rows) {
    const TermView term = dict.term(row.p);
    std::string name = std::string(
        options.shorten_iris ? ShortenIri(term.lexical) : term.lexical);
    uint64_t ds = store.DistinctSubjectsForPredicate(row.p);
    uint64_t dobj = store.DistinctObjectsForPredicate(row.p);
    double fan_out = ds > 0 ? static_cast<double>(row.count) /
                                  static_cast<double>(ds)
                            : 0;
    double fan_in = dobj > 0 ? static_cast<double>(row.count) /
                                   static_cast<double>(dobj)
                             : 0;
    table.AddRow({name, util::FormatCount(row.count),
                  util::FormatCount(ds), util::FormatCount(dobj),
                  // lint:allow(float-format): fixed-point fan-out/fan-in in
                  // the human-readable DESCRIBE table; deterministic in its
                  // inputs, not a protocol surface.
                  util::StringPrintf("%.1f", fan_out),    // lint:allow(float-format): see above
                  util::StringPrintf("%.1f", fan_in)});   // lint:allow(float-format): see above
  }
  return out + table.ToText();
}

}  // namespace rdfparams::rdf

#include "rdf/dictionary.h"

#include <bit>
#include <cstring>

#include "util/coding.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace rdfparams::rdf {

namespace {

// Record field byte offsets (see the layout comment in dictionary.h).
constexpr size_t kLexOff = 0, kLexLen = 4;
constexpr size_t kDtOff = 8, kDtLen = 12;
constexpr size_t kLangOff = 16, kLangLen = 20;
constexpr size_t kKindFlags = 24, kReserved = 28, kDoubleBits = 32;

constexpr uint32_t kKnownFlagMask =
    0xFFu | kTermFlagHasDouble | kTermFlagNumericType;

inline void StoreU64At(std::string* out, uint64_t v) {
  util::AppendU64(out, v);
}

}  // namespace

uint32_t HashCapacityFor(size_t n) {
  if (n == 0) return 0;
  uint64_t want = std::bit_ceil(static_cast<uint64_t>(n) * 2);
  if (want < 16) want = 16;
  return static_cast<uint32_t>(want);
}

uint64_t HashTermKey(TermKind kind, std::string_view lexical,
                     std::string_view datatype, std::string_view lang) {
  uint64_t h = util::HashCombine(util::Hash64(static_cast<uint64_t>(kind)),
                                 util::HashString(lexical));
  h = util::HashCombine(h, util::HashString(datatype));
  return util::HashCombine(h, util::HashString(lang));
}

TermView Dictionary::ViewAt(TermId id) const {
  std::string_view arena = ArenaBytes();
  const char* r = RecordBytes().data() + static_cast<size_t>(id) * kTermRecordBytes;
  TermView v;
  v.lexical = arena.substr(util::LoadU32(r + kLexOff), util::LoadU32(r + kLexLen));
  v.datatype = arena.substr(util::LoadU32(r + kDtOff), util::LoadU32(r + kDtLen));
  v.lang = arena.substr(util::LoadU32(r + kLangOff), util::LoadU32(r + kLangLen));
  uint32_t kf = util::LoadU32(r + kKindFlags);
  v.kind = static_cast<TermKind>(kf & 0xFFu);
  v.num.has_double = (kf & kTermFlagHasDouble) != 0;
  v.num.numeric_type = (kf & kTermFlagNumericType) != 0;
  v.num.value = std::bit_cast<double>(util::LoadU64(r + kDoubleBits));
  return v;
}

std::optional<TermId> Dictionary::Probe(TermKind kind, std::string_view lexical,
                                        std::string_view key_dt,
                                        std::string_view key_lang,
                                        uint64_t hash,
                                        size_t* insert_slot) const {
  std::string_view slots = SlotBytes();
  size_t capacity = slots.size() / 4;
  if (capacity == 0) return std::nullopt;
  size_t mask = capacity - 1;
  size_t idx = static_cast<size_t>(hash) & mask;
  while (true) {
    uint32_t id = util::LoadU32(slots.data() + idx * 4);
    if (id == kEmptyHashSlot) {
      *insert_slot = idx;
      return std::nullopt;
    }
    TermView v = ViewAt(id);
    if (v.kind == kind && v.lexical == lexical) {
      auto [dt, lang] = TermKeyTail(v.kind, v.datatype, v.lang);
      if (dt == key_dt && lang == key_lang) return id;
    }
    idx = (idx + 1) & mask;
  }
}

void Dictionary::EnsureMutable() {
  if (pool_built_) return;
  if (borrowed_) {
    arena_owned_.assign(arena_);
    records_owned_.assign(records_);
    slots_owned_.assign(slots_);
    arena_ = records_ = slots_ = {};
    owner_.reset();
    borrowed_ = false;
  }
  // Rebuild the datatype/lang pool from the records: the first record
  // referencing a value references its first-appearance offset, so
  // try_emplace in id order reproduces the original pool exactly.
  for (size_t i = 0; i < size_; ++i) {
    const char* r = records_owned_.data() + i * kTermRecordBytes;
    uint32_t dt_len = util::LoadU32(r + kDtLen);
    if (dt_len > 0) {
      uint32_t off = util::LoadU32(r + kDtOff);
      value_pool_.try_emplace(arena_owned_.substr(off, dt_len),
                              std::make_pair(off, dt_len));
    }
    uint32_t lang_len = util::LoadU32(r + kLangLen);
    if (lang_len > 0) {
      uint32_t off = util::LoadU32(r + kLangOff);
      value_pool_.try_emplace(arena_owned_.substr(off, lang_len),
                              std::make_pair(off, lang_len));
    }
  }
  pool_built_ = true;
}

std::string Dictionary::BuildHashSlots(uint32_t capacity) const {
  std::string slots(static_cast<size_t>(capacity) * 4, '\xFF');
  if (capacity == 0) return slots;
  size_t mask = static_cast<size_t>(capacity) - 1;
  for (size_t i = 0; i < size_; ++i) {
    TermView v = ViewAt(static_cast<TermId>(i));
    auto [dt, lang] = TermKeyTail(v.kind, v.datatype, v.lang);
    uint64_t h = HashTermKey(v.kind, v.lexical, dt, lang);
    size_t idx = static_cast<size_t>(h) & mask;
    while (util::LoadU32(slots.data() + idx * 4) != kEmptyHashSlot) {
      idx = (idx + 1) & mask;
    }
    util::StoreU32(slots.data() + idx * 4, static_cast<uint32_t>(i));
  }
  return slots;
}

void Dictionary::Rehash(uint32_t capacity) {
  slots_owned_ = BuildHashSlots(capacity);
}

std::pair<uint32_t, uint32_t> Dictionary::InternValueBytes(std::string_view s) {
  if (s.empty()) return {0, 0};
  auto it = value_pool_.find(s);
  if (it != value_pool_.end()) return it->second;
  auto off = static_cast<uint32_t>(arena_owned_.size());
  auto len = static_cast<uint32_t>(s.size());
  arena_owned_.append(s);
  value_pool_.emplace(std::string(s), std::make_pair(off, len));
  return {off, len};
}

TermId Dictionary::Intern(const Term& term) {
  auto [key_dt, key_lang] = TermKeyTail(term.kind, term.datatype, term.lang);
  uint64_t hash = HashTermKey(term.kind, term.lexical, key_dt, key_lang);
  size_t insert_slot = 0;
  if (auto found = Probe(term.kind, term.lexical, key_dt, key_lang, hash,
                         &insert_slot)) {
    return *found;
  }
  EnsureMutable();
  TermId id = static_cast<TermId>(size_);
  RDFPARAMS_DCHECK(id != kInvalidTermId);
  uint32_t capacity = static_cast<uint32_t>(slots_owned_.size() / 4);
  if (2 * (size_ + 1) > capacity) {
    Rehash(HashCapacityFor(size_ + 1));
    auto found = Probe(term.kind, term.lexical, key_dt, key_lang, hash,
                       &insert_slot);
    RDFPARAMS_DCHECK(!found.has_value());
    (void)found;
  }

  RDFPARAMS_DCHECK(arena_owned_.size() + term.lexical.size() +
                       term.datatype.size() + term.lang.size() <=
                   0xFFFFFFFFull);
  auto lex_off = static_cast<uint32_t>(arena_owned_.size());
  auto lex_len = static_cast<uint32_t>(term.lexical.size());
  arena_owned_.append(term.lexical);
  auto [dt_off, dt_len] = InternValueBytes(term.datatype);
  auto [lang_off, lang_len] = InternValueBytes(term.lang);

  TermNumerics num = ComputeTermNumerics(term);
  uint32_t kind_flags = static_cast<uint32_t>(term.kind);
  if (num.has_double) kind_flags |= kTermFlagHasDouble;
  if (num.numeric_type) kind_flags |= kTermFlagNumericType;

  util::AppendU32(&records_owned_, lex_off);
  util::AppendU32(&records_owned_, lex_len);
  util::AppendU32(&records_owned_, dt_off);
  util::AppendU32(&records_owned_, dt_len);
  util::AppendU32(&records_owned_, lang_off);
  util::AppendU32(&records_owned_, lang_len);
  util::AppendU32(&records_owned_, kind_flags);
  util::AppendU32(&records_owned_, 0);
  StoreU64At(&records_owned_, std::bit_cast<uint64_t>(num.value));

  util::StoreU32(slots_owned_.data() + insert_slot * 4, id);
  ++size_;
  return id;
}

void Dictionary::Reserve(size_t n) {
  EnsureMutable();
  records_owned_.reserve(n * kTermRecordBytes);
  arena_owned_.reserve(arena_owned_.size() + n * 24);
  uint32_t capacity = HashCapacityFor(n < size_ ? size_ : n);
  if (static_cast<size_t>(capacity) * 4 > slots_owned_.size()) {
    Rehash(capacity);
  }
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  auto [key_dt, key_lang] = TermKeyTail(term.kind, term.datatype, term.lang);
  uint64_t hash = HashTermKey(term.kind, term.lexical, key_dt, key_lang);
  size_t slot = 0;
  return Probe(term.kind, term.lexical, key_dt, key_lang, hash, &slot);
}

std::optional<TermId> Dictionary::Find(const TermView& term) const {
  auto [key_dt, key_lang] = TermKeyTail(term.kind, term.datatype, term.lang);
  uint64_t hash = HashTermKey(term.kind, term.lexical, key_dt, key_lang);
  size_t slot = 0;
  return Probe(term.kind, term.lexical, key_dt, key_lang, hash, &slot);
}

std::optional<TermId> Dictionary::FindIri(std::string_view iri) const {
  uint64_t hash = HashTermKey(TermKind::kIri, iri, {}, {});
  size_t slot = 0;
  return Probe(TermKind::kIri, iri, {}, {}, hash, &slot);
}

TermView Dictionary::term(TermId id) const {
  RDFPARAMS_DCHECK(id < size_);
  return ViewAt(id);
}

std::string Dictionary::ToString(TermId id) const {
  if (id == kInvalidTermId) return "?";
  if (id >= size_) return "<bad-id>";
  return ViewAt(id).ToNTriples();
}

std::vector<TermId> Dictionary::FoldScratch(const ScratchDictionary& overlay) {
  RDFPARAMS_DCHECK(&overlay.base() == this);
  RDFPARAMS_DCHECK(overlay.base_size() <= size_);
  std::vector<TermId> map;
  map.reserve(overlay.num_scratch());
  for (size_t i = 0; i < overlay.num_scratch(); ++i) {
    map.push_back(Intern(overlay.scratch_term(i)));
  }
  return map;
}

Status Dictionary::ValidateSections(std::string_view arena,
                                    std::string_view records,
                                    std::string_view hash_slots,
                                    size_t num_terms) {
  if (num_terms >= kInvalidTermId) {
    return Status::DataLoss("dictionary: term count out of range");
  }
  if (records.size() != num_terms * kTermRecordBytes) {
    return Status::DataLoss(util::StringPrintf(
        "dictionary: record section is %zu bytes, want %zu for %zu terms",
        records.size(), num_terms * kTermRecordBytes, num_terms));
  }
  if (arena.size() > 0xFFFFFFFFull) {
    return Status::DataLoss("dictionary: arena exceeds 4 GiB offset range");
  }
  if (hash_slots.size() != static_cast<size_t>(HashCapacityFor(num_terms)) * 4) {
    return Status::DataLoss(util::StringPrintf(
        "dictionary: hash section is %zu bytes, want %zu for %zu terms",
        hash_slots.size(),
        static_cast<size_t>(HashCapacityFor(num_terms)) * 4, num_terms));
  }
  uint64_t arena_size = arena.size();
  for (size_t i = 0; i < num_terms; ++i) {
    const char* r = records.data() + i * kTermRecordBytes;
    uint32_t kf = util::LoadU32(r + kKindFlags);
    if ((kf & 0xFFu) > 2 || (kf & ~kKnownFlagMask) != 0) {
      return Status::DataLoss(
          util::StringPrintf("dictionary: record %zu has bad kind/flags", i));
    }
    if (util::LoadU32(r + kReserved) != 0) {
      return Status::DataLoss(util::StringPrintf(
          "dictionary: record %zu has nonzero reserved field", i));
    }
    for (size_t f : {kLexOff, kDtOff, kLangOff}) {
      uint64_t off = util::LoadU32(r + f);
      uint64_t len = util::LoadU32(r + f + 4);
      if (off + len > arena_size) {
        return Status::DataLoss(util::StringPrintf(
            "dictionary: record %zu field exceeds arena bounds", i));
      }
    }
  }
  std::vector<bool> seen(num_terms, false);
  size_t filled = 0;
  for (size_t s = 0; s * 4 < hash_slots.size(); ++s) {
    uint32_t id = util::LoadU32(hash_slots.data() + s * 4);
    if (id == kEmptyHashSlot) continue;
    if (id >= num_terms || seen[id]) {
      return Status::DataLoss(
          util::StringPrintf("dictionary: hash slot %zu holds bad id", s));
    }
    seen[id] = true;
    ++filled;
  }
  if (filled != num_terms) {
    return Status::DataLoss(util::StringPrintf(
        "dictionary: hash table holds %zu ids, want %zu", filled, num_terms));
  }
  return Status::OK();
}

Result<Dictionary> Dictionary::Adopt(std::string_view arena,
                                     std::string_view records,
                                     std::string_view hash_slots,
                                     size_t num_terms,
                                     std::shared_ptr<const void> owner) {
  RDFPARAMS_RETURN_NOT_OK(ValidateSections(arena, records, hash_slots,
                                           num_terms));
  Dictionary d;
  d.size_ = num_terms;
  d.arena_ = arena;
  d.records_ = records;
  d.slots_ = hash_slots;
  d.owner_ = std::move(owner);
  d.borrowed_ = true;
  d.pool_built_ = false;
  return d;
}

Result<Dictionary> Dictionary::Adopt(std::string arena, std::string records,
                                     std::string hash_slots,
                                     size_t num_terms) {
  RDFPARAMS_RETURN_NOT_OK(
      ValidateSections(arena, records, hash_slots, num_terms));
  Dictionary d;
  d.size_ = num_terms;
  d.arena_owned_ = std::move(arena);
  d.records_owned_ = std::move(records);
  d.slots_owned_ = std::move(hash_slots);
  d.pool_built_ = false;
  return d;
}

TermId ScratchDictionary::Intern(const Term& term) {
  if (auto base_id = base_.Find(term)) {
    // Ids past the snapshot would collide with overlay ids.
    RDFPARAMS_DCHECK(*base_id < base_size_);
    return *base_id;
  }
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(base_size_ + local_.size());
  RDFPARAMS_DCHECK(id != kInvalidTermId);
  local_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> ScratchDictionary::Find(const Term& term) const {
  if (auto base_id = base_.Find(term)) return base_id;
  auto it = index_.find(term.ToNTriples());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

TermView ScratchDictionary::term(TermId id) const {
  if (id < base_size_) return base_.term(id);
  RDFPARAMS_DCHECK(id - base_size_ < local_.size());
  return local_[id - base_size_].view();
}

}  // namespace rdfparams::rdf

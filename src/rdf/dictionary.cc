#include "rdf/dictionary.h"

namespace rdfparams::rdf {

TermId Dictionary::Intern(const Term& term) {
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  RDFPARAMS_DCHECK(id != kInvalidTermId);
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Intern(Term&& term) {
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  RDFPARAMS_DCHECK(id != kInvalidTermId);
  terms_.push_back(std::move(term));
  index_.emplace(std::move(key), id);
  return id;
}

void Dictionary::Reserve(size_t n) {
  terms_.reserve(n);
  index_.reserve(n);
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  auto it = index_.find(term.ToNTriples());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Term& Dictionary::term(TermId id) const {
  RDFPARAMS_DCHECK(id < terms_.size());
  return terms_[id];
}

std::string Dictionary::ToString(TermId id) const {
  if (id == kInvalidTermId) return "?";
  if (id >= terms_.size()) return "<bad-id>";
  return terms_[id].ToNTriples();
}

std::vector<TermId> Dictionary::FoldScratch(const ScratchDictionary& overlay) {
  RDFPARAMS_DCHECK(&overlay.base() == this);
  RDFPARAMS_DCHECK(overlay.base_size() <= terms_.size());
  std::vector<TermId> map;
  map.reserve(overlay.num_scratch());
  for (size_t i = 0; i < overlay.num_scratch(); ++i) {
    map.push_back(Intern(overlay.scratch_term(i)));
  }
  return map;
}

TermId ScratchDictionary::Intern(const Term& term) {
  if (auto base_id = base_.Find(term)) {
    // Ids past the snapshot would collide with overlay ids.
    RDFPARAMS_DCHECK(*base_id < base_size_);
    return *base_id;
  }
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(base_size_ + local_.size());
  RDFPARAMS_DCHECK(id != kInvalidTermId);
  local_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> ScratchDictionary::Find(const Term& term) const {
  if (auto base_id = base_.Find(term)) return base_id;
  auto it = index_.find(term.ToNTriples());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Term& ScratchDictionary::term(TermId id) const {
  if (id < base_size_) return base_.term(id);
  RDFPARAMS_DCHECK(id - base_size_ < local_.size());
  return local_[id - base_size_];
}

}  // namespace rdfparams::rdf

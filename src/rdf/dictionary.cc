#include "rdf/dictionary.h"

namespace rdfparams::rdf {

TermId Dictionary::Intern(const Term& term) {
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  RDFPARAMS_DCHECK(id != kInvalidTermId);
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  auto it = index_.find(term.ToNTriples());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Term& Dictionary::term(TermId id) const {
  RDFPARAMS_DCHECK(id < terms_.size());
  return terms_[id];
}

std::string Dictionary::ToString(TermId id) const {
  if (id == kInvalidTermId) return "?";
  if (id >= terms_.size()) return "<bad-id>";
  return terms_[id].ToNTriples();
}

}  // namespace rdfparams::rdf

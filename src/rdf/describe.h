// Human-readable dataset statistics: the per-predicate table a benchmark
// author inspects before choosing parameter domains (triple counts,
// distinct subjects/objects — i.e. the fan-in/fan-out that drives the
// paper's selectivity effects).
#ifndef RDFPARAMS_RDF_DESCRIBE_H_
#define RDFPARAMS_RDF_DESCRIBE_H_

#include <string>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace rdfparams::rdf {

struct DescribeOptions {
  /// Print at most this many predicates (largest first); 0 = all.
  size_t max_predicates = 0;
  /// Shorten IRIs to their fragment/last path segment.
  bool shorten_iris = true;
};

/// Renders a table: predicate, #triples, distinct S, distinct O, avg
/// fan-out (triples / distinct S) and fan-in (triples / distinct O).
std::string DescribeStore(const TripleStore& store, const Dictionary& dict,
                          const DescribeOptions& options = {});

/// "http://x/vocab#livesIn" -> "livesIn" (for display only).
std::string ShortenIri(std::string_view iri);

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_DESCRIBE_H_

#include "rdf/ntriples.h"

#include <algorithm>
#include <memory>
#include <ostream>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace rdfparams::rdf {

namespace {

void SkipWs(std::string_view s, size_t* pos) {
  while (*pos < s.size() && (s[*pos] == ' ' || s[*pos] == '\t')) ++*pos;
}

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || (c >= '0' && c <= '9'); }

bool IsPnChar(char c) {
  return IsAsciiAlnum(c) || c == '_' || c == '-' || c == '.';
}

}  // namespace

Result<Term> ParseNTriplesTerm(std::string_view line, size_t* pos) {
  SkipWs(line, pos);
  if (*pos >= line.size()) {
    return Status::ParseError("expected term, found end of line");
  }
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    std::string iri(line.substr(*pos + 1, end - *pos - 1));
    *pos = end + 1;
    if (iri.empty()) return Status::ParseError("empty IRI");
    return Term::Iri(std::move(iri));
  }
  if (c == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      return Status::ParseError("malformed blank node (expected _:)");
    }
    size_t start = *pos + 2;
    size_t end = start;
    while (end < line.size() && IsPnChar(line[end])) ++end;
    // BLANK_NODE_LABEL cannot end with '.': a trailing dot (or run of
    // dots) belongs to the statement, not the label, so "_:o." is the
    // label "o" followed by the terminating '.'.
    while (end > start && line[end - 1] == '.') --end;
    if (end == start) return Status::ParseError("empty blank node label");
    std::string label(line.substr(start, end - start));
    *pos = end;
    return Term::Blank(std::move(label));
  }
  if (c == '"') {
    // Scan to the closing unescaped quote.
    size_t i = *pos + 1;
    bool escaped = false;
    while (i < line.size()) {
      if (escaped) {
        escaped = false;
      } else if (line[i] == '\\') {
        escaped = true;
      } else if (line[i] == '"') {
        break;
      }
      ++i;
    }
    if (i >= line.size()) return Status::ParseError("unterminated literal");
    RDFPARAMS_ASSIGN_OR_RETURN(
        std::string lexical,
        UnescapeNTriplesString(line.substr(*pos + 1, i - *pos - 1)));
    *pos = i + 1;
    // Optional language tag or datatype.
    if (*pos < line.size() && line[*pos] == '@') {
      // LANGTAG = '@' [a-zA-Z]+ ('-' [a-zA-Z0-9]+)*  — notably neither
      // '_' nor '.' is allowed, so "@en" in "@en." stops before the
      // statement terminator.
      size_t start = *pos + 1;
      size_t end = start;
      while (end < line.size() && IsAsciiAlpha(line[end])) ++end;
      if (end == start) return Status::ParseError("empty language tag");
      while (end < line.size() && line[end] == '-') {
        size_t seg = end + 1;
        while (seg < line.size() && IsAsciiAlnum(line[seg])) ++seg;
        if (seg == end + 1) {
          return Status::ParseError("empty language subtag");
        }
        end = seg;
      }
      std::string lang(line.substr(start, end - start));
      *pos = end;
      return Term::LangLiteral(std::move(lexical), std::move(lang));
    }
    if (*pos + 1 < line.size() && line[*pos] == '^' && line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<') {
        return Status::ParseError("datatype must be an IRI");
      }
      size_t end = line.find('>', *pos + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      std::string dt(line.substr(*pos + 1, end - *pos - 1));
      *pos = end + 1;
      return Term::TypedLiteral(std::move(lexical), std::move(dt));
    }
    return Term::Literal(std::move(lexical));
  }
  return Status::ParseError(std::string("unexpected character '") + c +
                            "' at term start");
}

Status ParseNTriples(
    std::string_view document,
    const std::function<void(const Term& s, const Term& p, const Term& o)>&
        sink,
    size_t first_line) {
  size_t line_no = first_line - 1;
  size_t offset = 0;
  while (offset <= document.size()) {
    size_t nl = document.find('\n', offset);
    std::string_view line = nl == std::string_view::npos
                                ? document.substr(offset)
                                : document.substr(offset, nl - offset);
    offset = nl == std::string_view::npos ? document.size() + 1 : nl + 1;
    ++line_no;

    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    size_t pos = 0;
    auto fail = [&](const Status& st) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                st.message());
    };
    Result<Term> s = ParseNTriplesTerm(trimmed, &pos);
    if (!s.ok()) return fail(s.status());
    Result<Term> p = ParseNTriplesTerm(trimmed, &pos);
    if (!p.ok()) return fail(p.status());
    if (!p->is_iri()) {
      return fail(Status::ParseError("predicate must be an IRI"));
    }
    Result<Term> o = ParseNTriplesTerm(trimmed, &pos);
    if (!o.ok()) return fail(o.status());
    SkipWs(trimmed, &pos);
    if (pos >= trimmed.size() || trimmed[pos] != '.') {
      return fail(Status::ParseError("expected '.' after object"));
    }
    ++pos;
    SkipWs(trimmed, &pos);
    if (pos < trimmed.size() && trimmed[pos] != '#') {
      return fail(Status::ParseError("trailing content after '.'"));
    }
    if (s->is_literal()) {
      return fail(Status::ParseError("subject must not be a literal"));
    }
    sink(*s, *p, *o);
  }
  return Status::OK();
}

std::vector<std::string_view> SplitLineChunks(std::string_view document,
                                              size_t target_chunks) {
  std::vector<std::string_view> chunks;
  if (document.empty()) return chunks;
  if (target_chunks < 1) target_chunks = 1;
  size_t approx = document.size() / target_chunks;
  if (approx == 0) approx = document.size();
  size_t begin = 0;
  while (begin < document.size()) {
    size_t end = begin + approx;
    if (end >= document.size()) {
      end = document.size();
    } else {
      size_t nl = document.find('\n', end);
      end = nl == std::string_view::npos ? document.size() : nl + 1;
    }
    chunks.push_back(document.substr(begin, end - begin));
    begin = end;
  }
  return chunks;
}

Status LoadNTriples(std::string_view document, Dictionary* dict,
                    TripleStore* store) {
  return ParseNTriples(document,
                       [&](const Term& s, const Term& p, const Term& o) {
                         // Sequence the interns explicitly: the sharded
                         // merge replays first-appearance order, which
                         // must not hinge on argument evaluation order.
                         TermId si = dict->Intern(s);
                         TermId pi = dict->Intern(p);
                         TermId oi = dict->Intern(o);
                         store->Add(si, pi, oi);
                       });
}

namespace {

/// The sharded load pipeline (see the header comment for the contract).
Status LoadNTriplesSharded(std::string_view document, Dictionary* dict,
                           TripleStore* store, util::ThreadPool* pool,
                           size_t num_chunks) {
  std::vector<std::string_view> chunks = SplitLineChunks(document, num_chunks);

  struct ChunkState {
    std::unique_ptr<ScratchDictionary> overlay;
    std::vector<Triple> triples;
  };
  std::vector<ChunkState> states(chunks.size());
  util::FirstFailureTracker failed(chunks.size());

  // Parse phase: workers only read the (frozen) global dictionary through
  // their overlays; all writes go to per-chunk state.
  pool->ParallelFor(
      0, chunks.size(),
      [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          if (failed.ShouldSkip(i)) continue;
          ChunkState& cs = states[i];
          cs.overlay = std::make_unique<ScratchDictionary>(*dict);
          Status st = ParseNTriples(
              chunks[i], [&](const Term& s, const Term& p, const Term& o) {
                TermId si = cs.overlay->Intern(s);
                TermId pi = cs.overlay->Intern(p);
                TermId oi = cs.overlay->Intern(o);
                cs.triples.emplace_back(si, pi, oi);
              });
          if (!st.ok()) failed.Record(i);
        }
      },
      1);

  if (failed.any()) {
    // Reproduce the exact serial error (message + document-global line
    // number) by re-parsing just the first failing chunk. The error path
    // may re-scan the prefix for newlines; correctness of the message
    // beats speed here. Nothing has been merged: dict/store are untouched.
    size_t bad = static_cast<size_t>(failed.first());
    size_t chunk_offset =
        static_cast<size_t>(chunks[bad].data() - document.data());
    size_t lines_before = static_cast<size_t>(std::count(
        document.begin(),
        document.begin() + static_cast<int64_t>(chunk_offset), '\n'));
    Status st = ParseNTriples(
        chunks[bad], [](const Term&, const Term&, const Term&) {},
        lines_before + 1);
    RDFPARAMS_DCHECK(!st.ok());
    return st;
  }

  // Merge phase, single-threaded in chunk order: fold each overlay into
  // the global dictionary (assigning ids exactly as the serial pass
  // would), then append the chunk's triples remapped to global ids.
  for (ChunkState& cs : states) {
    const size_t base = cs.overlay->base_size();
    const std::vector<TermId> map = dict->FoldScratch(*cs.overlay);
    auto remap = [&](TermId id) {
      return id < base ? id : map[id - base];
    };
    for (const Triple& t : cs.triples) {
      store->Add(remap(t.s), remap(t.p), remap(t.o));
    }
    cs.overlay.reset();
    std::vector<Triple>().swap(cs.triples);
  }
  return Status::OK();
}

}  // namespace

Status LoadNTriples(std::string_view document, Dictionary* dict,
                    TripleStore* store, const LoadOptions& options) {
  const size_t threads =
      options.pool ? options.pool->size() + 1
                   : util::ThreadPool::ResolveThreads(options.threads);
  const size_t min_chunk = std::max<size_t>(1, options.min_chunk_bytes);
  const size_t num_chunks = std::min<size_t>(
      threads, std::max<size_t>(1, document.size() / min_chunk));
  // Inputs too small to shard still go through the buffered merge path
  // (as one chunk, parsed inline): the options overload is atomic on
  // error for EVERY input, not just the ones worth parallelizing.
  if (options.pool != nullptr) {
    return LoadNTriplesSharded(document, dict, store, options.pool,
                               num_chunks);
  }
  util::ThreadPool local(num_chunks <= 1 ? 0 : threads - 1);
  return LoadNTriplesSharded(document, dict, store, &local, num_chunks);
}

Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store) {
  return LoadNTriplesFile(path, dict, store, LoadOptions{});
}

Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store, const LoadOptions& options) {
  RDFPARAMS_ASSIGN_OR_RETURN(std::string data, util::ReadFileToString(path));
  Status st = LoadNTriples(data, dict, store, options);
  if (!st.ok()) {
    return Status::ParseError(path + ": " + st.message());
  }
  return Status::OK();
}

std::string ToNTriplesLine(const Term& s, const Term& p, const Term& o) {
  return s.ToNTriples() + " " + p.ToNTriples() + " " + o.ToNTriples() + " .";
}

std::string ToNTriplesLine(const TermView& s, const TermView& p,
                           const TermView& o) {
  return s.ToNTriples() + " " + p.ToNTriples() + " " + o.ToNTriples() + " .";
}

Status WriteNTriples(const Dictionary& dict, const TripleStore& store,
                     std::ostream& os) {
  if (!store.finalized()) {
    return Status::InvalidArgument("store must be finalized before writing");
  }
  for (const Triple& t :
       store.Range(IndexOrder::kSPO, kWildcardId, kWildcardId, kWildcardId)) {
    os << ToNTriplesLine(dict.term(t.s), dict.term(t.p), dict.term(t.o))
       << '\n';
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace rdfparams::rdf

#include "rdf/ntriples.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace rdfparams::rdf {

namespace {

void SkipWs(std::string_view s, size_t* pos) {
  while (*pos < s.size() && (s[*pos] == ' ' || s[*pos] == '\t')) ++*pos;
}

bool IsPnChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
}

}  // namespace

Result<Term> ParseNTriplesTerm(std::string_view line, size_t* pos) {
  SkipWs(line, pos);
  if (*pos >= line.size()) {
    return Status::ParseError("expected term, found end of line");
  }
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    std::string iri(line.substr(*pos + 1, end - *pos - 1));
    *pos = end + 1;
    if (iri.empty()) return Status::ParseError("empty IRI");
    return Term::Iri(std::move(iri));
  }
  if (c == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      return Status::ParseError("malformed blank node (expected _:)");
    }
    size_t start = *pos + 2;
    size_t end = start;
    while (end < line.size() && IsPnChar(line[end])) ++end;
    if (end == start) return Status::ParseError("empty blank node label");
    std::string label(line.substr(start, end - start));
    *pos = end;
    return Term::Blank(std::move(label));
  }
  if (c == '"') {
    // Scan to the closing unescaped quote.
    size_t i = *pos + 1;
    bool escaped = false;
    while (i < line.size()) {
      if (escaped) {
        escaped = false;
      } else if (line[i] == '\\') {
        escaped = true;
      } else if (line[i] == '"') {
        break;
      }
      ++i;
    }
    if (i >= line.size()) return Status::ParseError("unterminated literal");
    RDFPARAMS_ASSIGN_OR_RETURN(
        std::string lexical,
        UnescapeNTriplesString(line.substr(*pos + 1, i - *pos - 1)));
    *pos = i + 1;
    // Optional language tag or datatype.
    if (*pos < line.size() && line[*pos] == '@') {
      size_t start = *pos + 1;
      size_t end = start;
      while (end < line.size() &&
             (IsPnChar(line[end]) || line[end] == '-')) {
        ++end;
      }
      if (end == start) return Status::ParseError("empty language tag");
      std::string lang(line.substr(start, end - start));
      *pos = end;
      return Term::LangLiteral(std::move(lexical), std::move(lang));
    }
    if (*pos + 1 < line.size() && line[*pos] == '^' && line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<') {
        return Status::ParseError("datatype must be an IRI");
      }
      size_t end = line.find('>', *pos + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      std::string dt(line.substr(*pos + 1, end - *pos - 1));
      *pos = end + 1;
      return Term::TypedLiteral(std::move(lexical), std::move(dt));
    }
    return Term::Literal(std::move(lexical));
  }
  return Status::ParseError(std::string("unexpected character '") + c +
                            "' at term start");
}

Status ParseNTriples(
    std::string_view document,
    const std::function<void(const Term& s, const Term& p, const Term& o)>&
        sink) {
  size_t line_no = 0;
  size_t offset = 0;
  while (offset <= document.size()) {
    size_t nl = document.find('\n', offset);
    std::string_view line = nl == std::string_view::npos
                                ? document.substr(offset)
                                : document.substr(offset, nl - offset);
    offset = nl == std::string_view::npos ? document.size() + 1 : nl + 1;
    ++line_no;

    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    size_t pos = 0;
    auto fail = [&](const Status& st) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                st.message());
    };
    Result<Term> s = ParseNTriplesTerm(trimmed, &pos);
    if (!s.ok()) return fail(s.status());
    Result<Term> p = ParseNTriplesTerm(trimmed, &pos);
    if (!p.ok()) return fail(p.status());
    if (!p->is_iri()) {
      return fail(Status::ParseError("predicate must be an IRI"));
    }
    Result<Term> o = ParseNTriplesTerm(trimmed, &pos);
    if (!o.ok()) return fail(o.status());
    SkipWs(trimmed, &pos);
    if (pos >= trimmed.size() || trimmed[pos] != '.') {
      return fail(Status::ParseError("expected '.' after object"));
    }
    ++pos;
    SkipWs(trimmed, &pos);
    if (pos < trimmed.size() && trimmed[pos] != '#') {
      return fail(Status::ParseError("trailing content after '.'"));
    }
    if (s->is_literal()) {
      return fail(Status::ParseError("subject must not be a literal"));
    }
    sink(*s, *p, *o);
  }
  return Status::OK();
}

Status LoadNTriples(std::string_view document, Dictionary* dict,
                    TripleStore* store) {
  return ParseNTriples(document,
                       [&](const Term& s, const Term& p, const Term& o) {
                         store->Add(dict->Intern(s), dict->Intern(p),
                                    dict->Intern(o));
                       });
}

Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Status st = LoadNTriples(buf.str(), dict, store);
  if (!st.ok()) {
    return Status::ParseError(path + ": " + st.message());
  }
  return Status::OK();
}

std::string ToNTriplesLine(const Term& s, const Term& p, const Term& o) {
  return s.ToNTriples() + " " + p.ToNTriples() + " " + o.ToNTriples() + " .";
}

Status WriteNTriples(const Dictionary& dict, const TripleStore& store,
                     std::ostream& os) {
  if (!store.finalized()) {
    return Status::InvalidArgument("store must be finalized before writing");
  }
  for (const Triple& t :
       store.Range(IndexOrder::kSPO, kWildcardId, kWildcardId, kWildcardId)) {
    os << ToNTriplesLine(dict.term(t.s), dict.term(t.p), dict.term(t.o))
       << '\n';
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace rdfparams::rdf

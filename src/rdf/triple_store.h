// In-memory triple store with sorted permutation indexes.
//
// The store keeps up to six sorted copies of the triples (SPO, POS, OSP by
// default; SOP, PSO, OPS on request). Every bound-prefix lookup maps to a
// contiguous range of exactly one index, so pattern matching is two binary
// searches + a linear walk. This mirrors the index layout of RDF-3X /
// Virtuoso's quad indexes closely enough for the paper's plan-choice
// effects to materialize.
#ifndef RDFPARAMS_RDF_TRIPLE_STORE_H_
#define RDFPARAMS_RDF_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/status.h"

namespace rdfparams::util {
class ThreadPool;
}  // namespace rdfparams::util

namespace rdfparams::rdf {

/// Pattern slot: a concrete TermId or kWildcardId ("any").
inline constexpr TermId kWildcardId = kInvalidTermId;

/// The six permutations. Values chosen so that [0]=primary sort key etc.
enum class IndexOrder : uint8_t {
  kSPO = 0,
  kPOS = 1,
  kOSP = 2,
  kSOP = 3,
  kPSO = 4,
  kOPS = 5,
};

/// Returns e.g. "POS".
const char* IndexOrderName(IndexOrder order);

/// Permutation of positions for an order: {primary, secondary, tertiary}.
std::array<TriplePos, 3> IndexPermutation(IndexOrder order);

/// Immutable-after-Finalize triple store.
class TripleStore {
 public:
  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Appends a triple. Only valid before Finalize().
  void Add(TermId s, TermId p, TermId o);
  void Add(const Triple& t) { Add(t.s, t.p, t.o); }

  /// Sorts, deduplicates, and builds the default indexes (SPO, POS, OSP).
  /// Idempotent; adding after Finalize() requires Finalize() again.
  ///
  /// With a pool, the primary SPO sort runs as a parallel merge sort
  /// (util::PoolSort) and the secondary indexes build as one pool task
  /// each. Triples are plain value tuples, so every sorted index is
  /// byte-identical to the serial build at any thread count. The pool
  /// must be otherwise idle for the duration of the call.
  void Finalize(util::ThreadPool* pool = nullptr);

  /// Additionally builds SOP, PSO, OPS (for ordered access on any
  /// position), one pool task per index when a pool is given.
  void BuildAllIndexes(util::ThreadPool* pool = nullptr);

  bool finalized() const { return finalized_; }
  size_t size() const { return spo_.size(); }
  /// True once the three extra permutations (SOP, PSO, OPS) are built.
  bool all_indexes_built() const { return all_indexes_; }

  /// The full sorted run of one index, in its permutation order. Only the
  /// default three are valid unless all_indexes_built(). This is the
  /// byte-exact image the storage layer serializes: restoring these runs
  /// verbatim (AdoptSortedRuns) reproduces every Range/Count/Scan result
  /// without re-sorting.
  std::span<const Triple> IndexRun(IndexOrder order) const {
    return IndexVector(order);
  }

  /// Installs pre-sorted index runs, bypassing Finalize(): the snapshot
  /// restore path. `spo` must be strictly ascending in SPO order (sorted,
  /// deduplicated); each other run must be a permutation-sorted copy of
  /// the same triples. When `all_indexes` is false the extra runs must be
  /// empty. Validates order and sizes (InvalidArgument on violation),
  /// recomputes predicate stats, and leaves the store finalized.
  [[nodiscard]] Status AdoptSortedRuns(std::vector<Triple> spo, std::vector<Triple> pos,
                         std::vector<Triple> osp, std::vector<Triple> sop,
                         std::vector<Triple> pso, std::vector<Triple> ops,
                         bool all_indexes);

  /// Exact number of triples matching the pattern (wildcards allowed).
  uint64_t CountPattern(TermId s, TermId p, TermId o) const;

  /// Batched CountPattern over patterns that differ only in one slot:
  /// result[i] == CountPattern(pattern with candidates[i] substituted at
  /// var_pos). The slot at var_pos in (s, p, o) is ignored; the remaining
  /// slots may be bound or wildcard. `candidates` must be ascending
  /// (duplicates allowed; ids absent from the data count 0).
  ///
  /// Instead of candidates.size() independent equal_range probes, this
  /// runs one co-sequential sweep over the covering index: the bound
  /// slots plus var_pos always form a sort prefix of one of the default
  /// permutations, so ascending candidates map to monotonically advancing
  /// positions and each run is located by galloping (exponential probe +
  /// bounded binary search) from the previous one — O(k·log(n/k) + k)
  /// total instead of O(k·log n), and one cache-resident cursor. The
  /// cursor logic is PatternSweep (below); this method just takes sizes.
  std::vector<uint64_t> CountPatternBatch(
      TriplePos var_pos, TermId s, TermId p, TermId o,
      std::span<const TermId> candidates) const;

  /// Invokes fn(const Triple&) for every match of the pattern.
  void ScanPattern(TermId s, TermId p, TermId o,
                   const std::function<void(const Triple&)>& fn) const;

  /// Contiguous sorted range of triples matching the pattern in the chosen
  /// index order; empty span if no match. The pattern's bound slots must be
  /// a prefix of the order's permutation (checked).
  std::span<const Triple> Range(IndexOrder order, TermId s, TermId p,
                                TermId o) const;

  /// Picks the most selective available index whose prefix covers the
  /// pattern's bound slots.
  IndexOrder ChooseIndex(TermId s, TermId p, TermId o) const;

  /// The currently built index orders (the three defaults, plus the three
  /// extras after BuildAllIndexes). Used by PatternSweep's index choice.
  std::vector<IndexOrder> BuiltIndexes() const;

  /// Number of distinct values in a position (computed at Finalize).
  uint64_t NumDistinctSubjects() const { return distinct_s_; }
  uint64_t NumDistinctPredicates() const { return distinct_p_; }
  uint64_t NumDistinctObjects() const { return distinct_o_; }

  /// All distinct predicate ids (ascending). Available after Finalize().
  const std::vector<TermId>& Predicates() const { return predicates_; }

  /// Distinct subjects / objects occurring with a given predicate.
  uint64_t DistinctSubjectsForPredicate(TermId p) const;
  uint64_t DistinctObjectsForPredicate(TermId p) const;

  /// Collects the distinct objects appearing with predicate p
  /// (e.g. "all countries" = objects of :livesIn). Sorted ascending.
  std::vector<TermId> DistinctObjectsOf(TermId p) const;
  /// Collects the distinct subjects appearing with predicate p.
  std::vector<TermId> DistinctSubjectsOf(TermId p) const;

  /// Approximate resident bytes of all built indexes.
  size_t MemoryBytes() const;

 private:
  const std::vector<Triple>& IndexVector(IndexOrder order) const;
  void SortIndex(IndexOrder order, std::vector<Triple>* v) const;
  void ComputePredicateStats();
  /// Copies spo_ into each target and sorts it in the target's order,
  /// one pool task per target (inline without a pool).
  void BuildSortedCopies(
      util::ThreadPool* pool,
      const std::vector<std::pair<IndexOrder, std::vector<Triple>*>>&
          targets);
  /// The three on-request permutations, shared by Finalize and
  /// BuildAllIndexes so the lists cannot drift apart.
  std::vector<std::pair<IndexOrder, std::vector<Triple>*>>
  ExtraIndexTargets();

  std::vector<Triple> spo_;
  std::vector<Triple> pos_;
  std::vector<Triple> osp_;
  std::vector<Triple> sop_;
  std::vector<Triple> pso_;
  std::vector<Triple> ops_;
  bool finalized_ = false;
  bool all_indexes_ = false;

  uint64_t distinct_s_ = 0;
  uint64_t distinct_p_ = 0;
  uint64_t distinct_o_ = 0;

  // Parallel arrays keyed by position in predicates_.
  std::vector<TermId> predicates_;
  std::vector<uint64_t> pred_count_;
  std::vector<uint64_t> pred_distinct_s_;
  std::vector<uint64_t> pred_distinct_o_;
};

/// Co-sequential cursor over the sorted index run covering a pattern with
/// exactly one varying ("key") slot: the generalization of the galloping
/// sweep CountPatternBatch introduced, reusable by any consumer that feeds
/// ascending keys — CountPatternBatch itself (run sizes) and the executor's
/// merge join (run contents).
///
/// Construction picks the built index whose sort prefix covers the fixed
/// bound slots plus `key_pos` (preferring the one sorting the key slot
/// latest) and pins the fixed slots sorted before the key with one
/// equal_range. Each Next(key) then gallops forward from the previous run
/// (exponential probe + bounded binary search) and restricts by the fixed
/// slots sorted after the key — O(k·log(n/k) + k) over k ascending keys
/// instead of k full-range binary searches, with one cache-resident cursor.
///
/// The returned run is exactly the triples matching the fully-bound
/// pattern (fixed slots + key), in the chosen index's order. When at least
/// one slot besides the key is bound, at most one slot is free, so the run
/// order is the free slot's ascending order — identical for every covering
/// index, which is what lets the executor swap the sweep in for per-key
/// Range() probes without changing emitted row order.
class PatternSweep {
 public:
  /// The slot at `key_pos` in (s, p, o) is ignored; the remaining slots
  /// may be bound or wildcard and must stay fixed across Next() calls.
  /// The store must be finalized and must outlive the sweep.
  PatternSweep(const TripleStore& store, TriplePos key_pos, TermId s,
               TermId p, TermId o);

  /// False when no built index has a sort prefix covering the fixed slots
  /// plus key_pos (callers fall back to per-key Range probes; cannot
  /// happen with the three default indexes).
  bool valid() const { return best_k_ >= 0; }

  /// Sorted run of triples matching the pattern with `key` substituted at
  /// key_pos; empty if the key is absent. Keys must be non-decreasing
  /// across calls (checked in debug builds); repeated keys re-find the
  /// same run. Only valid when valid().
  std::span<const Triple> Next(TermId key);

 private:
  TriplePos key_pos_;
  Triple fixed_{kWildcardId, kWildcardId, kWildcardId};
  std::array<TriplePos, 3> perm_{};
  int best_k_ = -1;
  size_t nf_ = 0;
  bool has_tail_ = false;
  const Triple* cur_ = nullptr;
  const Triple* end_ = nullptr;
  TermId last_key_ = 0;
  bool first_ = true;
};

}  // namespace rdfparams::rdf

#endif  // RDFPARAMS_RDF_TRIPLE_STORE_H_

#include "util/table.h"

#include <algorithm>
#include <ostream>

namespace rdfparams::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToText() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < r.size() ? r[i] : "";
      if (i > 0) out += "  ";
      if (i == 0) {
        out += cell;
        out.append(width[i] - cell.size(), ' ');
      } else {
        out.append(width[i] - cell.size(), ' ');
        out += cell;
      }
    }
    // Trim trailing spaces introduced by left alignment of short rows.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t i = 0; i < cols; ++i) total += width[i] + (i > 0 ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& r : rows_) emit(r);
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q.push_back(c);
    }
    q += '"';
    return q;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += quote(r[i]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToText() << "\n"; }

}  // namespace rdfparams::util

#include "util/socket.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

namespace rdfparams::util {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void IgnoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);

  // Restart-friendly: rebinding the port of a just-stopped server must not
  // fail on lingering TIME_WAIT sockets.
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), errno);
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen", errno);

  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return ErrnoStatus("getsockname", errno);
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket", errno);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect " + host + ":" + std::to_string(port), errno);
  }
  return fd;
}

Result<size_t> ReadSome(int fd, void* buf, size_t n) {
  for (;;) {
    ssize_t got = ::read(fd, buf, n);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno != EINTR) return ErrnoStatus("read", errno);
  }
}

Status WriteFull(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  while (left > 0) {
    ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", errno);
    }
    p += wrote;
    left -= static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t left = n;
  while (left > 0) {
    RDFPARAMS_ASSIGN_OR_RETURN(size_t got, ReadSome(fd, p, left));
    if (got == 0) {
      return Status::IOError("connection closed mid-read (" +
                             std::to_string(n - left) + "/" +
                             std::to_string(n) + " bytes)");
    }
    p += got;
    left -= got;
  }
  return Status::OK();
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }
void ShutdownWrite(int fd) { ::shutdown(fd, SHUT_WR); }
void ShutdownBoth(int fd) { ::shutdown(fd, SHUT_RDWR); }

}  // namespace rdfparams::util

// Positional file I/O for the storage layer.
//
// RandomAccessFile wraps an O_RDONLY descriptor with EINTR-safe pread —
// many BufferPool readers can share one instance because pread carries its
// own offset (no shared file cursor). SequentialFileWriter appends through
// a user-space buffer and supports an atomic finish: content is written to
// `path + ".tmp"` and renamed into place, so a crashed save never leaves a
// half-written snapshot under the final name.
#ifndef RDFPARAMS_UTIL_FILE_IO_H_
#define RDFPARAMS_UTIL_FILE_IO_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "util/status.h"

namespace rdfparams::util {

/// Read-only random-access file. Thread-safe: pread has no shared cursor.
class RandomAccessFile {
 public:
  [[nodiscard]] static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Reads exactly out.size() bytes at `offset`; fails (kIOError) on EOF
  /// short reads — the storage layer always knows the exact length.
  [[nodiscard]] Status ReadExact(uint64_t offset, std::span<uint8_t> out) const;

 private:
  RandomAccessFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_;
  uint64_t size_;
  std::string path_;
};

/// Buffered append-only writer with write-to-temp + rename-on-finish.
class SequentialFileWriter {
 public:
  /// Opens `path + ".tmp"` for writing (truncating any leftover).
  [[nodiscard]] static Result<std::unique_ptr<SequentialFileWriter>> Create(
      const std::string& path);
  ~SequentialFileWriter();
  SequentialFileWriter(const SequentialFileWriter&) = delete;
  SequentialFileWriter& operator=(const SequentialFileWriter&) = delete;

  [[nodiscard]] Status Append(const void* data, size_t n);
  uint64_t bytes_written() const { return bytes_written_; }

  /// Flushes, fsyncs, closes, and renames the temp file onto the final
  /// path. No further Append is allowed. Without Finish, the destructor
  /// discards the temp file.
  [[nodiscard]] Status Finish();

 private:
  SequentialFileWriter(int fd, std::string path, std::string tmp_path)
      : fd_(fd), path_(std::move(path)), tmp_path_(std::move(tmp_path)) {}

  [[nodiscard]] Status FlushBuffer();

  int fd_;
  std::string path_;
  std::string tmp_path_;
  std::string buffer_;
  uint64_t bytes_written_ = 0;
  bool finished_ = false;
};

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_FILE_IO_H_

#include "util/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>

namespace rdfparams::util {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string data;
  in.seekg(0, std::ios::end);
  std::streampos size = in.tellg();
  if (size > 0) {
    // Regular file: one resize, one read.
    data.resize(static_cast<size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(data.data(), size);
    if (!in) return Status::IOError("short read on " + path);
    return data;
  }
  // Non-seekable input (pipe, process substitution) or a file whose
  // reported size is 0 despite having content (/proc): stream in blocks.
  in.clear();
  in.seekg(0, std::ios::beg);
  in.clear();
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    data.append(buf, static_cast<size_t>(in.gcount()));
  }
  if (in.bad()) return Status::IOError("read failed on " + path);
  return data;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n' || s[b] == '\f' || s[b] == '\v')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n' || s[e - 1] == '\f' || s[e - 1] == '\v')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string FormatDuration(double seconds) {
  if (!(seconds == seconds)) return "nan";
  double abs = std::fabs(seconds);
  // lint:allow(float-format): FormatDuration is the sanctioned wall-clock
  // diagnostic formatter; durations are excluded from byte-identity.
  if (abs >= 1.0) return StringPrintf("%.2f s", seconds);  // lint:allow(float-format): see above
  if (abs >= 1e-3) return StringPrintf("%.2f ms", seconds * 1e3);  // lint:allow(float-format): see above
  if (abs >= 1e-6) return StringPrintf("%.2f us", seconds * 1e6);  // lint:allow(float-format): see above
  return StringPrintf("%.0f ns", seconds * 1e9);  // lint:allow(float-format): see above
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string FormatSig(double v, int digits) {
  // lint:allow(float-format): FormatSig is the sanctioned significant-digit
  // diagnostic formatter the lint points callers at.
  return StringPrintf("%.*g", digits, v);  // lint:allow(float-format): see above
}

}  // namespace rdfparams::util

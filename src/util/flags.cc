#include "util/flags.h"

#include <cstdlib>

#include "util/string_util.h"

namespace rdfparams::util {

void FlagParser::AddInt64(const std::string& name, int64_t* target,
                          const std::string& help) {
  flags_.push_back(
      {name, Type::kInt64, target, help, std::to_string(*target)});
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_.push_back(
      {name, Type::kDouble, target, help, FormatSig(*target, 6)});
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back(
      {name, Type::kBool, target, help, *target ? "true" : "false"});
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_.push_back({name, Type::kString, target, help, *target});
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  // '-' and '_' are interchangeable: --max-candidates == --max_candidates.
  auto matches = [](const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      char ca = a[i] == '-' ? '_' : a[i];
      char cb = b[i] == '-' ? '_' : b[i];
      if (ca != cb) return false;
    }
    return true;
  };
  for (auto& f : flags_) {
    if (matches(f.name, name)) return &f;
  }
  return nullptr;
}

Status FlagParser::SetValue(Flag* flag, const std::string& value) {
  char* end = nullptr;
  switch (flag->type) {
    case Type::kInt64: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + flag->name +
                                       ": not an integer: '" + value + "'");
      }
      *static_cast<int64_t*>(flag->target) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + flag->name +
                                       ": not a number: '" + value + "'");
      }
      *static_cast<double*>(flag->target) = v;
      return Status::OK();
    }
    case Type::kBool: {
      std::string lower = ToLower(value);
      if (lower == "true" || lower == "1" || lower == "yes") {
        *static_cast<bool*>(flag->target) = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        *static_cast<bool*>(flag->target) = false;
      } else {
        return Status::InvalidArgument("flag --" + flag->name +
                                       ": not a boolean: '" + value + "'");
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag->target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        value = "true";  // bare --verbose means true
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " expects a value");
      }
    }
    RDFPARAMS_RETURN_NOT_OK(SetValue(flag, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& f : flags_) {
    out += StringPrintf("  --%-24s %s (default: %s)\n", f.name.c_str(),
                        f.help.c_str(), f.default_value.c_str());
  }
  return out;
}

}  // namespace rdfparams::util

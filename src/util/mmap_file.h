// MmapFile: a read-only memory mapping of a whole file.
//
// The zero-copy substrate for snapshot opens: the storage layer hands
// string_views into the mapping to consumers (dictionary arena, buffer
// pool borrowed frames) and keeps the mapping alive with a shared_ptr, so
// the views outlive any one opener scope. On platforms without mmap,
// Supported() is false and callers fall back to RandomAccessFile reads —
// the copied path is always available and byte-identical in output.
#ifndef RDFPARAMS_UTIL_MMAP_FILE_H_
#define RDFPARAMS_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rdfparams::util {

class MmapFile {
 public:
  /// True when this platform supports memory-mapped files.
  static bool Supported();

  /// Maps `path` read-only in its entirety. Fails with IOError when the
  /// file cannot be opened or mapped, and Unsupported when Supported()
  /// is false. A zero-length file maps to an empty view.
  [[nodiscard]] static Result<std::shared_ptr<MmapFile>> Map(
      const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

 private:
  MmapFile(uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_MMAP_FILE_H_

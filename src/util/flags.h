// Minimal command-line flag parsing for examples and bench harnesses.
//
//   util::FlagParser flags;
//   int64_t scale = 1;
//   flags.AddInt64("scale", &scale, "BSBM scale factor");
//   flags.Parse(argc, argv);   // accepts --scale=3 and --scale 3
#ifndef RDFPARAMS_UTIL_FLAGS_H_
#define RDFPARAMS_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace rdfparams::util {

/// Registry of typed flags; Parse() fills the bound variables.
class FlagParser {
 public:
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv, skipping argv[0] (the program name) — pass argc/argv
  /// straight through; offsetting them drops the first real argument.
  /// Unknown flags produce an error. `--help` sets help_requested() and
  /// is not an error. Positional arguments are collected into
  /// positional().
  [[nodiscard]] Status Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }
  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every registered flag with its default and help.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  [[nodiscard]] Status SetValue(Flag* flag, const std::string& value);
  Flag* Find(const std::string& name);

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_FLAGS_H_

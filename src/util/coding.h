// Little-endian binary coding helpers shared by the snapshot format and
// the workbench metadata blob. Append* grows a std::string; the Decoder
// consumes a byte view with explicit bounds checking (a truncated or
// corrupt stream yields a Status, never UB).
#ifndef RDFPARAMS_UTIL_CODING_H_
#define RDFPARAMS_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rdfparams::util {

inline void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 4);
}

inline void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 8);
}

/// u32 length prefix + raw bytes.
inline void AppendLengthPrefixed(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

inline uint32_t LoadU32(const void* p) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
}

inline uint64_t LoadU64(const void* p) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

inline void StoreU32(void* p, uint32_t v) {
  uint8_t* b = static_cast<uint8_t*>(p);
  for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
}

/// Bounds-checked sequential reader over a byte view.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  [[nodiscard]] Result<uint8_t> ReadU8() {
    RDFPARAMS_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] Result<uint32_t> ReadU32() {
    RDFPARAMS_RETURN_NOT_OK(Need(4));
    uint32_t v = LoadU32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] Result<uint64_t> ReadU64() {
    RDFPARAMS_RETURN_NOT_OK(Need(8));
    uint64_t v = LoadU64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }

  /// Reads a u32 length prefix followed by that many raw bytes.
  [[nodiscard]] Result<std::string> ReadLengthPrefixed() {
    RDFPARAMS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    RDFPARAMS_RETURN_NOT_OK(Need(len));
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

 private:
  [[nodiscard]] Status Need(size_t n) {
    if (data_.size() - pos_ < n) {
      return Status::OutOfRange("decode past end of buffer");
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_CODING_H_

// Fixed-size worker pool used by the parallel curation pipeline.
//
// Two usage modes:
//   * Submit(fn) + Wait(): fire-and-forget tasks with a completion barrier.
//   * ParallelFor(begin, end, body): blocks until body has covered the whole
//     index range. Work is handed out in contiguous chunks through a shared
//     atomic cursor, so scheduling is dynamic but every index is processed
//     exactly once; callers that write to disjoint, index-addressed slots
//     get results that are independent of thread count and interleaving.
//
// The calling thread participates in ParallelFor, so a pool of size N uses
// N+1 CPUs during a loop and `ThreadPool(0)` degrades to serial execution
// without special-casing at the call sites.
#ifndef RDFPARAMS_UTIL_THREAD_POOL_H_
#define RDFPARAMS_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdfparams::util {

/// Tracks the lowest failed index of a ParallelFor over [0, n).
///
/// Workers call ShouldSkip(i) before processing and Record(i) on failure;
/// indices above the current minimum are abandoned (their results would be
/// discarded anyway), while indices below it are never skipped — so the
/// minimum failing index is always processed and the reported error is
/// exactly the one a serial loop would have hit first.
class FirstFailureTracker {
 public:
  /// `none` is the "no failure" sentinel; use the loop bound n.
  explicit FirstFailureTracker(uint64_t none) : first_(none), none_(none) {}

  bool ShouldSkip(uint64_t i) const {
    return i > first_.load(std::memory_order_relaxed);
  }

  void Record(uint64_t i) {
    uint64_t cur = first_.load(std::memory_order_relaxed);
    while (i < cur && !first_.compare_exchange_weak(cur, i)) {
    }
  }

  bool any() const { return first() != none_; }
  uint64_t first() const { return first_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> first_;
  uint64_t none_;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is valid: all work runs on the
  /// calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task. Runs inline when the pool has no workers.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs body(lo, hi) over chunked sub-ranges of [begin, end) across the
  /// workers and the calling thread; returns when the range is exhausted.
  /// `chunk` 0 picks a size that yields ~8 chunks per participant.
  /// If the body throws, remaining chunks are abandoned and the first
  /// exception is rethrown here after all workers have stopped.
  void ParallelFor(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t, uint64_t)>& body,
                   uint64_t chunk = 0);

  /// Resolves a thread-count request: n >= 1 is taken as-is (clamped to
  /// kMaxThreads so a typo'd --threads cannot exhaust OS threads), n <= 0
  /// means "use the hardware concurrency". Always returns >= 1 (callers
  /// rely on this to size a pool as `ResolveThreads(n) - 1` workers +
  /// themselves).
  static size_t ResolveThreads(int requested);

  /// Upper bound on resolved thread counts. Deliberate oversubscription
  /// (e.g. determinism tests running 8 threads on 1 core) stays possible.
  static constexpr size_t kMaxThreads = 512;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: queue or stop
  std::condition_variable idle_cv_;   // signals Wait(): everything drained
  size_t in_flight_ = 0;              // dequeued but not yet finished
  bool stop_ = false;
};

/// Parallel sort over [begin, end) on `pool`: fixed chunk boundaries,
/// chunk-local std::sort, then log2(chunks) rounds of pairwise
/// std::inplace_merge. The chunk boundaries depend only on the input size
/// (never on scheduling), so for comparators under which equal elements
/// are indistinguishable — e.g. sorting plain value triples — the result
/// is byte-identical to a serial std::sort at every thread count.
///
/// Must be called from the pool's owner thread with no other work
/// outstanding (it runs ParallelFor rounds; calling it from inside a
/// Submit() task would deadlock in Wait()). `pool == nullptr` or an
/// empty pool degrades to std::sort.
template <typename RandomIt, typename Compare>
void PoolSort(ThreadPool* pool, RandomIt begin, RandomIt end, Compare comp) {
  const uint64_t n = static_cast<uint64_t>(end - begin);
  // Below this many elements per chunk the merge rounds cost more than
  // they save; fall through to the serial sort.
  constexpr uint64_t kMinChunk = 8 * 1024;
  if (pool == nullptr || pool->size() == 0 || n < 2 * kMinChunk) {
    std::sort(begin, end, comp);
    return;
  }
  // Power-of-two chunk count so every merge round pairs whole chunks.
  const uint64_t participants = static_cast<uint64_t>(pool->size()) + 1;
  uint64_t chunks = 1;
  while (chunks < 2 * participants && n / (2 * chunks) >= kMinChunk) {
    chunks *= 2;
  }
  if (chunks == 1) {
    std::sort(begin, end, comp);
    return;
  }
  std::vector<uint64_t> bounds(chunks + 1);
  for (uint64_t i = 0; i <= chunks; ++i) bounds[i] = n / chunks * i;
  bounds[chunks] = n;
  pool->ParallelFor(
      0, chunks,
      [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          std::sort(begin + static_cast<int64_t>(bounds[i]),
                    begin + static_cast<int64_t>(bounds[i + 1]), comp);
        }
      },
      1);
  for (uint64_t width = 1; width < chunks; width *= 2) {
    const uint64_t pairs = chunks / (2 * width);
    pool->ParallelFor(
        0, pairs,
        [&](uint64_t lo, uint64_t hi) {
          for (uint64_t p = lo; p < hi; ++p) {
            const uint64_t b = p * 2 * width;
            std::inplace_merge(
                begin + static_cast<int64_t>(bounds[b]),
                begin + static_cast<int64_t>(bounds[b + width]),
                begin + static_cast<int64_t>(bounds[b + 2 * width]), comp);
          }
        },
        1);
  }
}

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_THREAD_POOL_H_

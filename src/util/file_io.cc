#include "util/file_io.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace rdfparams::util {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

constexpr size_t kWriteBufferBytes = 1 << 20;

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Errno("stat", path);
    ::close(fd);
    return err;
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(fd, static_cast<uint64_t>(st.st_size), path));
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::ReadExact(uint64_t offset,
                                   std::span<uint8_t> out) const {
  size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " in " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::unique_ptr<SequentialFileWriter>> SequentialFileWriter::Create(
    const std::string& path) {
  std::string tmp_path = path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("open", tmp_path);
  auto writer = std::unique_ptr<SequentialFileWriter>(
      new SequentialFileWriter(fd, path, std::move(tmp_path)));
  writer->buffer_.reserve(kWriteBufferBytes);
  return writer;
}

SequentialFileWriter::~SequentialFileWriter() {
  if (fd_ >= 0) ::close(fd_);
  if (!finished_) ::unlink(tmp_path_.c_str());
}

Status SequentialFileWriter::FlushBuffer() {
  size_t done = 0;
  while (done < buffer_.size()) {
    ssize_t n = ::write(fd_, buffer_.data() + done, buffer_.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", tmp_path_);
    }
    done += static_cast<size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

Status SequentialFileWriter::Append(const void* data, size_t n) {
  RDFPARAMS_DCHECK(!finished_);
  buffer_.append(static_cast<const char*>(data), n);
  bytes_written_ += n;
  if (buffer_.size() >= kWriteBufferBytes) return FlushBuffer();
  return Status::OK();
}

Status SequentialFileWriter::Finish() {
  RDFPARAMS_DCHECK(!finished_);
  RDFPARAMS_RETURN_NOT_OK(FlushBuffer());
  if (::fsync(fd_) != 0) return Errno("fsync", tmp_path_);
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Errno("close", tmp_path_);
  }
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return Errno("rename", tmp_path_);
  }
  finished_ = true;
  return Status::OK();
}

}  // namespace rdfparams::util

// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every snapshot page and the whole-file footer.
//
// Software slice-by-8 table implementation: no hardware dependency, ~1-2
// GB/s, deterministic on every platform. The incremental interface lets
// the snapshot writer fold an arbitrary byte stream without buffering it.
#ifndef RDFPARAMS_UTIL_CRC32_H_
#define RDFPARAMS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rdfparams::util {

/// Extends a running CRC32 with `n` bytes. Start from 0 (or a previous
/// return value to continue a stream).
uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32 of a buffer.
inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Extend(0, data, n);
}

/// CRC32 of a buffer mixed with a caller-provided seed. Used for snapshot
/// pages: seeding with the page number makes a page copied to the wrong
/// offset fail its checksum even though its bytes are internally intact.
uint32_t Crc32Seeded(uint64_t seed, const void* data, size_t n);

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_CRC32_H_

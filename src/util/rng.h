// Deterministic random number generation for data generators and samplers.
//
// All randomness in the project flows through Rng so that every generator,
// sampler and experiment is reproducible given a seed. The core engine is
// PCG64 (O'Neill), small, fast, and statistically solid.
#ifndef RDFPARAMS_UTIL_RNG_H_
#define RDFPARAMS_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rdfparams::util {

/// PCG64 (XSL-RR variant) pseudo random generator.
///
/// Satisfies UniformRandomBitGenerator, so it can be used with <random>
/// distributions, but the project mostly uses the convenience methods below.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
               uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (p clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached spare value).
  double NextGaussian();

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  /// Fork a child generator with an independent stream, derived
  /// deterministically from this generator's state and `salt`.
  /// Forking does not perturb the parent sequence.
  Rng Fork(uint64_t salt) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_hi_, state_lo_;  // 128-bit LCG state
  uint64_t inc_hi_, inc_lo_;      // stream (must be odd in the low word)
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// Zipf-distributed integers over {1, ..., n} with exponent s, using
/// rejection-inversion (Hörmann & Derflinger). Mean work is O(1) per draw.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  /// Draws a value in [1, n]; rank 1 is the most frequent.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_, h_n_, c_;
};

/// O(1) sampling from an arbitrary discrete distribution (Walker/Vose alias
/// method). Used for, e.g., per-country first-name distributions.
class AliasTable {
 public:
  /// Weights need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Returns an index in [0, size()).
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

  /// Probability mass assigned to index i (normalized).
  double probability(size_t i) const { return norm_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
  std::vector<double> norm_;
};

/// Deterministic 64-bit seed derived from a string label, for wiring
/// independent generator components ("persons", "posts", ...).
uint64_t SeedFromLabel(uint64_t base_seed, const std::string& label);

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_RNG_H_

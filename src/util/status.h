// Status / Result error handling, in the style of Arrow / RocksDB.
//
// Library code that can fail for data-dependent reasons (parsers, loaders)
// returns Status or Result<T> instead of throwing. Programming errors use
// assertions (RDFPARAMS_DCHECK).
#ifndef RDFPARAMS_UTIL_STATUS_H_
#define RDFPARAMS_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

// Debug-only invariant check. The project convention (enforced by
// tools/lint_invariants.py) is that library code never calls raw assert();
// every programming-error check goes through this macro so debug and release
// builds differ in exactly one documented way.
#ifndef NDEBUG
#define RDFPARAMS_DCHECK(cond) assert(cond)
#else
#define RDFPARAMS_DCHECK(cond) ((void)0)
#endif

namespace rdfparams {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kNotFound = 3,
  kOutOfRange = 4,
  kUnsupported = 5,
  kInternal = 6,
  kIOError = 7,
  kUnavailable = 8,
  kDataLoss = 9,
};

/// Returns a human-readable name for a StatusCode ("OK", "ParseError", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kDataLoss: return "DataLoss";
  }
  return "Unknown";
}

/// Lightweight success/error carrier. Copyable; the OK status stores nothing.
///
/// [[nodiscard]] at class level: any call that returns a Status and ignores
/// it is a compile error (-Werror=unused-result). Intentional discards must
/// go through util::IgnoreStatus(status, "reason") so they stay greppable.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Admission-control rejections (server at capacity); retryable.
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Checksum mismatches and corrupt on-disk images (storage layer).
  [[nodiscard]] static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ParseError: unexpected token at line 3"
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of T or an error Status. Modeled after arrow::Result.
///
/// [[nodiscard]] at class level, like Status: dropping a Result silently
/// drops the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT implicit
  Result(Status status) : status_(std::move(status)) { // NOLINT implicit
    RDFPARAMS_DCHECK(!status_.ok() &&
                     "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value; undefined behaviour if !ok() (asserts in debug).
  const T& value() const& {
    RDFPARAMS_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    RDFPARAMS_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    RDFPARAMS_DCHECK(ok());
    return std::move(*value_);
  }

  /// Returns a copy of the value, or `fallback` when this holds an error.
  /// Each branch returns its own local/member directly, so the success path
  /// copies exactly once and the fallback path moves.
  T value_or(T fallback) const& {
    if (ok()) return *value_;
    return fallback;
  }
  /// Rvalue overload: moves the value out of the optional on the success
  /// path instead of copying it (std::move(res).value_or(...)).
  T value_or(T fallback) && {
    if (ok()) return std::move(*value_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

#define RDFPARAMS_RETURN_NOT_OK(expr)           \
  do {                                          \
    ::rdfparams::Status _st = (expr);           \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define RDFPARAMS_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                    \
  if (!var.ok()) return var.status();                    \
  lhs = std::move(var).value();

#define RDFPARAMS_CONCAT_INNER(a, b) a##b
#define RDFPARAMS_CONCAT(a, b) RDFPARAMS_CONCAT_INNER(a, b)

/// RDFPARAMS_ASSIGN_OR_RETURN(auto x, SomeResultReturningCall());
#define RDFPARAMS_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  RDFPARAMS_ASSIGN_OR_RETURN_IMPL(                                           \
      RDFPARAMS_CONCAT(_result_, __LINE__), lhs, rexpr)

namespace util {

/// The one sanctioned way to drop a Status on the floor. Every intentional
/// discard routes through here with a human-readable reason, so
/// `grep -rn IgnoreStatus` enumerates the complete audit trail and the
/// [[nodiscard]] build stays warning-clean without ad-hoc (void) casts.
inline void IgnoreStatus(const Status& status, const char* reason) {
  (void)status;
  (void)reason;
}

/// Result<T> counterpart: discards the value and any error it carries.
template <typename T>
inline void IgnoreStatus(const Result<T>& result, const char* reason) {
  (void)result;
  (void)reason;
}

}  // namespace util

}  // namespace rdfparams

#endif  // RDFPARAMS_UTIL_STATUS_H_

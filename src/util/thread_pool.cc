#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace rdfparams::util {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  try {
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // std::thread can throw on resource exhaustion; join what was spawned
    // so the half-built pool fails with an exception, not std::terminate.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, uint64_t)>& body, uint64_t chunk) {
  if (end <= begin) return;
  uint64_t n = end - begin;
  size_t participants = size() + 1;
  if (size() == 0 || n == 1) {
    body(begin, end);
    return;
  }
  if (chunk == 0) {
    chunk = std::max<uint64_t>(1, n / (8 * participants));
  }

  // Shared cursor; every participant pulls the next chunk until exhausted.
  // Exceptions escaping the body are captured (first one wins), the cursor
  // is pushed past the end so remaining chunks are abandoned, and the
  // exception is rethrown on the calling thread once every worker has
  // stopped — matching what a serial loop would do.
  struct SharedState {
    std::atomic<uint64_t> cursor;
    std::mutex err_mu;
    std::exception_ptr err;
    explicit SharedState(uint64_t begin) : cursor(begin) {}
  };
  auto state = std::make_shared<SharedState>(begin);
  auto drain = [state, end, chunk, &body] {
    try {
      for (;;) {
        uint64_t lo = state->cursor.fetch_add(chunk,
                                              std::memory_order_relaxed);
        if (lo >= end) return;
        body(lo, std::min(end, lo + chunk));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->err_mu);
      if (!state->err) state->err = std::current_exception();
      state->cursor.store(end, std::memory_order_relaxed);
    }
  };
  for (size_t i = 0; i < size(); ++i) Submit(drain);
  drain();  // the calling thread pulls chunks too; never throws
  Wait();
  if (state->err) std::rethrow_exception(state->err);
}

size_t ThreadPool::ResolveThreads(int requested) {
  if (requested >= 1) {
    return std::min<size_t>(static_cast<size_t>(requested), kMaxThreads);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<size_t>(hw, kMaxThreads);
}

}  // namespace rdfparams::util

// 64-bit mixing and combining helpers used for plan fingerprints,
// dictionary tables and seed derivation.
#ifndef RDFPARAMS_UTIL_HASH_H_
#define RDFPARAMS_UTIL_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace rdfparams::util {

/// SplitMix64 finalizer: a fast, well-mixed 64 -> 64 bit hash.
inline uint64_t Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combiner (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Hash64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

/// FNV-1a over bytes; stable across platforms, used for string keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_HASH_H_

#include "util/mmap_file.h"

#if defined(__unix__) || defined(__APPLE__)
#define RDFPARAMS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace rdfparams::util {

#ifdef RDFPARAMS_HAVE_MMAP

bool MmapFile::Supported() { return true; }

Result<std::shared_ptr<MmapFile>> MmapFile::Map(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(path + ": open failed: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s =
        Status::IOError(path + ": fstat failed: " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  size_t size = static_cast<size_t>(st.st_size);
  uint8_t* data = nullptr;
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status s =
          Status::IOError(path + ": mmap failed: " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    data = static_cast<uint8_t*>(addr);
  }
  ::close(fd);  // the mapping survives the descriptor
  return std::shared_ptr<MmapFile>(new MmapFile(data, size));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

#else  // !RDFPARAMS_HAVE_MMAP

bool MmapFile::Supported() { return false; }

Result<std::shared_ptr<MmapFile>> MmapFile::Map(const std::string& path) {
  return Status::Unsupported(path +
                             ": memory mapping unsupported on this platform");
}

MmapFile::~MmapFile() = default;

#endif  // RDFPARAMS_HAVE_MMAP

}  // namespace rdfparams::util

#include "util/rng.h"

#include <cmath>

#include "util/hash.h"
#include "util/status.h"

namespace rdfparams::util {

namespace {

// 128-bit multiply-accumulate helpers for the PCG64 LCG step.
// state = state * kMul + inc (mod 2^128).
constexpr uint64_t kMulHi = 2549297995355413924ULL;
constexpr uint64_t kMulLo = 4865540595714422341ULL;

inline void Mul128(uint64_t a_hi, uint64_t a_lo, uint64_t b_hi, uint64_t b_lo,
                   uint64_t* out_hi, uint64_t* out_lo) {
#if defined(__SIZEOF_INT128__)
  unsigned __int128 a =
      (static_cast<unsigned __int128>(a_hi) << 64) | a_lo;
  unsigned __int128 b =
      (static_cast<unsigned __int128>(b_hi) << 64) | b_lo;
  unsigned __int128 r = a * b;
  *out_hi = static_cast<uint64_t>(r >> 64);
  *out_lo = static_cast<uint64_t>(r);
#else
#error "rdfparams requires __int128 support"
#endif
}

inline void Add128(uint64_t a_hi, uint64_t a_lo, uint64_t b_hi, uint64_t b_lo,
                   uint64_t* out_hi, uint64_t* out_lo) {
  uint64_t lo = a_lo + b_lo;
  uint64_t carry = lo < a_lo ? 1 : 0;
  *out_lo = lo;
  *out_hi = a_hi + b_hi + carry;
}

inline uint64_t RotR64(uint64_t v, unsigned rot) {
  return (v >> rot) | (v << ((-rot) & 63));
}

}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream) {
  // PCG initialization: the stream selector must be odd.
  inc_hi_ = Hash64(stream ^ 0x5851f42d4c957f2dULL);
  inc_lo_ = (stream << 1u) | 1u;
  state_hi_ = 0;
  state_lo_ = 0;
  Next64();
  // Mix the seed into the state.
  uint64_t s_hi, s_lo;
  Add128(state_hi_, state_lo_, Hash64(seed ^ 0x9e3779b97f4a7c15ULL), seed,
         &s_hi, &s_lo);
  state_hi_ = s_hi;
  state_lo_ = s_lo;
  Next64();
}

uint64_t Rng::Next64() {
  // LCG step.
  uint64_t mul_hi, mul_lo;
  Mul128(state_hi_, state_lo_, kMulHi, kMulLo, &mul_hi, &mul_lo);
  Add128(mul_hi, mul_lo, inc_hi_, inc_lo_, &state_hi_, &state_lo_);
  // XSL-RR output function.
  uint64_t xored = state_hi_ ^ state_lo_;
  unsigned rot = static_cast<unsigned>(state_hi_ >> 58u);
  return RotR64(xored, rot);
}

uint64_t Rng::Uniform(uint64_t bound) {
  RDFPARAMS_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  RDFPARAMS_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double lambda) {
  RDFPARAMS_DCHECK(lambda > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

Rng Rng::Fork(uint64_t salt) const {
  uint64_t seed = Hash64(state_hi_ ^ Hash64(salt));
  uint64_t stream = Hash64(state_lo_ ^ (salt * 0x9e3779b97f4a7c15ULL));
  return Rng(seed, stream);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  RDFPARAMS_DCHECK(k <= n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(Uniform(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: Floyd's algorithm.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  for (size_t i = n - k; i < n; ++i) {
    size_t t = static_cast<size_t>(Uniform(i + 1));
    bool dup = false;
    for (size_t c : chosen) {
      if (c == t) {
        dup = true;
        break;
      }
    }
    chosen.push_back(dup ? i : t);
  }
  Shuffle(&chosen);
  return chosen;
}

// ---------------------------------------------------------------------------
// ZipfDistribution
// ---------------------------------------------------------------------------

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  RDFPARAMS_DCHECK(n >= 1);
  RDFPARAMS_DCHECK(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  c_ = H(0.5);  // normalizing offset
}

double ZipfDistribution::H(double x) const {
  // H(x) = integral of x^-s; handles s == 1 via log.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  if (n_ == 1) return 1;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996).
  while (true) {
    double u = h_n_ + rng->NextDouble() * (c_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= h_x1_) return k;
    if (u >= H(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

// ---------------------------------------------------------------------------
// AliasTable
// ---------------------------------------------------------------------------

AliasTable::AliasTable(const std::vector<double>& weights) {
  size_t n = weights.size();
  RDFPARAMS_DCHECK(n > 0);
  double total = 0;
  for (double w : weights) {
    RDFPARAMS_DCHECK(w >= 0);
    total += w;
  }
  RDFPARAMS_DCHECK(total > 0);
  norm_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / total;
    scaled[i] = norm_[i] * static_cast<double>(n);
  }
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: every remaining bucket keeps probability 1.
  for (size_t l : large) prob_[l] = 1.0;
  for (size_t s : small) prob_[s] = 1.0;
}

size_t AliasTable::Sample(Rng* rng) const {
  size_t i = static_cast<size_t>(rng->Uniform(prob_.size()));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

uint64_t SeedFromLabel(uint64_t base_seed, const std::string& label) {
  uint64_t h = Hash64(base_seed);
  for (char ch : label) {
    h = Hash64(h ^ static_cast<uint64_t>(static_cast<unsigned char>(ch)));
  }
  return h;
}

}  // namespace rdfparams::util

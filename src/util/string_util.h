// Small string helpers shared by the parsers and report printers.
#ifndef RDFPARAMS_UTIL_STRING_UTIL_H_
#define RDFPARAMS_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rdfparams::util {

/// Reads a whole file into one string (single buffer, no intermediate
/// stream copy — the file is stat'ed, the string resized once, and the
/// bytes read directly into it). Binary-safe; used by the RDF loaders.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

/// Split on a single separator character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Join with a separator string.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters only.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-friendly duration: "59 ms", "3.61 s", "4.2 us".
std::string FormatDuration(double seconds);

/// Human-friendly count: "1234" -> "1,234".
std::string FormatCount(uint64_t n);

/// Formats a double with `digits` significant digits.
std::string FormatSig(double v, int digits);

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_STRING_UTIL_H_

#include "util/crc32.h"

#include <array>

namespace rdfparams::util {

namespace {

// Eight tables: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k extra zero bytes, which is what lets the hot
// loop fold 8 input bytes per iteration.
struct Crc32Tables {
  uint32_t t[8][256];
};

constexpr uint32_t kPoly = 0xEDB88320u;

Crc32Tables BuildTables() {
  Crc32Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

const Crc32Tables& Tables() {
  static const Crc32Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32Seeded(uint64_t seed, const void* data, size_t n) {
  uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<uint8_t>(seed >> (8 * i));
  }
  return Crc32Extend(Crc32Extend(0, seed_bytes, sizeof(seed_bytes)), data, n);
}

}  // namespace rdfparams::util

// Wall-clock timing used by the workload runner and benches.
#ifndef RDFPARAMS_UTIL_TIMER_H_
#define RDFPARAMS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace rdfparams::util {

/// Monotonic stopwatch. Started on construction; Restart() re-arms it.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_TIMER_H_

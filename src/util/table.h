// Aligned text table printer for bench output (paper-style tables).
#ifndef RDFPARAMS_UTIL_TABLE_H_
#define RDFPARAMS_UTIL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace rdfparams::util {

/// Collects rows of strings and renders them as an aligned ASCII table or
/// as CSV. Column 0 is left-aligned; the rest are right-aligned (numeric
/// convention).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; it may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

  /// Renders as an aligned table with a header separator.
  std::string ToText() const;

  /// Renders as RFC-4180-ish CSV (fields with comma/quote/newline quoted).
  std::string ToCsv() const;

  /// Convenience: write ToText() to a stream with a trailing newline.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_TABLE_H_

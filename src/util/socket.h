// Thin POSIX TCP helpers for the workload server: an RAII fd owner plus
// loopback listen/connect and EINTR-safe full-buffer read/write loops.
//
// Everything here is transport only — framing and request semantics live
// in src/server/wire.h. Functions return Status/Result (the repo-wide
// error convention) instead of errno side channels.
#ifndef RDFPARAMS_UTIL_SOCKET_H_
#define RDFPARAMS_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace rdfparams::util {

/// Move-only owner of a file descriptor; closes on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Installs SIG_IGN for SIGPIPE, process-wide and idempotent. A server
/// writing a response to a client that already closed its socket must get
/// EPIPE from write() — the default SIGPIPE disposition would kill the
/// whole daemon instead. Called by server::Server::Start(); safe to call
/// from tests and clients too.
void IgnoreSigpipe();

/// Creates a listening TCP socket bound to `host`:`port` (IPv4 dotted
/// quad, e.g. "127.0.0.1"). `port` 0 asks the kernel for an ephemeral
/// port; the actually bound port is written to `*bound_port` either way.
[[nodiscard]] Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port);

/// Blocking connect to `host`:`port`.
[[nodiscard]] Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Reads up to `n` bytes, retrying on EINTR. Returns the byte count;
/// 0 means orderly EOF.
[[nodiscard]] Result<size_t> ReadSome(int fd, void* buf, size_t n);

/// Writes exactly `n` bytes, retrying on EINTR and short writes. With
/// SIGPIPE ignored, a vanished peer surfaces as an IOError (EPIPE /
/// ECONNRESET) instead of a signal.
[[nodiscard]] Status WriteFull(int fd, const void* data, size_t n);

/// Reads exactly `n` bytes; IOError on EOF before `n` bytes arrived.
[[nodiscard]] Status ReadFull(int fd, void* buf, size_t n);

/// Half-close helpers (shutdown(2)); used for graceful teardown and the
/// half-closed-socket tests. Ignore errors on already-dead sockets.
void ShutdownRead(int fd);
void ShutdownWrite(int fd);
void ShutdownBoth(int fd);

}  // namespace rdfparams::util

#endif  // RDFPARAMS_UTIL_SOCKET_H_

// One-sample Kolmogorov-Smirnov test against a fitted normal distribution.
//
// The paper (E1) reports "the Kolmogorov-Smirnov test that measures the
// distance between the runtime distribution of BSBM-BI Query 2 and the
// normal distribution results in the distance of 0.89 (p-value 1e-21)".
// This module reproduces that measurement: KS distance D_n between the
// empirical CDF and N(mean, stddev) fitted to the sample, and the
// asymptotic Kolmogorov p-value.
#ifndef RDFPARAMS_STATS_KS_TEST_H_
#define RDFPARAMS_STATS_KS_TEST_H_

#include <cstddef>
#include <vector>

namespace rdfparams::stats {

struct KsResult {
  double distance = 0;   ///< D_n = sup |F_emp - F_ref| in [0, 1]
  double p_value = 1;    ///< asymptotic Kolmogorov p-value
  size_t n = 0;
};

/// Standard normal CDF.
double NormalCdf(double z);

/// CDF of N(mean, stddev) at x. stddev <= 0 degenerates to a step.
double NormalCdf(double x, double mean, double stddev);

/// Asymptotic Kolmogorov distribution complement:
/// p = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2),
/// lambda = (sqrt(n) + 0.12 + 0.11/sqrt(n)) * D_n   (Stephens' correction).
double KolmogorovPValue(double distance, size_t n);

/// KS distance of the sample against an arbitrary reference CDF.
template <typename Cdf>
double KsDistanceAgainst(std::vector<double> xs, const Cdf& cdf);

/// One-sample KS test of xs against the normal fitted to xs itself
/// (mean, stddev estimated from the data, as done in the paper).
KsResult KsTestAgainstFittedNormal(const std::vector<double>& xs);

/// One-sample KS test of xs against N(mean, stddev).
KsResult KsTestAgainstNormal(const std::vector<double>& xs, double mean,
                             double stddev);

/// Two-sample KS distance between empirical CDFs (used by stability
/// analysis to compare parameter groups, property P2).
double KsTwoSampleDistance(std::vector<double> a, std::vector<double> b);

}  // namespace rdfparams::stats

#endif  // RDFPARAMS_STATS_KS_TEST_H_

#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"
#include "util/string_util.h"

namespace rdfparams::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double PercentileSorted(const std::vector<double>& sorted, double p) {
  RDFPARAMS_DCHECK(!sorted.empty());
  RDFPARAMS_DCHECK(p >= 0.0 && p <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  double h = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(h));
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

Summary Summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.mean = Mean(xs);
  s.variance = Variance(xs);
  s.stddev = std::sqrt(s.variance);
  s.median = PercentileSorted(xs, 0.5);
  s.q10 = PercentileSorted(xs, 0.10);
  s.q90 = PercentileSorted(xs, 0.90);
  s.q95 = PercentileSorted(xs, 0.95);
  s.q99 = PercentileSorted(xs, 0.99);
  s.cv = s.mean != 0.0 ? s.stddev / s.mean : 0.0;
  if (xs.size() >= 3 && s.stddev > 0) {
    double n = static_cast<double>(xs.size());
    double acc = 0;
    for (double x : xs) {
      double d = (x - s.mean) / s.stddev;
      acc += d * d * d;
    }
    s.skewness = acc * n / ((n - 1) * (n - 2));
  }
  return s;
}

double MidRangeMassFraction(std::vector<double> xs, double lo_q, double hi_q) {
  if (xs.size() < 4) return 0.0;
  std::sort(xs.begin(), xs.end());
  double lo = PercentileSorted(xs, lo_q);
  double hi = PercentileSorted(xs, hi_q);
  // Middle band of the *value* range between the two percentile anchors:
  // [lo + 1/3 span, hi - 1/3 span]. Mass here indicates a filled-in middle.
  double span = hi - lo;
  if (span <= 0) return 1.0;  // degenerate: everything identical
  double band_lo = lo + span / 3.0;
  double band_hi = hi - span / 3.0;
  size_t in_band = 0;
  for (double x : xs) {
    if (x >= band_lo && x <= band_hi) ++in_band;
  }
  return static_cast<double>(in_band) / static_cast<double>(xs.size());
}

double RelativeSpread(const std::vector<double>& group_values) {
  if (group_values.empty()) return 0.0;
  double lo = group_values[0], hi = group_values[0];
  for (double v : group_values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == 0.0) return hi == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return (hi - lo) / lo;
}

std::string ToString(const Summary& s) {
  return util::StringPrintf(
      "n=%zu min=%s q10=%s median=%s mean=%s q90=%s q95=%s max=%s var=%s",
      s.count, util::FormatSig(s.min, 4).c_str(),
      util::FormatSig(s.q10, 4).c_str(), util::FormatSig(s.median, 4).c_str(),
      util::FormatSig(s.mean, 4).c_str(), util::FormatSig(s.q90, 4).c_str(),
      util::FormatSig(s.q95, 4).c_str(), util::FormatSig(s.max, 4).c_str(),
      util::FormatSig(s.variance, 4).c_str());
}

}  // namespace rdfparams::stats

#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rdfparams::stats {

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double n = static_cast<double>(xs.size());
  double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  double my = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(const std::vector<double>& xs) {
  size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  return PearsonCorrelation(FractionalRanks(xs), FractionalRanks(ys));
}

}  // namespace rdfparams::stats

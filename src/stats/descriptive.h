// Descriptive statistics for runtime distributions: mean, variance,
// percentiles, and the paper's aggregate rows (q10 / median / q90 / avg).
#ifndef RDFPARAMS_STATS_DESCRIPTIVE_H_
#define RDFPARAMS_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rdfparams::stats {

/// Summary of a sample. All durations/values are in the caller's unit.
struct Summary {
  size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double variance = 0;  // unbiased (n-1) sample variance
  double stddev = 0;
  double median = 0;
  double q10 = 0;
  double q90 = 0;
  double q95 = 0;
  double q99 = 0;
  /// Coefficient of variation: stddev / mean (0 when mean == 0).
  double cv = 0;
  /// Skewness (adjusted Fisher-Pearson); 0 for n < 3.
  double skewness = 0;
};

/// Sample mean; 0 for an empty sample.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance; 0 for n < 2.
double Variance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

/// Linear-interpolation percentile (type 7, the R/NumPy default).
/// p in [0, 1]. Asserts on an empty sample.
double Percentile(std::vector<double> xs, double p);

/// Percentile for an already ascending-sorted sample (no copy).
double PercentileSorted(const std::vector<double>& sorted, double p);

/// Full summary in one pass over a copy of the data.
Summary Summarize(std::vector<double> xs);

/// Midhinge-based "bimodality" check used in E3 analysis: the fraction of
/// points whose value lies within (lo_q, hi_q) percentile band of the range
/// between those percentiles. A clustered distribution (fast group + slow
/// group, nothing in between) yields a near-zero mid-mass.
double MidRangeMassFraction(std::vector<double> xs, double lo_q, double hi_q);

/// Relative spread across group aggregates: (max - min) / min.
/// Used for E2: "deviation in reported average runtime up to 40%".
double RelativeSpread(const std::vector<double>& group_values);

/// Renders a Summary as a one-line string for logs.
std::string ToString(const Summary& s);

}  // namespace rdfparams::stats

#endif  // RDFPARAMS_STATS_DESCRIPTIVE_H_

// Pearson and Spearman correlation, used to reproduce the paper's claim
// that C_out correlates with runtime at ~85% (Pearson).
#ifndef RDFPARAMS_STATS_CORRELATION_H_
#define RDFPARAMS_STATS_CORRELATION_H_

#include <vector>

namespace rdfparams::stats {

/// Pearson product-moment correlation of two equal-length samples.
/// Returns 0 when either sample is constant or sizes mismatch/empty.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Fractional ranks with ties averaged; helper exposed for tests.
std::vector<double> FractionalRanks(const std::vector<double>& xs);

}  // namespace rdfparams::stats

#endif  // RDFPARAMS_STATS_CORRELATION_H_

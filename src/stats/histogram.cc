#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"
#include "util/string_util.h"

namespace rdfparams::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  RDFPARAMS_DCHECK(edges_.size() >= 2);
  counts_.assign(edges_.size() - 1, 0);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : Histogram([&] {
        RDFPARAMS_DCHECK(bins > 0);
        RDFPARAMS_DCHECK(hi > lo);
        std::vector<double> edges(bins + 1);
        for (size_t i = 0; i <= bins; ++i) {
          edges[i] = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(bins);
        }
        return edges;
      }()) {}

Histogram Histogram::MakeLog(double lo, double hi, size_t bins) {
  RDFPARAMS_DCHECK(lo > 0 && hi > lo && bins > 0);
  std::vector<double> edges(bins + 1);
  double llo = std::log(lo), lhi = std::log(hi);
  for (size_t i = 0; i <= bins; ++i) {
    edges[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                  static_cast<double>(bins));
  }
  return Histogram(std::move(edges));
}

void Histogram::Add(double x) {
  ++total_;
  if (x < edges_.front()) {
    ++underflow_;
    return;
  }
  if (x >= edges_.back()) {
    ++overflow_;
    return;
  }
  // Binary search for the bucket.
  size_t idx = static_cast<size_t>(
      std::upper_bound(edges_.begin(), edges_.end(), x) - edges_.begin());
  RDFPARAMS_DCHECK(idx >= 1 && idx <= counts_.size());
  ++counts_[idx - 1];
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

size_t Histogram::ModeBin() const {
  size_t best = 0;
  for (size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[best]) best = i;
  }
  return best;
}

size_t Histogram::CountModes() const {
  if (counts_.empty()) return 0;
  // Light smoothing: 3-point moving sum, then count strict local maxima of
  // non-zero mass separated by at least one emptier bin.
  std::vector<double> s(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    double acc = static_cast<double>(counts_[i]);
    if (i > 0) acc += static_cast<double>(counts_[i - 1]);
    if (i + 1 < counts_.size()) acc += static_cast<double>(counts_[i + 1]);
    s[i] = acc;
  }
  size_t modes = 0;
  bool rising = true;
  double peak = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (rising) {
      peak = std::max(peak, s[i]);
      bool falls = (i + 1 == s.size()) || s[i + 1] < s[i];
      if (falls && s[i] > 0 && s[i] == peak) {
        ++modes;
        rising = false;
      }
    } else {
      // Wait for a clear valley (below half the last peak) before counting
      // another mode; avoids counting jitter.
      if (s[i] < peak / 2.0) {
        rising = true;
        peak = 0;
      }
    }
  }
  return modes;
}

std::string Histogram::Sparkline() const {
  static const char kRamp[] = " .:-=+*#%@";
  uint64_t max_count = 0;
  for (uint64_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  out.reserve(counts_.size());
  for (uint64_t c : counts_) {
    if (max_count == 0) {
      out.push_back(' ');
      continue;
    }
    size_t level =
        c == 0 ? 0
               : 1 + static_cast<size_t>(static_cast<double>(c) /
                                         static_cast<double>(max_count) * 8.0);
    level = std::min<size_t>(level, 9);
    out.push_back(kRamp[level]);
  }
  return out;
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out += util::StringPrintf("[%12s, %12s)  %8llu\n",
                              util::FormatSig(edges_[i], 4).c_str(),
                              util::FormatSig(edges_[i + 1], 4).c_str(),
                              static_cast<unsigned long long>(counts_[i]));
  }
  if (underflow_ > 0) {
    out += util::StringPrintf("underflow  %llu\n",
                              static_cast<unsigned long long>(underflow_));
  }
  if (overflow_ > 0) {
    out += util::StringPrintf("overflow   %llu\n",
                              static_cast<unsigned long long>(overflow_));
  }
  return out;
}

}  // namespace rdfparams::stats

// Fixed-bin and log-scale histograms for runtime distributions; also renders
// a small ASCII sparkline used in bench output to show bimodality (E3).
#ifndef RDFPARAMS_STATS_HISTOGRAM_H_
#define RDFPARAMS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rdfparams::stats {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  /// Logarithmic bucket edges between lo and hi (both > 0).
  static Histogram MakeLog(double lo, double hi, size_t bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t num_bins() const { return counts_.size(); }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }

  /// Lower edge of bin i; bin_edge(num_bins()) is the upper bound.
  double bin_edge(size_t i) const { return edges_[i]; }

  /// Index of the fullest bin (0 if empty).
  size_t ModeBin() const;

  /// Number of local maxima in the (lightly smoothed) bin counts; >= 2
  /// signals a multi-modal ("clustered") runtime distribution as in E3.
  size_t CountModes() const;

  /// One-line ASCII rendering: " .:-=+*#%@" density ramp.
  std::string Sparkline() const;

  /// Multi-line rendering with bucket ranges and counts.
  std::string ToString() const;

 private:
  explicit Histogram(std::vector<double> edges);

  std::vector<double> edges_;   // bins+1 ascending edges
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace rdfparams::stats

#endif  // RDFPARAMS_STATS_HISTOGRAM_H_

#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace rdfparams::stats {

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double NormalCdf(double x, double mean, double stddev) {
  if (stddev <= 0) return x < mean ? 0.0 : 1.0;
  return NormalCdf((x - mean) / stddev);
}

double KolmogorovPValue(double distance, size_t n) {
  if (n == 0 || distance <= 0) return 1.0;
  if (distance >= 1.0) return 0.0;
  double sqrt_n = std::sqrt(static_cast<double>(n));
  double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * distance;
  // Alternating series; terms decay as exp(-2 k^2 lambda^2).
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-18) break;
  }
  double p = 2.0 * sum;
  return std::clamp(p, 0.0, 1.0);
}

namespace {

double KsDistanceSortedVsNormal(const std::vector<double>& sorted, double mean,
                                double stddev) {
  double d = 0.0;
  size_t n = sorted.size();
  for (size_t i = 0; i < n; ++i) {
    double f = NormalCdf(sorted[i], mean, stddev);
    double ecdf_hi = static_cast<double>(i + 1) / static_cast<double>(n);
    double ecdf_lo = static_cast<double>(i) / static_cast<double>(n);
    d = std::max(d, std::max(std::abs(ecdf_hi - f), std::abs(f - ecdf_lo)));
  }
  return d;
}

}  // namespace

KsResult KsTestAgainstNormal(const std::vector<double>& xs, double mean,
                             double stddev) {
  KsResult r;
  r.n = xs.size();
  if (xs.empty()) return r;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  r.distance = KsDistanceSortedVsNormal(sorted, mean, stddev);
  r.p_value = KolmogorovPValue(r.distance, r.n);
  return r;
}

KsResult KsTestAgainstFittedNormal(const std::vector<double>& xs) {
  return KsTestAgainstNormal(xs, Mean(xs), StdDev(xs));
}

double KsTwoSampleDistance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t i = 0, j = 0;
  double d = 0.0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace rdfparams::stats

// Fuzz harness for the wire FrameDecoder (untrusted-input surface #2).
//
// The decoder's contract (server/wire.h): pure incremental parser, any
// split of the byte stream yields the same frame sequence and the same
// sticky error state; malformed prefixes error without crashing or
// hanging. This harness decodes each input under three feeding schedules
// (whole buffer, two halves, byte-at-a-time for small inputs) and aborts
// on any divergence; every decoded frame is re-encoded and must re-decode
// to itself.
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "server/wire.h"
#include "util/status.h"

namespace {

using rdfparams::Status;
using rdfparams::server::Frame;
using rdfparams::server::FrameDecoder;
using rdfparams::server::Opcode;

struct DecodeRun {
  std::vector<Frame> frames;
  bool errored = false;
  Status error = Status::OK();
};

// Feeds `bytes` in chunks of `step` (0 = all at once), draining completed
// frames after every feed like the server's connection loop does.
DecodeRun Decode(std::string_view bytes, size_t step) {
  DecodeRun run;
  FrameDecoder decoder;
  size_t pos = 0;
  while (pos < bytes.size() || pos == 0) {
    size_t n = step == 0 ? bytes.size() : std::min(step, bytes.size() - pos);
    Status st = decoder.Feed(bytes.substr(pos, n));
    pos += n;
    if (!st.ok()) {
      run.errored = true;
      run.error = st;
      break;
    }
    while (std::optional<Frame> f = decoder.Next()) {
      run.frames.push_back(std::move(*f));
    }
    if (pos >= bytes.size()) break;
  }
  return run;
}

void ExpectSameRuns(const DecodeRun& a, const DecodeRun& b) {
  if (a.errored != b.errored) std::abort();
  if (a.errored && !(a.error == b.error)) std::abort();
  // An errored run may have drained fewer frames (the error can arrive in
  // the same feed as earlier complete frames under coarse chunking), but
  // the frames it did produce must be a prefix match.
  const std::vector<Frame>& small =
      a.frames.size() <= b.frames.size() ? a.frames : b.frames;
  const std::vector<Frame>& big =
      a.frames.size() <= b.frames.size() ? b.frames : a.frames;
  if (!a.errored && small.size() != big.size()) std::abort();
  for (size_t i = 0; i < small.size(); ++i) {
    if (small[i].opcode != big[i].opcode) std::abort();
    if (small[i].payload != big[i].payload) std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  DecodeRun whole = Decode(bytes, 0);
  DecodeRun halves = Decode(bytes, size / 2 + 1);
  ExpectSameRuns(whole, halves);
  if (size <= 4096) {
    DecodeRun dribble = Decode(bytes, 1);
    ExpectSameRuns(whole, dribble);
  }

  for (const Frame& frame : whole.frames) {
    // Round trip: every decoded frame re-encodes to bytes that decode back
    // to exactly that frame.
    std::string encoded = rdfparams::server::EncodeFrame(
        static_cast<Opcode>(frame.opcode), frame.payload);
    FrameDecoder decoder;
    Status st = decoder.Feed(encoded);
    if (!st.ok()) std::abort();
    std::optional<Frame> back = decoder.Next();
    if (!back.has_value()) std::abort();
    if (back->opcode != frame.opcode || back->payload != frame.payload) {
      std::abort();
    }
    if (decoder.Next().has_value()) std::abort();

    // Error payload decoding must terminate cleanly on arbitrary payloads.
    Status decoded = rdfparams::server::DecodeErrorPayload(frame.payload);
    rdfparams::util::IgnoreStatus(decoded,
                                  "fuzz probe: only checking for crashes");
  }
  return 0;
}

// Corpus-driven driver for toolchains without libFuzzer (gcc).
//
// libFuzzer builds (clang, -DRDFPARAMS_USE_LIBFUZZER=ON) get their main()
// from the sanitizer runtime; everywhere else this driver makes the same
// harness binaries runnable:
//
//   fuzz_x [--runs=N] [--seed=S] [--max-len=L] PATH...
//
// Every PATH (file, or directory of seed files, walked in sorted order) is
// executed once through LLVMFuzzerTestOneInput; then N additional inputs
// are derived from the seeds by a deterministic util::Rng mutator (bit
// flips, byte edits, span duplication/erasure, cross-seed splices,
// truncation). Same seeds + same --seed => the exact same inputs, so a
// ctest smoke run is reproducible. The harness aborts on a finding, which
// surfaces as a non-zero exit.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using rdfparams::util::Rng;

void RunOne(const std::string& input) {
  // The return value is a libFuzzer-reserved hint (always 0 here).
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

std::string Mutate(const std::vector<std::string>& seeds, Rng* rng,
                   size_t max_len) {
  std::string out;
  if (!seeds.empty()) {
    out = seeds[rng->Uniform(seeds.size())];
  }
  size_t edits = 1 + rng->Uniform(8);
  for (size_t e = 0; e < edits; ++e) {
    switch (rng->Uniform(7)) {
      case 0:  // flip one bit
        if (!out.empty()) {
          size_t i = rng->Uniform(out.size());
          out[i] = static_cast<char>(out[i] ^ (1u << rng->Uniform(8)));
        }
        break;
      case 1:  // overwrite a byte
        if (!out.empty()) {
          out[rng->Uniform(out.size())] =
              static_cast<char>(rng->Uniform(256));
        }
        break;
      case 2:  // insert a byte
        out.insert(out.begin() + static_cast<ptrdiff_t>(
                                     rng->Uniform(out.size() + 1)),
                   static_cast<char>(rng->Uniform(256)));
        break;
      case 3: {  // erase a span
        if (!out.empty()) {
          size_t start = rng->Uniform(out.size());
          size_t len = 1 + rng->Uniform(out.size() - start);
          out.erase(start, len);
        }
        break;
      }
      case 4: {  // duplicate a span in place
        if (!out.empty()) {
          size_t start = rng->Uniform(out.size());
          size_t len = 1 + rng->Uniform(out.size() - start);
          out.insert(start, out.substr(start, len));
        }
        break;
      }
      case 5: {  // splice: our prefix + another seed's suffix
        if (!seeds.empty()) {
          const std::string& other = seeds[rng->Uniform(seeds.size())];
          size_t keep = rng->Uniform(out.size() + 1);
          size_t from = other.empty() ? 0 : rng->Uniform(other.size());
          out = out.substr(0, keep) + other.substr(from);
        }
        break;
      }
      case 6:  // truncate
        if (!out.empty()) out.resize(rng->Uniform(out.size() + 1));
        break;
    }
    if (out.size() > max_len) out.resize(max_len);
  }
  return out;
}

bool ParseSizeFlag(const char* arg, const char* name, uint64_t* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::strtoull(arg + n + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 1000;
  uint64_t seed = 1;
  uint64_t max_len = 1 << 16;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (ParseSizeFlag(argv[i], "--runs", &runs) ||
        ParseSizeFlag(argv[i], "--seed", &seed) ||
        ParseSizeFlag(argv[i], "--max-len", &max_len)) {
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
    paths.push_back(argv[i]);
  }

  std::vector<std::string> seed_files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) {
          seed_files.push_back(entry.path().string());
        }
      }
    } else {
      seed_files.push_back(path);
    }
  }
  std::sort(seed_files.begin(), seed_files.end());

  std::vector<std::string> seeds;
  for (const std::string& file : seed_files) {
    auto content = rdfparams::util::ReadFileToString(file);
    if (!content.ok()) {
      std::fprintf(stderr, "cannot read seed %s: %s\n", file.c_str(),
                   content.status().ToString().c_str());
      return 2;
    }
    seeds.push_back(std::move(content).value());
  }

  for (const std::string& s : seeds) RunOne(s);
  std::fprintf(stderr, "standalone fuzz: %zu seeds ok\n", seeds.size());

  Rng rng(seed);
  for (uint64_t i = 0; i < runs; ++i) {
    RunOne(Mutate(seeds, &rng, static_cast<size_t>(max_len)));
  }
  std::fprintf(stderr,
               "standalone fuzz: %llu mutated runs ok (seed=%llu)\n",
               static_cast<unsigned long long>(runs),
               static_cast<unsigned long long>(seed));
  return 0;
}

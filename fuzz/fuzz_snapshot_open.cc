// Fuzz harness for Snapshot::Open / Inspect (untrusted-input surface #3).
//
// The storage contract (storage/snapshot.h): any corruption or format
// violation is a clean DataLoss / ParseError — never a crash, hang, or
// silently wrong store. The harness materializes the input bytes as a
// snapshot file and opens it with and without the whole-file checksum
// pass; inputs the strict pass accepts must also be accepted by the
// relaxed pass and restore identical store shapes. The zero-copy (mmap)
// open is run as a differential arm against the copied open: on any
// accepted input both paths must restore the same dictionary and store.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "storage/snapshot.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace {

const std::string& TempPath() {
  static const std::string* path = [] {
    const char* dir = getenv("TMPDIR");
    std::string base = dir != nullptr && dir[0] != '\0' ? dir : "/tmp";
    return new std::string(base + "/rdfparams_fuzz_snapshot_" +
                           std::to_string(getpid()) + ".snap");
  }();
  return *path;
}

bool WriteInput(const uint8_t* data, size_t size) {
  std::FILE* f = std::fopen(TempPath().c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using rdfparams::storage::OpenOptions;
  using rdfparams::storage::Snapshot;
  if (size > (4u << 20)) return 0;
  if (!WriteInput(data, size)) return 0;  // fs trouble, not a target bug

  // Inspect: cheap structural + checksum validation, must terminate
  // cleanly on arbitrary bytes.
  auto info = Snapshot::Inspect(TempPath());
  rdfparams::util::IgnoreStatus(info, "fuzz probe: crash/hang check only");

  OpenOptions strict;
  strict.verify_file_checksum = true;
  strict.pool_pages = 16;  // small pool: exercise eviction during restore
  auto opened = Snapshot::Open(TempPath(), strict);

  OpenOptions relaxed;
  relaxed.verify_file_checksum = false;
  relaxed.pool_pages = 16;
  auto reopened = Snapshot::Open(TempPath(), relaxed);

  if (opened.ok()) {
    // The strict pass only adds checks, so its accepts are a subset.
    if (!reopened.ok()) std::abort();
    if (reopened->dict.size() != opened->dict.size()) std::abort();
    if (reopened->store.size() != opened->store.size()) std::abort();
    if (reopened->has_app_meta != opened->has_app_meta) std::abort();
    if (reopened->app_meta != opened->app_meta) std::abort();
    // A file Open accepts must also pass Inspect.
    if (!info.ok()) std::abort();
  }

  // Differential arm: zero-copy vs copied. Forced-mmap accepts must
  // match the copied open exactly (kAuto would hide Map failures).
  if (rdfparams::util::MmapFile::Supported()) {
    OpenOptions mmapped = strict;
    mmapped.mmap = rdfparams::storage::MmapMode::kOn;
    auto borrowed = Snapshot::Open(TempPath(), mmapped);
    if (borrowed.ok() != opened.ok()) std::abort();
    if (borrowed.ok()) {
      if (borrowed->dict.size() != opened->dict.size()) std::abort();
      for (uint32_t id = 0; id < opened->dict.size(); ++id) {
        if (borrowed->dict.term(id) != opened->dict.term(id)) std::abort();
      }
      if (borrowed->store.size() != opened->store.size()) std::abort();
      if (borrowed->app_meta != opened->app_meta) std::abort();
    }
  }
  return 0;
}

// Fuzz harness for the N-Triples parser/loader (untrusted-input surface #1).
//
// Beyond "never crash", this is a differential harness: for every input the
// streaming parse, the serial load, and the sharded load (external 2-worker
// pool, tiny chunks) must agree — same accept/reject decision, identical
// error Status (the PR 4 "line N" message parity), identical dictionary and
// store sizes — and accepted documents must survive a write/re-parse round
// trip. Any disagreement aborts, which the fuzzer reports as a crash.
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace {

rdfparams::util::ThreadPool* SharedPool() {
  // Reused across iterations; leaked on purpose (fuzz process teardown).
  static auto* pool = new rdfparams::util::ThreadPool(2);
  return pool;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace rdfparams;
  if (size > (1u << 20)) return 0;  // bound per-iteration cost
  std::string_view doc(reinterpret_cast<const char*>(data), size);

  // Streaming parse: must terminate cleanly on any input.
  size_t streamed = 0;
  Status parse = rdf::ParseNTriples(
      doc,
      [&](const rdf::Term&, const rdf::Term&, const rdf::Term&) {
        ++streamed;
      });

  // Serial load must make the same accept/reject decision.
  rdf::Dictionary dict;
  rdf::TripleStore store;
  Status serial = rdf::LoadNTriples(doc, &dict, &store);
  if (serial.ok() != parse.ok()) std::abort();

  // Sharded load: byte-identical contract with the serial path, including
  // the exact error Status on rejection.
  rdf::Dictionary sharded_dict;
  rdf::TripleStore sharded_store;
  rdf::LoadOptions options;
  options.pool = SharedPool();
  options.min_chunk_bytes = 64;  // force real sharding on small inputs
  Status sharded =
      rdf::LoadNTriples(doc, &sharded_dict, &sharded_store, options);
  if (sharded.ok() != serial.ok()) std::abort();
  if (!serial.ok()) {
    if (!(sharded == serial)) std::abort();
    return 0;
  }

  if (sharded_dict.size() != dict.size()) std::abort();
  if (sharded_store.size() != store.size()) std::abort();
  if (store.size() != streamed) std::abort();

  // Accepted documents round-trip: the writer's output must re-parse to
  // the same number of triples (escape fidelity is covered per-term by the
  // unit property tests; this catches whole-line framing bugs).
  store.Finalize();  // the writer walks the sorted SPO index
  std::ostringstream os;
  Status written = rdf::WriteNTriples(dict, store, os);
  if (!written.ok()) std::abort();
  std::string round = os.str();
  size_t reparsed = 0;
  Status again = rdf::ParseNTriples(
      round,
      [&](const rdf::Term&, const rdf::Term&, const rdf::Term&) {
        ++reparsed;
      });
  if (!again.ok()) std::abort();
  if (reparsed != store.size()) std::abort();
  return 0;
}

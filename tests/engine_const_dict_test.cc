// Read-only execution mode: an Executor over a const Dictionary must never
// mutate it, yet produce the same results as the mutable-dictionary mode.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "test_store.h"

namespace rdfparams::engine {
namespace {

class ConstDictTest : public test::TurtleStoreTest {
 protected:
  void SetUp() override { Load(test::ItemScoreTurtle()); }
};

TEST_F(ConstDictTest, ReadOnlyQueryLeavesDictionaryUntouched) {
  sparql::SelectQuery q = Parse(R"(
SELECT ?i ?s WHERE {
  ?i <http://x/type> <http://x/T1> .
  ?i <http://x/score> ?s .
})");
  size_t before = dict_.size();

  const rdf::Dictionary& const_dict = dict_;
  Executor exec(store_, const_dict);
  ExecutionStats stats;
  auto result = exec.Run(q, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 10u);
  EXPECT_EQ(dict_.size(), before);
  ASSERT_NE(exec.scratch_dict(), nullptr);
  EXPECT_EQ(exec.scratch_dict()->num_scratch(), 0u);

  // Same rows as the mutable-dictionary mode.
  Executor mut_exec(store_, &dict_);
  auto expected = mut_exec.Run(q, &stats);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(result->num_rows(), expected->num_rows());
  for (size_t r = 0; r < result->num_rows(); ++r) {
    for (size_t c = 0; c < result->num_vars(); ++c) {
      EXPECT_EQ(result->at(r, c), expected->at(r, c)) << "row " << r;
    }
  }
}

TEST_F(ConstDictTest, FilterConstantsGoToScratchOverlay) {
  // "5"^^int literals exist in the data, but a filter against a fresh
  // constant (here 4.5, absent from the dictionary) must not intern into
  // the shared base.
  sparql::SelectQuery q = Parse(R"(
SELECT ?i WHERE {
  ?i <http://x/score> ?s .
  FILTER(?s > 4.5)
})");
  size_t before = dict_.size();
  const rdf::Dictionary& const_dict = dict_;
  Executor exec(store_, const_dict);
  ExecutionStats stats;
  auto result = exec.Run(q, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(dict_.size(), before);
  ASSERT_NE(exec.scratch_dict(), nullptr);
  EXPECT_GE(exec.scratch_dict()->num_scratch(), 1u);

  Executor mut_exec(store_, &dict_);
  auto expected = mut_exec.Run(q, &stats);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->num_rows(), expected->num_rows());
  EXPECT_GT(dict_.size(), before);  // legacy mode interned the constant
}

TEST_F(ConstDictTest, AggregateOutputsResolveThroughScratch) {
  sparql::SelectQuery q = Parse(R"(
SELECT ?t (COUNT(*) AS ?n) WHERE {
  ?i <http://x/type> ?t .
  ?i <http://x/score> ?s .
} GROUP BY ?t ORDER BY ?t)");
  size_t before = dict_.size();
  const rdf::Dictionary& const_dict = dict_;
  Executor exec(store_, const_dict);
  ExecutionStats stats;
  auto result = exec.Run(q, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(dict_.size(), before);
  EXPECT_EQ(result->num_rows(), 3u);  // three types

  // The aggregate column ids live past the base snapshot; they decode
  // through the executor's scratch overlay.
  const rdf::ScratchDictionary* scratch = exec.scratch_dict();
  ASSERT_NE(scratch, nullptr);
  int n_col = result->VarIndex("n");
  ASSERT_GE(n_col, 0);
  for (size_t r = 0; r < result->num_rows(); ++r) {
    rdf::TermId id = result->at(r, static_cast<size_t>(n_col));
    auto v = scratch->term(id).AsDouble();
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 10.0);  // 30 items over 3 types
  }
}

}  // namespace
}  // namespace rdfparams::engine

#include "core/workload.h"

#include <gtest/gtest.h>

#include "rdf/turtle.h"

namespace rdfparams::core {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string doc = "@prefix x: <http://x/> .\n";
    for (int i = 0; i < 50; ++i) {
      doc += "x:item" + std::to_string(i) + " x:type x:T" +
             std::to_string(i % 5) + " .\n";
      doc += "x:item" + std::to_string(i) + " x:score " +
             std::to_string(i % 10) + " .\n";
    }
    ASSERT_TRUE(rdf::LoadTurtle(doc, &dict_, &store_).ok());
    store_.Finalize();

    auto t = sparql::QueryTemplate::Parse("wl", R"(
SELECT * WHERE { ?i <http://x/type> %type . ?i <http://x/score> ?s . }
)");
    ASSERT_TRUE(t.ok());
    tmpl_ = std::move(t).value();
    for (int k = 0; k < 5; ++k) {
      types_.push_back(*dict_.FindIri("http://x/T" + std::to_string(k)));
    }
  }

  rdf::Dictionary dict_;
  rdf::TripleStore store_;
  sparql::QueryTemplate tmpl_;
  std::vector<rdf::TermId> types_;
};

TEST_F(WorkloadTest, RunOnceFillsAllFields) {
  WorkloadRunner runner(store_, &dict_);
  sparql::ParameterBinding b{{types_[0]}};
  auto obs = runner.RunOnce(tmpl_, b);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
  EXPECT_EQ(obs->binding, b);
  EXPECT_GT(obs->seconds, 0.0);
  EXPECT_EQ(obs->result_rows, 10u);       // 10 items per type
  EXPECT_EQ(obs->observed_cout, 10u);     // single join output
  EXPECT_GT(obs->est_cout, 0.0);
  EXPECT_FALSE(obs->fingerprint.empty());
}

TEST_F(WorkloadTest, EstimateMatchesObservationOnExactLeafPairs) {
  WorkloadRunner runner(store_, &dict_);
  sparql::ParameterBinding b{{types_[2]}};
  auto obs = runner.RunOnce(tmpl_, b);
  ASSERT_TRUE(obs.ok());
  // Exact pairwise leaf statistics: estimate equals observation.
  EXPECT_DOUBLE_EQ(obs->est_cout, static_cast<double>(obs->observed_cout));
}

TEST_F(WorkloadTest, RunAllPreservesOrder) {
  WorkloadRunner runner(store_, &dict_);
  std::vector<sparql::ParameterBinding> bindings;
  for (rdf::TermId t : types_) bindings.push_back({{t}});
  auto obs = runner.RunAll(tmpl_, bindings);
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*obs)[i].binding.values[0], types_[i]);
  }
}

TEST_F(WorkloadTest, RepetitionsKeepMinimum) {
  WorkloadRunner runner(store_, &dict_);
  WorkloadOptions options;
  options.repetitions = 3;
  sparql::ParameterBinding b{{types_[0]}};
  auto obs = runner.RunOnce(tmpl_, b, options);
  ASSERT_TRUE(obs.ok());
  EXPECT_GT(obs->seconds, 0.0);
}

TEST_F(WorkloadTest, ExtractorsAligned) {
  WorkloadRunner runner(store_, &dict_);
  std::vector<sparql::ParameterBinding> bindings;
  for (rdf::TermId t : types_) bindings.push_back({{t}});
  auto obs = runner.RunAll(tmpl_, bindings);
  ASSERT_TRUE(obs.ok());
  auto times = RuntimesOf(*obs);
  auto couts = ObservedCoutsOf(*obs);
  auto ests = EstimatedCoutsOf(*obs);
  ASSERT_EQ(times.size(), 5u);
  ASSERT_EQ(couts.size(), 5u);
  ASSERT_EQ(ests.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(times[i], (*obs)[i].seconds);
    EXPECT_DOUBLE_EQ(couts[i], static_cast<double>((*obs)[i].observed_cout));
  }
  // All bindings of this template share one plan.
  EXPECT_EQ(DistinctPlans(*obs), 1u);
}

TEST_F(WorkloadTest, BadBindingFails) {
  WorkloadRunner runner(store_, &dict_);
  sparql::ParameterBinding wrong;  // arity 0
  EXPECT_FALSE(runner.RunOnce(tmpl_, wrong).ok());
}

}  // namespace
}  // namespace rdfparams::core

// MmapFile: the read-only whole-file mapping under zero-copy snapshot
// opens. Checks the mapped bytes match the file exactly, that the mapping
// outlives the Map() scope through its shared_ptr (the property the
// storage layer leans on), and that the error paths are clean.
#include "util/mmap_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

namespace rdfparams::util {
namespace {

std::string WriteTemp(const std::string& name, std::string_view bytes) {
  std::string path = ::testing::TempDir() + "rdfparams_mmap_" + name;
  std::ofstream os(path, std::ios::trunc | std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.close();
  return path;
}

TEST(MmapFileTest, MapsWholeFileByteExactly) {
  if (!MmapFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  std::string bytes(70000, '\0');
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>((i * 131) & 0xFF);
  }
  std::string path = WriteTemp("exact.bin", bytes);
  auto mapped = MmapFile::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->size(), bytes.size());
  EXPECT_EQ((*mapped)->view(), bytes);
  std::remove(path.c_str());
}

TEST(MmapFileTest, MappingOutlivesScopeViaSharedPtr) {
  if (!MmapFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  std::string path = WriteTemp("outlive.bin", "persistent payload");
  std::string_view view;
  std::shared_ptr<const MmapFile> keeper;
  {
    auto mapped = MmapFile::Map(path);
    ASSERT_TRUE(mapped.ok());
    keeper = *mapped;
    view = keeper->view();
  }
  // The Result and every other owner are gone; the view must stay valid.
  EXPECT_EQ(view, "persistent payload");
  std::remove(path.c_str());
}

TEST(MmapFileTest, EmptyFileMapsToEmptyView) {
  if (!MmapFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  std::string path = WriteTemp("empty.bin", "");
  auto mapped = MmapFile::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->size(), 0u);
  EXPECT_TRUE((*mapped)->view().empty());
  std::remove(path.c_str());
}

TEST(MmapFileTest, MissingFileIsCleanIoError) {
  if (!MmapFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  auto mapped = MmapFile::Map(::testing::TempDir() + "rdfparams_mmap_nope");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace rdfparams::util

// Stress and lifecycle tests for the workload daemon: admission control
// past max-conns / queue-depth (deterministic rejection frames), a soak
// with more clients than capacity where every accepted request is
// answered, clean shutdown with in-flight and half-closed connections,
// and the SIGPIPE regression (a client vanishing mid-response must not
// kill the process). Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "server/wire.h"
#include "util/status.h"
#include "server/workbench.h"
#include "util/status.h"

namespace rdfparams::server {
namespace {

class ServerStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.products = 200;
    auto wb = BuildWorkbench(config);
    ASSERT_TRUE(wb.ok()) << wb.status().ToString();
    wb_ = new Workbench(std::move(wb).value());
  }

  static void TearDownTestSuite() {
    delete wb_;
    wb_ = nullptr;
  }

  /// Spins until `counter()` reaches `want` (the accept loop runs on its
  /// own thread; admission is asynchronous to Connect() returning).
  template <typename Counter>
  static bool WaitFor(Counter counter, uint64_t want) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (counter() < want) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  static Workbench* wb_;
};

Workbench* ServerStressTest::wb_ = nullptr;

TEST_F(ServerStressTest, MaxConnsRejectionFrameIsDeterministic) {
  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  config.max_conns = 2;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the admission budget: one session holding the only worker
  // (proved by a completed round trip) plus one queued session.
  Client a;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  auto ping = a.Call(Opcode::kPing, "hold");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  Client b;
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(WaitFor([&] { return server.accepted_connections(); }, 2));

  // The third connection must get the exact rejection frame, then EOF.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kError));
  Status carried = DecodeErrorPayload(frame->payload);
  EXPECT_EQ(carried.code(), StatusCode::kUnavailable);
  EXPECT_EQ(carried.message(),
            "server at capacity: max connections (2) reached");
  EXPECT_FALSE(c.ReadFrame().ok());  // closed after the rejection
  EXPECT_EQ(server.rejected_connections(), 1u);

  // Capacity frees up when the admitted sessions end (their handlers see
  // EOF asynchronously); a retry then succeeds. kUnavailable is
  // explicitly retryable, so retry until the books catch up.
  a.Close();
  b.Close();
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  Result<std::string> retry = Status::Unavailable("not yet retried");
  while (std::chrono::steady_clock::now() < deadline) {
    retry = CallOnce("127.0.0.1", server.port(), Opcode::kPing, "again");
    if (retry.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry, "again");
  server.Stop();
}

TEST_F(ServerStressTest, QueueDepthRejectionFrameIsDeterministic) {
  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  config.threads = 1;
  config.max_conns = 64;
  config.queue_depth = 1;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  // A completed round trip proves session A is *serving* (off the
  // queue, holding the only worker); B then fills the one queue slot.
  Client a;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  auto ping = a.Call(Opcode::kPing, "hold");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  Client b;
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(WaitFor([&] { return server.accepted_connections(); }, 2));

  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kError));
  Status carried = DecodeErrorPayload(frame->payload);
  EXPECT_EQ(carried.code(), StatusCode::kUnavailable);
  EXPECT_EQ(carried.message(),
            "server at capacity: pending queue full (depth 1)");
  EXPECT_EQ(server.rejected_connections(), 1u);
  server.Stop();
}

// Soak past capacity: every client either completes its exchange or gets
// a well-formed kUnavailable rejection — an accepted request is never
// dropped, and the books balance exactly.
TEST_F(ServerStressTest, SoakBeyondCapacityLosesNoAcceptedRequests) {
  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  config.max_conns = 4;
  config.queue_depth = 2;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 12;
  constexpr int kRoundsPerClient = 8;
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> anomalies{0};

  auto worker = [&](int client_id) {
    for (int round = 0; round < kRoundsPerClient; ++round) {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        // Connect refusal cannot happen while the listener is up; the
        // server always accepts and answers, even to reject.
        anomalies.fetch_add(1);
        continue;
      }
      std::string token = "c" + std::to_string(client_id) + "-r" +
                          std::to_string(round);
      // The ping may race a rejection frame already in flight; either a
      // correct echo or a well-formed capacity rejection is legal.
      util::IgnoreStatus(client.Send(Opcode::kPing, token),
                         "racing a capacity-rejection frame; the read below "
                         "classifies the outcome");
      auto frame = client.ReadFrame();
      if (!frame.ok()) {
        // Writing the ping into a socket the server already rejected and
        // closed raises an RST that can flush the rejection frame out of
        // our receive buffer (plain TCP, not a server defect). An
        // admitted session never resets before responding, so a reset
        // here can only mean rejection.
        rejected.fetch_add(1);
        continue;
      }
      if (frame->opcode == static_cast<uint8_t>(Opcode::kOk)) {
        if (frame->payload == token) {
          served.fetch_add(1);
        } else {
          anomalies.fetch_add(1);  // cross-session contamination
        }
      } else if (frame->opcode == static_cast<uint8_t>(Opcode::kError)) {
        Status carried = DecodeErrorPayload(frame->payload);
        bool capacity_rejection =
            carried.code() == StatusCode::kUnavailable &&
            carried.message().find("server at capacity") !=
                std::string::npos;
        if (capacity_rejection) {
          rejected.fetch_add(1);
        } else {
          anomalies.fetch_add(1);
        }
      } else {
        anomalies.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) threads.emplace_back(worker, c);
  for (auto& t : threads) t.join();

  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_EQ(served.load() + rejected.load(),
            static_cast<uint64_t>(kClients) * kRoundsPerClient);
  // Server-side books must agree with the client-side tally.
  EXPECT_EQ(server.accepted_connections(), served.load());
  EXPECT_EQ(server.rejected_connections(), rejected.load());
  EXPECT_EQ(server.served_requests(), served.load());
  server.Stop();
}

TEST_F(ServerStressTest, ShutdownWithInFlightAndHalfClosedConnections) {
  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  // Enough workers that the parked sessions below never starve the
  // shutdown client's own session out of a worker.
  config.threads = 4;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  // An idle session (handler parked in read), a half-closed session (the
  // server has seen our EOF is pending), and a session with a request in
  // flight — Stop() must unwind all three without hanging or tearing a
  // response mid-frame.
  Client idle;
  ASSERT_TRUE(idle.Connect("127.0.0.1", server.port()).ok());
  Client half_closed;
  ASSERT_TRUE(half_closed.Connect("127.0.0.1", server.port()).ok());
  std::string partial = EncodeFrame(Opcode::kClassify, "query=4");
  ASSERT_TRUE(half_closed.SendRaw(partial.substr(0, 3)).ok());
  half_closed.CloseWrite();

  Client in_flight;
  ASSERT_TRUE(in_flight.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(
      in_flight.Send(Opcode::kClassify, "query=4\nmax_candidates=60").ok());

  // Shutdown via the wire, as a client would do it.
  auto ack = CallOnce("127.0.0.1", server.port(), Opcode::kShutdown, "");
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(*ack, "shutting down");
  server.AwaitShutdown();
  server.Stop();  // must not hang on any of the three sessions

  // The in-flight request was either fully served before its read side
  // closed, or never dispatched: a complete well-formed frame or clean
  // EOF, nothing in between.
  auto frame = in_flight.ReadFrame();
  if (frame.ok()) {
    EXPECT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kOk));
    EXPECT_FALSE(frame->payload.empty());
  } else {
    EXPECT_EQ(frame.status().code(), StatusCode::kIOError)
        << frame.status().ToString();
  }
  EXPECT_FALSE(idle.ReadFrame().ok());

  // Fully stopped: the listener is gone, so new connections fail outright
  // (or are drained with an immediate EOF by a lingering accept).
  Client late;
  Status late_st = late.Connect("127.0.0.1", server.port());
  if (late_st.ok()) EXPECT_FALSE(late.ReadFrame().ok());
}

TEST_F(ServerStressTest, ClientVanishingMidResponseDoesNotKillTheDaemon) {
  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  // Fire several substantial requests and slam the socket shut without
  // reading: the server's response writes hit a dead peer (EPIPE / RST).
  // With SIGPIPE ignored process-wide this is a per-session error; if it
  // ever raises the default signal, the whole test binary dies here.
  for (int round = 0; round < 4; ++round) {
    Client rude;
    ASSERT_TRUE(rude.Connect("127.0.0.1", server.port()).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          rude.Send(Opcode::kClassify, "query=4\nmax_candidates=80").ok());
    }
    rude.Close();  // vanish with 5 responses owed
  }

  // The daemon must still be alive and correct.
  ASSERT_TRUE(WaitFor([&] { return server.accepted_connections(); }, 4));
  auto response =
      CallOnce("127.0.0.1", server.port(), Opcode::kPing, "survived");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(*response, "survived");
  server.Stop();
}

TEST_F(ServerStressTest, StopIsIdempotentAndSafeWithoutClients) {
  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());
  server.RequestStop();
  server.AwaitShutdown();  // must already be satisfied
  server.Stop();
  server.Stop();  // second call is a no-op, not a crash
}

}  // namespace
}  // namespace rdfparams::server

#include "stats/ks_test.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rdfparams::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(10.0), 1.0, 1e-12);
}

TEST(NormalCdfTest, ParameterizedShiftScale) {
  EXPECT_NEAR(NormalCdf(5.0, 5.0, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(7.0, 5.0, 2.0), NormalCdf(1.0), 1e-12);
  // Degenerate stddev: step function.
  EXPECT_DOUBLE_EQ(NormalCdf(4.9, 5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalCdf(5.1, 5.0, 0.0), 1.0);
}

TEST(KolmogorovPValueTest, BoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(KolmogorovPValue(0.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(KolmogorovPValue(1.0, 100), 0.0);
  double p_small = KolmogorovPValue(0.05, 100);
  double p_large = KolmogorovPValue(0.3, 100);
  EXPECT_GT(p_small, p_large);
  EXPECT_GT(p_small, 0.5);
  EXPECT_LT(p_large, 0.01);
}

TEST(KsTest, GaussianSampleMatchesFittedNormal) {
  util::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(3.0 + 2.0 * rng.NextGaussian());
  KsResult r = KsTestAgainstFittedNormal(xs);
  EXPECT_LT(r.distance, 0.05);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, BimodalSampleFarFromNormal) {
  // The paper's E1: extreme clustering gives distance near 0.9 with a
  // vanishing p-value.
  std::vector<double> xs;
  for (int i = 0; i < 90; ++i) xs.push_back(0.3);
  for (int i = 0; i < 10; ++i) xs.push_back(250.0);
  KsResult r = KsTestAgainstFittedNormal(xs);
  EXPECT_GT(r.distance, 0.4);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(KsTest, EmptySample) {
  KsResult r = KsTestAgainstFittedNormal({});
  EXPECT_EQ(r.n, 0u);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(KsTest, AgainstExplicitNormal) {
  util::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.NextGaussian());
  // Correct reference: small distance.
  EXPECT_LT(KsTestAgainstNormal(xs, 0.0, 1.0).distance, 0.06);
  // Shifted reference: large distance.
  EXPECT_GT(KsTestAgainstNormal(xs, 3.0, 1.0).distance, 0.8);
}

TEST(KsTwoSampleTest, IdenticalSamplesZero) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsTwoSampleDistance(a, a), 0.0);
}

TEST(KsTwoSampleTest, DisjointSamplesOne) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 11, 12};
  EXPECT_DOUBLE_EQ(KsTwoSampleDistance(a, b), 1.0);
}

TEST(KsTwoSampleTest, SimilarDistributionsSmall) {
  util::Rng rng(13);
  std::vector<double> a, b;
  for (int i = 0; i < 3000; ++i) a.push_back(rng.NextGaussian());
  for (int i = 0; i < 3000; ++i) b.push_back(rng.NextGaussian());
  double d = KsTwoSampleDistance(a, b);
  EXPECT_LT(d, 0.06);
}

}  // namespace
}  // namespace rdfparams::stats

#include "core/analysis.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rdfparams::core {
namespace {

TEST(AggregateGroupTest, MatchesSummary) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  GroupAggregates g = AggregateGroup(xs);
  EXPECT_DOUBLE_EQ(g.average, 5.5);
  EXPECT_DOUBLE_EQ(g.median, 5.5);
  EXPECT_DOUBLE_EQ(g.q10, g.summary.q10);
  EXPECT_DOUBLE_EQ(g.q90, g.summary.q90);
}

TEST(StabilityTest, IdenticalGroupsZeroSpread) {
  std::vector<double> g{1, 2, 3, 4, 5};
  StabilityReport r = AnalyzeStability({g, g, g, g});
  EXPECT_DOUBLE_EQ(r.average_spread, 0.0);
  EXPECT_DOUBLE_EQ(r.median_spread, 0.0);
  EXPECT_DOUBLE_EQ(r.max_pairwise_ks, 0.0);
}

TEST(StabilityTest, PaperE2TableSpread) {
  // Reconstruct the paper's LDBC Q2 table: averages 1.80/1.33/1.53/1.30.
  // We test that our spread metric reports the paper's "up to 40%".
  std::vector<std::vector<double>> groups;
  util::Rng rng(3);
  for (double target : {1.80, 1.33, 1.53, 1.30}) {
    std::vector<double> g;
    for (int i = 0; i < 100; ++i) {
      g.push_back(target);  // constant groups at the reported averages
    }
    groups.push_back(std::move(g));
  }
  StabilityReport r = AnalyzeStability(groups);
  EXPECT_NEAR(r.average_spread, 0.3846, 1e-3);
}

TEST(StabilityTest, SkewedGroupsHaveHighKs) {
  util::Rng rng(5);
  std::vector<double> fast, slow;
  for (int i = 0; i < 200; ++i) fast.push_back(0.01 + 0.001 * rng.NextDouble());
  for (int i = 0; i < 200; ++i) slow.push_back(10.0 + rng.NextDouble());
  StabilityReport r = AnalyzeStability({fast, slow});
  EXPECT_GT(r.max_pairwise_ks, 0.9);
  EXPECT_GT(r.average_spread, 10.0);
}

TEST(ShapeTest, BimodalDetected) {
  // E3-like: cluster at 0.35s, cluster at 17s+.
  std::vector<double> xs;
  util::Rng rng(7);
  for (int i = 0; i < 90; ++i) xs.push_back(0.3 + 0.1 * rng.NextDouble());
  for (int i = 0; i < 10; ++i) xs.push_back(17.0 + 5 * rng.NextDouble());
  ShapeReport r = AnalyzeShape(xs);
  EXPECT_GT(r.mean_over_median, 3.0);
  EXPECT_LT(r.mid_mass_fraction, 0.05);
  EXPECT_GT(r.ks_vs_normal.distance, 0.3);
  EXPECT_LT(r.ks_vs_normal.p_value, 1e-6);
}

TEST(ShapeTest, WellBehavedSample) {
  util::Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(5.0 + 0.3 * rng.NextGaussian());
  ShapeReport r = AnalyzeShape(xs);
  EXPECT_NEAR(r.mean_over_median, 1.0, 0.05);
  EXPECT_LT(r.ks_vs_normal.distance, 0.08);
  EXPECT_GT(r.mid_mass_fraction, 0.2);
}

TEST(SplitIntoGroupsTest, EvenSplit) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  auto groups = SplitIntoGroups(xs, 4);
  ASSERT_EQ(groups.size(), 4u);
  for (const auto& g : groups) EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<double>{1, 2}));
  EXPECT_EQ(groups[3], (std::vector<double>{7, 8}));
}

TEST(SplitIntoGroupsTest, TruncatesLeftovers) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  auto groups = SplitIntoGroups(xs, 3);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) EXPECT_EQ(g.size(), 2u);
}

TEST(AnalyzeClassTest, ComputesPlanAndCvMetrics) {
  std::vector<RunObservation> obs(4);
  for (size_t i = 0; i < 4; ++i) {
    obs[i].seconds = 0.1;
    obs[i].est_cout = 100;
    obs[i].fingerprint = "J(S0,S1)";
  }
  ClassQuality q = AnalyzeClass(obs);
  EXPECT_EQ(q.num_bindings, 4u);
  EXPECT_EQ(q.distinct_plans, 1u);  // P3 holds
  EXPECT_NEAR(q.runtime_cv, 0.0, 1e-9);
  EXPECT_NEAR(q.cout_cv, 0.0, 1e-9);

  obs[3].fingerprint = "J(S1,S0)";
  obs[3].seconds = 5.0;
  ClassQuality q2 = AnalyzeClass(obs);
  EXPECT_EQ(q2.distinct_plans, 2u);
  EXPECT_GT(q2.runtime_cv, 0.5);
}

}  // namespace
}  // namespace rdfparams::core

// Property-based tests (parameterized gtest) over randomized queries and
// datasets: executor/optimizer agreement, plan invariance of results, and
// C_out bookkeeping invariants.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace rdfparams {
namespace {

/// Builds a random graph dataset with controllable shape.
struct RandomDataset {
  rdf::Dictionary dict;
  rdf::TripleStore store;

  RandomDataset(uint64_t seed, size_t n_triples, size_t n_entities,
                size_t n_predicates) {
    util::Rng rng(seed);
    for (size_t i = 0; i < n_triples; ++i) {
      store.Add(dict.InternIri("http://e/" +
                               std::to_string(rng.Uniform(n_entities))),
                dict.InternIri("http://p/" +
                               std::to_string(rng.Uniform(n_predicates))),
                dict.InternIri("http://e/" +
                               std::to_string(rng.Uniform(n_entities))));
    }
    store.Finalize();
  }
};

/// Generates a random connected query (chain / star / mixed).
std::string RandomQuery(util::Rng* rng, size_t n_patterns,
                        size_t n_predicates) {
  std::string text = "SELECT * WHERE { ";
  // Chain backbone with occasional star branches.
  size_t next_var = 1;
  std::vector<size_t> frontier{0};
  for (size_t k = 0; k < n_patterns; ++k) {
    size_t from = frontier[static_cast<size_t>(
        rng->Uniform(frontier.size()))];
    size_t to = next_var++;
    text += "?v" + std::to_string(from) + " <http://p/" +
            std::to_string(rng->Uniform(n_predicates)) + "> ?v" +
            std::to_string(to) + " . ";
    frontier.push_back(to);
  }
  text += "}";
  return text;
}

/// Canonical multiset of result rows for comparison across plans.
std::multiset<std::vector<rdf::TermId>> Canonicalize(
    const engine::BindingTable& t) {
  // Sort columns by variable name so column order differences vanish.
  std::vector<size_t> order(t.num_vars());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return t.vars()[a] < t.vars()[b];
  });
  std::multiset<std::vector<rdf::TermId>> rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<rdf::TermId> row;
    for (size_t c : order) row.push_back(t.at(r, c));
    rows.insert(std::move(row));
  }
  return rows;
}

class QueryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryPropertyTest, OptimizedMatchesNaiveResults) {
  int seed = GetParam();
  RandomDataset data(static_cast<uint64_t>(seed), 4000, 300, 6);
  util::Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  for (int trial = 0; trial < 3; ++trial) {
    std::string text = RandomQuery(&rng, 2 + rng.Uniform(3), 6);
    auto q = sparql::ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    engine::Executor exec(data.store, &data.dict);
    engine::ExecutionStats stats;
    auto optimized = exec.Run(*q, &stats);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    auto naive = engine::ExecuteNaive(*q, data.store, &data.dict);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    EXPECT_EQ(Canonicalize(*optimized), Canonicalize(*naive))
        << "seed=" << seed << " query: " << text;
  }
}

TEST_P(QueryPropertyTest, GreedyAndDpPlansGiveIdenticalResults) {
  int seed = GetParam();
  RandomDataset data(static_cast<uint64_t>(seed) + 1000, 3000, 200, 5);
  util::Rng rng(static_cast<uint64_t>(seed) * 17 + 3);
  std::string text = RandomQuery(&rng, 3 + rng.Uniform(2), 5);
  auto q = sparql::ParseQuery(text);
  ASSERT_TRUE(q.ok());

  auto dp_plan = opt::Optimize(*q, data.store, data.dict);
  auto greedy_plan = opt::OptimizeGreedy(*q, data.store, data.dict);
  ASSERT_TRUE(dp_plan.ok());
  ASSERT_TRUE(greedy_plan.ok());

  engine::Executor exec(data.store, &data.dict);
  engine::ExecutionStats s1, s2;
  auto r1 = exec.Execute(*q, *dp_plan->root, &s1);
  auto r2 = exec.Execute(*q, *greedy_plan->root, &s2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(Canonicalize(*r1), Canonicalize(*r2)) << text;
  // DP cost estimate must not exceed greedy's.
  EXPECT_LE(dp_plan->est_cout, greedy_plan->est_cout * (1 + 1e-9) + 1e-9);
}

TEST_P(QueryPropertyTest, ObservedCoutCountsJoinOutputs) {
  int seed = GetParam();
  RandomDataset data(static_cast<uint64_t>(seed) + 2000, 2000, 150, 4);
  util::Rng rng(static_cast<uint64_t>(seed) * 13 + 1);
  std::string text = RandomQuery(&rng, 2, 4);
  auto q = sparql::ParseQuery(text);
  ASSERT_TRUE(q.ok());
  engine::Executor exec(data.store, &data.dict);
  engine::ExecutionStats stats;
  auto result = exec.Run(*q, &stats);
  ASSERT_TRUE(result.ok());
  // Two patterns => exactly one join => observed C_out equals result size
  // (no filters/modifiers in these queries).
  EXPECT_EQ(stats.intermediate_rows, stats.result_rows);
  EXPECT_EQ(stats.result_rows, result->num_rows());
}

TEST_P(QueryPropertyTest, FingerprintStableAcrossRepeatedOptimization) {
  int seed = GetParam();
  RandomDataset data(static_cast<uint64_t>(seed) + 3000, 2500, 180, 5);
  util::Rng rng(static_cast<uint64_t>(seed) * 11 + 9);
  std::string text = RandomQuery(&rng, 3, 5);
  auto q = sparql::ParseQuery(text);
  ASSERT_TRUE(q.ok());
  auto p1 = opt::Optimize(*q, data.store, data.dict);
  auto p2 = opt::Optimize(*q, data.store, data.dict);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->fingerprint, p2->fingerprint);
  EXPECT_DOUBLE_EQ(p1->est_cout, p2->est_cout);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, QueryPropertyTest,
                         ::testing::Range(1, 13));

class StoreInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(StoreInvariantTest, SumOfPredicateCountsIsStoreSize) {
  RandomDataset data(static_cast<uint64_t>(GetParam()), 3000, 250, 7);
  uint64_t total = 0;
  for (rdf::TermId p : data.store.Predicates()) {
    total += data.store.CountPattern(rdf::kWildcardId, p, rdf::kWildcardId);
  }
  EXPECT_EQ(total, data.store.size());
}

TEST_P(StoreInvariantTest, DistinctBoundsHold) {
  RandomDataset data(static_cast<uint64_t>(GetParam()) + 500, 3000, 250, 7);
  for (rdf::TermId p : data.store.Predicates()) {
    uint64_t count =
        data.store.CountPattern(rdf::kWildcardId, p, rdf::kWildcardId);
    EXPECT_LE(data.store.DistinctSubjectsForPredicate(p), count);
    EXPECT_LE(data.store.DistinctObjectsForPredicate(p), count);
    EXPECT_GE(data.store.DistinctSubjectsForPredicate(p), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StoreInvariantTest,
                         ::testing::Range(1, 8));

}  // namespace
}  // namespace rdfparams

// Fault injection for the snapshot format: every corruption must surface
// as a clean checksum / format Status — never a crash, a hang, or a
// silently wrong store. Covers a bit flip in every page (header,
// dictionary, index runs, app meta, footer; CRC fields, payload, and
// padding alike), truncation at every page boundary and mid-page, wrong
// magic / version / page size, and zero-length / sub-page files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "storage/format.h"
#include "storage/snapshot.h"
#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace rdfparams::storage {
namespace {

constexpr uint32_t kPageSize = 512;  // small pages -> every class present

class StorageCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A small mixed store with an app-meta blob: at 512-byte pages the
    // file has a header, several dictionary pages, three index runs, a
    // meta page, and a footer — every page class the format defines.
    util::Rng rng(99);
    rdf::Dictionary dict;
    std::vector<rdf::TermId> ids;
    for (size_t i = 0; i < 40; ++i) {
      ids.push_back(dict.InternIri("http://example.org/corrupt/e" +
                                   std::to_string(i)));
    }
    rdf::TripleStore store;
    for (size_t i = 0; i < 300; ++i) {
      store.Add(ids[rng.Uniform(ids.size())], ids[rng.Uniform(ids.size())],
                ids[rng.Uniform(ids.size())]);
    }
    store.Finalize();

    path_ = new std::string(::testing::TempDir() + "rdfparams_corrupt.snap");
    SaveOptions options;
    options.page_size = kPageSize;
    ASSERT_TRUE(
        Snapshot::Save(dict, store, "meta-blob", *path_, options).ok());
    auto bytes = util::ReadFileToString(*path_);
    ASSERT_TRUE(bytes.ok());
    image_ = new std::string(std::move(bytes).value());
    ASSERT_EQ(image_->size() % kPageSize, 0u);

    // The pristine image must open cleanly — otherwise every "corruption
    // detected" assertion below would be vacuous.
    auto opened = Snapshot::Open(*path_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  }

  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete image_;
    path_ = nullptr;
    image_ = nullptr;
  }

  /// Writes `bytes` to a scratch file and returns its path.
  static std::string WriteScratch(const std::string& bytes) {
    std::string path = ::testing::TempDir() + "rdfparams_corrupt_case.snap";
    std::ofstream os(path, std::ios::trunc | std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.close();
    return path;
  }

  /// Opening `bytes` as a snapshot must fail cleanly (DataLoss for
  /// checksum damage, ParseError for format damage — never OK).
  static void ExpectOpenFails(const std::string& bytes, const char* what,
                              bool verify_file_checksum = true) {
    std::string path = WriteScratch(bytes);
    OpenOptions options;
    options.verify_file_checksum = verify_file_checksum;
    auto opened = Snapshot::Open(path, options);
    EXPECT_FALSE(opened.ok()) << what << ": corruption not detected";
    if (!opened.ok()) {
      StatusCode code = opened.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument)
          << what << ": unexpected status " << opened.status().ToString();
    }
    std::remove(path.c_str());
  }

  /// Opening `bytes` through the zero-copy path must fail cleanly too.
  static void ExpectMmapOpenFails(const std::string& bytes, const char* what,
                                  bool verify_file_checksum) {
    if (!util::MmapFile::Supported()) return;
    std::string path = WriteScratch(bytes);
    OpenOptions options;
    options.mmap = MmapMode::kOn;
    options.verify_file_checksum = verify_file_checksum;
    auto opened = Snapshot::Open(path, options);
    EXPECT_FALSE(opened.ok()) << what << ": mmap open missed the corruption";
    std::remove(path.c_str());
  }

  static std::string* path_;
  static std::string* image_;  ///< pristine snapshot bytes
};

std::string* StorageCorruptionTest::path_ = nullptr;
std::string* StorageCorruptionTest::image_ = nullptr;

TEST_F(StorageCorruptionTest, BitFlipInEveryPageIsDetected) {
  const size_t pages = image_->size() / kPageSize;
  for (size_t page = 0; page < pages; ++page) {
    // Vary the offset across pages so CRC fields, early payload, and tail
    // padding all get hit somewhere in the sweep.
    size_t offset = page * kPageSize + (page * 131) % kPageSize;
    std::string corrupt = *image_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    ExpectOpenFails(corrupt,
                    ("bit flip in page " + std::to_string(page)).c_str());
  }
}

TEST_F(StorageCorruptionTest, PayloadFlipCaughtWithoutWholeFilePass) {
  // Per-page CRCs alone (verify_file_checksum=false) must still catch
  // payload damage in pages the restore actually reads.
  const size_t pages = image_->size() / kPageSize;
  for (size_t page = 0; page < pages; ++page) {
    std::string corrupt = *image_;
    size_t offset = page * kPageSize + kPageCrcBytes + 7;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x01);
    ExpectOpenFails(corrupt,
                    ("payload flip, page " + std::to_string(page)).c_str(),
                    /*verify_file_checksum=*/false);
  }
}

TEST_F(StorageCorruptionTest, TruncationAtEveryPageBoundaryIsDetected) {
  const size_t pages = image_->size() / kPageSize;
  for (size_t keep = 0; keep < pages; ++keep) {
    ExpectOpenFails(image_->substr(0, keep * kPageSize),
                    ("truncated to " + std::to_string(keep) + " pages").c_str());
  }
}

TEST_F(StorageCorruptionTest, MidPageTruncationIsDetected) {
  const size_t pages = image_->size() / kPageSize;
  for (size_t keep = 0; keep < pages; ++keep) {
    ExpectOpenFails(
        image_->substr(0, keep * kPageSize + kPageSize / 2),
        ("truncated mid-page " + std::to_string(keep)).c_str());
  }
}

TEST_F(StorageCorruptionTest, ZeroLengthFileIsRejected) {
  std::string path = WriteScratch("");
  auto opened = Snapshot::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  EXPECT_NE(opened.status().message().find("empty"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(StorageCorruptionTest, SubPageFileIsRejected) {
  ExpectOpenFails(std::string(100, 'x'), "100-byte file");
}

TEST_F(StorageCorruptionTest, WrongMagicIsRejected) {
  std::string corrupt = *image_;
  corrupt[kPageCrcBytes] = 'X';  // first magic byte
  std::string path = WriteScratch(corrupt);
  auto opened = Snapshot::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos)
      << opened.status().ToString();
  std::remove(path.c_str());
}

TEST_F(StorageCorruptionTest, WrongVersionIsRejected) {
  std::string corrupt = *image_;
  corrupt[kPageCrcBytes + sizeof(kHeaderMagic)] = 99;  // version u32 LSB
  std::string path = WriteScratch(corrupt);
  auto opened = Snapshot::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  EXPECT_NE(opened.status().message().find("version"), std::string::npos)
      << opened.status().ToString();
  std::remove(path.c_str());
}

TEST_F(StorageCorruptionTest, WrongPageSizeIsRejected) {
  std::string corrupt = *image_;
  // page_size u32 follows magic + version; 513 is not a power of two.
  size_t off = kPageCrcBytes + sizeof(kHeaderMagic) + 4;
  corrupt[off] = 1;
  corrupt[off + 1] = 2;
  std::string path = WriteScratch(corrupt);
  auto opened = Snapshot::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  EXPECT_NE(opened.status().message().find("page size"), std::string::npos)
      << opened.status().ToString();
  std::remove(path.c_str());
}

TEST_F(StorageCorruptionTest, SwappedPagesAreDetected) {
  // Two intact pages exchanged: every byte is valid somewhere, but the
  // page-number seed in the CRC makes position part of the checksum.
  const size_t pages = image_->size() / kPageSize;
  ASSERT_GE(pages, 4u);
  std::string corrupt = *image_;
  std::string tmp = corrupt.substr(1 * kPageSize, kPageSize);
  corrupt.replace(1 * kPageSize, kPageSize, corrupt, 2 * kPageSize, kPageSize);
  corrupt.replace(2 * kPageSize, kPageSize, tmp);
  ExpectOpenFails(corrupt, "swapped pages 1 and 2");
}

// ---------------------------------------------------------------------------
// v2 raw sections (dictionary arena / records / hash): no per-page CRC,
// so damage there must be caught by the whole-file pass, by the section
// CRC when that pass is off, and identically through the mmap path.
// ---------------------------------------------------------------------------

TEST_F(StorageCorruptionTest, RawSectionFlipsAreDetectedInBothModes) {
  auto info = Snapshot::Inspect(*path_);
  ASSERT_TRUE(info.ok());
  for (uint32_t kind : {static_cast<uint32_t>(kSectionDictArena),
                        static_cast<uint32_t>(kSectionDictRecords),
                        static_cast<uint32_t>(kSectionDictHash)}) {
    const SectionInfo* s = info->header.FindSection(kind);
    ASSERT_NE(s, nullptr) << "fixture is not a v2 snapshot";
    ASSERT_GT(s->byte_length, 0u);
    for (uint64_t offset : {uint64_t{0}, s->byte_length / 2,
                            s->byte_length - 1}) {
      std::string corrupt = *image_;
      size_t pos = s->first_page * kPageSize + offset;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x04);
      std::string what =
          "raw section " + std::to_string(kind) + " flip at " +
          std::to_string(offset);
      // Whole-file pass on: caught before any adoption.
      ExpectOpenFails(corrupt, what.c_str());
      ExpectMmapOpenFails(corrupt, what.c_str(),
                          /*verify_file_checksum=*/true);
      // Whole-file pass off: the per-section CRC is the last line.
      ExpectOpenFails(corrupt, what.c_str(), /*verify_file_checksum=*/false);
      ExpectMmapOpenFails(corrupt, what.c_str(),
                          /*verify_file_checksum=*/false);
    }
  }
}

TEST_F(StorageCorruptionTest, SectionCrcFieldFlipIsDetected) {
  // Damage the stored CRC itself (in the header's section table): the
  // header page CRC catches it with or without the whole-file pass.
  auto info = Snapshot::Inspect(*path_);
  ASSERT_TRUE(info.ok());
  std::string corrupt = *image_;
  // The header payload is position-dependent, so flip a byte in the middle
  // of the header page past the fixed prologue.
  size_t pos = kPageCrcBytes + 64;
  corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x80);
  ExpectOpenFails(corrupt, "header section-table flip");
  ExpectOpenFails(corrupt, "header section-table flip",
                  /*verify_file_checksum=*/false);
}

TEST_F(StorageCorruptionTest, TruncationIsDetectedThroughMmapToo) {
  const size_t pages = image_->size() / kPageSize;
  for (size_t keep : {pages / 2, pages - 1}) {
    ExpectMmapOpenFails(image_->substr(0, keep * kPageSize),
                        ("mmap truncation to " + std::to_string(keep)).c_str(),
                        /*verify_file_checksum=*/true);
    ExpectMmapOpenFails(image_->substr(0, keep * kPageSize),
                        ("mmap truncation to " + std::to_string(keep)).c_str(),
                        /*verify_file_checksum=*/false);
  }
}

TEST_F(StorageCorruptionTest, V1ImageCorruptionStillDetected) {
  // The legacy byte-stream dictionary keeps its per-page CRCs; a flip in
  // any v1 page must fail in both verification modes.
  util::Rng rng(7);
  rdf::Dictionary dict;
  std::vector<rdf::TermId> ids;
  for (size_t i = 0; i < 30; ++i) {
    ids.push_back(dict.InternIri("http://example.org/v1/e" +
                                 std::to_string(i)));
  }
  rdf::TripleStore store;
  for (size_t i = 0; i < 200; ++i) {
    store.Add(ids[rng.Uniform(ids.size())], ids[rng.Uniform(ids.size())],
              ids[rng.Uniform(ids.size())]);
  }
  store.Finalize();
  std::string path = WriteScratch("");
  SaveOptions options;
  options.page_size = kPageSize;
  options.format_version = 1;
  ASSERT_TRUE(Snapshot::Save(dict, store, "v1-meta", path, options).ok());
  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::remove(path.c_str());

  const size_t pages = bytes->size() / kPageSize;
  for (size_t page = 0; page < pages; ++page) {
    std::string corrupt = *bytes;
    size_t offset = page * kPageSize + kPageCrcBytes + 3;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x20);
    ExpectOpenFails(corrupt, ("v1 flip page " + std::to_string(page)).c_str());
    ExpectOpenFails(corrupt, ("v1 flip page " + std::to_string(page)).c_str(),
                    /*verify_file_checksum=*/false);
  }
}

TEST_F(StorageCorruptionTest, InspectRejectsCorruptionToo) {
  std::string corrupt = *image_;
  size_t mid = corrupt.size() / 2;
  corrupt[mid] = static_cast<char>(corrupt[mid] ^ 0x40);
  std::string path = WriteScratch(corrupt);
  auto info = Snapshot::Inspect(path);
  EXPECT_FALSE(info.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdfparams::storage

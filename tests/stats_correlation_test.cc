#include "stats/correlation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rdfparams::stats {
namespace {

TEST(PearsonTest, PerfectLinearCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, IndependentNearZero) {
  util::Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.NextDouble());
    y.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(PearsonTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);       // size mismatch
  EXPECT_DOUBLE_EQ(PearsonCorrelation({3, 3, 3}, {1, 2, 3}), 0.0);  // constant
}

TEST(PearsonTest, NoisyLinearAboveThreshold) {
  // Mirrors the paper's "ca. 85% Pearson correlation" situation: a linear
  // relation plus noise.
  util::Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    double xi = rng.NextDouble() * 100;
    x.push_back(xi);
    y.push_back(2 * xi + 20 * rng.NextGaussian());
  }
  double r = PearsonCorrelation(x, y);
  EXPECT_GT(r, 0.85);
  EXPECT_LT(r, 1.0);
}

TEST(FractionalRanksTest, TiesAveraged) {
  std::vector<double> xs{10, 20, 20, 30};
  std::vector<double> ranks = FractionalRanks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 8, 27, 64, 125};  // x^3: nonlinear but monotone
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(SpearmanTest, RobustToOutliers) {
  std::vector<double> x{1, 2, 3, 4, 5, 6};
  std::vector<double> y{1, 2, 3, 4, 5, 10000};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace rdfparams::stats

// Tests for the streaming root aggregation path: results must be
// identical to materialize-then-aggregate for every query shape, filters
// must apply before accumulation, and cross-product aggregates must work
// (the shape behind BSBM-BI Q4's ratio computation).
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "rdf/turtle.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace rdfparams::engine {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string doc = "@prefix x: <http://x/> .\n";
    util::Rng rng(77);
    for (int i = 0; i < 60; ++i) {
      doc += "x:item" + std::to_string(i) + " x:cat x:c" +
             std::to_string(i % 4) + " .\n";
      int n_vals = 1 + static_cast<int>(rng.Uniform(3));
      for (int k = 0; k < n_vals; ++k) {
        doc += "x:item" + std::to_string(i) + " x:score " +
               std::to_string(rng.Uniform(100)) + " .\n";
      }
    }
    for (int i = 0; i < 10; ++i) {
      doc += "x:other" + std::to_string(i) + " x:flag x:on .\n";
    }
    ASSERT_TRUE(rdf::LoadTurtle(doc, &dict_, &store_).ok());
    store_.Finalize();
  }

  sparql::SelectQuery Parse(const std::string& text) {
    auto q = sparql::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  /// Runs through the normal path (streaming kicks in automatically) and
  /// through a forced materialized path (strip aggregates, aggregate by
  /// hand is not needed — instead compare against ExecuteNaive which uses
  /// the same streaming rules, and against a manual computation).
  BindingTable Run(const std::string& text, ExecutionStats* stats = nullptr) {
    auto q = Parse(text);
    Executor exec(store_, &dict_);
    ExecutionStats local;
    auto result = exec.Run(q, stats != nullptr ? stats : &local);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  double NumAt(const BindingTable& t, size_t row, const char* var) {
    int col = t.VarIndex(var);
    EXPECT_GE(col, 0);
    return dict_.term(t.at(row, static_cast<size_t>(col)))
        .AsDouble()
        .value_or(-1);
  }

  rdf::Dictionary dict_;
  rdf::TripleStore store_;
};

TEST_F(StreamingTest, JoinAggregateMatchesManualComputation) {
  // COUNT of score-triples per category via a join.
  auto t = Run(
      "SELECT ?c (COUNT(?v) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?i <http://x/score> ?v . } GROUP BY ?c ORDER BY ?c");
  ASSERT_EQ(t.num_rows(), 4u);
  // Manual: count via the store.
  rdf::TermId p_cat = *dict_.FindIri("http://x/cat");
  rdf::TermId p_score = *dict_.FindIri("http://x/score");
  double total = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) total += NumAt(t, r, "n");
  uint64_t expected = 0;
  store_.ScanPattern(rdf::kWildcardId, p_cat, rdf::kWildcardId,
                     [&](const rdf::Triple& tri) {
                       expected += store_.CountPattern(tri.s, p_score,
                                                       rdf::kWildcardId);
                     });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(expected));
}

TEST_F(StreamingTest, StreamedEqualsSinglePatternAggregation) {
  // The single-pattern plan takes the materialized path; the join plan
  // takes the streaming path. COUNT(*) over the same data must agree.
  auto single = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?i <http://x/score> ?v . }");
  auto joined = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?i <http://x/score> ?v . }");
  ASSERT_EQ(single.num_rows(), 1u);
  ASSERT_EQ(joined.num_rows(), 1u);
  // Every item has exactly one category, so both counts equal the number
  // of score triples.
  EXPECT_DOUBLE_EQ(NumAt(single, 0, "n"), NumAt(joined, 0, "n"));
}

TEST_F(StreamingTest, FilterAppliedBeforeAccumulation) {
  auto all = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?i <http://x/score> ?v . }");
  auto filtered = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?i <http://x/score> ?v . FILTER(?v < 50) }");
  double n_all = NumAt(all, 0, "n");
  double n_filtered = NumAt(filtered, 0, "n");
  EXPECT_LT(n_filtered, n_all);
  EXPECT_GT(n_filtered, 0);

  // Cross-check against the non-aggregate row count with the same filter.
  auto rows = Run(
      "SELECT * WHERE { ?i <http://x/cat> ?c . ?i <http://x/score> ?v . "
      "FILTER(?v < 50) }");
  EXPECT_DOUBLE_EQ(n_filtered, static_cast<double>(rows.num_rows()));
}

TEST_F(StreamingTest, CrossProductAggregate) {
  // Disconnected components: (item, cat) x (flagged others). The root is
  // a cross product; only streaming makes this shape scale.
  ExecutionStats stats;
  auto t = Run(
      "SELECT ?c (COUNT(*) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?o <http://x/flag> <http://x/on> . } GROUP BY ?c ORDER BY ?c",
      &stats);
  ASSERT_EQ(t.num_rows(), 4u);
  // Each category has 15 items x 10 flagged = 150 combinations.
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(NumAt(t, r, "n"), 150.0);
  }
  // The streamed root output was counted as observed C_out.
  EXPECT_EQ(stats.intermediate_rows, 600u);
  EXPECT_EQ(stats.result_rows, 4u);
}

TEST_F(StreamingTest, AvgMinMaxThroughStreaming) {
  auto t = Run(
      "SELECT ?c (AVG(?v) AS ?avg) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) "
      "WHERE { ?i <http://x/cat> ?c . ?i <http://x/score> ?v . } "
      "GROUP BY ?c");
  ASSERT_EQ(t.num_rows(), 4u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    double avg = NumAt(t, r, "avg");
    double lo = NumAt(t, r, "lo");
    double hi = NumAt(t, r, "hi");
    EXPECT_LE(lo, avg);
    EXPECT_LE(avg, hi);
    EXPECT_GE(lo, 0);
    EXPECT_LE(hi, 99);
  }
}

TEST_F(StreamingTest, OrderByAggregateWithLimit) {
  auto t = Run(
      "SELECT ?c (COUNT(?v) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?i <http://x/score> ?v . } GROUP BY ?c ORDER BY DESC(?n) LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_GE(NumAt(t, 0, "n"), NumAt(t, 1, "n"));
}

TEST_F(StreamingTest, GroupKeyFromProbeSide) {
  // Group by a variable that only exists on one side of the join.
  auto t = Run(
      "SELECT ?i (COUNT(?v) AS ?n) WHERE { ?i <http://x/cat> "
      "<http://x/c0> . ?i <http://x/score> ?v . } GROUP BY ?i");
  EXPECT_EQ(t.num_rows(), 15u);  // 60 items, 4 categories
}

TEST_F(StreamingTest, EmptyInputYieldsNoGroups) {
  auto t = Run(
      "SELECT ?c (COUNT(*) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?i <http://x/missing> ?v . } GROUP BY ?c");
  EXPECT_EQ(t.num_rows(), 0u);
}

/// Property: for random connected queries, COUNT(*) grouped by any pattern
/// variable must sum to the raw (non-aggregate) result row count, and the
/// group count must equal the number of distinct values of that variable.
class StreamingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamingPropertyTest, GroupedCountsSumToRowCount) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 5);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 3000; ++i) {
    store.Add(dict.InternIri("http://e/" + std::to_string(rng.Uniform(120))),
              dict.InternIri("http://p/" + std::to_string(rng.Uniform(4))),
              dict.InternIri("http://e/" + std::to_string(rng.Uniform(120))));
  }
  store.Finalize();

  for (int trial = 0; trial < 3; ++trial) {
    size_t n_patterns = 2 + rng.Uniform(2);
    std::string body;
    for (size_t k = 0; k < n_patterns; ++k) {
      body += "?v" + std::to_string(k) + " <http://p/" +
              std::to_string(rng.Uniform(4)) + "> ?v" +
              std::to_string(k + 1) + " . ";
    }
    std::string group_var = "v" + std::to_string(rng.Uniform(n_patterns + 1));

    auto raw = sparql::ParseQuery("SELECT * WHERE { " + body + "}");
    auto agg = sparql::ParseQuery("SELECT ?" + group_var +
                                  " (COUNT(*) AS ?n) WHERE { " + body +
                                  "} GROUP BY ?" + group_var);
    ASSERT_TRUE(raw.ok() && agg.ok());

    Executor exec(store, &dict);
    ExecutionStats s1, s2;
    auto raw_result = exec.Run(*raw, &s1);
    auto agg_result = exec.Run(*agg, &s2);
    ASSERT_TRUE(raw_result.ok()) << raw_result.status().ToString();
    ASSERT_TRUE(agg_result.ok()) << agg_result.status().ToString();

    // Sum of group counts == raw row count.
    double total = 0;
    int n_col = agg_result->VarIndex("n");
    ASSERT_GE(n_col, 0);
    for (size_t r = 0; r < agg_result->num_rows(); ++r) {
      total += dict.term(agg_result->at(r, static_cast<size_t>(n_col)))
                   .AsDouble()
                   .value_or(0);
    }
    EXPECT_DOUBLE_EQ(total, static_cast<double>(raw_result->num_rows()));

    // Number of groups == distinct values of the group var in raw rows.
    int g_col = raw_result->VarIndex(group_var);
    ASSERT_GE(g_col, 0);
    std::set<rdf::TermId> distinct;
    for (size_t r = 0; r < raw_result->num_rows(); ++r) {
      distinct.insert(raw_result->at(r, static_cast<size_t>(g_col)));
    }
    EXPECT_EQ(agg_result->num_rows(), distinct.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StreamingPropertyTest,
                         ::testing::Range(1, 9));

TEST_F(StreamingTest, ThreePatternStreaming) {
  // Root join of (join, scan): still streamed.
  ExecutionStats stats;
  auto t = Run(
      "SELECT ?c (COUNT(*) AS ?n) WHERE { ?i <http://x/cat> ?c . "
      "?i <http://x/score> ?v . ?i <http://x/cat> ?c2 . } GROUP BY ?c",
      &stats);
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_GT(stats.intermediate_rows, 0u);
}

}  // namespace
}  // namespace rdfparams::engine

// Differential harness for the sharded N-Triples load pipeline and the
// parallel index finalize.
//
// The contract under test: for any document, LoadNTriples with
// LoadOptions{threads = N} produces a Dictionary whose id -> term mapping
// is byte-identical to the serial streaming load, and a TripleStore whose
// Add() sequence (hence every finalized index) is identical too — for
// every N, every chunking, and with chunk boundaries forced down to a few
// bytes. Likewise Finalize(pool)/BuildAllIndexes(pool) must reproduce the
// serial index contents exactly.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rdfparams::rdf {
namespace {

/// A synthetic document with heavy term reuse across chunk boundaries,
/// blank nodes, typed/lang literals, comments, blank lines, and a mix of
/// LF and CRLF endings — everything the chunker has to not trip over.
std::string MakeDocument(size_t lines, uint64_t seed) {
  util::Rng rng(seed);
  std::ostringstream os;
  for (size_t i = 0; i < lines; ++i) {
    if (i % 37 == 0) os << "# comment " << i << "\n";
    if (i % 53 == 0) os << "\n";
    const char* eol = (i % 5 == 0) ? "\r\n" : "\n";
    uint64_t s = rng.Next64() % (lines / 4 + 1);
    uint64_t p = rng.Next64() % 13;
    uint64_t o = rng.Next64() % (lines / 2 + 1);
    switch (rng.Next64() % 4) {
      case 0:
        os << "<http://x/s" << s << "> <http://x/p" << p << "> <http://x/o"
           << o << "> ." << eol;
        break;
      case 1:
        os << "_:b" << s << " <http://x/p" << p << "> \"lit \\\"" << o
           << "\\\"\" ." << eol;
        break;
      case 2:
        os << "<http://x/s" << s << "> <http://x/p" << p << "> \"" << o
           << "\"^^<http://www.w3.org/2001/XMLSchema#integer> ." << eol;
        break;
      default:
        // Blank-node object flush against the terminating dot (the
        // PR's parser regression) plus a lang literal on every other.
        if (o % 2 == 0) {
          os << "_:s" << s << " <http://x/p" << p << "> _:o" << o << "."
             << eol;
        } else {
          os << "<http://x/s" << s << "> <http://x/p" << p << "> \"v" << o
             << "\"@en-US ." << eol;
        }
    }
  }
  return os.str();
}

std::string StoreImage(const Dictionary& dict, const TripleStore& store) {
  std::ostringstream os;
  EXPECT_TRUE(WriteNTriples(dict, store, os).ok());
  return os.str();
}

void ExpectIdenticalDictionaries(const Dictionary& a, const Dictionary& b) {
  ASSERT_EQ(a.size(), b.size());
  for (TermId id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a.term(id), b.term(id)) << "TermId " << id << " diverged";
  }
}

TEST(SplitLineChunksTest, ChunksCoverDocumentAndEndOnNewlines) {
  std::string doc = MakeDocument(400, 3);
  for (size_t target : {1u, 2u, 3u, 7u, 64u, 10000u}) {
    auto chunks = SplitLineChunks(doc, target);
    ASSERT_FALSE(chunks.empty());
    std::string joined;
    for (size_t i = 0; i < chunks.size(); ++i) {
      joined.append(chunks[i]);
      if (i + 1 < chunks.size()) {
        EXPECT_EQ(chunks[i].back(), '\n')
            << "chunk " << i << " of target " << target;
      }
    }
    EXPECT_EQ(joined, doc) << "target " << target;
  }
  EXPECT_TRUE(SplitLineChunks("", 4).empty());
  auto no_newline = SplitLineChunks("just one line no newline", 4);
  ASSERT_EQ(no_newline.size(), 1u);
}

TEST(ParallelLoadTest, ShardedLoadIsByteIdenticalToSerial) {
  const std::string doc = MakeDocument(3000, 17);

  Dictionary serial_dict;
  TripleStore serial_store;
  ASSERT_TRUE(LoadNTriples(doc, &serial_dict, &serial_store).ok());
  serial_store.BuildAllIndexes();
  serial_store.Finalize();
  const std::string serial_image = StoreImage(serial_dict, serial_store);

  for (int threads : {1, 2, 4, 8}) {
    for (size_t min_chunk : {size_t{1}, size_t{64}, size_t{1} << 20}) {
      Dictionary dict;
      TripleStore store;
      LoadOptions options;
      options.threads = threads;
      options.min_chunk_bytes = min_chunk;
      ASSERT_TRUE(LoadNTriples(doc, &dict, &store, options).ok())
          << "threads=" << threads << " min_chunk=" << min_chunk;
      ExpectIdenticalDictionaries(serial_dict, dict);
      util::ThreadPool pool(static_cast<size_t>(threads) - 1);
      store.BuildAllIndexes(&pool);
      store.Finalize(&pool);
      EXPECT_EQ(store.size(), serial_store.size());
      EXPECT_EQ(StoreImage(dict, store), serial_image)
          << "threads=" << threads << " min_chunk=" << min_chunk;
      // Spot-check a secondary index range against the serial store.
      auto serial_range = serial_store.Range(IndexOrder::kPOS, kWildcardId,
                                             kWildcardId, kWildcardId);
      auto range =
          store.Range(IndexOrder::kPOS, kWildcardId, kWildcardId, kWildcardId);
      ASSERT_EQ(range.size(), serial_range.size());
      for (size_t i = 0; i < range.size(); ++i) {
        ASSERT_TRUE(range[i] == serial_range[i]) << "POS row " << i;
      }
    }
  }
}

TEST(ParallelLoadTest, ExternalPoolAndAppendToNonEmptyDictionary) {
  const std::string doc_a = MakeDocument(600, 5);
  const std::string doc_b = MakeDocument(600, 6);

  Dictionary serial_dict;
  TripleStore serial_store;
  ASSERT_TRUE(LoadNTriples(doc_a, &serial_dict, &serial_store).ok());
  ASSERT_TRUE(LoadNTriples(doc_b, &serial_dict, &serial_store).ok());
  serial_store.Finalize();

  util::ThreadPool pool(3);
  Dictionary dict;
  TripleStore store;
  LoadOptions options;
  options.pool = &pool;
  options.min_chunk_bytes = 1;
  // Second load appends into a dictionary already holding doc_a's terms;
  // overlays must resolve them to their existing ids.
  ASSERT_TRUE(LoadNTriples(doc_a, &dict, &store, options).ok());
  ASSERT_TRUE(LoadNTriples(doc_b, &dict, &store, options).ok());
  ExpectIdenticalDictionaries(serial_dict, dict);
  store.Finalize(&pool);
  EXPECT_EQ(StoreImage(dict, store), StoreImage(serial_dict, serial_store));
}

TEST(ParallelLoadTest, ErrorMatchesSerialAndLeavesOutputsUntouched) {
  std::string doc = MakeDocument(500, 9);
  doc += "<http://x/good> <http://x/p> <http://x/o> .\n";
  doc += "this is not a triple\n";
  doc += "<http://x/after> <http://x/p> <http://x/o> .\n";

  Dictionary serial_dict;
  TripleStore serial_store;
  Status serial_status = LoadNTriples(doc, &serial_dict, &serial_store);
  ASSERT_FALSE(serial_status.ok());

  for (int threads : {2, 4}) {
    // min_chunk 1 shards for real; 1 MB forces the single-chunk fallback,
    // which must be just as atomic as the sharded path.
    for (size_t min_chunk : {size_t{1}, size_t{1} << 20}) {
      Dictionary dict;
      TripleStore store;
      LoadOptions options;
      options.threads = threads;
      options.min_chunk_bytes = min_chunk;
      Status st = LoadNTriples(doc, &dict, &store, options);
      ASSERT_FALSE(st.ok());
      // Same message, same document-global line number as serial.
      EXPECT_EQ(st.message(), serial_status.message())
          << "threads=" << threads << " min_chunk=" << min_chunk;
      // Unlike the streaming path, the options overload is atomic on
      // error: nothing may have been interned or added.
      EXPECT_EQ(dict.size(), 0u);
      EXPECT_EQ(store.size(), 0u);
    }
  }
}

TEST(ParallelLoadTest, FileLoadShardedMatchesSerial) {
  const std::string doc = MakeDocument(800, 21);
  const std::string path = ::testing::TempDir() + "/rdfparams_sharded.nt";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << doc;
    ASSERT_TRUE(os.good());
  }
  Dictionary serial_dict, dict;
  TripleStore serial_store, store;
  ASSERT_TRUE(LoadNTriplesFile(path, &serial_dict, &serial_store).ok());
  LoadOptions options;
  options.threads = 4;
  options.min_chunk_bytes = 1;
  ASSERT_TRUE(LoadNTriplesFile(path, &dict, &store, options).ok());
  ExpectIdenticalDictionaries(serial_dict, dict);
  serial_store.Finalize();
  store.Finalize();
  EXPECT_EQ(StoreImage(dict, store), StoreImage(serial_dict, serial_store));
  std::remove(path.c_str());
}

TEST(ParallelFinalizeTest, PoolFinalizeMatchesSerialOnAllSixIndexes) {
  util::Rng rng(99);
  TripleStore serial_store, pooled_store;
  Dictionary dict;
  for (int i = 0; i < 20000; ++i) {
    TermId s = static_cast<TermId>(rng.Next64() % 500);
    TermId p = static_cast<TermId>(rng.Next64() % 20);
    TermId o = static_cast<TermId>(rng.Next64() % 800);
    serial_store.Add(s, p, o);
    pooled_store.Add(s, p, o);
  }
  serial_store.BuildAllIndexes();
  serial_store.Finalize();

  util::ThreadPool pool(3);
  pooled_store.BuildAllIndexes(&pool);
  pooled_store.Finalize(&pool);

  ASSERT_EQ(serial_store.size(), pooled_store.size());
  for (IndexOrder order :
       {IndexOrder::kSPO, IndexOrder::kPOS, IndexOrder::kOSP,
        IndexOrder::kSOP, IndexOrder::kPSO, IndexOrder::kOPS}) {
    auto a = serial_store.Range(order, kWildcardId, kWildcardId, kWildcardId);
    auto b = pooled_store.Range(order, kWildcardId, kWildcardId, kWildcardId);
    ASSERT_EQ(a.size(), b.size()) << IndexOrderName(order);
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(a[i] == b[i]) << IndexOrderName(order) << " row " << i;
    }
  }
  EXPECT_EQ(serial_store.NumDistinctSubjects(),
            pooled_store.NumDistinctSubjects());
  EXPECT_EQ(serial_store.NumDistinctPredicates(),
            pooled_store.NumDistinctPredicates());
  EXPECT_EQ(serial_store.NumDistinctObjects(),
            pooled_store.NumDistinctObjects());
}

TEST(ParallelFinalizeTest, BuildAllIndexesAfterFinalizeOnPool) {
  TripleStore store;
  for (TermId i = 0; i < 300; ++i) store.Add(i % 7, i % 3, i % 11);
  store.Finalize();
  util::ThreadPool pool(2);
  store.BuildAllIndexes(&pool);
  auto sop = store.Range(IndexOrder::kSOP, kWildcardId, kWildcardId,
                         kWildcardId);
  EXPECT_EQ(sop.size(), store.size());
}

}  // namespace
}  // namespace rdfparams::rdf

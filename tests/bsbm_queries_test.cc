#include "bsbm/queries.h"

#include <gtest/gtest.h>

#include "core/workload.h"
#include "engine/executor.h"

namespace rdfparams::bsbm {
namespace {

class BsbmQueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.num_products = 400;
    config.type_depth = 3;
    config.type_branching = 3;
    config.seed = 5;
    ds_ = new Dataset(Generate(config));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* BsbmQueriesTest::ds_ = nullptr;

TEST_F(BsbmQueriesTest, AllTemplatesParse) {
  auto templates = AllTemplates(*ds_);
  ASSERT_EQ(templates.size(), 5u);
  EXPECT_EQ(templates[0].name(), "BSBM-Q1");
  EXPECT_EQ(templates[3].name(), "BSBM-Q4");
  for (const auto& t : templates) {
    EXPECT_FALSE(t.parameter_names().empty()) << t.name();
  }
}

TEST_F(BsbmQueriesTest, Q4ParametersAndShape) {
  auto q4 = MakeQ4(*ds_);
  EXPECT_EQ(q4.parameter_names(),
            (std::vector<std::string>{"ProductType"}));
  // Ratio form: (?p, ?f) component x (?p2, ?offer, ?price) component.
  EXPECT_EQ(q4.query().patterns.size(), 5u);
  EXPECT_FALSE(q4.query().aggregates.empty());
}

TEST_F(BsbmQueriesTest, Q4ExecutesForRootAndLeaf) {
  auto q4 = MakeQ4(*ds_);
  core::WorkloadRunner runner(ds_->store, &ds_->dict);

  sparql::ParameterBinding root;
  root.values = {ds_->types[0].id};
  auto obs_root = runner.RunOnce(q4, root);
  ASSERT_TRUE(obs_root.ok()) << obs_root.status().ToString();
  EXPECT_GT(obs_root->observed_cout, 0u);

  sparql::ParameterBinding leaf;
  leaf.values = {ds_->LeafTypeIds().back()};
  auto obs_leaf = runner.RunOnce(q4, leaf);
  ASSERT_TRUE(obs_leaf.ok());
  // The generic (root) type touches much more data than a leaf (E3 driver).
  EXPECT_GT(obs_root->observed_cout, 5 * obs_leaf->observed_cout);
}

TEST_F(BsbmQueriesTest, Q2FindsSimilarProducts) {
  auto q2 = MakeQ2(*ds_);
  core::WorkloadRunner runner(ds_->store, &ds_->dict);
  sparql::ParameterBinding b;
  b.values = {ds_->products[0]};
  auto obs = runner.RunOnce(q2, b);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
  EXPECT_LE(obs->result_rows, 10u);  // LIMIT 10
  EXPECT_GE(obs->result_rows, 1u);   // at least the product itself
}

TEST_F(BsbmQueriesTest, Q1LookupJoin) {
  auto q1 = MakeQ1(*ds_);
  core::WorkloadRunner runner(ds_->store, &ds_->dict);
  // Use the root type and some feature; result may be empty but must run.
  sparql::ParameterBinding b;
  b.values = {ds_->types[0].id, ds_->features[0]};
  // Parameter order: q1 parameters are (type, feature).
  ASSERT_EQ(q1.parameter_names().size(), 2u);
  auto obs = runner.RunOnce(q1, b);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
}

TEST_F(BsbmQueriesTest, Q3AndQ5Execute) {
  core::WorkloadRunner runner(ds_->store, &ds_->dict);
  sparql::ParameterBinding b;
  b.values = {ds_->types[0].id};
  auto obs3 = runner.RunOnce(MakeQ3(*ds_), b);
  ASSERT_TRUE(obs3.ok()) << obs3.status().ToString();
  EXPECT_LE(obs3->result_rows, 10u);
  auto obs5 = runner.RunOnce(MakeQ5(*ds_), b);
  ASSERT_TRUE(obs5.ok()) << obs5.status().ToString();
  EXPECT_LE(obs5->result_rows, 10u);
}

TEST_F(BsbmQueriesTest, DomainsNonEmptyAndValid) {
  EXPECT_EQ(TypeDomain(*ds_).size(), ds_->types.size());
  EXPECT_EQ(ProductDomain(*ds_).size(), ds_->products.size());
  EXPECT_FALSE(FeatureDomain(*ds_).empty());
}

}  // namespace
}  // namespace rdfparams::bsbm

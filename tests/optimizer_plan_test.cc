#include "optimizer/plan.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace rdfparams::opt {
namespace {

TEST(PlanNodeTest, ScanBasics) {
  auto scan = PlanNode::MakeScan(3, rdf::IndexOrder::kPOS);
  EXPECT_TRUE(scan->is_scan());
  EXPECT_EQ(scan->pattern_index, 3u);
  EXPECT_EQ(scan->pattern_set, 8u);
  EXPECT_EQ(scan->Fingerprint(), "S3");
  EXPECT_EQ(scan->NumJoins(), 0u);
}

TEST(PlanNodeTest, JoinCombinesPatternSets) {
  auto join = PlanNode::MakeJoin(PlanNode::MakeScan(0, rdf::IndexOrder::kSPO),
                                 PlanNode::MakeScan(2, rdf::IndexOrder::kSPO),
                                 {"x"});
  EXPECT_TRUE(join->is_join());
  EXPECT_EQ(join->pattern_set, 0b101u);
  EXPECT_EQ(join->Fingerprint(), "J(S0,S2)");
  EXPECT_EQ(join->NumJoins(), 1u);
}

TEST(PlanNodeTest, FingerprintDistinguishesShapes) {
  // Left-deep ((0 1) 2) vs bushy ((0 2) 1) vs ((0 1) 2) with swapped leaves.
  auto a = PlanNode::MakeJoin(
      PlanNode::MakeJoin(PlanNode::MakeScan(0, rdf::IndexOrder::kSPO),
                         PlanNode::MakeScan(1, rdf::IndexOrder::kSPO), {}),
      PlanNode::MakeScan(2, rdf::IndexOrder::kSPO), {});
  auto b = PlanNode::MakeJoin(
      PlanNode::MakeJoin(PlanNode::MakeScan(0, rdf::IndexOrder::kSPO),
                         PlanNode::MakeScan(2, rdf::IndexOrder::kSPO), {}),
      PlanNode::MakeScan(1, rdf::IndexOrder::kSPO), {});
  auto c = PlanNode::MakeJoin(
      PlanNode::MakeScan(2, rdf::IndexOrder::kSPO),
      PlanNode::MakeJoin(PlanNode::MakeScan(0, rdf::IndexOrder::kSPO),
                         PlanNode::MakeScan(1, rdf::IndexOrder::kSPO), {}),
      {});
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());
  EXPECT_NE(a->Fingerprint(), c->Fingerprint());
  EXPECT_NE(b->Fingerprint(), c->Fingerprint());
}

TEST(PlanNodeTest, CloneIsDeepAndEqual) {
  auto join = PlanNode::MakeJoin(PlanNode::MakeScan(0, rdf::IndexOrder::kSPO),
                                 PlanNode::MakeScan(1, rdf::IndexOrder::kOSP),
                                 {"v"});
  join->est_cardinality = 42;
  join->est_cout = 99;
  auto clone = join->Clone();
  EXPECT_EQ(clone->Fingerprint(), join->Fingerprint());
  EXPECT_EQ(clone->est_cardinality, 42);
  EXPECT_EQ(clone->est_cout, 99);
  EXPECT_EQ(clone->join_vars, join->join_vars);
  EXPECT_NE(clone->left.get(), join->left.get());  // deep copy
  EXPECT_EQ(clone->left->index_order, rdf::IndexOrder::kSPO);
  EXPECT_EQ(clone->right->index_order, rdf::IndexOrder::kOSP);
}

TEST(PlanNodeTest, ExplainMentionsPatternsAndEstimates) {
  auto q = sparql::ParseQuery(
      "SELECT * WHERE { ?s <http://p> ?v . ?v <http://q> ?o . }");
  ASSERT_TRUE(q.ok());
  auto join = PlanNode::MakeJoin(PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
                                 PlanNode::MakeScan(1, rdf::IndexOrder::kPOS),
                                 {"v"});
  join->est_cardinality = 7;
  std::string text = join->Explain(*q);
  EXPECT_NE(text.find("HashJoin[?v]"), std::string::npos);
  EXPECT_NE(text.find("IndexScan[POS] #0"), std::string::npos);
  EXPECT_NE(text.find("<http://q>"), std::string::npos);
}

}  // namespace
}  // namespace rdfparams::opt

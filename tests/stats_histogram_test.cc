#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace rdfparams::stats {
namespace {

TEST(HistogramTest, LinearBinning) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.99);  // bin 9
  h.Add(5.0);   // bin 5
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-1.0);
  h.Add(2.0);
  h.Add(1.0);  // hi edge counts as overflow (half-open)
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, LogBinsCoverDecades) {
  Histogram h = Histogram::MakeLog(0.001, 1000.0, 6);
  EXPECT_NEAR(h.bin_edge(0), 0.001, 1e-9);
  EXPECT_NEAR(h.bin_edge(6), 1000.0, 1e-6);
  // Each bin spans one decade.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(h.bin_edge(i + 1) / h.bin_edge(i), 10.0, 1e-6);
  }
  h.Add(0.005);
  h.Add(50.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(HistogramTest, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.Add(1.5);
  h.Add(1.6);
  h.Add(0.5);
  EXPECT_EQ(h.ModeBin(), 1u);
}

TEST(HistogramTest, CountModesBimodal) {
  Histogram h(0.0, 100.0, 20);
  // Cluster near 10 and cluster near 90, empty middle (E3 shape).
  for (int i = 0; i < 50; ++i) h.Add(8.0 + (i % 5));
  for (int i = 0; i < 30; ++i) h.Add(88.0 + (i % 5));
  EXPECT_GE(h.CountModes(), 2u);
}

TEST(HistogramTest, CountModesUnimodal) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(5.0 + ((i % 3) - 1) * 0.5);
  EXPECT_EQ(h.CountModes(), 1u);
}

TEST(HistogramTest, SparklineLengthMatchesBins) {
  Histogram h(0.0, 1.0, 16);
  for (int i = 0; i < 50; ++i) h.Add(i / 50.0);
  EXPECT_EQ(h.Sparkline().size(), 16u);
}

TEST(HistogramTest, ToStringListsBuckets) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(5.0);
  std::string s = h.ToString();
  EXPECT_NE(s.find("overflow"), std::string::npos);
}

}  // namespace
}  // namespace rdfparams::stats

#include "rdf/turtle.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "rdf/ntriples.h"

namespace rdfparams::rdf {
namespace {

std::vector<std::string> ParseToLines(const std::string& doc, Status* st) {
  std::vector<std::string> out;
  *st = ParseTurtle(doc, [&](const Term& s, const Term& p, const Term& o) {
    out.push_back(ToNTriplesLine(s, p, o));
  });
  return out;
}

TEST(TurtleTest, PrefixAndPrefixedNames) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b .\n",
      &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "<http://example.org/a> <http://example.org/p> "
            "<http://example.org/b> .");
}

TEST(TurtleTest, AKeywordExpandsToRdfType) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://x/> .\n"
      "ex:s a ex:Class .\n",
      &st);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("22-rdf-syntax-ns#type"), std::string::npos);
}

TEST(TurtleTest, SemicolonPredicateLists) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p1 ex:o1 ;\n"
      "     ex:p2 ex:o2 ;\n"
      "     ex:p3 \"v\" .\n",
      &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(lines.size(), 3u);
  for (const std::string& l : lines) {
    EXPECT_NE(l.find("<http://x/s>"), std::string::npos);
  }
}

TEST(TurtleTest, CommaObjectLists) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p ex:a, ex:b, ex:c .\n",
      &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(lines.size(), 3u);
}

TEST(TurtleTest, NumericAndBooleanLiterals) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:int 42 .\n"
      "ex:s ex:dec 3.25 .\n"
      "ex:s ex:dbl 1.5e3 .\n"
      "ex:s ex:neg -7 .\n"
      "ex:s ex:t true .\n"
      "ex:s ex:f false .\n",
      &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("\"42\"^^"), std::string::npos);
  EXPECT_NE(lines[0].find("integer"), std::string::npos);
  EXPECT_NE(lines[1].find("decimal"), std::string::npos);
  EXPECT_NE(lines[2].find("double"), std::string::npos);
  EXPECT_NE(lines[3].find("\"-7\""), std::string::npos);
  EXPECT_NE(lines[4].find("boolean"), std::string::npos);
}

TEST(TurtleTest, StringLiteralsWithLangAndType) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p \"hi\"@en .\n"
      "ex:s ex:q \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
      &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("@en"), std::string::npos);
}

TEST(TurtleTest, BlankNodes) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://x/> .\n"
      "_:a ex:p _:b .\n",
      &st);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "_:a <http://x/p> _:b .");
}

TEST(TurtleTest, CommentsIgnoredEverywhere) {
  Status st;
  auto lines = ParseToLines(
      "# top comment\n"
      "@prefix ex: <http://x/> .  # directive comment\n"
      "ex:s ex:p ex:o .  # statement comment\n",
      &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(lines.size(), 1u);
}

TEST(TurtleTest, UndefinedPrefixFails) {
  Status st;
  ParseToLines("foo:a foo:b foo:c .", &st);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("undefined prefix"), std::string::npos);
}

TEST(TurtleTest, UnsupportedConstructsRejectedCleanly) {
  Status st;
  ParseToLines("@prefix ex: <http://x/> .\nex:s ex:p [ ex:q ex:o ] .", &st);
  EXPECT_FALSE(st.ok());
  ParseToLines("@prefix ex: <http://x/> .\nex:s ex:p (1 2 3) .", &st);
  EXPECT_FALSE(st.ok());
}

TEST(TurtleTest, MissingDotFails) {
  Status st;
  ParseToLines("@prefix ex: <http://x/> .\nex:s ex:p ex:o", &st);
  EXPECT_FALSE(st.ok());
}

TEST(TurtleTest, LoadIntoStore) {
  Dictionary dict;
  TripleStore store;
  Status st = LoadTurtle(
      "@prefix ex: <http://x/> .\n"
      "ex:a ex:knows ex:b, ex:c ; ex:name \"A\" .\n",
      &dict, &store);
  ASSERT_TRUE(st.ok()) << st.ToString();
  store.Finalize();
  EXPECT_EQ(store.size(), 3u);
}

TEST(TurtleTest, SemicolonBeforeDotIsLegal) {
  Status st;
  auto lines = ParseToLines(
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p ex:o ; .\n",
      &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(lines.size(), 1u);
}

TEST(TurtleTest, LoadTurtleFileMatchesInMemoryLoad) {
  const std::string doc =
      "@prefix ex: <http://x/> .\n"
      "ex:a ex:p ex:b ; ex:q \"v\"@en .\n";
  const std::string path = ::testing::TempDir() + "/rdfparams_turtle.ttl";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << doc;
    ASSERT_TRUE(os.good());
  }
  Dictionary file_dict, mem_dict;
  TripleStore file_store, mem_store;
  ASSERT_TRUE(LoadTurtleFile(path, &file_dict, &file_store).ok());
  ASSERT_TRUE(LoadTurtle(doc, &mem_dict, &mem_store).ok());
  ASSERT_EQ(file_dict.size(), mem_dict.size());
  for (TermId id = 0; id < file_dict.size(); ++id) {
    EXPECT_EQ(file_dict.term(id), mem_dict.term(id));
  }
  EXPECT_EQ(file_store.size(), mem_store.size());
  std::remove(path.c_str());

  EXPECT_FALSE(
      LoadTurtleFile("/nonexistent/x.ttl", &file_dict, &file_store).ok());
}

}  // namespace
}  // namespace rdfparams::rdf

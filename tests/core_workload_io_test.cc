#include "core/workload_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace rdfparams::core {
namespace {

sparql::QueryTemplate TwoParamTemplate() {
  auto t = sparql::QueryTemplate::Parse("IO-Q1", R"(
SELECT * WHERE { ?s <http://p> %a . ?s <http://q> %b . }
)");
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(WorkloadIoTest, RoundTrip) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  std::vector<sparql::ParameterBinding> bindings;
  for (int i = 0; i < 5; ++i) {
    sparql::ParameterBinding b;
    b.values = {dict.InternIri("http://e/" + std::to_string(i)),
                dict.InternLiteral("value " + std::to_string(i))};
    bindings.push_back(std::move(b));
  }

  std::ostringstream out;
  ASSERT_TRUE(WriteBindings(tmpl, bindings, dict, out).ok());

  // Read back into a *fresh* dictionary; terms must survive.
  rdf::Dictionary dict2;
  std::istringstream in(out.str());
  auto read = ReadBindings(tmpl, &dict2, in);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), bindings.size());
  for (size_t i = 0; i < bindings.size(); ++i) {
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(dict2.term((*read)[i].values[k]),
                dict.term(bindings[i].values[k]));
    }
  }
}

TEST(WorkloadIoTest, HeaderContainsTemplateAndParams) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  std::ostringstream out;
  ASSERT_TRUE(WriteBindings(tmpl, {}, dict, out).ok());
  EXPECT_NE(out.str().find("# template: IO-Q1"), std::string::npos);
  EXPECT_NE(out.str().find("# params: a b"), std::string::npos);
}

TEST(WorkloadIoTest, TemplateMismatchRejected) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  std::istringstream in("# template: OTHER-TEMPLATE\n");
  auto read = ReadBindings(tmpl, &dict, in);
  EXPECT_FALSE(read.ok());
}

TEST(WorkloadIoTest, ArityMismatchOnWriteRejected) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  sparql::ParameterBinding bad;
  bad.values = {dict.InternIri("http://only-one")};
  std::ostringstream out;
  EXPECT_FALSE(WriteBindings(tmpl, {bad}, dict, out).ok());
}

TEST(WorkloadIoTest, ArityMismatchOnReadRejected) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  std::istringstream in("<http://a>\n");  // one term, arity 2
  auto read = ReadBindings(tmpl, &dict, in);
  EXPECT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("line 1"), std::string::npos);
}

TEST(WorkloadIoTest, MalformedTermRejectedWithLine) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  std::istringstream in("<http://a>\t<http://b>\nnot-a-term\tnope\n");
  auto read = ReadBindings(tmpl, &dict, in);
  EXPECT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("line 2"), std::string::npos);
}

TEST(WorkloadIoTest, SkipsCommentsAndBlankLines) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  std::istringstream in(
      "# a comment\n\n<http://a>\t\"x\"\n# trailing comment\n");
  auto read = ReadBindings(tmpl, &dict, in);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), 1u);
}

TEST(WorkloadIoTest, FileRoundTrip) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  sparql::ParameterBinding b;
  b.values = {dict.InternIri("http://e/1"), dict.InternInteger(42)};
  std::string path = ::testing::TempDir() + "/bindings_test.tsv";
  ASSERT_TRUE(WriteBindingsFile(tmpl, {b}, dict, path).ok());
  rdf::Dictionary dict2;
  auto read = ReadBindingsFile(tmpl, &dict2, path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ(dict2.term((*read)[0].values[1]).AsInteger(), 42);
}

TEST(WorkloadIoTest, MissingFileFails) {
  sparql::QueryTemplate tmpl = TwoParamTemplate();
  rdf::Dictionary dict;
  EXPECT_FALSE(ReadBindingsFile(tmpl, &dict, "/no/such/file.tsv").ok());
}

}  // namespace
}  // namespace rdfparams::core

// Shared in-memory mini-store / query fixtures for engine and core tests.
//
// Header-only on purpose: every tests/*_test.cc builds into its own binary,
// so helpers live here as inline functions / fixture base classes instead
// of a separate library.
#ifndef RDFPARAMS_TESTS_TEST_STORE_H_
#define RDFPARAMS_TESTS_TEST_STORE_H_

#include <string>

#include <gtest/gtest.h>

#include "bsbm/generator.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "rdf/turtle.h"
#include "sparql/parser.h"

namespace rdfparams::test {

/// Parses a query, failing the current test (but not aborting) on errors.
inline sparql::SelectQuery ParseQueryOrFail(const std::string& text) {
  auto q = sparql::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) return sparql::SelectQuery{};
  return std::move(q).value();
}

/// Fixture base for tests that query a small Turtle-defined store: call
/// Load(doc) from SetUp(), then use dict_ / store_ / Parse().
class TurtleStoreTest : public ::testing::Test {
 protected:
  void Load(const std::string& turtle_doc) {
    auto st = rdf::LoadTurtle(turtle_doc, &dict_, &store_);
    ASSERT_TRUE(st.ok()) << st.ToString();
    store_.Finalize();
  }

  sparql::SelectQuery Parse(const std::string& text) {
    return ParseQueryOrFail(text);
  }

  rdf::Dictionary dict_;
  rdf::TripleStore store_;
};

/// The social micro-graph shared by the executor-facing tests: 4 people,
/// `knows` edges (two out-edges from alice), numeric ages, string names.
inline const char* kSocialGraphTurtle = R"(
@prefix x: <http://x/> .
x:alice x:knows x:bob ; x:age 30 ; x:name "Alice" .
x:bob x:knows x:carol ; x:age 25 ; x:name "Bob" .
x:carol x:knows x:alice ; x:age 35 ; x:name "Carol" .
x:dave x:age 25 ; x:name "Dave" .
x:alice x:knows x:carol .
)";

/// An items/type/score store with 30 items over 3 types and integer
/// scores 0..6 — enough rows to exercise joins, filters, and aggregates.
inline std::string ItemScoreTurtle(int num_items = 30) {
  std::string doc = "@prefix x: <http://x/> .\n";
  for (int i = 0; i < num_items; ++i) {
    doc += "x:item" + std::to_string(i) + " x:type x:T" +
           std::to_string(i % 3) + " .\n";
    doc += "x:item" + std::to_string(i) + " x:score " +
           std::to_string(i % 7) + " .\n";
  }
  return doc;
}

/// Small deterministic BSBM dataset for suite-level sharing (the scale the
/// parallel-determinism tests use: deep enough for distinct plan classes,
/// small enough to generate in well under a second).
inline bsbm::Dataset MakeMiniBsbm(uint64_t products = 400,
                                  uint64_t seed = 23) {
  bsbm::GeneratorConfig config;
  config.num_products = products;
  config.type_depth = 3;
  config.type_branching = 3;
  config.seed = seed;
  return bsbm::Generate(config);
}

}  // namespace rdfparams::test

#endif  // RDFPARAMS_TESTS_TEST_STORE_H_

#include "rdf/describe.h"

#include <gtest/gtest.h>

#include "rdf/turtle.h"

namespace rdfparams::rdf {
namespace {

TEST(ShortenIriTest, Cases) {
  EXPECT_EQ(ShortenIri("http://x/vocab#livesIn"), "livesIn");
  EXPECT_EQ(ShortenIri("http://x/path/to/name"), "name");
  EXPECT_EQ(ShortenIri("plain"), "plain");
  EXPECT_EQ(ShortenIri("http://trailing/"), "http://trailing/");
}

TEST(DescribeStoreTest, ListsPredicatesWithStats) {
  Dictionary dict;
  TripleStore store;
  const char* doc = R"(
@prefix x: <http://x/> .
x:a x:knows x:b , x:c .
x:b x:knows x:c .
x:a x:name "A" .
x:b x:name "B" .
x:c x:name "C" .
)";
  ASSERT_TRUE(LoadTurtle(doc, &dict, &store).ok());
  store.Finalize();

  std::string text = DescribeStore(store, dict);
  EXPECT_NE(text.find("6 triples"), std::string::npos);
  EXPECT_NE(text.find("knows"), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  // knows: 3 triples, 2 distinct subjects -> fan-out 1.5.
  EXPECT_NE(text.find("1.5"), std::string::npos);
}

TEST(DescribeStoreTest, MaxPredicatesTruncates) {
  Dictionary dict;
  TripleStore store;
  for (int p = 0; p < 10; ++p) {
    for (int i = 0; i <= p; ++i) {
      store.Add(dict.InternIri("http://s/" + std::to_string(i)),
                dict.InternIri("http://p/" + std::to_string(p)),
                dict.InternIri("http://o/" + std::to_string(i)));
    }
  }
  store.Finalize();
  DescribeOptions options;
  options.max_predicates = 3;
  options.shorten_iris = false;
  std::string text = DescribeStore(store, dict, options);
  // Largest predicates kept: p/9, p/8, p/7; p/0 dropped.
  EXPECT_NE(text.find("http://p/9"), std::string::npos);
  EXPECT_EQ(text.find("http://p/0,"), std::string::npos);
}

TEST(DescribeStoreTest, EmptyStore) {
  Dictionary dict;
  TripleStore store;
  store.Finalize();
  std::string text = DescribeStore(store, dict);
  EXPECT_NE(text.find("0 triples"), std::string::npos);
}

}  // namespace
}  // namespace rdfparams::rdf

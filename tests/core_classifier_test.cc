#include "core/plan_classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "bsbm/generator.h"
#include "bsbm/queries.h"

namespace rdfparams::core {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bsbm::GeneratorConfig config;
    config.num_products = 500;
    config.type_depth = 3;
    config.type_branching = 3;
    config.seed = 17;
    ds_ = new bsbm::Dataset(bsbm::Generate(config));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static bsbm::Dataset* ds_;
};

bsbm::Dataset* ClassifierTest::ds_ = nullptr;

TEST(CostBucketTest, LogBuckets) {
  EXPECT_EQ(CostBucket(1.0, 1.0), 0);
  EXPECT_EQ(CostBucket(2.0, 1.0), 1);
  EXPECT_EQ(CostBucket(1024.0, 1.0), 10);
  EXPECT_EQ(CostBucket(1100.0, 1.0), 10);
  EXPECT_EQ(CostBucket(3.9, 2.0), 0);   // log2(3.9)/2 ~ 0.98
  EXPECT_EQ(CostBucket(5.0, 2.0), 1);
  // Width <= 0 or infinity: single bucket.
  EXPECT_EQ(CostBucket(7.0, 0.0), 0);
  EXPECT_EQ(CostBucket(1e9, std::numeric_limits<double>::infinity()), 0);
  // Zero cost gets its own sentinel bucket.
  EXPECT_EQ(CostBucket(0.0, 1.0), std::numeric_limits<int64_t>::min());
}

TEST(CostBucketTest, DegenerateWidthsCollapseToOneBucket) {
  // Any width that cannot define a log scale means "fingerprint-only
  // clustering": everything in bucket 0, including the cout <= 0 cases.
  for (double width : {0.0, -1.0, -std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_EQ(CostBucket(1e12, width), 0) << "width=" << width;
    EXPECT_EQ(CostBucket(0.0, width), 0) << "width=" << width;
    EXPECT_EQ(CostBucket(-5.0, width), 0) << "width=" << width;
  }
}

TEST(CostBucketTest, NonPositiveAndNonFiniteCosts) {
  constexpr int64_t kSentinel = std::numeric_limits<int64_t>::min();
  // The sentinel bucket catches every "no meaningful cost" value: zero,
  // negative, and NaN (which must not fall through into the log2 path).
  EXPECT_EQ(CostBucket(0.0, 1.0), kSentinel);
  EXPECT_EQ(CostBucket(-0.0, 1.0), kSentinel);
  EXPECT_EQ(CostBucket(-123.5, 1.0), kSentinel);
  EXPECT_EQ(CostBucket(-std::numeric_limits<double>::infinity(), 1.0),
            kSentinel);
  EXPECT_EQ(CostBucket(std::numeric_limits<double>::quiet_NaN(), 1.0),
            kSentinel);
  // Overflowed estimates cap at the top bucket instead of UB.
  EXPECT_EQ(CostBucket(std::numeric_limits<double>::infinity(), 1.0),
            std::numeric_limits<int64_t>::max());
  // Subnormal-but-positive costs still bucket finitely.
  EXPECT_LT(CostBucket(std::numeric_limits<double>::denorm_min(), 1.0), 0);
}

TEST(CostBucketTest, TinyWidthClampsInsteadOfOverflowing) {
  // log2(cout)/1e-18 is far outside int64: the cast must clamp, not UB,
  // and the bottom clamp must not collide with the cout<=0 sentinel.
  EXPECT_EQ(CostBucket(std::pow(2.0, 40), 1e-18),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(CostBucket(std::pow(2.0, -40), 1e-18),
            std::numeric_limits<int64_t>::min() + 1);
  EXPECT_NE(CostBucket(std::pow(2.0, -40), 1e-18), CostBucket(0.0, 1e-18));
}

TEST_F(ClassifierTest, ClassifiesQ4TypeDomain) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));

  auto result = ClassifyParameters(q4, domain, ds_->store, ds_->dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_candidates, ds_->types.size());
  // The type hierarchy must split into more than one class (Q4a/Q4b in the
  // paper's terminology) ...
  EXPECT_GE(result->classes.size(), 2u);
  // ... classes are sorted by size, fractions sum to 1.
  double total = 0;
  size_t members = 0;
  for (size_t i = 0; i < result->classes.size(); ++i) {
    total += result->classes[i].fraction;
    members += result->classes[i].members.size();
    if (i > 0) {
      EXPECT_LE(result->classes[i].members.size(),
                result->classes[i - 1].members.size());
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(members, result->num_candidates);
}

TEST_F(ClassifierTest, ConditionsHoldWithinClasses) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));
  ClassifyOptions options;
  options.cost_bucket_log2_width = 1.0;
  auto result =
      ClassifyParameters(q4, domain, ds_->store, ds_->dict, options);
  ASSERT_TRUE(result.ok());

  for (const PlanClass& cls : result->classes) {
    // Condition (a): re-optimizing any member reproduces the fingerprint.
    for (const auto& member : cls.members) {
      auto q = q4.Bind(member, ds_->dict);
      ASSERT_TRUE(q.ok());
      auto plan = opt::Optimize(*q, ds_->store, ds_->dict);
      ASSERT_TRUE(plan.ok());
      EXPECT_EQ(plan->fingerprint, cls.fingerprint);
      // Condition (b): cost falls into the class bucket.
      EXPECT_EQ(CostBucket(plan->est_cout, options.cost_bucket_log2_width),
                cls.cost_bucket);
    }
  }
  // Condition (c): class keys pairwise distinct.
  for (size_t i = 0; i < result->classes.size(); ++i) {
    for (size_t j = i + 1; j < result->classes.size(); ++j) {
      bool same_fp = result->classes[i].fingerprint ==
                     result->classes[j].fingerprint;
      bool same_bucket =
          result->classes[i].cost_bucket == result->classes[j].cost_bucket;
      EXPECT_FALSE(same_fp && same_bucket);
    }
  }
}

TEST_F(ClassifierTest, RepresentativeIsMember) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));
  auto result = ClassifyParameters(q4, domain, ds_->store, ds_->dict);
  ASSERT_TRUE(result.ok());
  for (const PlanClass& cls : result->classes) {
    bool found = false;
    for (const auto& m : cls.members) {
      if (m == cls.representative) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(ClassifierTest, ClassOfCandidateConsistent) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));
  auto result = ClassifyParameters(q4, domain, ds_->store, ds_->dict);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->class_of_candidate.size(), result->num_candidates);
  // Count members per class through the mapping; must match class sizes.
  std::vector<size_t> counts(result->classes.size(), 0);
  for (uint32_t c : result->class_of_candidate) {
    ASSERT_LT(c, result->classes.size());
    ++counts[c];
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], result->classes[i].members.size());
  }
}

TEST_F(ClassifierTest, InfiniteWidthMergesCostBuckets) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));
  ClassifyOptions narrow;
  narrow.cost_bucket_log2_width = 0.5;
  ClassifyOptions plan_only;
  plan_only.cost_bucket_log2_width = std::numeric_limits<double>::infinity();
  auto fine =
      ClassifyParameters(q4, domain, ds_->store, ds_->dict, narrow);
  auto coarse =
      ClassifyParameters(q4, domain, ds_->store, ds_->dict, plan_only);
  ASSERT_TRUE(fine.ok() && coarse.ok());
  EXPECT_GE(fine->classes.size(), coarse->classes.size());
}

TEST_F(ClassifierTest, MaxCandidatesRespected) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));
  ClassifyOptions options;
  options.max_candidates = 7;
  auto result =
      ClassifyParameters(q4, domain, ds_->store, ds_->dict, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_candidates, 7u);
}

TEST_F(ClassifierTest, MismatchedDomainFails) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("WrongName", bsbm::TypeDomain(*ds_));
  EXPECT_FALSE(ClassifyParameters(q4, domain, ds_->store, ds_->dict).ok());
}

TEST_F(ClassifierTest, SampleFromClassDistinctWhenPossible) {
  PlanClass cls;
  for (rdf::TermId i = 0; i < 20; ++i) {
    sparql::ParameterBinding b;
    b.values = {i};
    cls.members.push_back(b);
  }
  util::Rng rng(3);
  auto sample = SampleFromClass(cls, 10, &rng);
  ASSERT_EQ(sample.size(), 10u);
  std::set<sparql::ParameterBinding> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  // Oversampling falls back to replacement.
  auto big = SampleFromClass(cls, 50, &rng);
  EXPECT_EQ(big.size(), 50u);
}

TEST_F(ClassifierTest, SampleFromClassOversamplingDeterministic) {
  PlanClass cls;
  for (rdf::TermId i = 0; i < 7; ++i) {
    sparql::ParameterBinding b;
    b.values = {i};
    cls.members.push_back(b);
  }
  // n > members.size(): the with-replacement path must be a pure function
  // of the rng state — two equally-seeded rngs produce identical draws,
  // and every draw is a member.
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  auto sample_a = SampleFromClass(cls, 40, &rng_a);
  auto sample_b = SampleFromClass(cls, 40, &rng_b);
  ASSERT_EQ(sample_a.size(), 40u);
  EXPECT_EQ(sample_a, sample_b);
  for (const auto& s : sample_a) {
    EXPECT_TRUE(std::find(cls.members.begin(), cls.members.end(), s) !=
                cls.members.end());
  }
  // A different seed draws a different (still member-only) sequence.
  util::Rng rng_c(100);
  auto sample_c = SampleFromClass(cls, 40, &rng_c);
  EXPECT_NE(sample_a, sample_c);

  // Empty class: nothing to draw from, regardless of n.
  PlanClass empty;
  EXPECT_TRUE(SampleFromClass(empty, 5, &rng_a).empty());
}

}  // namespace
}  // namespace rdfparams::core

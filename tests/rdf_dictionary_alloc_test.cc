// Allocation regression guard for the dictionary's read path. The
// string_view lookups (Find on a view, FindIri) exist so the executor can
// probe the term->id index without materializing a Term or a canonical
// key string — this test counts global operator new calls to pin that
// down: once the dictionary is built, lookups must allocate nothing.
#include "rdf/dictionary.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace {
std::atomic<uint64_t> g_news{0};
}  // namespace

void* operator new(size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace rdfparams::rdf {
namespace {

uint64_t AllocsDuring(const std::function<void()>& fn) {
  uint64_t before = g_news.load(std::memory_order_relaxed);
  fn();
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(DictionaryAllocTest, ViewLookupsDoNotAllocate) {
  Dictionary dict;
  std::vector<std::string> iris;
  for (int i = 0; i < 5000; ++i) {
    iris.push_back("http://example.org/product/long-enough-to-defeat-sso/" +
                   std::to_string(i));
    dict.InternIri(iris.back());
  }
  TermId tagged = dict.Intern(Term::LangLiteral("hello world, a long one", "en"));

  // Warm everything once outside the counted region.
  ASSERT_TRUE(dict.FindIri(iris[4999]).has_value());

  uint64_t n = AllocsDuring([&] {
    for (int i = 0; i < 5000; ++i) {
      auto hit = dict.FindIri(iris[static_cast<size_t>(i)]);
      ASSERT_TRUE(hit.has_value());
      ASSERT_EQ(*hit, static_cast<TermId>(i));
    }
    ASSERT_FALSE(dict.FindIri("http://example.org/absent-iri-looked-up-cold"));
  });
  EXPECT_EQ(n, 0u) << "FindIri allocated " << n << " times over 5001 lookups";

  n = AllocsDuring([&] {
    TermView view = dict.term(tagged);
    auto hit = dict.Find(view);
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(*hit, tagged);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(dict.Find(dict.term(static_cast<TermId>(i))).has_value());
    }
  });
  EXPECT_EQ(n, 0u) << "Find(TermView) allocated " << n << " times";
}

TEST(DictionaryAllocTest, TermAccessorDoesNotAllocate) {
  Dictionary dict;
  dict.InternIri("http://example.org/one-term-that-is-quite-long-indeed");
  uint64_t n = AllocsDuring([&] {
    for (int i = 0; i < 1000; ++i) {
      TermView v = dict.term(0);
      ASSERT_FALSE(v.lexical.empty());
    }
  });
  EXPECT_EQ(n, 0u) << "term() allocated " << n << " times";
}

}  // namespace
}  // namespace rdfparams::rdf

// Differential / property test harness for intra-query parallel execution.
//
// The contract under test (see engine/exec_options.h): for ANY query and
// ANY store, executing with N exec-threads, any morsel size, any
// vectorization chunk size (including 0 = the row-at-a-time reference
// kernels), and the merge join on or off returns a result table and
// ExecutionStats counters byte-identical to the serial default run. We
// check it two ways:
//   * property-style: seeded util::Rng generates randomized small stores
//     and randomized BGP / FILTER / ORDER BY / aggregate queries, each
//     executed at 1/2/4/8 exec-threads (oversubscribed on small machines
//     on purpose — scheduling interleavings are part of the property) and
//     across the chunk-size sweep;
//   * directed: hand-built plans that force the partitioned hash join and
//     the cross-product path, morsel sizes down to 1 row, and merge-join
//     vs index-probe identity on sorted / unsorted / duplicate-key outers.
#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "test_store.h"
#include "util/rng.h"

namespace rdfparams::engine {
namespace {

// ---------------------------------------------------------------------------
// Differential driver
// ---------------------------------------------------------------------------

struct ExecOutcome {
  BindingTable table;
  ExecutionStats stats;
};

/// Fails the test (with `label` in the message) unless the two outcomes
/// are byte-identical modulo wall_seconds.
void ExpectIdentical(const ExecOutcome& serial, const ExecOutcome& other,
                     const std::string& label) {
  ASSERT_EQ(serial.table.vars(), other.table.vars()) << label;
  ASSERT_EQ(serial.table.num_rows(), other.table.num_rows()) << label;
  if (!(serial.table == other.table)) {
    for (size_t r = 0; r < serial.table.num_rows(); ++r) {
      for (size_t c = 0; c < serial.table.num_vars(); ++c) {
        ASSERT_EQ(serial.table.at(r, c), other.table.at(r, c))
            << label << ": first differing row " << r << " col " << c;
      }
    }
  }
  EXPECT_EQ(serial.stats.intermediate_rows, other.stats.intermediate_rows)
      << label;
  EXPECT_EQ(serial.stats.scan_rows, other.stats.scan_rows) << label;
  EXPECT_EQ(serial.stats.result_rows, other.stats.result_rows) << label;
}

/// Column-order- and row-order-insensitive view of a table: columns
/// reordered by variable name, rows sorted — lets tables produced by
/// different plans (different var orders) be compared by content.
std::vector<std::vector<rdf::TermId>> Canonical(const BindingTable& t) {
  std::vector<size_t> cols(t.num_vars());
  std::iota(cols.begin(), cols.end(), size_t{0});
  std::sort(cols.begin(), cols.end(), [&](size_t a, size_t b) {
    return t.vars()[a] < t.vars()[b];
  });
  std::vector<std::vector<rdf::TermId>> rows(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    rows[r].reserve(cols.size());
    for (size_t c : cols) rows[r].push_back(t.at(r, c));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Executes `query` under `plan` (optimizing when null) in read-only mode
/// at every thread count in `threads` and every morsel size in `morsels`,
/// asserting all outcomes equal the serial one.
void RunDifferential(const rdf::TripleStore& store,
                     const rdf::Dictionary& dict,
                     const sparql::SelectQuery& query,
                     const opt::PlanNode* plan, const std::string& label) {
  std::unique_ptr<opt::PlanNode> optimized;
  if (plan == nullptr) {
    auto result = opt::Optimize(query, store, dict);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    optimized = std::move(result->root);
    plan = optimized.get();
  }

  auto run = [&](const ExecOptions& options) -> ExecOutcome {
    // A fresh read-only executor per config: scratch interning must not
    // leak state between configurations.
    Executor exec(store, dict);
    ExecOutcome out;
    auto result = exec.Execute(query, *plan, &out.stats, options);
    EXPECT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    if (result.ok()) out.table = std::move(result).value();
    return out;
  };

  ExecOutcome serial = run(ExecOptions{});
  for (int threads : {2, 4, 8}) {
    ExecOptions options;
    options.threads = threads;
    ExpectIdentical(serial, run(options),
                    label + " threads=" + std::to_string(threads));
  }
  for (uint64_t morsel : {uint64_t{1}, uint64_t{3}, uint64_t{17}}) {
    ExecOptions options;
    options.threads = 4;
    options.morsel_size = morsel;
    ExpectIdentical(serial, run(options),
                    label + " threads=4 morsel=" + std::to_string(morsel));
  }
  // Chunk size is a schedule knob like morsel size: every chunk width —
  // including 0, the row-at-a-time reference kernels — must reproduce the
  // serial default run at every thread count.
  for (uint64_t chunk :
       {uint64_t{0}, uint64_t{1}, uint64_t{3}, uint64_t{64}, uint64_t{4096}}) {
    for (int threads : {1, 2, 4, 8}) {
      ExecOptions options;
      options.threads = threads;
      options.chunk_rows = chunk;
      ExpectIdentical(serial, run(options),
                      label + " chunk=" + std::to_string(chunk) +
                          " threads=" + std::to_string(threads));
    }
  }
  // The operator switches are pure perf knobs: flipping them off (alone
  // and together) at high thread counts must not change a byte either.
  for (int mask = 1; mask <= 7; ++mask) {
    ExecOptions options;
    options.threads = 8;
    options.morsel_size = 2;
    options.parallel_sort = (mask & 1) == 0;
    options.parallel_group_by = (mask & 2) == 0;
    options.enable_merge_join = (mask & 4) == 0;
    ExpectIdentical(serial, run(options),
                    label + " knobs mask=" + std::to_string(mask));
  }
}

// ---------------------------------------------------------------------------
// Randomized store + query generation (seeded, fully deterministic)
// ---------------------------------------------------------------------------

/// Turtle doc for a random graph: `knows` edges between people, `likes`
/// edges to things, and numeric `score` / `age` literals — IRI-valued and
/// int-valued predicates kept apart so filters/aggregates stay sensible.
std::string RandomStoreTurtle(util::Rng* rng) {
  int num_people = 4 + static_cast<int>(rng->Uniform(8));
  int num_things = 3 + static_cast<int>(rng->Uniform(5));
  int num_edges = 10 + static_cast<int>(rng->Uniform(60));
  std::string doc = "@prefix x: <http://x/> .\n";
  auto person = [&](uint64_t i) { return "x:pers" + std::to_string(i); };
  for (int e = 0; e < num_edges; ++e) {
    std::string s = person(rng->Uniform(static_cast<uint64_t>(num_people)));
    switch (rng->Uniform(4)) {
      case 0:
        doc += s + " x:knows " +
               person(rng->Uniform(static_cast<uint64_t>(num_people))) +
               " .\n";
        break;
      case 1:
        doc += s + " x:likes x:thing" +
               std::to_string(rng->Uniform(
                   static_cast<uint64_t>(num_things))) + " .\n";
        break;
      case 2:
        doc += s + " x:score " + std::to_string(rng->Uniform(20)) + " .\n";
        break;
      default:
        doc += s + " x:age " + std::to_string(18 + rng->Uniform(50)) + " .\n";
        break;
    }
  }
  return doc;
}

/// One random query over the RandomStoreTurtle vocabulary. Shapes: chains
/// and stars of 1-4 patterns, optionally decorated with FILTER, DISTINCT,
/// ORDER BY (+LIMIT), or a GROUP BY aggregate.
std::string RandomQueryText(util::Rng* rng) {
  const char* iri_preds[] = {"<http://x/knows>", "<http://x/likes>"};
  const char* num_preds[] = {"<http://x/score>", "<http://x/age>"};
  int num_patterns = 1 + static_cast<int>(rng->Uniform(4));
  bool star = rng->Bernoulli(0.4);

  std::vector<std::string> patterns;
  std::string numeric_var;  // a variable bound to an integer literal
  for (int i = 0; i < num_patterns; ++i) {
    std::string subj = star ? "?v0" : "?v" + std::to_string(i);
    std::string obj = "?v" + std::to_string(i + 1);
    // Last pattern sometimes binds a numeric object for FILTER/aggregate.
    if (i == num_patterns - 1 && rng->Bernoulli(0.6)) {
      patterns.push_back(subj + " " + num_preds[rng->Uniform(2)] + " " + obj);
      numeric_var = obj.substr(1);
    } else {
      patterns.push_back(subj + " " + iri_preds[rng->Uniform(2)] + " " + obj);
    }
  }

  std::string where;
  for (const std::string& p : patterns) where += p + " . ";
  if (!numeric_var.empty() && rng->Bernoulli(0.5)) {
    const char* ops[] = {">", ">=", "<", "=", "!="};
    where += "FILTER(?" + numeric_var + " " + ops[rng->Uniform(5)] + " " +
             std::to_string(rng->Uniform(40)) + ") ";
  }

  // Aggregate form: group by the first variable. Half the time there is
  // no ORDER BY, exercising the group-by's own ascending-key output
  // order; otherwise sort by the key or by the aggregate output.
  if (!numeric_var.empty() && rng->Bernoulli(0.3)) {
    const char* aggs[] = {"COUNT", "SUM", "MIN", "MAX", "AVG"};
    std::string agg = aggs[rng->Uniform(5)];
    std::string text = "SELECT ?v0 (" + agg + "(?" + numeric_var +
                       ") AS ?out) WHERE { " + where + "} GROUP BY ?v0";
    switch (rng->Uniform(4)) {
      case 0: break;  // no ORDER BY: ascending-key emit is the order
      case 1: text += " ORDER BY ?v0"; break;
      case 2: text += " ORDER BY DESC(?out)"; break;
      default: text += " ORDER BY ?out ?v0"; break;
    }
    return text;
  }

  std::string select = rng->Bernoulli(0.3) ? "SELECT DISTINCT *" : "SELECT *";
  std::string text = select + " WHERE { " + where + "}";
  if (rng->Bernoulli(0.5)) {
    // ?v0 repeats heavily (star subjects), so sorting by it stresses the
    // stable tie-break; two-key and DESC variants stress the comparator.
    const char* orders[] = {"?v1", "DESC(?v1)", "?v0", "?v0 DESC(?v1)",
                            "DESC(?v0) ?v1"};
    text += " ORDER BY " + std::string(orders[rng->Uniform(5)]);
    if (rng->Bernoulli(0.5)) {
      text += " LIMIT " + std::to_string(1 + rng->Uniform(10));
    }
  }
  return text;
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

TEST(ParallelExecPropertyTest, RandomQueriesIdenticalAcrossThreadCounts) {
  util::Rng rng(20260729);
  for (int store_round = 0; store_round < 6; ++store_round) {
    util::Rng store_rng = rng.Fork(static_cast<uint64_t>(store_round));
    rdf::Dictionary dict;
    rdf::TripleStore store;
    std::string doc = RandomStoreTurtle(&store_rng);
    ASSERT_TRUE(rdf::LoadTurtle(doc, &dict, &store).ok()) << doc;
    store.Finalize();

    for (int query_round = 0; query_round < 8; ++query_round) {
      std::string text = RandomQueryText(&store_rng);
      auto q = sparql::ParseQuery(text);
      ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
      RunDifferential(store, dict, *q, nullptr,
                      "store " + std::to_string(store_round) + " query `" +
                          text + "`");
    }
  }
}

TEST(ParallelExecPropertyTest, NaiveEvaluatorAgreesOnRandomBgps) {
  // Cross-check against the optimizer-free reference evaluator: the
  // parallel operators must not just be self-consistent but correct.
  util::Rng rng(424242);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadTurtle(RandomStoreTurtle(&rng), &dict, &store).ok());
  store.Finalize();

  for (int round = 0; round < 10; ++round) {
    std::string text = RandomQueryText(&rng);
    auto q = sparql::ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    if (!q->aggregates.empty()) continue;  // naive interning order differs

    auto naive = ExecuteNaive(*q, store, &dict);
    ASSERT_TRUE(naive.ok()) << text << ": " << naive.status().ToString();

    Executor exec(store, &dict);
    ExecutionStats stats;
    ExecOptions options;
    options.threads = 4;
    options.morsel_size = 2;
    auto opt_result = exec.OptimizeAndExecute(*q, &stats, {}, options);
    ASSERT_TRUE(opt_result.ok()) << text;
    EXPECT_EQ(opt_result->num_rows(), naive->num_rows()) << text;
    if (q->limit >= 0) continue;  // LIMIT ties may resolve per-plan
    // Full content check, insensitive to the plans' differing column and
    // (absent ORDER BY) row orders.
    EXPECT_EQ(Canonical(*opt_result), Canonical(*naive)) << text;
  }
}

// ---------------------------------------------------------------------------
// Directed tests for the partitioned hash join and edge cases
// ---------------------------------------------------------------------------

class ParallelExecDirectedTest : public test::TurtleStoreTest {
 protected:
  void SetUp() override { Load(test::ItemScoreTurtle(100)); }
};

TEST_F(ParallelExecDirectedTest, ForcedPartitionedHashJoin) {
  // Root joins two materialized two-pattern components on ?i: neither
  // side is a scan, so the executor must take the (partitioned) hash join.
  auto q = Parse(
      "SELECT * WHERE { ?i <http://x/type> ?t . ?i <http://x/score> ?s . "
      "?j <http://x/type> ?t . ?j <http://x/score> ?s2 . }");
  auto left = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(1, rdf::IndexOrder::kPOS), {"i"});
  auto right = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(2, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(3, rdf::IndexOrder::kPOS), {"j"});
  auto root = opt::PlanNode::MakeJoin(std::move(left), std::move(right),
                                      {"t"});
  RunDifferential(store_, dict_, q, root.get(), "forced hash join");

  // Partition hints must not change results either: rerun with a plan
  // annotated the way the optimizer would annotate it.
  root->partition_hint = 16;
  RunDifferential(store_, dict_, q, root.get(), "forced hash join parts=16");
}

TEST_F(ParallelExecDirectedTest, ForcedParallelCrossProduct) {
  // No shared variable between the components: the hash-join plan has an
  // empty build key, exercising the morsel cross-product path.
  auto q = Parse(
      "SELECT * WHERE { ?i <http://x/score> ?s . ?j <http://x/type> ?t . "
      "?j <http://x/score> ?s2 . FILTER(?s2 > 3) }");
  auto left = opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS);
  auto right = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(1, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(2, rdf::IndexOrder::kPOS), {"j"});
  auto root = opt::PlanNode::MakeJoin(std::move(left), std::move(right), {});
  RunDifferential(store_, dict_, q, root.get(), "forced cross product");
}

TEST_F(ParallelExecDirectedTest, EmptyInputsAndSingleRows) {
  // Degenerate shapes: absent constants (empty scan), LIMIT 0-adjacent
  // results, single-row outers — morsel math must not trip on them.
  for (const char* text :
       {"SELECT * WHERE { ?i <http://x/type> <http://x/Nope> . "
        "?i <http://x/score> ?s . }",
        "SELECT * WHERE { ?i <http://x/type> <http://x/T1> . "
        "?i <http://x/score> ?s . } LIMIT 1",
        "SELECT * WHERE { ?i <http://x/score> ?s . FILTER(?s > 100) }"}) {
    RunDifferential(store_, dict_, Parse(text), nullptr, text);
  }
}

// ---------------------------------------------------------------------------
// Directed tests for the parallel ORDER BY merge sort
// ---------------------------------------------------------------------------

TEST_F(ParallelExecDirectedTest, OrderByDuplicateKeysIsStable) {
  // ?t has only 3 distinct values over 100 items: almost every comparison
  // is a tie, so the parallel merge lives or dies on the row-index
  // tie-break. RunDifferential pins it to the serial stable sort.
  auto q = Parse(
      "SELECT * WHERE { ?i <http://x/type> ?t . ?i <http://x/score> ?s . } "
      "ORDER BY ?t");
  RunDifferential(store_, dict_, q, nullptr, "order-by duplicate keys");

  // And explicitly: ties must keep their pre-sort (input) order. With the
  // secondary column untouched by the sort, every ?t run must preserve
  // the relative order the join emitted.
  Executor exec(store_, dict_);
  ExecutionStats stats;
  ExecOptions options;
  options.threads = 8;
  options.morsel_size = 1;
  auto unsorted = exec.OptimizeAndExecute(
      Parse("SELECT * WHERE { ?i <http://x/type> ?t . "
            "?i <http://x/score> ?s . }"),
      &stats, {}, options);
  auto sorted = exec.OptimizeAndExecute(q, &stats, {}, options);
  ASSERT_TRUE(unsorted.ok() && sorted.ok());
  int t_col = sorted->VarIndex("t");
  int i_col = sorted->VarIndex("i");
  ASSERT_GE(t_col, 0);
  ASSERT_GE(i_col, 0);
  // Build the per-key input sequence, then check the sorted table walks
  // each key's sequence in order.
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> expect_seq;
  int ut_col = unsorted->VarIndex("t");
  int ui_col = unsorted->VarIndex("i");
  for (size_t r = 0; r < unsorted->num_rows(); ++r) {
    expect_seq[unsorted->at(r, static_cast<size_t>(ut_col))].push_back(
        unsorted->at(r, static_cast<size_t>(ui_col)));
  }
  std::unordered_map<rdf::TermId, size_t> cursor;
  for (size_t r = 0; r < sorted->num_rows(); ++r) {
    rdf::TermId t = sorted->at(r, static_cast<size_t>(t_col));
    size_t& c = cursor[t];
    ASSERT_LT(c, expect_seq[t].size());
    EXPECT_EQ(sorted->at(r, static_cast<size_t>(i_col)), expect_seq[t][c])
        << "tie order broken at sorted row " << r;
    ++c;
  }
}

TEST(ParallelSortEdgeTest, NanInfAndMixedRankKeys) {
  // One object column mixing NaN, +/-inf, finite numerics, plain string
  // literals, and IRIs. The comparator must stay a strict weak ordering
  // (ranked classes; NaN after every number) or the sort — serial or
  // parallel — would be undefined. Identity across configs is checked by
  // RunDifferential; the rank layout is asserted directly.
  rdf::Dictionary dict;
  rdf::TripleStore store;
  rdf::TermId pred = dict.InternIri("http://x/val");
  std::vector<rdf::TermId> objects;
  objects.push_back(dict.Intern(
      rdf::Term::TypedLiteral("nan", std::string(rdf::kXsdDouble))));
  objects.push_back(dict.Intern(
      rdf::Term::TypedLiteral("inf", std::string(rdf::kXsdDouble))));
  objects.push_back(dict.Intern(
      rdf::Term::TypedLiteral("-inf", std::string(rdf::kXsdDouble))));
  for (int v : {5, -3, 12, 0, 5, 7, -3}) {
    objects.push_back(dict.InternInteger(v));
  }
  objects.push_back(dict.InternDouble(2.5));
  objects.push_back(dict.Intern(rdf::Term::Literal("apple")));
  objects.push_back(dict.Intern(rdf::Term::Literal("10")));  // lexicographic
  objects.push_back(dict.InternIri("http://x/zzz"));
  for (size_t i = 0; i < 40; ++i) {
    store.Add(dict.InternIri("http://x/s" + std::to_string(i)), pred,
              objects[i % objects.size()]);
  }
  store.Finalize();

  auto q = test::ParseQueryOrFail(
      "SELECT * WHERE { ?s <http://x/val> ?v . } ORDER BY ?v");
  RunDifferential(store, dict, q, nullptr, "NaN/mixed-rank ORDER BY");

  Executor exec(store, dict);
  ExecutionStats stats;
  ExecOptions options;
  options.threads = 4;
  options.morsel_size = 1;
  auto result = exec.OptimizeAndExecute(q, &stats, {}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int v_col = result->VarIndex("v");
  ASSERT_GE(v_col, 0);
  // Expected class layout: IRIs, then numerics ascending with NaN last
  // among them, then non-numeric literals.
  int phase = 0;  // 0=iri, 1=finite numeric, 2=nan, 3=other literal
  double last_value = -std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < result->num_rows(); ++r) {
    const rdf::TermView term = dict.term(result->at(r, static_cast<size_t>(v_col)));
    int cls;
    std::optional<double> num;
    if (term.is_numeric()) num = term.AsDouble();
    if (term.is_iri()) {
      cls = 0;
    } else if (num && !std::isnan(*num)) {
      cls = 1;
    } else if (num) {
      cls = 2;
    } else {
      cls = 3;
    }
    ASSERT_GE(cls, phase) << "rank order violated at row " << r;
    if (cls == 1) {
      if (phase == 1) {
        EXPECT_LE(last_value, *num) << "row " << r;
      }
      last_value = *num;
    }
    phase = cls;
  }
}

// ---------------------------------------------------------------------------
// Directed tests for the parallel group-by reduction
// ---------------------------------------------------------------------------

TEST_F(ParallelExecDirectedTest, GroupByMatchesManualAggregates) {
  // SUM/AVG/MIN/MAX/COUNT per type, computed by hand from the store, at
  // an aggressive parallel config (join root => streaming reduction).
  auto q = Parse(
      "SELECT ?t (SUM(?s) AS ?sum) (AVG(?s) AS ?avg) (MIN(?s) AS ?lo) "
      "(MAX(?s) AS ?hi) (COUNT(?s) AS ?n) WHERE { ?i <http://x/type> ?t . "
      "?i <http://x/score> ?s . } GROUP BY ?t ORDER BY ?t");
  RunDifferential(store_, dict_, q, nullptr, "group-by manual aggregates");

  // Mutable-dictionary mode so the aggregate output literals decode
  // through dict_ directly.
  Executor exec(store_, &dict_);
  ExecutionStats stats;
  ExecOptions options;
  options.threads = 8;
  options.morsel_size = 1;
  auto result = exec.OptimizeAndExecute(q, &stats, {}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);  // T0, T1, T2

  // Manual aggregation straight off the generator formula in
  // ItemScoreTurtle(100): item i has type T(i%3) and score i%7.
  for (size_t r = 0; r < result->num_rows(); ++r) {
    std::string type(
        dict_.term(result->at(r, static_cast<size_t>(result->VarIndex("t"))))
            .lexical);
    int t = type.back() - '0';
    double sum = 0, lo = 1e9, hi = -1e9, n = 0;
    for (int i = 0; i < 100; ++i) {
      if (i % 3 != t) continue;
      double s = i % 7;
      sum += s;
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      n += 1;
    }
    auto num_at = [&](const char* var) {
      return dict_
          .term(result->at(r, static_cast<size_t>(result->VarIndex(var))))
          .AsDouble()
          .value_or(-1);
    };
    EXPECT_DOUBLE_EQ(num_at("sum"), sum) << type;
    EXPECT_DOUBLE_EQ(num_at("avg"), sum / n) << type;
    EXPECT_DOUBLE_EQ(num_at("lo"), lo) << type;
    EXPECT_DOUBLE_EQ(num_at("hi"), hi) << type;
    EXPECT_DOUBLE_EQ(num_at("n"), n) << type;
  }
}

TEST_F(ParallelExecDirectedTest, GroupByWithoutOrderByEmitsAscendingKeys) {
  // No ORDER BY: the group-by's own output order — ascending group-key
  // tuples — is the contract, at every config.
  auto q = Parse(
      "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?i <http://x/type> ?t . "
      "?i <http://x/score> ?s . } GROUP BY ?t");
  RunDifferential(store_, dict_, q, nullptr, "group-by ascending-key emit");

  for (int threads : {1, 8}) {
    Executor exec(store_, dict_);
    ExecutionStats stats;
    ExecOptions options;
    options.threads = threads;
    options.morsel_size = 1;
    auto result = exec.OptimizeAndExecute(q, &stats, {}, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    int t_col = result->VarIndex("t");
    ASSERT_GE(t_col, 0);
    for (size_t r = 1; r < result->num_rows(); ++r) {
      EXPECT_LT(result->at(r - 1, static_cast<size_t>(t_col)),
                result->at(r, static_cast<size_t>(t_col)))
          << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Directed tests for the merge join over sorted index runs
// ---------------------------------------------------------------------------

TEST_F(ParallelExecDirectedTest, MergeJoinSortedOuterMatchesProbes) {
  // Outer scan `?i <type> <T1>` reads a POS region: the ?i column is the
  // index's tertiary sort key, so it comes out globally ascending and the
  // hinted merge sweep engages. RunDifferential pins every config —
  // including enable_merge_join=false — to the serial (merge-on) run.
  auto q = Parse(
      "SELECT * WHERE { ?i <http://x/type> <http://x/T1> . "
      "?i <http://x/score> ?s . }");
  auto root = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(1, rdf::IndexOrder::kSPO), {"i"});
  root->merge_join_hint = true;
  EXPECT_NE(root->Explain(q).find("join=merge-sweep"), std::string::npos);
  RunDifferential(store_, dict_, q, root.get(), "merge join sorted outer");

  // And with the hint off: same plan, per-row probes, same bytes.
  root->merge_join_hint = false;
  EXPECT_NE(root->Explain(q).find("join=index-probe"), std::string::npos);
  RunDifferential(store_, dict_, q, root.get(), "index probes sorted outer");
}

TEST_F(ParallelExecDirectedTest, MergeJoinUnsortedOuterFallsBackToProbes) {
  // Outer scan `?i <type> ?t` emits ?i sorted only within each type run —
  // globally unsorted — so the runtime sortedness check must reject the
  // hint and fall back to per-row probes, at every config.
  auto q = Parse(
      "SELECT * WHERE { ?i <http://x/type> ?t . ?i <http://x/score> ?s . }");
  auto root = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(1, rdf::IndexOrder::kSPO), {"i"});
  root->merge_join_hint = true;
  RunDifferential(store_, dict_, q, root.get(), "merge join unsorted outer");
}

TEST(MergeJoinDuplicateKeyTest, RepeatedOuterKeysMatchProbes) {
  // Each item carries two scores, so the outer (type ⋈ score) emits every
  // ?i twice, back to back and ascending: the sweep must re-find runs on
  // repeated keys. Items 0 and 7 have no label (empty runs mid-sweep),
  // and the hinted root joins the duplicate-key outer to the label scan.
  std::string doc = "@prefix x: <http://x/> .\n";
  for (int i = 0; i < 20; ++i) {
    std::string item = "x:item" + std::to_string(i);
    doc += item + " x:type x:T .\n";
    doc += item + " x:score " + std::to_string(i % 5) + " .\n";
    doc += item + " x:score " + std::to_string(10 + i % 3) + " .\n";
    if (i != 0 && i != 7) {
      doc += item + " x:label \"L" + std::to_string(i % 4) + "\" .\n";
    }
  }
  rdf::Dictionary dict;
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadTurtle(doc, &dict, &store).ok());
  store.Finalize();

  auto q = test::ParseQueryOrFail(
      "SELECT * WHERE { ?i <http://x/type> <http://x/T> . "
      "?i <http://x/score> ?s . ?i <http://x/label> ?l . }");
  auto outer = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(1, rdf::IndexOrder::kSPO), {"i"});
  outer->merge_join_hint = true;
  auto root = opt::PlanNode::MakeJoin(
      std::move(outer), opt::PlanNode::MakeScan(2, rdf::IndexOrder::kSPO),
      {"i"});
  root->merge_join_hint = true;
  RunDifferential(store, dict, q, root.get(), "merge join duplicate keys");
}

TEST_F(ParallelExecDirectedTest, ReadOnlyModeStaysReadOnly) {
  // Parallel workers must never touch the shared dictionary: only the
  // calling thread interns (filters/aggregates), and only into scratch.
  size_t before = dict_.size();
  auto q = Parse(
      "SELECT ?t (AVG(?s) AS ?avg) WHERE { ?i <http://x/type> ?t . "
      "?i <http://x/score> ?s . FILTER(?s < 6) } GROUP BY ?t ORDER BY ?t");
  Executor exec(store_, static_cast<const rdf::Dictionary&>(dict_));
  ExecutionStats stats;
  ExecOptions options;
  options.threads = 8;
  options.morsel_size = 4;
  auto result = exec.OptimizeAndExecute(q, &stats, {}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(dict_.size(), before);
  ASSERT_NE(exec.scratch_dict(), nullptr);
  EXPECT_GE(exec.scratch_dict()->num_scratch(), 1u);
}

}  // namespace
}  // namespace rdfparams::engine

#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "rdf/turtle.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace rdfparams::opt {
namespace {

/// A small star + chain dataset where good join order matters:
/// few "hub" nodes with many attributes.
class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string doc = "@prefix x: <http://x/> .\n";
    // 100 items with type A, 5 with type B. Every item has three values,
    // so joining through x:value multiplies cardinalities by 3 and join
    // order genuinely matters.
    for (int i = 0; i < 100; ++i) {
      doc += "x:item" + std::to_string(i) + " x:type x:A .\n";
      for (int offset : {0, 3, 7}) {
        doc += "x:item" + std::to_string(i) + " x:value x:v" +
               std::to_string((i + offset) % 10) + " .\n";
      }
    }
    for (int i = 0; i < 5; ++i) {
      doc += "x:item" + std::to_string(i) + " x:type x:B .\n";
    }
    // Chain: item -> link -> target (only items 0..4 have links).
    for (int i = 0; i < 5; ++i) {
      doc += "x:item" + std::to_string(i) + " x:link x:t" +
             std::to_string(i) + " .\n";
    }
    ASSERT_TRUE(rdf::LoadTurtle(doc, &dict_, &store_).ok());
    store_.Finalize();
  }

  sparql::SelectQuery Parse(const std::string& text) {
    auto q = sparql::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  rdf::Dictionary dict_;
  rdf::TripleStore store_;
};

TEST_F(OptimizerTest, SinglePatternIsScan) {
  auto q = Parse("SELECT * WHERE { ?s <http://x/type> <http://x/A> . }");
  auto plan = Optimize(q, store_, dict_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->fingerprint, "S0");
  EXPECT_DOUBLE_EQ(plan->est_cout, 0.0);  // scans are free under C_out
  EXPECT_DOUBLE_EQ(plan->est_cardinality, 100.0);
}

TEST_F(OptimizerTest, TwoPatternJoin) {
  auto q = Parse(
      "SELECT * WHERE { ?s <http://x/type> <http://x/B> . "
      "?s <http://x/value> ?v . }");
  auto plan = Optimize(q, store_, dict_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->NumJoins(), 1u);
  // Exact pairwise count: items 0..4 each have exactly 3 value triples.
  EXPECT_DOUBLE_EQ(plan->est_cardinality, 15.0);
  EXPECT_DOUBLE_EQ(plan->est_cout, 15.0);
  // Build side should be the smaller input (type B scan, 5 rows).
  ASSERT_TRUE(plan->root->left->is_scan());
  EXPECT_EQ(plan->root->left->pattern_index, 0u);
}

TEST_F(OptimizerTest, SelectiveFirstInChain) {
  // (?s type B) is selective (5); the optimizer must not start from the
  // 100-row type-A-like scans.
  auto q = Parse(
      "SELECT * WHERE { ?s <http://x/type> <http://x/B> . "
      "?s <http://x/value> ?v . ?s <http://x/link> ?t . }");
  auto plan = Optimize(q, store_, dict_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->NumJoins(), 2u);
  // The C_out optimal plan joins B-items with links (both 5 rows, join
  // size 5) first, then expands values (15): C_out = 5 + 15 = 20. Any plan
  // touching values earlier pays 15 + 15 = 30.
  std::string fp = plan->fingerprint;
  EXPECT_TRUE(fp == "J(J(S0,S2),S1)" || fp == "J(J(S2,S0),S1)" ||
              fp == "J(S1,J(S0,S2))")
      << fp;
  EXPECT_DOUBLE_EQ(plan->est_cout, 20.0);
}

TEST_F(OptimizerTest, CoutIsSumOfIntermediateSizes) {
  auto q = Parse(
      "SELECT * WHERE { ?s <http://x/type> <http://x/A> . "
      "?s <http://x/value> ?v . }");
  auto plan = Optimize(q, store_, dict_);
  ASSERT_TRUE(plan.ok());
  // 100 items of type A, each 3 values: join size 300; C_out = 300.
  EXPECT_DOUBLE_EQ(plan->est_cout, 300.0);
}

TEST_F(OptimizerTest, CrossProductOnlyWhenDisconnected) {
  auto q = Parse(
      "SELECT * WHERE { ?a <http://x/type> <http://x/B> . "
      "?b <http://x/link> ?t . }");
  auto plan = Optimize(q, store_, dict_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->root->join_vars.empty());
  EXPECT_DOUBLE_EQ(plan->root->est_cardinality, 25.0);

  OptimizeOptions no_cross;
  no_cross.allow_cross_products = false;
  EXPECT_FALSE(Optimize(q, store_, dict_, no_cross).ok());
}

TEST_F(OptimizerTest, UnboundParameterRejected) {
  auto q = Parse("SELECT * WHERE { ?s <http://x/type> %t . }");
  auto plan = Optimize(q, store_, dict_);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OptimizerTest, GreedyMatchesDpOnSmallQueries) {
  auto q = Parse(
      "SELECT * WHERE { ?s <http://x/type> <http://x/B> . "
      "?s <http://x/value> ?v . ?s <http://x/link> ?t . }");
  auto dp = Optimize(q, store_, dict_);
  auto greedy = OptimizeGreedy(q, store_, dict_);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(greedy.ok());
  // Greedy can never beat exact DP.
  EXPECT_LE(dp->est_cout, greedy->est_cout + 1e-9);
}

TEST_F(OptimizerTest, DeterministicAcrossRuns) {
  auto q = Parse(
      "SELECT * WHERE { ?s <http://x/type> <http://x/A> . "
      "?s <http://x/value> ?v . ?s <http://x/link> ?t . }");
  auto p1 = Optimize(q, store_, dict_);
  auto p2 = Optimize(q, store_, dict_);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->fingerprint, p2->fingerprint);
  EXPECT_DOUBLE_EQ(p1->est_cout, p2->est_cout);
}

TEST_F(OptimizerTest, EstimatesAnnotatedOnAllNodes) {
  auto q = Parse(
      "SELECT * WHERE { ?s <http://x/type> <http://x/A> . "
      "?s <http://x/value> ?v . ?s <http://x/link> ?t . }");
  auto plan = Optimize(q, store_, dict_);
  ASSERT_TRUE(plan.ok());
  std::function<void(const PlanNode&)> check = [&](const PlanNode& n) {
    EXPECT_GE(n.est_cardinality, 0.0);
    if (n.is_join()) {
      EXPECT_GE(n.est_cout, n.left->est_cout + n.right->est_cout);
      check(*n.left);
      check(*n.right);
    }
  };
  check(*plan->root);
}

TEST(OptimizerRandomTest, DpNeverWorseThanGreedy) {
  // Property: over random chain/star queries on random data, DP's C_out is
  // <= greedy's C_out.
  util::Rng rng(99);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 5000; ++i) {
    store.Add(static_cast<rdf::TermId>(dict.InternIri(
                  "http://e/" + std::to_string(rng.Uniform(400)))),
              static_cast<rdf::TermId>(dict.InternIri(
                  "http://p/" + std::to_string(rng.Uniform(8)))),
              static_cast<rdf::TermId>(dict.InternIri(
                  "http://e/" + std::to_string(rng.Uniform(400)))));
  }
  store.Finalize();

  for (int trial = 0; trial < 20; ++trial) {
    // Random chain query of length 3-5 over random predicates.
    size_t len = 3 + rng.Uniform(3);
    std::string text = "SELECT * WHERE { ";
    for (size_t k = 0; k < len; ++k) {
      text += "?v" + std::to_string(k) + " <http://p/" +
              std::to_string(rng.Uniform(8)) + "> ?v" +
              std::to_string(k + 1) + " . ";
    }
    text += "}";
    auto q = sparql::ParseQuery(text);
    ASSERT_TRUE(q.ok());
    auto dp = Optimize(*q, store, dict);
    auto greedy = OptimizeGreedy(*q, store, dict);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(dp->est_cout, greedy->est_cout * (1 + 1e-9) + 1e-9)
        << "query: " << text;
  }
}

}  // namespace
}  // namespace rdfparams::opt

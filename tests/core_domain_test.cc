#include "core/parameter_domain.h"

#include <set>

#include <gtest/gtest.h>

namespace rdfparams::core {
namespace {

sparql::QueryTemplate TwoParamTemplate() {
  auto t = sparql::QueryTemplate::Parse("t", R"(
SELECT * WHERE { ?s <http://p> %a . ?s <http://q> %b . }
)");
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(ParameterDomainTest, ValidateMatchesTemplateOrder) {
  ParameterDomain d;
  d.AddSingle("a", {1, 2, 3});
  d.AddSingle("b", {10, 20});
  EXPECT_TRUE(d.Validate(TwoParamTemplate()).ok());

  ParameterDomain wrong;
  wrong.AddSingle("b", {1});
  wrong.AddSingle("a", {2});
  EXPECT_FALSE(wrong.Validate(TwoParamTemplate()).ok());
}

TEST(ParameterDomainTest, NumCombinationsProduct) {
  ParameterDomain d;
  d.AddSingle("a", {1, 2, 3});
  d.AddSingle("b", {10, 20});
  EXPECT_EQ(d.NumCombinations(), 6u);
}

TEST(ParameterDomainTest, AtDecodesAllCombinations) {
  ParameterDomain d;
  d.AddSingle("a", {1, 2, 3});
  d.AddSingle("b", {10, 20});
  std::set<std::pair<rdf::TermId, rdf::TermId>> seen;
  for (uint64_t i = 0; i < 6; ++i) {
    auto b = d.At(i);
    ASSERT_EQ(b.values.size(), 2u);
    seen.insert({b.values[0], b.values[1]});
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ParameterDomainTest, TupleGroupKeepsCorrelation) {
  ParameterDomain d;
  d.AddSingle("person", {100, 200});
  d.AddTuples({"x", "y"}, {{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(d.NumCombinations(), 6u);
  for (uint64_t i = 0; i < 6; ++i) {
    auto b = d.At(i);
    ASSERT_EQ(b.values.size(), 3u);
    // Tuples stay intact: (1,2), (3,4) or (5,6); never (1,4).
    EXPECT_EQ(b.values[2], b.values[1] + 1);
  }
}

TEST(ParameterDomainTest, SampleWithinDomain) {
  ParameterDomain d;
  d.AddSingle("a", {1, 2, 3});
  d.AddSingle("b", {10, 20});
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    auto b = d.Sample(&rng);
    EXPECT_GE(b.values[0], 1u);
    EXPECT_LE(b.values[0], 3u);
    EXPECT_TRUE(b.values[1] == 10 || b.values[1] == 20);
  }
}

TEST(ParameterDomainTest, SampleNDistinct) {
  ParameterDomain d;
  d.AddSingle("a", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  util::Rng rng(7);
  auto samples = d.SampleN(&rng, 5, /*distinct=*/true);
  ASSERT_EQ(samples.size(), 5u);
  std::set<sparql::ParameterBinding> unique(samples.begin(), samples.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(ParameterDomainTest, SampleNFallsBackWhenDomainTiny) {
  ParameterDomain d;
  d.AddSingle("a", {1});
  util::Rng rng(9);
  auto samples = d.SampleN(&rng, 10, /*distinct=*/true);
  EXPECT_EQ(samples.size(), 10u);  // with replacement fallback
}

TEST(ParameterDomainTest, EnumerateSmallDomainComplete) {
  ParameterDomain d;
  d.AddSingle("a", {1, 2, 3});
  auto all = d.Enumerate(100);
  EXPECT_EQ(all.size(), 3u);
}

TEST(ParameterDomainTest, EnumerateLargeDomainSpaced) {
  ParameterDomain d;
  std::vector<rdf::TermId> big;
  for (rdf::TermId i = 0; i < 1000; ++i) big.push_back(i);
  d.AddSingle("a", big);
  auto some = d.Enumerate(10);
  ASSERT_EQ(some.size(), 10u);
  // Spaced coverage: first near 0, last near the end.
  EXPECT_LT(some.front().values[0], 100u);
  EXPECT_GT(some.back().values[0], 800u);
  std::set<rdf::TermId> unique;
  for (const auto& b : some) unique.insert(b.values[0]);
  EXPECT_EQ(unique.size(), 10u);
}

TEST(ParameterDomainTest, EmptyDomainZeroCombinations) {
  ParameterDomain d;
  EXPECT_EQ(d.NumCombinations(), 0u);
  EXPECT_TRUE(d.Enumerate(10).empty());
}

TEST(ParameterDomainTest, ValidateRejectsEmptyGroup) {
  ParameterDomain d;
  d.AddSingle("a", {});
  d.AddSingle("b", {1});
  EXPECT_FALSE(d.Validate(TwoParamTemplate()).ok());
}

}  // namespace
}  // namespace rdfparams::core

// Differential proof for the storage layer: a store opened from a
// snapshot must be indistinguishable from the fresh load that produced
// it — same TermIds, same terms, same index runs, same derived stats,
// and byte-identical classify / run / explain output through the shared
// protocol formatters. Covers both workloads, seeded random stores over
// several page sizes, the degenerate stores (empty, single triple), and
// the save -> open -> save fixpoint (the second file is bit-identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/plan_classifier.h"
#include "core/workload.h"
#include "optimizer/optimizer.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "server/protocol.h"
#include "server/workbench.h"
#include "storage/snapshot.h"
#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace rdfparams::storage {
namespace {

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "rdfparams_" + name;
}

void ExpectDictsIdentical(const rdf::Dictionary& a, const rdf::Dictionary& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.term(static_cast<rdf::TermId>(i)),
              b.term(static_cast<rdf::TermId>(i)))
        << "term " << i << " differs";
  }
}

void ExpectStoresIdentical(const rdf::TripleStore& a,
                           const rdf::TripleStore& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.all_indexes_built(), b.all_indexes_built());
  for (rdf::IndexOrder order : a.BuiltIndexes()) {
    auto run_a = a.IndexRun(order);
    auto run_b = b.IndexRun(order);
    ASSERT_EQ(run_a.size(), run_b.size()) << rdf::IndexOrderName(order);
    EXPECT_TRUE(std::equal(run_a.begin(), run_a.end(), run_b.begin()))
        << rdf::IndexOrderName(order) << " run differs";
  }
  EXPECT_EQ(a.NumDistinctSubjects(), b.NumDistinctSubjects());
  EXPECT_EQ(a.NumDistinctPredicates(), b.NumDistinctPredicates());
  EXPECT_EQ(a.NumDistinctObjects(), b.NumDistinctObjects());
  EXPECT_EQ(a.Predicates(), b.Predicates());
  for (rdf::TermId p : a.Predicates()) {
    EXPECT_EQ(a.DistinctSubjectsForPredicate(p),
              b.DistinctSubjectsForPredicate(p));
    EXPECT_EQ(a.DistinctObjectsForPredicate(p),
              b.DistinctObjectsForPredicate(p));
  }
}

/// classify + run + explain output for one template, rendered with the
/// same formatters the daemon uses — the end-to-end determinism anchor.
std::string PipelineOutput(const server::Workbench& wb, int64_t query) {
  auto tmpl = server::PickTemplate(wb, query);
  EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  auto domain = server::MakeDomain(wb, **tmpl);
  EXPECT_TRUE(domain.ok()) << domain.status().ToString();

  core::ClassifyOptions classify_options;
  classify_options.max_candidates = 120;
  classify_options.threads = 1;
  auto classification = core::ClassifyParameters(**tmpl, *domain, wb.store(),
                                                 wb.dict(), classify_options);
  EXPECT_TRUE(classification.ok()) << classification.status().ToString();
  std::string out =
      server::FormatClassification(**tmpl, *classification, wb.dict());

  util::Rng rng(1007);
  auto bindings = domain->SampleN(&rng, 8);
  // RunAll interns only already-present terms here, so the const_cast-free
  // copy of the dictionary stays byte-stable; use a runner on a mutable
  // workbench instead.
  core::WorkloadRunner runner(wb.store(),
                              const_cast<rdf::Dictionary*>(&wb.dict()));
  core::WorkloadOptions run_options;
  run_options.threads = 1;
  auto obs = runner.RunAll(**tmpl, bindings, run_options);
  EXPECT_TRUE(obs.ok()) << obs.status().ToString();
  out += server::FormatObservations(**tmpl, *obs, wb.dict());

  util::Rng explain_rng(1007);
  auto binding = domain->Sample(&explain_rng);
  auto bound = (*tmpl)->Bind(binding, wb.dict());
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  auto plan = opt::Optimize(*bound, wb.store(), wb.dict(), {});
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  out += server::FormatExplain(**tmpl, *bound, binding, *plan, wb.dict());
  return out;
}

void RoundTripWorkbench(const std::string& workload, int64_t query) {
  server::WorkbenchConfig config;
  config.workload = workload;
  config.products = 300;
  config.persons = 400;
  auto fresh = server::BuildWorkbench(config);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  std::string path = TmpPath(workload + "_roundtrip.snap");
  ASSERT_TRUE(server::SaveWorkbenchSnapshot(*fresh, path).ok());
  auto opened = server::OpenWorkbenchSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  ExpectDictsIdentical(fresh->dict(), opened->dict());
  ExpectStoresIdentical(fresh->store(), opened->store());
  ASSERT_EQ(fresh->templates.size(), opened->templates.size());
  EXPECT_EQ(PipelineOutput(*fresh, query), PipelineOutput(*opened, query));
  std::remove(path.c_str());
}

TEST(StorageSnapshot, BsbmWorkbenchRoundTripsByteIdentically) {
  RoundTripWorkbench("bsbm", 4);
}

TEST(StorageSnapshot, SnbWorkbenchRoundTripsByteIdentically) {
  RoundTripWorkbench("snb", 1);
}

TEST(StorageSnapshot, BsbmEntityListsRoundTrip) {
  server::WorkbenchConfig config;
  config.products = 300;
  auto fresh = server::BuildWorkbench(config);
  ASSERT_TRUE(fresh.ok());
  std::string path = TmpPath("bsbm_entities.snap");
  ASSERT_TRUE(server::SaveWorkbenchSnapshot(*fresh, path).ok());
  auto opened = server::OpenWorkbenchSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  const bsbm::Dataset& a = *fresh->bsbm_ds;
  const bsbm::Dataset& b = *opened->bsbm_ds;
  ASSERT_EQ(a.types.size(), b.types.size());
  for (size_t i = 0; i < a.types.size(); ++i) {
    EXPECT_EQ(a.types[i].id, b.types[i].id);
    EXPECT_EQ(a.types[i].level, b.types[i].level);
    EXPECT_EQ(a.types[i].parent, b.types[i].parent);
    EXPECT_EQ(a.types[i].feature_pool, b.types[i].feature_pool);
    EXPECT_EQ(a.types[i].num_products, b.types[i].num_products);
  }
  EXPECT_EQ(a.products, b.products);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.producers, b.producers);
  EXPECT_EQ(a.vendors, b.vendors);
  EXPECT_EQ(a.reviewers, b.reviewers);
  EXPECT_EQ(a.TypeIds(), b.TypeIds());
  EXPECT_EQ(a.LeafTypeIds(), b.LeafTypeIds());
  std::remove(path.c_str());
}

TEST(StorageSnapshot, SnbEntityListsRoundTrip) {
  server::WorkbenchConfig config;
  config.workload = "snb";
  config.persons = 400;
  auto fresh = server::BuildWorkbench(config);
  ASSERT_TRUE(fresh.ok());
  std::string path = TmpPath("snb_entities.snap");
  ASSERT_TRUE(server::SaveWorkbenchSnapshot(*fresh, path).ok());
  auto opened = server::OpenWorkbenchSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  const snb::Dataset& a = *fresh->snb_ds;
  const snb::Dataset& b = *opened->snb_ds;
  EXPECT_EQ(a.persons, b.persons);
  EXPECT_EQ(a.countries, b.countries);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.posts, b.posts);
  EXPECT_EQ(a.first_names, b.first_names);
  EXPECT_EQ(a.home_country, b.home_country);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Seeded random stores: structure-free coverage across page sizes,
// including terms with every kind / datatype / language-tag shape.
// ---------------------------------------------------------------------------

rdf::Term RandomTerm(util::Rng* rng, uint64_t i) {
  switch (rng->Uniform(5)) {
    case 0: return rdf::Term::Iri("http://example.org/e" + std::to_string(i));
    case 1: return rdf::Term::Blank("b" + std::to_string(i));
    case 2: return rdf::Term::Literal("lit \"quoted\"\n#" + std::to_string(i));
    case 3: return rdf::Term::Integer(static_cast<int64_t>(i) - 50);
    default: {
      rdf::Term t = rdf::Term::Literal("tagged" + std::to_string(i));
      t.lang = (i % 2) == 0 ? "en" : "de";
      return t;
    }
  }
}

void RoundTripRandomStore(uint64_t seed, uint32_t page_size, size_t triples,
                          bool all_indexes) {
  util::Rng rng(seed);
  rdf::Dictionary dict;
  std::vector<rdf::TermId> ids;
  size_t num_terms = 20 + rng.Uniform(60);
  for (size_t i = 0; i < num_terms; ++i) {
    ids.push_back(dict.Intern(RandomTerm(&rng, i)));
  }
  rdf::TripleStore store;
  for (size_t i = 0; i < triples; ++i) {
    store.Add(ids[rng.Uniform(ids.size())],
              ids[rng.Uniform(ids.size())],
              ids[rng.Uniform(ids.size())]);
  }
  if (all_indexes) store.BuildAllIndexes();
  store.Finalize();

  std::string path = TmpPath("random_" + std::to_string(seed) + "_" +
                             std::to_string(page_size) + ".snap");
  SaveOptions options;
  options.page_size = page_size;
  ASSERT_TRUE(Snapshot::Save(dict, store, "opaque-meta", path, options).ok());
  auto opened = Snapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectDictsIdentical(dict, opened->dict);
  ExpectStoresIdentical(store, opened->store);
  EXPECT_TRUE(opened->has_app_meta);
  EXPECT_EQ(opened->app_meta, "opaque-meta");
  std::remove(path.c_str());
}

TEST(StorageSnapshot, SeededRandomStoresRoundTrip) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (uint32_t page_size : {512u, 4096u}) {
      RoundTripRandomStore(seed, page_size, 500 + seed * 137,
                           /*all_indexes=*/seed % 2 == 0);
    }
  }
}

TEST(StorageSnapshot, EmptyStoreRoundTrips) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  store.Finalize();
  std::string path = TmpPath("empty.snap");
  ASSERT_TRUE(Snapshot::Save(dict, store, {}, path).ok());
  auto opened = Snapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->dict.size(), 0u);
  EXPECT_EQ(opened->store.size(), 0u);
  EXPECT_TRUE(opened->store.finalized());
  EXPECT_FALSE(opened->has_app_meta);
  std::remove(path.c_str());
}

TEST(StorageSnapshot, SingleTripleRoundTrips) {
  rdf::Dictionary dict;
  rdf::TermId s = dict.InternIri("http://example.org/s");
  rdf::TermId p = dict.InternIri("http://example.org/p");
  rdf::TermId o = dict.InternLiteral("o");
  rdf::TripleStore store;
  store.Add(s, p, o);
  store.Finalize();
  std::string path = TmpPath("single.snap");
  ASSERT_TRUE(Snapshot::Save(dict, store, {}, path).ok());
  auto opened = Snapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectDictsIdentical(dict, opened->dict);
  ExpectStoresIdentical(store, opened->store);
  EXPECT_EQ(opened->store.CountPattern(s, p, o), 1u);
  std::remove(path.c_str());
}

TEST(StorageSnapshot, SaveOpenSaveIsAFixpoint) {
  server::WorkbenchConfig config;
  config.products = 300;
  auto fresh = server::BuildWorkbench(config);
  ASSERT_TRUE(fresh.ok());
  std::string first = TmpPath("fixpoint1.snap");
  std::string second = TmpPath("fixpoint2.snap");
  ASSERT_TRUE(server::SaveWorkbenchSnapshot(*fresh, first).ok());
  auto opened = server::OpenWorkbenchSnapshot(first);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(server::SaveWorkbenchSnapshot(*opened, second).ok());

  auto bytes_a = util::ReadFileToString(first);
  auto bytes_b = util::ReadFileToString(second);
  ASSERT_TRUE(bytes_a.ok() && bytes_b.ok());
  ASSERT_EQ(bytes_a->size(), bytes_b->size());
  EXPECT_TRUE(*bytes_a == *bytes_b) << "second save is not bit-identical";
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(StorageSnapshot, BareSnapshotRefusesToServeWorkload) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  store.Finalize();
  std::string path = TmpPath("bare.snap");
  ASSERT_TRUE(Snapshot::Save(dict, store, {}, path).ok());
  auto opened = server::OpenWorkbenchSnapshot(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("no workload metadata"),
            std::string::npos)
      << opened.status().ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Open-mode differentials: the mmap (borrowed-frame, zero-copy) path and
// the copied path must restore identical stores at every page size, and a
// v1 file must keep opening through the re-intern fallback.
// ---------------------------------------------------------------------------

TEST(StorageSnapshot, MmapAndCopiedOpensAreIdentical) {
  if (!util::MmapFile::Supported()) GTEST_SKIP() << "no mmap platform";
  for (uint32_t page_size : {512u, 2048u, 4096u}) {
    util::Rng rng(31 + page_size);
    rdf::Dictionary dict;
    std::vector<rdf::TermId> ids;
    for (size_t i = 0; i < 150; ++i) {
      ids.push_back(dict.Intern(RandomTerm(&rng, i)));
    }
    rdf::TripleStore store;
    for (size_t i = 0; i < 1500; ++i) {
      store.Add(ids[rng.Uniform(ids.size())], ids[rng.Uniform(ids.size())],
                ids[rng.Uniform(ids.size())]);
    }
    store.BuildAllIndexes();
    store.Finalize();

    std::string path = TmpPath("mmap_diff_" + std::to_string(page_size) +
                               ".snap");
    SaveOptions save;
    save.page_size = page_size;
    ASSERT_TRUE(Snapshot::Save(dict, store, "m", path, save).ok());

    OpenOptions copied;
    copied.mmap = MmapMode::kOff;
    OpenStats copied_stats;
    copied.stats = &copied_stats;
    auto a = Snapshot::Open(path, copied);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_FALSE(copied_stats.mmap_used);
    EXPECT_EQ(copied_stats.format_version, kFormatVersion);

    OpenOptions mapped;
    mapped.mmap = MmapMode::kOn;
    OpenStats mapped_stats;
    mapped.stats = &mapped_stats;
    auto b = Snapshot::Open(path, mapped);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_TRUE(mapped_stats.mmap_used);
    EXPECT_TRUE(b->dict.borrowed());

    ExpectDictsIdentical(a->dict, b->dict);
    ExpectStoresIdentical(a->store, b->store);
    ExpectDictsIdentical(dict, b->dict);
    ExpectStoresIdentical(store, b->store);
    EXPECT_EQ(a->app_meta, b->app_meta);

    // Same with the whole-file pass off: the raw sections then rely on
    // their own CRCs, and the result must not change.
    OpenOptions unverified = mapped;
    unverified.verify_file_checksum = false;
    unverified.stats = nullptr;
    auto c = Snapshot::Open(path, unverified);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    ExpectDictsIdentical(a->dict, c->dict);
    ExpectStoresIdentical(a->store, c->store);
    std::remove(path.c_str());
  }
}

TEST(StorageSnapshot, V1SaveStillRoundTrips) {
  util::Rng rng(41);
  rdf::Dictionary dict;
  std::vector<rdf::TermId> ids;
  for (size_t i = 0; i < 80; ++i) {
    ids.push_back(dict.Intern(RandomTerm(&rng, i)));
  }
  rdf::TripleStore store;
  for (size_t i = 0; i < 700; ++i) {
    store.Add(ids[rng.Uniform(ids.size())], ids[rng.Uniform(ids.size())],
              ids[rng.Uniform(ids.size())]);
  }
  store.Finalize();

  std::string path = TmpPath("v1_roundtrip.snap");
  SaveOptions save;
  save.format_version = 1;
  ASSERT_TRUE(Snapshot::Save(dict, store, "legacy", path, save).ok());

  OpenStats stats;
  OpenOptions options;
  options.stats = &stats;
  auto opened = Snapshot::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(stats.format_version, 1u);
  EXPECT_FALSE(opened->dict.borrowed());  // v1 always re-interns
  ExpectDictsIdentical(dict, opened->dict);
  ExpectStoresIdentical(store, opened->store);
  std::remove(path.c_str());
}

// The checked-in fixture was written by the format-v1 writer as it
// existed before the v2 sections landed — a genuine old file, not one
// this build produced. It must keep opening with identical contents, and
// today's v1 writer must still reproduce it bit for bit.
TEST(StorageSnapshot, CheckedInV1FixtureOpensByteIdentically) {
  const std::string fixture =
      std::string(RDFPARAMS_TESTDATA_DIR) + "/v1_bsbm_p120.snap";

  server::WorkbenchConfig config;
  config.products = 120;
  auto fresh = server::BuildWorkbench(config);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  auto opened = server::OpenWorkbenchSnapshot(fixture);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectDictsIdentical(fresh->dict(), opened->dict());
  ExpectStoresIdentical(fresh->store(), opened->store());
  EXPECT_EQ(PipelineOutput(*fresh, 4), PipelineOutput(*opened, 4));

  // Writer stability: saving the same workbench at v1 today yields the
  // fixture's exact bytes (the save -> open -> save fixpoint, across
  // format generations).
  std::string resaved = TmpPath("v1_fixture_resave.snap");
  storage::SaveOptions save;
  save.page_size = 512;
  save.format_version = 1;
  ASSERT_TRUE(server::SaveWorkbenchSnapshot(*fresh, resaved, save).ok());
  auto bytes_fixture = util::ReadFileToString(fixture);
  auto bytes_resaved = util::ReadFileToString(resaved);
  ASSERT_TRUE(bytes_fixture.ok() && bytes_resaved.ok());
  EXPECT_TRUE(*bytes_fixture == *bytes_resaved)
      << "v1 writer output drifted from the checked-in fixture";
  std::remove(resaved.c_str());
}

TEST(StorageSnapshot, InspectReportsLayout) {
  server::WorkbenchConfig config;
  config.products = 300;
  auto fresh = server::BuildWorkbench(config);
  ASSERT_TRUE(fresh.ok());
  std::string path = TmpPath("inspect.snap");
  ASSERT_TRUE(server::SaveWorkbenchSnapshot(*fresh, path).ok());
  auto info = Snapshot::Inspect(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->header.page_size, kDefaultPageSize);
  EXPECT_EQ(info->header.version, kFormatVersion);
  // v2 carries the raw dictionary triple instead of the v1 byte stream.
  EXPECT_EQ(info->header.FindSection(kSectionDictionary), nullptr);
  ASSERT_NE(info->header.FindSection(kSectionDictArena), nullptr);
  ASSERT_NE(info->header.FindSection(kSectionDictHash), nullptr);
  const SectionInfo* records = info->header.FindSection(kSectionDictRecords);
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->item_count, fresh->dict().size());
  EXPECT_EQ(records->byte_length, fresh->dict().size() * rdf::kTermRecordBytes);
  ASSERT_NE(info->header.FindSection(kSectionAppMeta), nullptr);
  const SectionInfo* spo =
      info->header.FindSection(SectionKindForIndex(rdf::IndexOrder::kSPO));
  ASSERT_NE(spo, nullptr);
  EXPECT_EQ(spo->item_count, fresh->store().size());
  EXPECT_FALSE(info->header.all_indexes());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdfparams::storage

#include "rdf/term.h"

#include <gtest/gtest.h>

namespace rdfparams::rdf {
namespace {

TEST(TermTest, Constructors) {
  Term iri = Term::Iri("http://example.org/a");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_EQ(iri.lexical, "http://example.org/a");

  Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());

  Term lit = Term::Literal("hello");
  EXPECT_TRUE(lit.is_literal());
  EXPECT_TRUE(lit.datatype.empty());

  Term typed = Term::TypedLiteral("5", std::string(kXsdInteger));
  EXPECT_TRUE(typed.is_numeric());

  Term lang = Term::LangLiteral("hallo", "de");
  EXPECT_EQ(lang.lang, "de");
}

TEST(TermTest, IntegerAndDoubleAccessors) {
  EXPECT_EQ(Term::Integer(42).AsInteger(), 42);
  EXPECT_EQ(Term::Integer(-7).AsInteger(), -7);
  EXPECT_DOUBLE_EQ(*Term::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Term::Literal("abc").AsInteger(), std::nullopt);
  EXPECT_EQ(Term::Literal("12x").AsInteger(), std::nullopt);
  EXPECT_EQ(Term::Iri("http://x/12").AsInteger(), std::nullopt);
  // Integers parse as doubles too.
  EXPECT_DOUBLE_EQ(*Term::Integer(3).AsDouble(), 3.0);
}

TEST(TermTest, NTriplesSerialization) {
  EXPECT_EQ(Term::Iri("http://x/a").ToNTriples(), "<http://x/a>");
  EXPECT_EQ(Term::Blank("n1").ToNTriples(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::LangLiteral("hi", "en").ToNTriples(), "\"hi\"@en");
  EXPECT_EQ(Term::Integer(5).ToNTriples(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  // xsd:string is normalized away.
  EXPECT_EQ(Term::TypedLiteral("x", std::string(kXsdString)).ToNTriples(),
            "\"x\"");
}

TEST(TermTest, EscapeRoundTrip) {
  std::string nasty = "line1\nline2\t\"quoted\" back\\slash\r";
  std::string escaped = EscapeNTriplesString(nasty);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  auto back = UnescapeNTriplesString(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nasty);
}

TEST(TermTest, UnicodeEscapes) {
  auto r = UnescapeNTriplesString("caf\\u00E9");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "caf\xC3\xA9");
  auto r2 = UnescapeNTriplesString("\\U0001F600");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 4u);  // 4-byte UTF-8
}

TEST(TermTest, BadEscapesFail) {
  EXPECT_FALSE(UnescapeNTriplesString("trailing\\").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\q").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\u12").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\u12GZ").ok());
}

TEST(TermTest, EqualityStructural) {
  EXPECT_EQ(Term::Iri("http://x"), Term::Iri("http://x"));
  EXPECT_NE(Term::Iri("http://x"), Term::Literal("http://x"));
  EXPECT_NE(Term::LangLiteral("a", "en"), Term::LangLiteral("a", "de"));
  EXPECT_NE(Term::Integer(1), Term::Literal("1"));
}

TEST(TermTest, CompareKindOrder) {
  // blank < IRI < literal.
  EXPECT_LT(Term::Blank("z").Compare(Term::Iri("a")), 0);
  EXPECT_LT(Term::Iri("z").Compare(Term::Literal("a")), 0);
}

TEST(TermTest, CompareNumericByValue) {
  // "10" > "9" numerically although lexically smaller.
  EXPECT_GT(Term::Integer(10).Compare(Term::Integer(9)), 0);
  EXPECT_LT(Term::Double(2.5).Compare(Term::Integer(3)), 0);
  EXPECT_EQ(Term::Double(3.0).Compare(Term::Integer(3)), 0);
}

TEST(TermTest, CompareLexicalFallback) {
  EXPECT_LT(Term::Literal("apple").Compare(Term::Literal("banana")), 0);
  EXPECT_EQ(Term::Literal("a").Compare(Term::Literal("a")), 0);
}

}  // namespace
}  // namespace rdfparams::rdf

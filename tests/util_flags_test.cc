#include "util/flags.h"

#include <gtest/gtest.h>

namespace rdfparams::util {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagParserTest, ParsesEqualsAndSpaceSyntax) {
  FlagParser flags;
  int64_t scale = 1;
  double ratio = 0.5;
  std::string name = "default";
  flags.AddInt64("scale", &scale, "scale factor");
  flags.AddDouble("ratio", &ratio, "a ratio");
  flags.AddString("name", &name, "a name");

  std::vector<std::string> storage{"prog", "--scale=7", "--ratio", "0.25",
                                   "--name=bench"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(scale, 7);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(name, "bench");
}

TEST(FlagParserTest, BoolFlagVariants) {
  FlagParser flags;
  bool verbose = false, quiet = true;
  flags.AddBool("verbose", &verbose, "verbosity");
  flags.AddBool("quiet", &quiet, "quietness");
  std::vector<std::string> storage{"prog", "--verbose", "--quiet=false"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(verbose);
  EXPECT_FALSE(quiet);
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags;
  std::vector<std::string> storage{"prog", "--nope=1"};
  auto argv = MakeArgv(storage);
  Status st = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BadIntegerFails) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "");
  std::vector<std::string> storage{"prog", "--n=abc"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, CollectsPositionalAndHelp) {
  FlagParser flags;
  std::vector<std::string> storage{"prog", "input.nt", "--help"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags.help_requested());
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.nt");
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "");
  std::vector<std::string> storage{"prog", "--n"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, UsageListsFlagsWithDefaults) {
  FlagParser flags;
  int64_t n = 13;
  flags.AddInt64("n", &n, "the n");
  std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("the n"), std::string::npos);
  EXPECT_NE(usage.find("13"), std::string::npos);
}

}  // namespace
}  // namespace rdfparams::util

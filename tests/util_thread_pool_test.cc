#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace rdfparams::util {
namespace {

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int x = 0;
  pool.Submit([&x] { x = 7; });  // runs synchronously
  EXPECT_EQ(x, 7);
  pool.Wait();  // nothing pending; must not hang
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t workers : {0u, 1u, 3u, 7u}) {
    ThreadPool pool(workers);
    constexpr uint64_t kN = 10000;
    std::vector<std::atomic<uint32_t>> hits(kN);
    pool.ParallelFor(0, kN, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " with " << workers
                                    << " workers";
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(41, 42, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 41u);
}

TEST(ThreadPoolTest, ParallelForSlotWritesAreDeterministic) {
  // Writing f(i) into slot i must give the same vector for any thread
  // count — this is the property the curation pipeline relies on.
  auto run = [](size_t workers) {
    ThreadPool pool(workers);
    std::vector<uint64_t> out(5000);
    pool.ParallelFor(0, out.size(), [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) out[i] = i * i + 1;
    });
    return out;
  };
  EXPECT_EQ(run(0), run(7));
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(5), 5u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);   // hardware concurrency
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1u);
}

}  // namespace
}  // namespace rdfparams::util

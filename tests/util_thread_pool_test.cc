#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace rdfparams::util {
namespace {

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int x = 0;
  pool.Submit([&x] { x = 7; });  // runs synchronously
  EXPECT_EQ(x, 7);
  pool.Wait();  // nothing pending; must not hang
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t workers : {0u, 1u, 3u, 7u}) {
    ThreadPool pool(workers);
    constexpr uint64_t kN = 10000;
    std::vector<std::atomic<uint32_t>> hits(kN);
    pool.ParallelFor(0, kN, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " with " << workers
                                    << " workers";
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(41, 42, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 41u);
}

TEST(ThreadPoolTest, ParallelForSlotWritesAreDeterministic) {
  // Writing f(i) into slot i must give the same vector for any thread
  // count — this is the property the curation pipeline relies on.
  auto run = [](size_t workers) {
    ThreadPool pool(workers);
    std::vector<uint64_t> out(5000);
    pool.ParallelFor(0, out.size(), [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) out[i] = i * i + 1;
    });
    return out;
  };
  EXPECT_EQ(run(0), run(7));
}

TEST(PoolSortTest, MatchesStdSortAcrossSizesAndThreadCounts) {
  // Sizes straddle the serial-fallback threshold and the power-of-two
  // chunk boundaries; values repeat heavily so the merges see equal keys.
  for (size_t n : {size_t{0}, size_t{1}, size_t{1000}, size_t{50000},
                   size_t{65536}, size_t{70001}}) {
    std::vector<uint32_t> reference(n);
    uint64_t state = 12345;
    for (size_t i = 0; i < n; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      reference[i] = static_cast<uint32_t>(state >> 33) % 997;
    }
    std::vector<uint32_t> expected = reference;
    std::sort(expected.begin(), expected.end());
    for (size_t workers : {size_t{0}, size_t{1}, size_t{3}, size_t{8}}) {
      ThreadPool pool(workers);
      std::vector<uint32_t> v = reference;
      PoolSort(&pool, v.begin(), v.end(), std::less<uint32_t>());
      EXPECT_EQ(v, expected) << "n=" << n << " workers=" << workers;
    }
    // Null pool degrades to std::sort.
    std::vector<uint32_t> v = reference;
    PoolSort(static_cast<ThreadPool*>(nullptr), v.begin(), v.end(),
             std::less<uint32_t>());
    EXPECT_EQ(v, expected);
  }
}

TEST(PoolSortTest, CustomComparator) {
  ThreadPool pool(3);
  std::vector<int> v(40000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>((i * 2654435761u) % 1000);
  }
  std::vector<int> expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<int>());
  PoolSort(&pool, v.begin(), v.end(), std::greater<int>());
  EXPECT_EQ(v, expected);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(5), 5u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);   // hardware concurrency
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1u);
}

}  // namespace
}  // namespace rdfparams::util

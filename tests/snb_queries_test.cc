#include "snb/queries.h"

#include <gtest/gtest.h>

#include "core/workload.h"

namespace rdfparams::snb {
namespace {

class SnbQueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.num_persons = 800;
    config.avg_degree = 8;
    config.posts_per_person = 6;
    config.seed = 21;
    ds_ = new Dataset(Generate(config));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* SnbQueriesTest::ds_ = nullptr;

TEST_F(SnbQueriesTest, AllTemplatesParse) {
  auto templates = AllTemplates(*ds_);
  ASSERT_EQ(templates.size(), 4u);
  EXPECT_EQ(templates[1].name(), "SNB-Q2");
  EXPECT_EQ(templates[1].parameter_names(),
            (std::vector<std::string>{"person"}));
  EXPECT_EQ(templates[2].parameter_names(),
            (std::vector<std::string>{"person", "countryX", "countryY"}));
}

TEST_F(SnbQueriesTest, Q1IntroExampleSelectivityVaries) {
  auto q1 = MakeQ1(*ds_);
  core::WorkloadRunner runner(ds_->store, &ds_->dict);
  // Li x China should give many matches; Li x Finland nearly none.
  auto li = ds_->dict.Find(rdf::Term::Literal("Li"));
  auto china = ds_->dict.FindIri(
      "http://rdfparams.org/snb/instances/Country_China");
  auto finland = ds_->dict.FindIri(
      "http://rdfparams.org/snb/instances/Country_Finland");
  ASSERT_TRUE(li && china && finland);
  sparql::ParameterBinding li_china{{*li, *china}};
  sparql::ParameterBinding li_finland{{*li, *finland}};
  auto obs1 = runner.RunOnce(q1, li_china);
  auto obs2 = runner.RunOnce(q1, li_finland);
  ASSERT_TRUE(obs1.ok() && obs2.ok());
  EXPECT_GT(obs1->result_rows, obs2->result_rows);
}

TEST_F(SnbQueriesTest, Q2RespectsLimitAndOrdering) {
  auto q2 = MakeQ2(*ds_);
  core::WorkloadRunner runner(ds_->store, &ds_->dict);
  // Pick a person with friends.
  rdf::TermId p_knows = *ds_->dict.FindIri(ds_->vocab.knows);
  rdf::TermId person = rdf::kInvalidTermId;
  for (rdf::TermId p : ds_->persons) {
    if (ds_->store.CountPattern(p, p_knows, rdf::kWildcardId) >= 3) {
      person = p;
      break;
    }
  }
  ASSERT_NE(person, rdf::kInvalidTermId);
  sparql::ParameterBinding b{{person}};
  auto q = q2.Bind(b, ds_->dict);
  ASSERT_TRUE(q.ok());
  engine::Executor exec(ds_->store, &ds_->dict);
  engine::ExecutionStats stats;
  auto result = exec.Run(*q, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->num_rows(), 20u);
  // Dates descending.
  int date_col = result->VarIndex("date");
  ASSERT_GE(date_col, 0);
  for (size_t r = 1; r < result->num_rows(); ++r) {
    auto prev = ds_->dict.term(result->at(r - 1, static_cast<size_t>(date_col)))
                    .AsInteger();
    auto cur = ds_->dict.term(result->at(r, static_cast<size_t>(date_col)))
                   .AsInteger();
    ASSERT_TRUE(prev && cur);
    EXPECT_GE(*prev, *cur);
  }
}

TEST_F(SnbQueriesTest, Q3RunsOnCountryPairs) {
  auto q3 = MakeQ3(*ds_);
  core::WorkloadRunner runner(ds_->store, &ds_->dict);
  auto usa = ds_->dict.FindIri(
      "http://rdfparams.org/snb/instances/Country_USA");
  auto canada = ds_->dict.FindIri(
      "http://rdfparams.org/snb/instances/Country_Canada");
  ASSERT_TRUE(usa && canada);
  sparql::ParameterBinding b{{ds_->persons[0], *usa, *canada}};
  auto obs = runner.RunOnce(q3, b);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
  EXPECT_FALSE(obs->fingerprint.empty());
}

TEST_F(SnbQueriesTest, Q4TagQuery) {
  auto q4 = MakeQ4(*ds_);
  core::WorkloadRunner runner(ds_->store, &ds_->dict);
  sparql::ParameterBinding b{{ds_->persons[0], ds_->tags[0]}};
  ASSERT_EQ(q4.parameter_names().size(), 2u);
  auto obs = runner.RunOnce(q4, b);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
}

TEST_F(SnbQueriesTest, CountryPairDomainComplete) {
  auto pairs = CountryPairDomain(*ds_);
  size_t n = ds_->countries.size();
  EXPECT_EQ(pairs.size(), n * (n - 1) / 2);
  for (const auto& p : pairs) {
    ASSERT_EQ(p.values.size(), 2u);
    EXPECT_NE(p.values[0], p.values[1]);
  }
}

TEST_F(SnbQueriesTest, DomainsNonEmpty) {
  EXPECT_EQ(PersonDomain(*ds_).size(), ds_->persons.size());
  EXPECT_EQ(CountryDomain(*ds_).size(), ds_->countries.size());
  EXPECT_FALSE(NameDomain(*ds_).empty());
  EXPECT_FALSE(TagDomain(*ds_).empty());
}

}  // namespace
}  // namespace rdfparams::snb

// End-to-end integration: generate data -> extract domains -> classify
// parameters -> sample per class -> run workloads -> check that the
// Section III properties (P1-P3) hold within classes and fail across the
// pooled uniform sample. This is the paper's whole pipeline in one test.
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "bsbm/generator.h"
#include "bsbm/queries.h"
#include "core/analysis.h"
#include "core/plan_classifier.h"
#include "core/workload.h"
#include "rdf/ntriples.h"
#include "snb/generator.h"
#include "snb/queries.h"

namespace rdfparams {
namespace {

TEST(EndToEndBsbm, UniformSamplingIsUnstableClassSamplingIsNot) {
  bsbm::GeneratorConfig config;
  config.num_products = 600;
  config.type_depth = 4;  // deeper hierarchy -> stronger leaf/root skew
  config.type_branching = 3;
  config.seed = 99;
  bsbm::Dataset ds = bsbm::Generate(config);

  auto q4 = bsbm::MakeQ4(ds);
  core::ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(ds));

  // Uniform baseline over the full type domain.
  util::Rng rng(1);
  core::WorkloadRunner runner(ds.store, &ds.dict);
  auto uniform_bindings = domain.SampleN(&rng, 60);
  auto uniform_obs = runner.RunAll(q4, uniform_bindings);
  ASSERT_TRUE(uniform_obs.ok()) << uniform_obs.status().ToString();

  // The pooled uniform workload mixes plans and costs: high CV expected
  // because generic types cost orders of magnitude more than leaves.
  auto uniform_couts = core::ObservedCoutsOf(*uniform_obs);
  stats::Summary pooled = stats::Summarize(uniform_couts);
  EXPECT_GT(pooled.cv, 1.0);

  // Classify and re-run within the largest class.
  auto classes =
      core::ClassifyParameters(q4, domain, ds.store, ds.dict);
  ASSERT_TRUE(classes.ok()) << classes.status().ToString();
  ASSERT_GE(classes->classes.size(), 2u);

  const core::PlanClass& biggest = classes->classes[0];
  auto class_bindings = core::SampleFromClass(biggest, 30, &rng);
  auto class_obs = runner.RunAll(q4, class_bindings);
  ASSERT_TRUE(class_obs.ok());

  core::ClassQuality quality = core::AnalyzeClass(*class_obs);
  // P3: one plan within the class.
  EXPECT_EQ(quality.distinct_plans, 1u);
  // P1: the class C_out spread is far below the pooled spread.
  stats::Summary class_couts =
      stats::Summarize(core::ObservedCoutsOf(*class_obs));
  EXPECT_LT(class_couts.cv, pooled.cv);
}

TEST(EndToEndSnb, Q3PlanFlipsAcrossCountryPairsButNotWithinClass) {
  snb::GeneratorConfig config;
  config.num_persons = 1500;
  config.avg_degree = 10;
  config.posts_per_person = 4;
  config.seed = 31;
  snb::Dataset ds = snb::Generate(config);

  auto q3 = snb::MakeQ3(ds);
  core::ParameterDomain domain;
  // A handful of persons x all country pairs.
  std::vector<rdf::TermId> persons(ds.persons.begin(), ds.persons.begin() + 3);
  domain.AddSingle("person", persons);
  std::vector<std::vector<rdf::TermId>> pairs;
  for (const auto& b : snb::CountryPairDomain(ds)) pairs.push_back(b.values);
  domain.AddTuples({"countryX", "countryY"}, pairs);

  core::ClassifyOptions options;
  options.max_candidates = 300;
  auto classes =
      core::ClassifyParameters(q3, domain, ds.store, ds.dict, options);
  ASSERT_TRUE(classes.ok()) << classes.status().ToString();
  // E4: the country-pair correlation must yield >= 2 distinct plans.
  std::set<std::string> fingerprints;
  for (const auto& cls : classes->classes) {
    fingerprints.insert(cls.fingerprint);
  }
  EXPECT_GE(fingerprints.size(), 2u)
      << "expected the optimal Q3 plan to flip across country pairs";
}

TEST(EndToEndSnb, Q2WorkloadRunsAndAggregates) {
  snb::GeneratorConfig config;
  config.num_persons = 800;
  config.avg_degree = 8;
  config.posts_per_person = 6;
  config.seed = 77;
  snb::Dataset ds = snb::Generate(config);

  auto q2 = snb::MakeQ2(ds);
  core::ParameterDomain domain;
  domain.AddSingle("person", snb::PersonDomain(ds));

  util::Rng rng(5);
  core::WorkloadRunner runner(ds.store, &ds.dict);
  std::vector<std::vector<double>> group_times;
  for (int g = 0; g < 4; ++g) {
    auto bindings = domain.SampleN(&rng, 25);
    auto obs = runner.RunAll(q2, bindings);
    ASSERT_TRUE(obs.ok());
    group_times.push_back(core::RuntimesOf(*obs));
  }
  core::StabilityReport report = core::AnalyzeStability(group_times);
  ASSERT_EQ(report.groups.size(), 4u);
  for (const auto& g : report.groups) {
    EXPECT_EQ(g.summary.count, 25u);
    EXPECT_GT(g.average, 0.0);
    EXPECT_LE(g.q10, g.median);
    EXPECT_LE(g.median, g.q90);
  }
  EXPECT_GE(report.average_spread, 0.0);
}

TEST(EndToEndRoundTrip, GeneratedDataSurvivesNTriplesSerialization) {
  bsbm::GeneratorConfig config;
  config.num_products = 100;
  config.type_depth = 2;
  config.type_branching = 2;
  bsbm::Dataset ds = bsbm::Generate(config);

  std::ostringstream out;
  ASSERT_TRUE(rdf::WriteNTriples(ds.dict, ds.store, out).ok());

  rdf::Dictionary dict2;
  rdf::TripleStore store2;
  ASSERT_TRUE(rdf::LoadNTriples(out.str(), &dict2, &store2).ok());
  store2.Finalize();
  EXPECT_EQ(store2.size(), ds.store.size());
}

}  // namespace
}  // namespace rdfparams

#include "engine/executor.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "test_store.h"

namespace rdfparams::engine {
namespace {

class ExecutorTest : public test::TurtleStoreTest {
 protected:
  void SetUp() override { Load(test::kSocialGraphTurtle); }

  BindingTable Run(const std::string& text, ExecutionStats* stats = nullptr) {
    auto q = Parse(text);
    Executor exec(store_, &dict_);
    ExecutionStats local;
    auto result = exec.Run(q, stats != nullptr ? stats : &local);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::string TermAt(const BindingTable& t, size_t row, const char* var) {
    int col = t.VarIndex(var);
    EXPECT_GE(col, 0);
    return std::string(dict_.term(t.at(row, static_cast<size_t>(col))).lexical);
  }
};

TEST_F(ExecutorTest, SingleScanAllRows) {
  auto t = Run("SELECT * WHERE { ?a <http://x/knows> ?b . }");
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, ScanWithConstantSubjectObject) {
  auto t = Run(
      "SELECT * WHERE { <http://x/alice> <http://x/knows> ?b . }");
  EXPECT_EQ(t.num_rows(), 2u);  // bob, carol
  auto t2 = Run(
      "SELECT * WHERE { ?a <http://x/knows> <http://x/carol> . }");
  EXPECT_EQ(t2.num_rows(), 2u);  // bob, alice
}

TEST_F(ExecutorTest, TwoHopJoin) {
  auto t = Run(
      "SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }");
  // alice->bob->carol, alice->carol->alice, bob->carol->alice,
  // carol->alice->bob, carol->alice->carol.
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(ExecutorTest, JoinProducesCorrectColumns) {
  auto t = Run(
      "SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/age> ?age . }");
  EXPECT_EQ(t.num_vars(), 3u);
  EXPECT_GE(t.VarIndex("a"), 0);
  EXPECT_GE(t.VarIndex("b"), 0);
  EXPECT_GE(t.VarIndex("age"), 0);
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, FilterNumericComparison) {
  auto t = Run(
      "SELECT * WHERE { ?p <http://x/age> ?age . FILTER(?age > 26) }");
  EXPECT_EQ(t.num_rows(), 2u);  // alice 30, carol 35
  auto t2 = Run(
      "SELECT * WHERE { ?p <http://x/age> ?age . FILTER(?age = 25) }");
  EXPECT_EQ(t2.num_rows(), 2u);  // bob, dave
}

TEST_F(ExecutorTest, FilterVarVsVar) {
  auto t = Run(
      "SELECT * WHERE { ?a <http://x/age> ?aa . ?b <http://x/age> ?ab . "
      "FILTER(?aa < ?ab) }");
  // Pairs with strictly increasing age: (25,30)x2, (25,35)x2, (30,35) = 5.
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(ExecutorTest, FilterOnIriEquality) {
  auto t = Run(
      "SELECT * WHERE { ?a <http://x/knows> ?b . "
      "FILTER(?b != <http://x/carol>) }");
  EXPECT_EQ(t.num_rows(), 2u);  // alice->bob, carol->alice
}

TEST_F(ExecutorTest, DistinctRemovesDuplicates) {
  auto t = Run(
      "SELECT DISTINCT ?b WHERE { ?a <http://x/knows> ?b . }");
  EXPECT_EQ(t.num_rows(), 3u);  // bob, carol, alice
}

TEST_F(ExecutorTest, OrderByNumericDescending) {
  auto t = Run(
      "SELECT ?p ?age WHERE { ?p <http://x/age> ?age . } ORDER BY DESC(?age)");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(TermAt(t, 0, "age"), "35");
  EXPECT_EQ(TermAt(t, 3, "age"), "25");
}

TEST_F(ExecutorTest, OrderByStringAscending) {
  auto t = Run(
      "SELECT ?n WHERE { ?p <http://x/name> ?n . } ORDER BY ?n");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(TermAt(t, 0, "n"), "Alice");
  EXPECT_EQ(TermAt(t, 3, "n"), "Dave");
}

TEST_F(ExecutorTest, LimitAndOffset) {
  auto t = Run(
      "SELECT ?n WHERE { ?p <http://x/name> ?n . } ORDER BY ?n LIMIT 2");
  EXPECT_EQ(t.num_rows(), 2u);
  auto t2 = Run(
      "SELECT ?n WHERE { ?p <http://x/name> ?n . } ORDER BY ?n LIMIT 2 "
      "OFFSET 3");
  ASSERT_EQ(t2.num_rows(), 1u);
  EXPECT_EQ(TermAt(t2, 0, "n"), "Dave");
}

TEST_F(ExecutorTest, GroupByCount) {
  auto t = Run(
      "SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a <http://x/knows> ?b . } "
      "GROUP BY ?a ORDER BY DESC(?n)");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(TermAt(t, 0, "a"), "http://x/alice");  // 2 friends
  // The aggregate output column is part of the projection.
  int n_col = t.VarIndex("n");
  ASSERT_GE(n_col, 0);
  EXPECT_DOUBLE_EQ(
      *dict_.term(t.at(0, static_cast<size_t>(n_col))).AsDouble(), 2.0);
}

TEST_F(ExecutorTest, GroupByAvg) {
  auto t = Run(
      "SELECT ?b (AVG(?age) AS ?avg) WHERE { ?a <http://x/knows> ?b . "
      "?b <http://x/age> ?age . } GROUP BY ?b ORDER BY ?b");
  ASSERT_EQ(t.num_rows(), 3u);
  // Values present: alice (from carol) avg 30, bob avg 25, carol avg 35 (x2).
  std::set<std::string> seen;
  for (size_t r = 0; r < t.num_rows(); ++r) seen.insert(TermAt(t, r, "b"));
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(ExecutorTest, AggregateMinMaxSum) {
  auto t = Run(
      "SELECT (MIN(?age) AS ?lo) (MAX(?age) AS ?hi) (SUM(?age) AS ?total) "
      "WHERE { ?p <http://x/age> ?age . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(*dict_.term(t.at(0, 0)).AsDouble(), 25.0);
  EXPECT_DOUBLE_EQ(*dict_.term(t.at(0, 1)).AsDouble(), 35.0);
  EXPECT_DOUBLE_EQ(*dict_.term(t.at(0, 2)).AsDouble(), 115.0);
}

TEST_F(ExecutorTest, CountStar) {
  auto t = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?a <http://x/knows> ?b . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(*dict_.term(t.at(0, 0)).AsDouble(), 4.0);
}

TEST_F(ExecutorTest, ProjectionSelectsColumns) {
  auto t = Run("SELECT ?b WHERE { ?a <http://x/knows> ?b . }");
  EXPECT_EQ(t.num_vars(), 1u);
  EXPECT_EQ(t.vars()[0], "b");
}

TEST_F(ExecutorTest, OrderByKeyNotInProjection) {
  // ORDER BY ?age but only ?p projected: sort must happen pre-projection.
  auto t = Run(
      "SELECT ?p WHERE { ?p <http://x/age> ?age . } ORDER BY DESC(?age) "
      "LIMIT 1");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(TermAt(t, 0, "p"), "http://x/carol");
}

TEST_F(ExecutorTest, StatsCountIntermediates) {
  ExecutionStats stats;
  Run("SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }",
      &stats);
  EXPECT_EQ(stats.intermediate_rows, 5u);  // single join, output 5
  // Index nested-loop join: 4 materialized outer rows + 5 probed matches.
  EXPECT_EQ(stats.scan_rows, 9u);
  EXPECT_EQ(stats.result_rows, 5u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST_F(ExecutorTest, EmptyResultOnAbsentConstant) {
  auto t = Run(
      "SELECT * WHERE { <http://x/zelda> <http://x/knows> ?b . }");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(ExecutorTest, RepeatedVariableInPattern) {
  // Self-loops: none in the data.
  auto t = Run("SELECT * WHERE { ?a <http://x/knows> ?a . }");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(ExecutorTest, FilterOnUnboundVariableFails) {
  auto q = Parse(
      "SELECT * WHERE { ?a <http://x/knows> ?b . FILTER(?nope = 1) }");
  Executor exec(store_, &dict_);
  ExecutionStats stats;
  auto result = exec.Run(q, &stats);
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorTest, NaiveAndOptimizedAgree) {
  const char* queries[] = {
      "SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/age> ?g . }",
      "SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . "
      "?c <http://x/age> ?g . }",
      "SELECT * WHERE { ?a <http://x/age> ?g . FILTER(?g >= 30) }",
  };
  for (const char* text : queries) {
    auto q = Parse(text);
    Executor exec(store_, &dict_);
    ExecutionStats stats;
    auto opt = exec.Run(q, &stats);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    auto naive = ExecuteNaive(q, store_, &dict_);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    EXPECT_EQ(opt->num_rows(), naive->num_rows()) << text;
  }
}

TEST_F(ExecutorTest, CrossProductExecution) {
  auto t = Run(
      "SELECT * WHERE { ?a <http://x/age> 30 . ?b <http://x/age> 35 . }");
  EXPECT_EQ(t.num_rows(), 1u);  // alice x carol
}

}  // namespace
}  // namespace rdfparams::engine

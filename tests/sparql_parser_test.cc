#include "sparql/parser.h"

#include <gtest/gtest.h>

namespace rdfparams::sparql {
namespace {

TEST(ParserTest, MinimalSelectStar) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?s <http://x/p> ?o . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select_vars.empty());
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_TRUE(q->patterns[0].s.is_var());
  EXPECT_TRUE(q->patterns[0].p.is_const());
  EXPECT_TRUE(q->patterns[0].o.is_var());
}

TEST(ParserTest, PaperIntroExample) {
  // The exact query template from the paper's introduction (lowercase
  // keywords — the lexer is case-insensitive on keywords).
  auto q = ParseQuery(R"(
PREFIX sn: <http://example.org/sn#>
select * where {
  ?person sn:firstName %name .
  ?person sn:livesIn %country .
}
)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->ParameterNames(),
            (std::vector<std::string>{"name", "country"}));
  EXPECT_EQ(q->patterns[0].p.term.lexical, "http://example.org/sn#firstName");
}

TEST(ParserTest, ProjectionVariables) {
  auto q = ParseQuery("SELECT ?a ?b WHERE { ?a <http://p> ?b . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, DistinctFlag) {
  auto q = ParseQuery("SELECT DISTINCT ?a WHERE { ?a <http://p> ?b . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
}

TEST(ParserTest, AKeyword) {
  auto q = ParseQuery("SELECT * WHERE { ?s a <http://x/C> . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns[0].p.term.lexical,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(ParserTest, LiteralsInPatterns) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?s <http://p> \"lit\"@en . ?s <http://q> 42 . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->patterns[0].o.term.lang, "en");
  EXPECT_EQ(q->patterns[1].o.term.AsInteger(), 42);
}

TEST(ParserTest, FilterComparisons) {
  for (const char* op : {"=", "!=", "<", "<=", ">", ">="}) {
    std::string text = std::string("SELECT * WHERE { ?s <http://p> ?v . ") +
                       "FILTER(?v " + op + " 10) }";
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    ASSERT_EQ(q->filters.size(), 1u);
    EXPECT_EQ(q->filters[0].lhs_var, "v");
  }
}

TEST(ParserTest, FilterAgainstVariableAndParam) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?s <http://p> ?v . ?s <http://q> ?w . "
      "FILTER(?v < ?w) FILTER(?w >= %threshold) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_TRUE(q->filters[0].rhs.is_var());
  EXPECT_TRUE(q->filters[1].rhs.is_param());
}

TEST(ParserTest, GroupByAggregates) {
  auto q = ParseQuery(R"(
SELECT ?g (COUNT(?x) AS ?n) (AVG(?v) AS ?avg) WHERE {
  ?x <http://p> ?g .
  ?x <http://q> ?v .
}
GROUP BY ?g
ORDER BY DESC(?n)
LIMIT 5
)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"g"}));
  ASSERT_EQ(q->aggregates.size(), 2u);
  EXPECT_EQ(q->aggregates[0].kind, AggregateKind::kCount);
  EXPECT_EQ(q->aggregates[0].var, "x");
  EXPECT_EQ(q->aggregates[0].as_name, "n");
  EXPECT_EQ(q->aggregates[1].kind, AggregateKind::kAvg);
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_EQ(q->limit, 5);
}

TEST(ParserTest, CountStar) {
  auto q = ParseQuery(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://p> ?o . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->aggregates[0].var.empty());
}

TEST(ParserTest, OrderByPlainAndDirectional) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?s <http://p> ?o . } ORDER BY ?o ASC(?s)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].descending);
  EXPECT_EQ(q->order_by[1].var, "s");
}

TEST(ParserTest, LimitOffset) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?s <http://p> ?o . } LIMIT 20 OFFSET 40");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->limit, 20);
  EXPECT_EQ(q->offset, 40);
}

TEST(ParserTest, CommentsSkipped) {
  auto q = ParseQuery(
      "# header\nSELECT * WHERE { # inner\n ?s <http://p> ?o . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(ParserTest, ParamInAnyPosition) {
  auto q = ParseQuery("SELECT * WHERE { %s %p %o . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ParameterNames(), (std::vector<std::string>{"s", "p", "o"}));
}

TEST(ParserTest, ErrorsWithLineNumbers) {
  auto q = ParseQuery("SELECT *\nWHERE {\n  broken here\n}");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("line 3"), std::string::npos);
}

TEST(ParserTest, RejectsEmptyPatternList) {
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { }").ok());
}

TEST(ParserTest, RejectsUndefinedPrefix) {
  auto q = ParseQuery("SELECT * WHERE { foo:a foo:b foo:c . }");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("undefined prefix"), std::string::npos);
}

TEST(ParserTest, RejectsGarbageAtEnd) {
  EXPECT_FALSE(
      ParseQuery("SELECT * WHERE { ?s <http://p> ?o . } BOGUS").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  auto q = ParseQuery(R"(
SELECT DISTINCT ?x WHERE {
  ?x <http://p> %param .
  FILTER(?x != <http://excluded>)
}
ORDER BY ?x
LIMIT 3
)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << "round-trip failed on: " << q->ToString() << "\n"
                       << q2.status().ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

}  // namespace
}  // namespace rdfparams::sparql

#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace rdfparams::util {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.Uniform(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  constexpr int kN = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  constexpr int kN = 50000;
  double sum = 0;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ForkIsIndependentOfParentSequence) {
  Rng a(42);
  Rng fork1 = a.Fork(1);
  uint64_t f1 = fork1.Next64();
  // Re-create: fork before any parent draws must be identical.
  Rng b(42);
  Rng fork2 = b.Fork(1);
  EXPECT_EQ(f1, fork2.Next64());
  // Different salts give different streams.
  Rng c(42);
  Rng fork3 = c.Fork(2);
  EXPECT_NE(f1, fork3.Next64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (size_t n : {10ul, 100ul, 1000ul}) {
    for (size_t k : {0ul, 1ul, 5ul, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  Rng rng(31);
  ZipfDistribution zipf(100, 1.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[1], counts[50] + counts[51]);
  for (const auto& [value, count] : counts) {
    (void)count;
    EXPECT_GE(value, 1u);
    EXPECT_LE(value, 100u);
  }
}

TEST(ZipfTest, ZipfLawRatio) {
  Rng rng(37);
  ZipfDistribution zipf(1000, 1.0);
  int c1 = 0, c2 = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = zipf.Sample(&rng);
    if (v == 1) ++c1;
    if (v == 2) ++c2;
  }
  // P(1)/P(2) should be about 2 for s=1.
  EXPECT_NEAR(static_cast<double>(c1) / c2, 2.0, 0.4);
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(39);
  ZipfDistribution zipf(1, 1.2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 1u);
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(41);
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[table.Sample(&rng)];
  for (int i = 0; i < 4; ++i) {
    double expect = (i + 1) / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(kN), expect, 0.01);
    EXPECT_NEAR(table.probability(i), expect, 1e-12);
  }
}

TEST(AliasTableTest, HandlesZeroWeights) {
  Rng rng(43);
  AliasTable table({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Sample(&rng), 1u);
  }
}

TEST(SeedFromLabelTest, DistinctLabelsDistinctSeeds) {
  uint64_t a = SeedFromLabel(1, "persons");
  uint64_t b = SeedFromLabel(1, "posts");
  uint64_t c = SeedFromLabel(2, "persons");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, SeedFromLabel(1, "persons"));
}

}  // namespace
}  // namespace rdfparams::util

// Property tests for TripleStore::CountPatternBatch: on random stores,
// the batched galloping sweep must agree with per-candidate CountPattern
// for every var position, every fixed-slot combination, every index
// configuration, and candidate lists containing absent ids and duplicates.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/triple_store.h"
#include "util/rng.h"

namespace rdfparams::rdf {
namespace {

/// A random store over small id spaces, so values repeat and runs form.
TripleStore MakeRandomStore(util::Rng* rng, size_t triples, TermId s_space,
                            TermId p_space, TermId o_space,
                            bool all_indexes) {
  TripleStore store;
  for (size_t i = 0; i < triples; ++i) {
    store.Add(static_cast<TermId>(rng->Uniform(s_space)),
              static_cast<TermId>(rng->Uniform(p_space)),
              static_cast<TermId>(rng->Uniform(o_space)));
  }
  if (all_indexes) store.BuildAllIndexes();
  store.Finalize();
  return store;
}

/// Sorted candidate list mixing present ids, absent ids (>= id space) and
/// duplicates.
std::vector<TermId> MakeCandidates(util::Rng* rng, size_t n, TermId space) {
  std::vector<TermId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // ~20% of draws land beyond the id space (guaranteed count 0).
    out.push_back(static_cast<TermId>(rng->Uniform(space + space / 4 + 1)));
    if (i > 0 && rng->Bernoulli(0.2)) out.back() = out[out.size() - 2];
  }
  std::sort(out.begin(), out.end());
  return out;
}

TriplePos AllPositions[] = {TriplePos::kS, TriplePos::kP, TriplePos::kO};

/// Exhaustively checks one store: every var position x every combination
/// of bound/wildcard fixed slots, batched vs per-candidate.
void CheckStore(const TripleStore& store, util::Rng* rng, TermId s_space,
                TermId p_space, TermId o_space) {
  const TermId spaces[3] = {s_space, p_space, o_space};
  for (TriplePos var_pos : AllPositions) {
    const TermId var_space = spaces[static_cast<size_t>(var_pos)];
    for (int mask = 0; mask < 8; ++mask) {
      if ((mask >> static_cast<int>(var_pos)) & 1) continue;  // var slot
      Triple fixed(kWildcardId, kWildcardId, kWildcardId);
      for (TriplePos pos : AllPositions) {
        if ((mask >> static_cast<int>(pos)) & 1) {
          SetPos(&fixed, pos,
                 static_cast<TermId>(
                     rng->Uniform(spaces[static_cast<size_t>(pos)] + 2)));
        }
      }
      std::vector<TermId> candidates = MakeCandidates(rng, 40, var_space);
      std::vector<uint64_t> batched = store.CountPatternBatch(
          var_pos, fixed.s, fixed.p, fixed.o, candidates);
      ASSERT_EQ(batched.size(), candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        Triple q = fixed;
        SetPos(&q, var_pos, candidates[i]);
        EXPECT_EQ(batched[i], store.CountPattern(q.s, q.p, q.o))
            << "var_pos=" << static_cast<int>(var_pos) << " mask=" << mask
            << " candidate=" << candidates[i];
      }
    }
  }
}

TEST(CountPatternBatchTest, MatchesPerCandidateOnRandomStores) {
  util::Rng rng(991);
  for (int round = 0; round < 6; ++round) {
    TermId s_space = static_cast<TermId>(2 + rng.Uniform(40));
    TermId p_space = static_cast<TermId>(1 + rng.Uniform(8));
    TermId o_space = static_cast<TermId>(2 + rng.Uniform(60));
    size_t triples = 50 + static_cast<size_t>(rng.Uniform(3000));
    bool all_indexes = (round % 2) == 1;
    TripleStore store = MakeRandomStore(&rng, triples, s_space, p_space,
                                        o_space, all_indexes);
    CheckStore(store, &rng, s_space, p_space, o_space);
  }
}

TEST(CountPatternBatchTest, EmptyCandidatesAndEmptyStore) {
  util::Rng rng(5);
  TripleStore store = MakeRandomStore(&rng, 100, 10, 3, 10, false);
  EXPECT_TRUE(
      store.CountPatternBatch(TriplePos::kO, 1, 2, kWildcardId, {}).empty());

  TripleStore empty;
  empty.Finalize();
  std::vector<TermId> candidates = {0, 1, 2};
  std::vector<uint64_t> counts = empty.CountPatternBatch(
      TriplePos::kS, kWildcardId, kWildcardId, kWildcardId, candidates);
  EXPECT_EQ(counts, (std::vector<uint64_t>{0, 0, 0}));
}

TEST(CountPatternBatchTest, IgnoresValueAtVarSlot) {
  // The caller may pass anything at var_pos — it must not affect counts.
  util::Rng rng(7);
  TripleStore store = MakeRandomStore(&rng, 500, 12, 4, 16, false);
  std::vector<TermId> candidates = {0, 1, 1, 3, 7, 15, 99};
  std::vector<uint64_t> with_wildcard = store.CountPatternBatch(
      TriplePos::kO, kWildcardId, 2, kWildcardId, candidates);
  std::vector<uint64_t> with_junk =
      store.CountPatternBatch(TriplePos::kO, kWildcardId, 2, 12345,
                              candidates);
  EXPECT_EQ(with_wildcard, with_junk);
}

TEST(CountPatternBatchTest, LongRunsAndSingleValue) {
  // One predicate dominating the store: the sweep's galloping must cross
  // a run much longer than the candidate spacing.
  TripleStore store;
  for (TermId i = 0; i < 5000; ++i) store.Add(i % 7, 0, i % 11);
  for (TermId i = 0; i < 50; ++i) store.Add(i % 7, 1, i % 5);
  store.Finalize();
  std::vector<TermId> candidates = {0, 1, 2, 3};
  std::vector<uint64_t> batched = store.CountPatternBatch(
      TriplePos::kP, kWildcardId, kWildcardId, kWildcardId, candidates);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(batched[i],
              store.CountPattern(kWildcardId, candidates[i], kWildcardId));
  }
}

}  // namespace
}  // namespace rdfparams::rdf

#include "util/status.h"

#include <gtest/gtest.h>

namespace rdfparams {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

// A value type that counts copies vs moves, to pin down value_or semantics.
struct CopyCounter {
  int copies = 0;
  int moves = 0;
  CopyCounter() = default;
  CopyCounter(const CopyCounter& o) : copies(o.copies + 1), moves(o.moves) {}
  CopyCounter(CopyCounter&& o) noexcept
      : copies(o.copies), moves(o.moves + 1) {}
  CopyCounter& operator=(const CopyCounter&) = default;
  CopyCounter& operator=(CopyCounter&&) = default;
};

TEST(ResultTest, ValueOrLvalueCopiesValueExactlyOnce) {
  Result<CopyCounter> r{CopyCounter{}};
  int baseline_copies = r.value().copies;
  CopyCounter out = r.value_or(CopyCounter{});
  EXPECT_EQ(out.copies, baseline_copies + 1);
  // The result still holds its value after a const& value_or.
  EXPECT_TRUE(r.ok());
}

TEST(ResultTest, ValueOrRvalueMovesValueOutOfOptional) {
  Result<CopyCounter> r{CopyCounter{}};
  int baseline_copies = r.value().copies;
  CopyCounter out = std::move(r).value_or(CopyCounter{});
  // Success path of the && overload must move, never copy.
  EXPECT_EQ(out.copies, baseline_copies);
  EXPECT_GT(out.moves, 0);
}

TEST(ResultTest, ValueOrErrorPathMovesFallback) {
  Result<CopyCounter> r{Status::NotFound("gone")};
  CopyCounter out = r.value_or(CopyCounter{});
  EXPECT_EQ(out.copies, 0);  // fallback is moved through, not copied
  CopyCounter out2 = std::move(r).value_or(CopyCounter{});
  EXPECT_EQ(out2.copies, 0);
}

TEST(ResultTest, ValueOrRvalueMovesStringContents) {
  Result<std::string> r{std::string(64, 'x')};  // beyond SSO
  const char* data_before = r.value().data();
  std::string s = std::move(r).value_or("fallback");
  EXPECT_EQ(s, std::string(64, 'x'));
  // Moved out of the optional: the buffer is stolen, not duplicated.
  EXPECT_EQ(s.data(), data_before);
}

TEST(ResultTest, StatusConsistencyAfterValueMovedOut) {
  Result<std::string> r{std::string("hello")};
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
  // Moving the *value* out leaves the Result engaged (the optional keeps
  // has_value()), so ok() stays true and status() stays OK. The contained
  // string is in a valid-but-unspecified state; status() must not lie about
  // an error that never happened.
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOk);
}

TEST(ResultTest, StatusConsistencyAfterWholeResultMovedFrom) {
  Result<std::string> source{std::string("payload")};
  Result<std::string> dest = std::move(source);
  ASSERT_TRUE(dest.ok());
  EXPECT_EQ(dest.value(), "payload");
  // A moved-from Result keeps the engaged/disengaged shape of its optional:
  // ok() still answers consistently and status() still returns a valid
  // Status object (OK here, since no error was ever stored).
  EXPECT_TRUE(source.ok());  // NOLINT(bugprone-use-after-move) documented
  EXPECT_TRUE(source.status().ok());
}

TEST(ResultTest, ErrorResultMovedFromKeepsErrorShape) {
  Result<int> source{Status::Internal("boom")};
  Result<int> dest = std::move(source);
  ASSERT_FALSE(dest.ok());
  EXPECT_EQ(dest.status().code(), StatusCode::kInternal);
  EXPECT_EQ(dest.status().message(), "boom");
  // The moved-from error Result still reports !ok(); its status code
  // survives the move (only the message string may be pilfered).
  EXPECT_FALSE(source.ok());  // NOLINT(bugprone-use-after-move) documented
  EXPECT_FALSE(source.status().ok());
}

TEST(StatusTest, IgnoreStatusCompilesForStatusAndResult) {
  // The audit helper must accept both carriers; behaviourally a no-op.
  util::IgnoreStatus(Status::Internal("dropped"), "unit test");
  util::IgnoreStatus(Result<int>(7), "unit test");
  util::IgnoreStatus(Result<int>(Status::NotFound("x")), "unit test");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RDFPARAMS_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  int out = -1;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status st = UseHalf(3, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ReturnNotOkMacro) {
  auto fn = [](bool fail) -> Status {
    RDFPARAMS_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_EQ(fn(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rdfparams

#include "util/status.h"

#include <gtest/gtest.h>

namespace rdfparams {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RDFPARAMS_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  int out = -1;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status st = UseHalf(3, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ReturnNotOkMacro) {
  auto fn = [](bool fail) -> Status {
    RDFPARAMS_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_EQ(fn(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rdfparams

#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rdfparams::stats {
namespace {

TEST(DescriptiveTest, MeanVarianceKnownValues) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(PercentileTest, MedianInterpolation) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({7}, 0.5), 7.0);
}

TEST(PercentileTest, ExtremesAreMinMax) {
  std::vector<double> xs{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 9.0);
}

TEST(PercentileTest, Monotone) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.NextDouble() * 100);
  double prev = -1;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    double v = Percentile(xs, p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SummarizeTest, FieldsConsistent) {
  std::vector<double> xs;
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.NextDouble());
  Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LE(s.min, s.q10);
  EXPECT_LE(s.q10, s.median);
  EXPECT_LE(s.median, s.q90);
  EXPECT_LE(s.q90, s.q95);
  EXPECT_LE(s.q95, s.q99);
  EXPECT_LE(s.q99, s.max);
  EXPECT_NEAR(s.mean, 0.5, 0.05);
  EXPECT_NEAR(s.cv, s.stddev / s.mean, 1e-12);
}

TEST(SummarizeTest, SkewnessSignDetectsRightTail) {
  // Heavily right-skewed: most small, few huge (like E3 runtimes).
  std::vector<double> right;
  for (int i = 0; i < 95; ++i) right.push_back(1.0);
  for (int i = 0; i < 5; ++i) right.push_back(1000.0);
  EXPECT_GT(Summarize(right).skewness, 1.0);

  std::vector<double> symmetric{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_NEAR(Summarize(symmetric).skewness, 0.0, 1e-9);
}

TEST(MidRangeMassTest, BimodalHasEmptyMiddle) {
  // Two clusters: 0.3s and 17s, nothing between (the paper's E3 shape).
  std::vector<double> bimodal;
  for (int i = 0; i < 80; ++i) bimodal.push_back(0.3 + i * 1e-4);
  for (int i = 0; i < 20; ++i) bimodal.push_back(17.0 + i * 1e-2);
  EXPECT_LT(MidRangeMassFraction(bimodal, 0.05, 0.95), 0.05);

  // Uniform fills the middle.
  std::vector<double> uniform;
  for (int i = 0; i < 100; ++i) uniform.push_back(i * 0.1);
  EXPECT_GT(MidRangeMassFraction(uniform, 0.05, 0.95), 0.2);
}

TEST(RelativeSpreadTest, PaperStyleDeviation) {
  // Averages 1.80, 1.33, 1.53, 1.30 (paper E2 table) -> ~38% spread.
  std::vector<double> avgs{1.80, 1.33, 1.53, 1.30};
  EXPECT_NEAR(RelativeSpread(avgs), (1.80 - 1.30) / 1.30, 1e-12);
  EXPECT_DOUBLE_EQ(RelativeSpread({2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(RelativeSpread({}), 0.0);
}

TEST(ToStringTest, MentionsKeyFields) {
  Summary s = Summarize({1, 2, 3});
  std::string str = ToString(s);
  EXPECT_NE(str.find("median"), std::string::npos);
  EXPECT_NE(str.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace rdfparams::stats

#include "snb/generator.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace rdfparams::snb {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_persons = 500;
  config.avg_degree = 8;
  config.posts_per_person = 5;
  config.seed = 3;
  return config;
}

TEST(SnbGeneratorTest, Deterministic) {
  Dataset a = Generate(SmallConfig());
  Dataset b = Generate(SmallConfig());
  EXPECT_EQ(a.store.size(), b.store.size());
  EXPECT_EQ(a.posts.size(), b.posts.size());
}

TEST(SnbGeneratorTest, CountryTableConsistent) {
  const auto& countries = Countries();
  EXPECT_GE(countries.size(), 30u);
  for (const CountryInfo& c : countries) {
    EXPECT_GT(c.population_weight, 0.0);
    EXPECT_GT(c.tourism_weight, 0.0);
    EXPECT_LT(c.region, 8u);
    for (int nb : c.neighbors) {
      ASSERT_GE(nb, 0);
      ASSERT_LT(static_cast<size_t>(nb), countries.size());
    }
  }
}

TEST(SnbGeneratorTest, EveryPersonHasNameAndCountry) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_name = *ds.dict.FindIri(ds.vocab.first_name);
  rdf::TermId p_lives = *ds.dict.FindIri(ds.vocab.lives_in);
  EXPECT_EQ(
      ds.store.CountPattern(rdf::kWildcardId, p_name, rdf::kWildcardId),
      ds.persons.size());
  EXPECT_EQ(
      ds.store.CountPattern(rdf::kWildcardId, p_lives, rdf::kWildcardId),
      ds.persons.size());
  ASSERT_EQ(ds.home_country.size(), ds.persons.size());
}

TEST(SnbGeneratorTest, KnowsIsSymmetric) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_knows = *ds.dict.FindIri(ds.vocab.knows);
  size_t violations = 0;
  ds.store.ScanPattern(
      rdf::kWildcardId, p_knows, rdf::kWildcardId, [&](const rdf::Triple& t) {
        if (ds.store.CountPattern(t.o, p_knows, t.s) != 1) ++violations;
      });
  EXPECT_EQ(violations, 0u);
}

TEST(SnbGeneratorTest, NoSelfFriendship) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_knows = *ds.dict.FindIri(ds.vocab.knows);
  ds.store.ScanPattern(rdf::kWildcardId, p_knows, rdf::kWildcardId,
                       [&](const rdf::Triple& t) { EXPECT_NE(t.s, t.o); });
}

TEST(SnbGeneratorTest, DegreeDistributionIsSkewed) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_knows = *ds.dict.FindIri(ds.vocab.knows);
  std::vector<uint64_t> degrees;
  for (rdf::TermId person : ds.persons) {
    degrees.push_back(
        ds.store.CountPattern(person, p_knows, rdf::kWildcardId));
  }
  uint64_t max_degree = *std::max_element(degrees.begin(), degrees.end());
  double mean = 0;
  for (uint64_t d : degrees) mean += static_cast<double>(d);
  mean /= static_cast<double>(degrees.size());
  // Heavy tail: hub degree far above the mean.
  EXPECT_GT(static_cast<double>(max_degree), 4 * mean);
}

TEST(SnbGeneratorTest, FriendshipsAreCountryCorrelated) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_knows = *ds.dict.FindIri(ds.vocab.knows);
  std::map<rdf::TermId, uint32_t> country_of;
  for (size_t i = 0; i < ds.persons.size(); ++i) {
    country_of[ds.persons[i]] = ds.home_country[i];
  }
  uint64_t same = 0, total = 0;
  ds.store.ScanPattern(rdf::kWildcardId, p_knows, rdf::kWildcardId,
                       [&](const rdf::Triple& t) {
                         ++total;
                         if (country_of[t.s] == country_of[t.o]) ++same;
                       });
  ASSERT_GT(total, 0u);
  // With same_country_friend_prob = 0.7, well over a third of edges should
  // be intra-country (random baseline would be a few percent).
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.4);
}

TEST(SnbGeneratorTest, NamesCorrelateWithRegion) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_name = *ds.dict.FindIri(ds.vocab.first_name);
  // "Li" should be much more common among China-region persons than, say,
  // among USA-region ones.
  auto li = ds.dict.Find(rdf::Term::Literal("Li"));
  ASSERT_TRUE(li.has_value());
  const auto& countries = Countries();
  uint64_t li_east_asia = 0, li_elsewhere = 0;
  for (size_t i = 0; i < ds.persons.size(); ++i) {
    if (ds.store.CountPattern(ds.persons[i], p_name, *li) > 0) {
      if (countries[ds.home_country[i]].region == 5) {
        ++li_east_asia;
      } else {
        ++li_elsewhere;
      }
    }
  }
  EXPECT_GT(li_east_asia, li_elsewhere);
}

TEST(SnbGeneratorTest, PostsHaveCreatorDateTags) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_creator = *ds.dict.FindIri(ds.vocab.has_creator);
  rdf::TermId p_date = *ds.dict.FindIri(ds.vocab.creation_date);
  uint64_t n_posts = ds.posts.size();
  ASSERT_GT(n_posts, 0u);
  EXPECT_EQ(
      ds.store.CountPattern(rdf::kWildcardId, p_creator, rdf::kWildcardId),
      n_posts);
  EXPECT_EQ(
      ds.store.CountPattern(rdf::kWildcardId, p_date, rdf::kWildcardId),
      n_posts);
}

TEST(SnbGeneratorTest, EveryoneVisitedHomeCountry) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_been = *ds.dict.FindIri(ds.vocab.has_been_to);
  for (size_t i = 0; i < ds.persons.size(); ++i) {
    EXPECT_EQ(ds.store.CountPattern(ds.persons[i], p_been,
                                    ds.countries[ds.home_country[i]]),
              1u);
  }
}

TEST(SnbGeneratorTest, CovisitCorrelationSpansOrdersOfMagnitude) {
  GeneratorConfig config = SmallConfig();
  config.num_persons = 2000;
  Dataset ds = Generate(config);
  rdf::TermId p_been = *ds.dict.FindIri(ds.vocab.has_been_to);

  auto covisit = [&](const char* a, const char* b) {
    auto ca = ds.dict.FindIri(std::string("http://rdfparams.org/snb/instances/Country_") + a);
    auto cb = ds.dict.FindIri(std::string("http://rdfparams.org/snb/instances/Country_") + b);
    if (!ca || !cb) return uint64_t{0};
    uint64_t both = 0;
    ds.store.ScanPattern(rdf::kWildcardId, p_been, *ca,
                         [&](const rdf::Triple& t) {
                           both += ds.store.CountPattern(t.s, p_been, *cb);
                         });
    return both;
  };
  uint64_t usa_canada = covisit("USA", "Canada");
  uint64_t finland_zimbabwe = covisit("Finland", "Zimbabwe");
  // The paper's E4 premise: neighbor/popular pairs co-visited often, remote
  // unpopular pairs almost never.
  EXPECT_GT(usa_canada, 10 * (finland_zimbabwe + 1));
}

}  // namespace
}  // namespace rdfparams::snb

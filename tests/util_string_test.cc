#include "util/string_util.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace rdfparams::util {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(TrimTest, StripsAsciiWhitespace) {
  EXPECT_EQ(Trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(FormatDurationTest, PicksUnit) {
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(0.0591), "59.10 ms");
  EXPECT_EQ(FormatDuration(3.5e-5), "35.00 us");
  EXPECT_EQ(FormatDuration(5e-8), "50 ns");
}

TEST(FormatCountTest, InsertsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(100000000), "100,000,000");
}

TEST(FormatSigTest, SignificantDigits) {
  EXPECT_EQ(FormatSig(1234.5678, 3), "1.23e+03");
  EXPECT_EQ(FormatSig(0.000123456, 2), "0.00012");
}

TEST(ReadFileToStringTest, RegularFileMissingFileAndZeroSizeFallback) {
  const std::string path = ::testing::TempDir() + "/rdfparams_readfile.bin";
  const std::string content("bytes\0with\r\nnul", 15);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
    ASSERT_TRUE(os.good());
  }
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, content);  // byte-exact, embedded NUL and CRLF intact
  std::remove(path.c_str());

  EXPECT_FALSE(ReadFileToString("/nonexistent/rdfparams.nt").ok());

  // Files that report size 0 but have content (/proc) must stream, not
  // come back empty. Skip silently where /proc is unavailable.
  std::ifstream proc("/proc/self/status");
  if (proc.good()) {
    auto status_file = ReadFileToString("/proc/self/status");
    ASSERT_TRUE(status_file.ok());
    EXPECT_FALSE(status_file->empty());
  }
}

}  // namespace
}  // namespace rdfparams::util

#include "engine/binding_table.h"

#include <gtest/gtest.h>

namespace rdfparams::engine {
namespace {

TEST(BindingTableTest, EmptyTable) {
  BindingTable t({"a", "b"});
  EXPECT_EQ(t.num_vars(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.VarIndex("a"), 0);
  EXPECT_EQ(t.VarIndex("b"), 1);
  EXPECT_EQ(t.VarIndex("c"), -1);
}

TEST(BindingTableTest, AppendAndAccess) {
  BindingTable t({"x", "y"});
  t.AppendRow({1, 2});
  t.AppendRow({3, 4});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), 1u);
  EXPECT_EQ(t.at(0, 1), 2u);
  EXPECT_EQ(t.at(1, 0), 3u);
  auto row = t.row(1);
  EXPECT_EQ(row[1], 4u);
}

TEST(BindingTableTest, AppendSpan) {
  BindingTable t({"x"});
  std::vector<rdf::TermId> vals{7};
  t.AppendRow(std::span<const rdf::TermId>(vals));
  EXPECT_EQ(t.at(0, 0), 7u);
}

TEST(BindingTableTest, ClearResets) {
  BindingTable t({"x"});
  t.AppendRow({1});
  t.Clear();
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(BindingTableTest, NoVarsTableHasZeroRows) {
  BindingTable t;
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_vars(), 0u);
}

TEST(BindingTableTest, ToStringRendersTermsAndTruncates) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.InternIri("http://x/a");
  BindingTable t({"v"});
  for (int i = 0; i < 30; ++i) t.AppendRow({a});
  std::string s = t.ToString(dict, 5);
  EXPECT_NE(s.find("?v"), std::string::npos);
  EXPECT_NE(s.find("<http://x/a>"), std::string::npos);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
}

}  // namespace
}  // namespace rdfparams::engine

#include "engine/binding_table.h"

#include <gtest/gtest.h>

namespace rdfparams::engine {
namespace {

TEST(BindingTableTest, EmptyTable) {
  BindingTable t({"a", "b"});
  EXPECT_EQ(t.num_vars(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.VarIndex("a"), 0);
  EXPECT_EQ(t.VarIndex("b"), 1);
  EXPECT_EQ(t.VarIndex("c"), -1);
}

TEST(BindingTableTest, AppendAndAccess) {
  BindingTable t({"x", "y"});
  t.AppendRow({1, 2});
  t.AppendRow({3, 4});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), 1u);
  EXPECT_EQ(t.at(0, 1), 2u);
  EXPECT_EQ(t.at(1, 0), 3u);
  EXPECT_EQ(t.at(1, 1), 4u);
}

TEST(BindingTableTest, ColumnsAreContiguousPerVariable) {
  BindingTable t({"x", "y"});
  t.AppendRow({1, 10});
  t.AppendRow({2, 20});
  t.AppendRow({3, 30});
  std::span<const rdf::TermId> x = t.col(0);
  std::span<const rdf::TermId> y = t.col(1);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_EQ(x[0], 1u);
  EXPECT_EQ(x[2], 3u);
  EXPECT_EQ(y[1], 20u);
}

TEST(BindingTableTest, AppendRangeAndGatherPreserveSelectionOrder) {
  BindingTable src({"x", "y"});
  for (rdf::TermId i = 0; i < 6; ++i) src.AppendRow({i, i + 100});

  BindingTable range({"x", "y"});
  range.AppendRange(src, 2, 5);
  ASSERT_EQ(range.num_rows(), 3u);
  EXPECT_EQ(range.at(0, 0), 2u);
  EXPECT_EQ(range.at(2, 1), 104u);

  // Gather in non-monotonic selection order, with a repeat.
  BindingTable gathered({"x", "y"});
  std::vector<uint32_t> sel{5, 0, 5, 3};
  gathered.AppendGather(src, sel);
  ASSERT_EQ(gathered.num_rows(), 4u);
  EXPECT_EQ(gathered.at(0, 0), 5u);
  EXPECT_EQ(gathered.at(1, 0), 0u);
  EXPECT_EQ(gathered.at(2, 1), 105u);
  EXPECT_EQ(gathered.at(3, 0), 3u);
  gathered.CheckAligned();
}

TEST(BindingTableTest, MutableColBulkWritesStayAligned) {
  BindingTable t({"a", "b"});
  t.MutableCol(0).assign({1, 2, 3});
  t.MutableCol(1).assign({4, 5, 6});
  t.CheckAligned();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.at(2, 1), 6u);

  BindingTable same({"a", "b"});
  same.AppendRow({1, 4});
  same.AppendRow({2, 5});
  same.AppendRow({3, 6});
  EXPECT_TRUE(t == same);
}

TEST(BindingTableTest, AppendSpan) {
  BindingTable t({"x"});
  std::vector<rdf::TermId> vals{7};
  t.AppendRow(std::span<const rdf::TermId>(vals));
  EXPECT_EQ(t.at(0, 0), 7u);
}

TEST(BindingTableTest, ClearResets) {
  BindingTable t({"x"});
  t.AppendRow({1});
  t.Clear();
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(BindingTableTest, NoVarsTableHasZeroRows) {
  BindingTable t;
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_vars(), 0u);
}

TEST(BindingTableTest, ToStringRendersTermsAndTruncates) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.InternIri("http://x/a");
  BindingTable t({"v"});
  for (int i = 0; i < 30; ++i) t.AppendRow({a});
  std::string s = t.ToString(dict, 5);
  EXPECT_NE(s.find("?v"), std::string::npos);
  EXPECT_NE(s.find("<http://x/a>"), std::string::npos);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
}

}  // namespace
}  // namespace rdfparams::engine

// Property test for the arena dictionary (format v2): against a trivial
// reference model — canonical N-Triples string keying with the first
// interned Term stored verbatim — the arena implementation must assign
// the same ids, return the same terms, and render the same strings, over
// randomized term streams that include every kind, duplicate forms, the
// xsd:string alias, and both snapshot adoption paths (owned and
// borrowed), with interning continuing correctly after adoption.
#include "rdf/dictionary.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/term.h"
#include "util/rng.h"

namespace rdfparams::rdf {
namespace {

/// The old behavior in miniature: ids by first appearance of the
/// canonical N-Triples rendering (which already suppresses ^^xsd:string
/// and lets a language tag hide the datatype — exactly the merges
/// TermKeyTail must reproduce structurally).
class ReferenceDict {
 public:
  TermId Intern(const Term& term) {
    std::string key = term.ToNTriples();
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    index_.emplace(std::move(key), id);
    terms_.push_back(term);
    return id;
  }
  std::optional<TermId> Find(const Term& term) const {
    auto it = index_.find(term.ToNTriples());
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }
  const Term& term(TermId id) const { return terms_[id]; }
  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_;
};

Term RandomTerm(util::Rng* rng) {
  uint64_t n = rng->Uniform(40);  // small pool -> plenty of duplicates
  switch (rng->Uniform(8)) {
    case 0: return Term::Iri("http://example.org/x" + std::to_string(n));
    case 1: return Term::Blank("b" + std::to_string(n));
    case 2: return Term::Literal("plain " + std::to_string(n));
    case 3:
      // The alias: must collapse onto the matching plain literal.
      return Term::TypedLiteral("plain " + std::to_string(n),
                                std::string(kXsdString));
    case 4: return Term::Integer(static_cast<int64_t>(n) - 20);
    case 5: return Term::Double(static_cast<double>(n) * 0.5);
    case 6:
      return Term::LangLiteral("tagged " + std::to_string(n),
                               n % 2 == 0 ? "en" : "de-AT");
    default:
      return Term::TypedLiteral(std::to_string(n),
                                "http://example.org/dt" +
                                    std::to_string(n % 3));
  }
}

void ExpectMatchesReference(const Dictionary& dict, const ReferenceDict& ref) {
  ASSERT_EQ(dict.size(), ref.size());
  for (TermId id = 0; id < ref.size(); ++id) {
    EXPECT_EQ(dict.term(id), ref.term(id)) << "term " << id << " differs";
    EXPECT_EQ(dict.ToString(id), ref.term(id).ToNTriples())
        << "rendering of term " << id << " differs";
    auto found = dict.Find(ref.term(id));
    ASSERT_TRUE(found.has_value()) << "term " << id << " not found";
    EXPECT_EQ(*found, id);
    if (ref.term(id).is_iri()) {
      auto by_iri = dict.FindIri(ref.term(id).lexical);
      ASSERT_TRUE(by_iri.has_value());
      EXPECT_EQ(*by_iri, id);
    }
  }
}

TEST(DictionaryPropertyTest, MatchesReferenceModelOverRandomStreams) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    util::Rng rng(seed);
    Dictionary dict;
    ReferenceDict ref;
    for (int i = 0; i < 2000; ++i) {
      Term t = RandomTerm(&rng);
      TermId ref_id = ref.Intern(t);
      EXPECT_EQ(dict.Intern(t), ref_id) << "seed " << seed << " step " << i;
    }
    ExpectMatchesReference(dict, ref);
    EXPECT_FALSE(dict.Find(Term::Iri("http://example.org/absent")));
    EXPECT_FALSE(dict.FindIri("http://example.org/absent"));
  }
}

TEST(DictionaryPropertyTest, XsdStringAliasCollapsesBothWays) {
  // Whichever spelling arrives first owns the id; the other resolves to it.
  Dictionary d1;
  TermId plain = d1.Intern(Term::Literal("v"));
  EXPECT_EQ(d1.Intern(Term::TypedLiteral("v", std::string(kXsdString))), plain);
  EXPECT_EQ(d1.size(), 1u);

  Dictionary d2;
  TermId typed = d2.Intern(Term::TypedLiteral("v", std::string(kXsdString)));
  EXPECT_EQ(d2.Intern(Term::Literal("v")), typed);
  EXPECT_EQ(d2.size(), 1u);
  // A language tag keeps it distinct; a different datatype too.
  EXPECT_NE(d2.Intern(Term::LangLiteral("v", "en")), typed);
  EXPECT_NE(d2.Intern(Term::TypedLiteral("v", std::string(kXsdInteger))),
            typed);
}

/// Serializes `src`, adopts the bytes (owned or borrowed), and checks the
/// adopted dictionary behaves like the reference — including growing past
/// the adopted prefix, which must copy borrowed storage before mutating.
void RoundTripThroughAdoption(bool borrowed) {
  util::Rng rng(77);
  Dictionary src;
  ReferenceDict ref;
  for (int i = 0; i < 1200; ++i) {
    Term t = RandomTerm(&rng);
    ref.Intern(t);
    src.Intern(t);
  }

  std::string arena(src.arena());
  std::string records(src.records());
  std::string slots(src.hash_slots());
  Result<Dictionary> adopted = [&] {
    if (!borrowed) {
      return Dictionary::Adopt(arena, records, slots, src.size());
    }
    auto owner = std::make_shared<
        std::tuple<std::string, std::string, std::string>>(arena, records,
                                                           slots);
    return Dictionary::Adopt(std::get<0>(*owner), std::get<1>(*owner),
                             std::get<2>(*owner), src.size(), owner);
  }();
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted->borrowed(), borrowed);
  ExpectMatchesReference(*adopted, ref);

  // Keep interning: fresh terms extend, known terms resolve, and the
  // reference must stay in lockstep (first Intern unborrows in place).
  util::Rng rng2(78);
  for (int i = 0; i < 600; ++i) {
    Term t = RandomTerm(&rng2);
    EXPECT_EQ(adopted->Intern(t), ref.Intern(t)) << "post-adopt step " << i;
  }
  EXPECT_FALSE(adopted->borrowed());
  ExpectMatchesReference(*adopted, ref);
}

TEST(DictionaryPropertyTest, OwnedAdoptionMatchesReference) {
  RoundTripThroughAdoption(/*borrowed=*/false);
}

TEST(DictionaryPropertyTest, BorrowedAdoptionMatchesReference) {
  RoundTripThroughAdoption(/*borrowed=*/true);
}

TEST(DictionaryPropertyTest, FoldScratchMatchesSerialIds) {
  // Folding chunked overlays must reproduce the ids a serial pass assigns.
  util::Rng rng(55);
  std::vector<Term> stream;
  for (int i = 0; i < 900; ++i) stream.push_back(RandomTerm(&rng));

  ReferenceDict serial;
  for (const Term& t : stream) serial.Intern(t);

  Dictionary base;
  for (size_t i = 0; i < 300; ++i) base.Intern(stream[i]);  // chunk 0
  for (size_t chunk = 1; chunk < 3; ++chunk) {
    ScratchDictionary overlay(base);
    std::vector<TermId> overlay_ids;
    for (size_t i = chunk * 300; i < (chunk + 1) * 300; ++i) {
      overlay_ids.push_back(overlay.Intern(stream[i]));
    }
    std::vector<TermId> mapping = base.FoldScratch(overlay);
    for (size_t i = 0; i < overlay_ids.size(); ++i) {
      TermId id = overlay_ids[i];
      TermId global = id < overlay.base_size()
                          ? id
                          : mapping[id - overlay.base_size()];
      EXPECT_EQ(global, *serial.Find(stream[chunk * 300 + i]));
    }
  }
  ASSERT_EQ(base.size(), serial.size());
  for (TermId id = 0; id < base.size(); ++id) {
    EXPECT_EQ(base.term(id), serial.term(id)) << "folded term " << id;
  }
}

}  // namespace
}  // namespace rdfparams::rdf

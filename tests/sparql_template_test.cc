#include "sparql/query_template.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace rdfparams::sparql {
namespace {

QueryTemplate MakeTemplate() {
  auto t = QueryTemplate::Parse("test", R"(
SELECT * WHERE {
  ?person <http://sn/firstName> %name .
  ?person <http://sn/livesIn> %country .
}
)");
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return std::move(t).value();
}

TEST(QueryTemplateTest, ParameterNamesInOrder) {
  QueryTemplate t = MakeTemplate();
  EXPECT_EQ(t.name(), "test");
  EXPECT_EQ(t.parameter_names(),
            (std::vector<std::string>{"name", "country"}));
  EXPECT_EQ(t.arity(), 2u);
}

TEST(QueryTemplateTest, BindNamedSubstitutesAll) {
  QueryTemplate t = MakeTemplate();
  auto q = t.BindNamed({{"name", rdf::Term::Literal("Li")},
                        {"country", rdf::Term::Iri("http://c/China")}});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->IsGround());
  EXPECT_EQ(q->patterns[0].o.term.lexical, "Li");
  EXPECT_EQ(q->patterns[1].o.term.lexical, "http://c/China");
}

TEST(QueryTemplateTest, BindNamedMissingParameterFails) {
  QueryTemplate t = MakeTemplate();
  auto q = t.BindNamed({{"name", rdf::Term::Literal("Li")}});
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("country"), std::string::npos);
}

TEST(QueryTemplateTest, BindPositional) {
  QueryTemplate t = MakeTemplate();
  rdf::Dictionary dict;
  ParameterBinding b;
  b.values = {dict.Intern(rdf::Term::Literal("John")),
              dict.Intern(rdf::Term::Iri("http://c/USA"))};
  auto q = t.Bind(b, dict);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->patterns[0].o.term.lexical, "John");
}

TEST(QueryTemplateTest, BindArityMismatchFails) {
  QueryTemplate t = MakeTemplate();
  rdf::Dictionary dict;
  ParameterBinding b;
  b.values = {dict.Intern(rdf::Term::Literal("John"))};
  EXPECT_FALSE(t.Bind(b, dict).ok());
}

TEST(QueryTemplateTest, BindingDoesNotMutateTemplate) {
  QueryTemplate t = MakeTemplate();
  rdf::Dictionary dict;
  ParameterBinding b;
  b.values = {dict.Intern(rdf::Term::Literal("A")),
              dict.Intern(rdf::Term::Iri("http://c/X"))};
  ASSERT_TRUE(t.Bind(b, dict).ok());
  // Template still has parameters.
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_FALSE(t.query().IsGround());
}

TEST(QueryTemplateTest, FilterParameterBound) {
  auto t = QueryTemplate::Parse("f", R"(
SELECT * WHERE {
  ?s <http://p> ?v .
  FILTER(?v >= %threshold)
}
)");
  ASSERT_TRUE(t.ok());
  auto q = t->BindNamed({{"threshold", rdf::Term::Integer(10)}});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->IsGround());
  EXPECT_TRUE(q->filters[0].rhs.is_const());
  EXPECT_EQ(q->filters[0].rhs.term.AsInteger(), 10);
}

TEST(QueryTemplateTest, ParameterBindingComparisons) {
  ParameterBinding a, b;
  a.values = {1, 2};
  b.values = {1, 3};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(a == b);
  ParameterBinding c;
  c.values = {1, 2};
  EXPECT_TRUE(a == c);
}

TEST(QueryTemplateTest, ParseErrorPropagates) {
  auto t = QueryTemplate::Parse("bad", "SELECT WHERE");
  EXPECT_FALSE(t.ok());
}

}  // namespace
}  // namespace rdfparams::sparql

#include "sparql/algebra.h"

#include <gtest/gtest.h>

namespace rdfparams::sparql {
namespace {

TEST(SlotTest, KindsAndToString) {
  Slot v = Slot::Var("x");
  Slot p = Slot::Param("type");
  Slot c = Slot::Const(rdf::Term::Iri("http://x/a"));
  EXPECT_TRUE(v.is_var());
  EXPECT_TRUE(p.is_param());
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(v.ToString(), "?x");
  EXPECT_EQ(p.ToString(), "%type");
  EXPECT_EQ(c.ToString(), "<http://x/a>");
}

TEST(SlotTest, Equality) {
  EXPECT_EQ(Slot::Var("x"), Slot::Var("x"));
  EXPECT_FALSE(Slot::Var("x") == Slot::Var("y"));
  EXPECT_FALSE(Slot::Var("x") == Slot::Param("x"));
  EXPECT_EQ(Slot::Const(rdf::Term::Integer(1)),
            Slot::Const(rdf::Term::Integer(1)));
}

TEST(TriplePatternTest, VariablesDeduplicated) {
  TriplePattern tp(Slot::Var("x"), Slot::Var("p"), Slot::Var("x"));
  EXPECT_EQ(tp.Variables(), (std::vector<std::string>{"x", "p"}));
  TriplePattern ground(Slot::Const(rdf::Term::Iri("a")),
                       Slot::Const(rdf::Term::Iri("b")),
                       Slot::Const(rdf::Term::Iri("c")));
  EXPECT_TRUE(ground.Variables().empty());
}

TEST(SelectQueryTest, PatternVariablesFirstOccurrenceOrder) {
  SelectQuery q;
  q.patterns.push_back(
      {Slot::Var("b"), Slot::Const(rdf::Term::Iri("p")), Slot::Var("a")});
  q.patterns.push_back(
      {Slot::Var("a"), Slot::Const(rdf::Term::Iri("q")), Slot::Var("c")});
  EXPECT_EQ(q.PatternVariables(), (std::vector<std::string>{"b", "a", "c"}));
}

TEST(SelectQueryTest, ParameterNamesIncludeFilters) {
  SelectQuery q;
  q.patterns.push_back(
      {Slot::Var("x"), Slot::Const(rdf::Term::Iri("p")), Slot::Param("t")});
  FilterCondition f;
  f.lhs_var = "x";
  f.op = CompareOp::kGt;
  f.rhs = Slot::Param("limit");
  q.filters.push_back(f);
  EXPECT_EQ(q.ParameterNames(), (std::vector<std::string>{"t", "limit"}));
  EXPECT_FALSE(q.IsGround());
}

TEST(SelectQueryTest, GroundWhenNoParams) {
  SelectQuery q;
  q.patterns.push_back(
      {Slot::Var("x"), Slot::Const(rdf::Term::Iri("p")), Slot::Var("y")});
  EXPECT_TRUE(q.IsGround());
}

TEST(SelectQueryTest, ToStringContainsAllClauses) {
  SelectQuery q;
  q.distinct = true;
  q.select_vars = {"x"};
  q.patterns.push_back(
      {Slot::Var("x"), Slot::Const(rdf::Term::Iri("http://p")),
       Slot::Param("o")});
  FilterCondition f;
  f.lhs_var = "x";
  f.op = CompareOp::kLe;
  f.rhs = Slot::Const(rdf::Term::Integer(5));
  q.filters.push_back(f);
  q.group_by = {"x"};
  Aggregate agg;
  agg.kind = AggregateKind::kCount;
  agg.as_name = "n";
  q.aggregates.push_back(agg);
  q.order_by.push_back({"n", true});
  q.limit = 10;
  q.offset = 2;

  std::string s = q.ToString();
  EXPECT_NE(s.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(s.find("%o"), std::string::npos);
  EXPECT_NE(s.find("FILTER(?x <= "), std::string::npos);
  EXPECT_NE(s.find("GROUP BY ?x"), std::string::npos);
  EXPECT_NE(s.find("(COUNT(*) AS ?n)"), std::string::npos);
  EXPECT_NE(s.find("DESC(?n)"), std::string::npos);
  EXPECT_NE(s.find("LIMIT 10"), std::string::npos);
  EXPECT_NE(s.find("OFFSET 2"), std::string::npos);
}

TEST(EnumNamesTest, CompareOpAndAggregateNames) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpName(CompareOp::kNe), "!=");
  EXPECT_STREQ(CompareOpName(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpName(CompareOp::kGe), ">=");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kAvg), "AVG");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kSum), "SUM");
}

}  // namespace
}  // namespace rdfparams::sparql

// BufferPool unit tests: pin/unpin accounting, deterministic
// second-chance eviction, capacity-1 thrash correctness, exhaustion, and
// a concurrent-reader stress that the CI TSan job runs (the storage_.*
// test regex) to lock in the one-mutex thread-safety claim.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "storage/buffer_pool.h"
#include "storage/snapshot.h"
#include "storage/snapshot_file.h"
#include "util/rng.h"

namespace rdfparams::storage {
namespace {

constexpr uint32_t kPageSize = 512;

class StorageBufferPoolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng(4242);
    rdf::Dictionary dict;
    std::vector<rdf::TermId> ids;
    for (size_t i = 0; i < 40; ++i) {
      ids.push_back(
          dict.InternIri("http://example.org/pool/e" + std::to_string(i)));
    }
    rdf::TripleStore store;
    for (size_t i = 0; i < 300; ++i) {
      store.Add(ids[rng.Uniform(ids.size())], ids[rng.Uniform(ids.size())],
                ids[rng.Uniform(ids.size())]);
    }
    store.Finalize();

    path_ = new std::string(::testing::TempDir() + "rdfparams_pool.snap");
    SaveOptions options;
    options.page_size = kPageSize;
    // v1 keeps every page a sealed (CRC'd) page, so the tests below can
    // fetch the whole file through the pool. v2 raw dictionary pages are
    // not pool-fetchable by design (no page CRC); they are covered by
    // storage_snapshot_test instead.
    options.format_version = 1;
    ASSERT_TRUE(Snapshot::Save(dict, store, {}, *path_, options).ok());

    auto file = SnapshotFile::Open(*path_);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    file_ = file->release();
    ASSERT_GE(file_->page_count(), 8u) << "fixture too small for the tests";

    // Ground truth for every payload comparison below.
    expected_ = new std::vector<std::vector<uint8_t>>(file_->page_count());
    for (uint64_t p = 0; p < file_->page_count(); ++p) {
      (*expected_)[p].resize(kPageSize);
      ASSERT_TRUE(file_->ReadPage(p, (*expected_)[p]).ok());
    }
  }

  static void TearDownTestSuite() {
    delete file_;
    delete expected_;
    std::remove(path_->c_str());
    delete path_;
    file_ = nullptr;
    expected_ = nullptr;
    path_ = nullptr;
  }

  /// True iff `ref` holds the payload (page minus CRC field) of `page`.
  static bool PayloadMatches(const PageRef& ref, uint64_t page) {
    auto payload = ref.payload();
    const std::vector<uint8_t>& want = (*expected_)[page];
    return payload.size() == want.size() - kPageCrcBytes &&
           std::equal(payload.begin(), payload.end(),
                      want.begin() + kPageCrcBytes);
  }

  static std::string* path_;
  static SnapshotFile* file_;
  static std::vector<std::vector<uint8_t>>* expected_;
};

std::string* StorageBufferPoolTest::path_ = nullptr;
SnapshotFile* StorageBufferPoolTest::file_ = nullptr;
std::vector<std::vector<uint8_t>>* StorageBufferPoolTest::expected_ = nullptr;

TEST_F(StorageBufferPoolTest, PinAccounting) {
  BufferPool pool(file_, 4);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  {
    auto a = pool.Fetch(0);
    ASSERT_TRUE(a.ok());
    auto b = pool.Fetch(1);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(pool.pinned_frames(), 2u);

    // A second ref to a cached page pins the same frame, not a new one.
    auto a2 = pool.Fetch(0);
    ASSERT_TRUE(a2.ok());
    EXPECT_EQ(pool.pinned_frames(), 2u);
    a2->Release();
    EXPECT_EQ(pool.pinned_frames(), 2u);  // first ref still holds the pin
    a->Release();
    EXPECT_EQ(pool.pinned_frames(), 1u);

    // Moving a ref transfers the pin; the moved-from ref is inert.
    PageRef moved = std::move(*b);
    EXPECT_FALSE(b->valid());
    EXPECT_TRUE(moved.valid());
    EXPECT_EQ(pool.pinned_frames(), 1u);
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);  // all refs out of scope
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST_F(StorageBufferPoolTest, ClockEvictionOrderIsDeterministic) {
  BufferPool pool(file_, 3);
  for (uint64_t p = 0; p < 3; ++p) {
    auto ref = pool.Fetch(p);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(PayloadMatches(*ref, p));
  }
  EXPECT_EQ(pool.stats().misses, 3u);
  EXPECT_EQ(pool.stats().evictions, 0u);

  // All three frames have their reference bit set; the sweep for page 3
  // clears them in order and the second revolution evicts frame 0 (page
  // 0) — the least-recently-granted-second-chance victim.
  ASSERT_TRUE(pool.Fetch(3).ok());
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.Fetch(1)->page_id(), 1u);  // still cached
  EXPECT_EQ(pool.Fetch(2)->page_id(), 2u);  // still cached
  EXPECT_EQ(pool.stats().hits, 2u);

  // Pages 1 and 2 were just re-referenced, page 3 was not touched since
  // its load; the next miss must evict page 1's frame all the same — the
  // hand parked after frame 0, so frame 1 loses its second chance first.
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.stats().evictions, 2u);
  BufferPoolStats before = pool.stats();
  EXPECT_EQ(pool.Fetch(2)->page_id(), 2u);   // hit: frame 2 survived
  EXPECT_EQ(pool.Fetch(3)->page_id(), 3u);   // hit: frame 0 survived
  EXPECT_EQ(pool.stats().hits, before.hits + 2);
  ASSERT_TRUE(pool.Fetch(1).ok());           // miss: page 1 was the victim
  EXPECT_EQ(pool.stats().misses, before.misses + 1);
}

TEST_F(StorageBufferPoolTest, CapacityOneThrashStaysCorrect) {
  BufferPool pool(file_, 1);
  const uint64_t pages = file_->page_count();
  uint64_t fetches = 0;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = 0; p < pages; ++p, ++fetches) {
      auto ref = pool.Fetch(p);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      EXPECT_TRUE(PayloadMatches(*ref, p)) << "page " << p;
    }
  }
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, fetches);  // every fetch misses: no reuse at cap 1
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, fetches - 1);  // first load fills an empty frame
}

TEST_F(StorageBufferPoolTest, AllFramesPinnedIsUnavailable) {
  BufferPool pool(file_, 2);
  auto a = pool.Fetch(0);
  auto b = pool.Fetch(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto c = pool.Fetch(2);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
  // A pinned page can still be re-fetched — exhaustion only blocks misses.
  EXPECT_TRUE(pool.Fetch(1).ok());

  b->Release();
  auto c2 = pool.Fetch(2);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(PayloadMatches(*c2, 2));
}

TEST_F(StorageBufferPoolTest, ConcurrentReadersSeeConsistentPages) {
  // Small pool + many threads = constant eviction churn; every payload a
  // thread observes while holding its pin must match the file. Run under
  // TSan in CI.
  BufferPool pool(file_, 2);
  const uint64_t pages = file_->page_count();
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::atomic<int> mismatches{0};
  std::atomic<int> unavailable{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        uint64_t page = rng.Uniform(pages);
        auto ref = pool.Fetch(page);
        if (!ref.ok()) {
          // 4 threads can transiently pin both frames; that is the
          // documented kUnavailable case, not a bug.
          if (ref.status().code() == StatusCode::kUnavailable) {
            ++unavailable;
            continue;
          }
          ++mismatches;
          continue;
        }
        if (!PayloadMatches(*ref, page)) ++mismatches;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Every Fetch is counted exactly once (Unavailable attempts count as
  // misses — the lookup happened before the sweep came up empty).
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

}  // namespace
}  // namespace rdfparams::storage

#include "optimizer/cardinality_cache.h"

#include <gtest/gtest.h>

#include "optimizer/cardinality.h"
#include "rdf/turtle.h"
#include "sparql/parser.h"

namespace rdfparams::opt {
namespace {

class CardinalityCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* doc = R"(
@prefix sn: <http://sn/> .
@prefix c: <http://c/> .
sn:p1 sn:firstName "Li" ; sn:livesIn c:China .
sn:p2 sn:firstName "Li" ; sn:livesIn c:China .
sn:p3 sn:firstName "Li" ; sn:livesIn c:China .
sn:p4 sn:firstName "John" ; sn:livesIn c:China .
sn:p5 sn:firstName "John" ; sn:livesIn c:USA .
sn:p6 sn:firstName "John" ; sn:livesIn c:USA .
)";
    ASSERT_TRUE(rdf::LoadTurtle(doc, &dict_, &store_).ok());
    store_.Finalize();
  }

  sparql::SelectQuery Parse(const std::string& text) {
    auto q = sparql::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  rdf::Dictionary dict_;
  rdf::TripleStore store_;
};

TEST_F(CardinalityCacheTest, CountHitAndMissAccounting) {
  CardinalityCache cache;
  rdf::TermId p = *dict_.FindIri("http://sn/livesIn");

  EXPECT_FALSE(cache.LookupCount(rdf::kWildcardId, p, rdf::kWildcardId));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);

  cache.InsertCount(rdf::kWildcardId, p, rdf::kWildcardId, 6);
  auto hit = cache.LookupCount(rdf::kWildcardId, p, rdf::kWildcardId);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 6u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST_F(CardinalityCacheTest, PairJoinRemembersDeclinedResults) {
  CardinalityCache cache;
  std::array<rdf::TermId, 6> key = {1, 2, rdf::kWildcardId, 4, 5, 6};

  EXPECT_FALSE(cache.LookupPairJoin(key, 0, 2).has_value());

  cache.InsertPairJoin(key, 0, 2, 42.0);
  auto hit = cache.LookupPairJoin(key, 0, 2);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->has_value());
  EXPECT_DOUBLE_EQ(**hit, 42.0);

  // Different join positions are a different key.
  EXPECT_FALSE(cache.LookupPairJoin(key, 2, 0).has_value());

  // A "declined" (nullopt) result is itself cacheable and distinguishable
  // from a miss.
  cache.InsertPairJoin(key, 2, 0, std::nullopt);
  auto declined = cache.LookupPairJoin(key, 2, 0);
  ASSERT_TRUE(declined.has_value());
  EXPECT_FALSE(declined->has_value());
}

TEST_F(CardinalityCacheTest, UnboundedByDefault) {
  CardinalityCache cache(/*num_shards=*/1);
  for (rdf::TermId id = 1; id <= 500; ++id) {
    cache.InsertCount(id, rdf::kWildcardId, rdf::kWildcardId, id);
  }
  EXPECT_EQ(cache.size(), 500u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST_F(CardinalityCacheTest, BoundedShardEvictsAtCapacity) {
  // One shard bounded at 4 entries: the 5th insert must evict exactly one
  // entry — with no reference bits set, the clock takes the oldest slot.
  CardinalityCache cache(/*num_shards=*/1, /*max_entries_per_shard=*/4);
  for (rdf::TermId id = 1; id <= 4; ++id) {
    cache.InsertCount(id, rdf::kWildcardId, rdf::kWildcardId, id);
  }
  EXPECT_EQ(cache.size(), 4u);

  cache.InsertCount(5, rdf::kWildcardId, rdf::kWildcardId, 5);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.LookupCount(1, rdf::kWildcardId, rdf::kWildcardId));
  for (rdf::TermId id = 2; id <= 5; ++id) {
    auto hit = cache.LookupCount(id, rdf::kWildcardId, rdf::kWildcardId);
    ASSERT_TRUE(hit.has_value()) << "id " << id;
    EXPECT_EQ(*hit, id);
  }
}

TEST_F(CardinalityCacheTest, ClockGivesReferencedEntriesASecondChance) {
  CardinalityCache cache(/*num_shards=*/1, /*max_entries_per_shard=*/4);
  for (rdf::TermId id = 1; id <= 4; ++id) {
    cache.InsertCount(id, rdf::kWildcardId, rdf::kWildcardId, id);
  }
  // Touch entry 1: its reference bit protects it for one revolution, so
  // the hand sweeps past it and evicts entry 2 instead.
  ASSERT_TRUE(cache.LookupCount(1, rdf::kWildcardId, rdf::kWildcardId));
  cache.InsertCount(5, rdf::kWildcardId, rdf::kWildcardId, 5);

  EXPECT_TRUE(cache.LookupCount(1, rdf::kWildcardId, rdf::kWildcardId));
  EXPECT_FALSE(cache.LookupCount(2, rdf::kWildcardId, rdf::kWildcardId));
  EXPECT_TRUE(cache.LookupCount(5, rdf::kWildcardId, rdf::kWildcardId));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST_F(CardinalityCacheTest, EvictionKeepsHitStatAccountingConsistent) {
  CardinalityCache cache(/*num_shards=*/1, /*max_entries_per_shard=*/2);
  cache.InsertCount(1, rdf::kWildcardId, rdf::kWildcardId, 10);
  cache.InsertCount(2, rdf::kWildcardId, rdf::kWildcardId, 20);
  cache.InsertCount(3, rdf::kWildcardId, rdf::kWildcardId, 30);  // evicts 1

  EXPECT_FALSE(cache.LookupCount(1, rdf::kWildcardId, rdf::kWildcardId));
  EXPECT_TRUE(cache.LookupCount(2, rdf::kWildcardId, rdf::kWildcardId));
  EXPECT_TRUE(cache.LookupCount(3, rdf::kWildcardId, rdf::kWildcardId));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 2.0 / 3.0);

  // Re-inserting an evicted key is a normal insert (another eviction at
  // capacity), and Clear resets every counter including evictions.
  cache.InsertCount(1, rdf::kWildcardId, rdf::kWildcardId, 10);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST_F(CardinalityCacheTest, BoundedCacheStillServesExactValues) {
  // A tightly bounded cache thrashes but never changes estimator output.
  sparql::SelectQuery q = Parse(R"(
SELECT ?p WHERE {
  ?p <http://sn/firstName> "John" .
  ?p <http://sn/livesIn> <http://c/USA> .
})");
  CardinalityEstimator plain(store_, dict_);
  CardinalityCache cache(/*num_shards=*/2, /*max_entries_per_shard=*/1);
  CardinalityEstimator cached(store_, dict_, &cache);
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < q.patterns.size(); ++i) {
      auto a = plain.EstimatePattern(q, i);
      auto b = cached.EstimatePattern(q, i);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_DOUBLE_EQ(a->cardinality, b->cardinality) << "pattern " << i;
    }
    auto exact_plain = plain.ExactPairJoinCount(q, 0, 1);
    auto exact_cached = cached.ExactPairJoinCount(q, 0, 1);
    ASSERT_TRUE(exact_plain.has_value() && exact_cached.has_value());
    EXPECT_DOUBLE_EQ(*exact_plain, *exact_cached);
  }
}

TEST_F(CardinalityCacheTest, CachedEstimatorMatchesUncached) {
  sparql::SelectQuery q = Parse(R"(
SELECT ?p WHERE {
  ?p <http://sn/firstName> "John" .
  ?p <http://sn/livesIn> <http://c/USA> .
})");

  CardinalityEstimator plain(store_, dict_);
  CardinalityCache cache;
  CardinalityEstimator cached(store_, dict_, &cache);

  for (size_t i = 0; i < q.patterns.size(); ++i) {
    auto a = plain.EstimatePattern(q, i);
    auto b = cached.EstimatePattern(q, i);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(a->cardinality, b->cardinality) << "pattern " << i;
    EXPECT_EQ(a->var_distinct, b->var_distinct) << "pattern " << i;
  }

  auto exact_plain = plain.ExactPairJoinCount(q, 0, 1);
  auto exact_cached = cached.ExactPairJoinCount(q, 0, 1);
  ASSERT_TRUE(exact_plain.has_value());
  ASSERT_TRUE(exact_cached.has_value());
  EXPECT_DOUBLE_EQ(*exact_plain, *exact_cached);
  EXPECT_DOUBLE_EQ(*exact_plain, 2.0);  // two Johns in the USA

  // Same estimates again: now served from the cache, values unchanged.
  uint64_t hits_before = cache.hits();
  auto again = cached.ExactPairJoinCount(q, 0, 1);
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(*again, 2.0);
  EXPECT_GT(cache.hits(), hits_before);

  // Verify the raw count path agrees with the store.
  rdf::TermId p = *dict_.FindIri("http://sn/livesIn");
  EXPECT_EQ(store_.CountPattern(rdf::kWildcardId, p, rdf::kWildcardId), 6u);
  auto count_hit = cache.LookupCount(rdf::kWildcardId, p, rdf::kWildcardId);
  if (count_hit.has_value()) {
    EXPECT_EQ(*count_hit,
              store_.CountPattern(rdf::kWildcardId, p, rdf::kWildcardId));
  }
}

}  // namespace
}  // namespace rdfparams::opt

// Wire-protocol tests: FrameDecoder round trips and the malformed-input
// corpus (truncated frames, oversized length prefixes, unknown opcodes,
// zero-length payloads, frames split across reads). Every malformed input
// must end in a well-formed error frame or a clean close — never a crash
// or a hung connection. The live-server half of the corpus runs against a
// loopback daemon bound to an ephemeral port (port 0).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "server/wire.h"
#include "server/workbench.h"
#include "util/status.h"

namespace rdfparams::server {
namespace {

// ---------------------------------------------------------------------------
// Pure decoder units (no sockets).
// ---------------------------------------------------------------------------

TEST(FrameCodec, RoundTripsOneFrame) {
  std::string bytes = EncodeFrame(Opcode::kClassify, "query=4");
  ASSERT_EQ(bytes.size(), 4 + 1 + 7u);

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes).ok());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kClassify));
  EXPECT_EQ(frame->payload, "query=4");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodec, RoundTripsZeroLengthPayload) {
  std::string bytes = EncodeFrame(Opcode::kPing, "");
  ASSERT_EQ(bytes.size(), 5u);  // length prefix + opcode, nothing else

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes).ok());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kPing));
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameCodec, RoundTripsManyFramesInOneFeed) {
  std::string bytes;
  for (int i = 0; i < 100; ++i) {
    bytes += EncodeFrame(Opcode::kPing, "payload-" + std::to_string(i));
  }
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes).ok());
  for (int i = 0; i < 100; ++i) {
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(frame->payload, "payload-" + std::to_string(i));
  }
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameCodec, ReassemblesFrameSplitAcrossFeeds) {
  std::string bytes = EncodeFrame(Opcode::kRun, "query=1\nn=10");
  FrameDecoder decoder;
  // Worst case: one byte per read.
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_TRUE(decoder.Feed(bytes.substr(i, 1)).ok());
    EXPECT_FALSE(decoder.Next().has_value()) << "complete after byte " << i;
  }
  ASSERT_TRUE(decoder.Feed(bytes.substr(bytes.size() - 1)).ok());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kRun));
  EXPECT_EQ(frame->payload, "query=1\nn=10");
}

TEST(FrameCodec, TruncatedFrameStaysIncompleteNotAnError) {
  std::string bytes = EncodeFrame(Opcode::kClassify, "query=4");
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes.substr(0, bytes.size() - 3)).ok());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered(), bytes.size() - 3);
}

TEST(FrameCodec, RejectsLengthZero) {
  FrameDecoder decoder;
  Status st = decoder.Feed(std::string(4, '\0'));  // length prefix 0
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  // Sticky: further feeds keep failing and no frames ever come out.
  EXPECT_FALSE(decoder.Feed(EncodeFrame(Opcode::kPing, "x")).ok());
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameCodec, RejectsOversizedLengthEagerly) {
  // 0xFFFFFFFF far exceeds kMaxFrameBytes; the decoder must fail on the
  // 4 prefix bytes alone instead of waiting for 4 GiB that never comes.
  FrameDecoder decoder;
  Status st = decoder.Feed(std::string(4, '\xFF'));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("exceeds"), std::string::npos) << st.ToString();
}

TEST(FrameCodec, RejectsOversizedLengthBehindValidFrames) {
  // A valid frame followed by a hostile prefix: the valid frame must
  // still be deliverable... no — Feed validates eagerly and poisons the
  // whole stream, because after a framing violation byte boundaries are
  // meaningless. Assert that contract explicitly.
  std::string bytes = EncodeFrame(Opcode::kPing, "ok");
  bytes += std::string(4, '\xFF');
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(bytes).ok());
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameCodec, CompactsConsumedPrefixWithoutCorruption) {
  // Push enough consumed bytes through one decoder to trigger the
  // internal buffer compaction (pos_ > 4096) several times over.
  FrameDecoder decoder;
  std::string payload(512, 'x');
  for (int i = 0; i < 64; ++i) {
    payload[0] = static_cast<char>('a' + (i % 26));
    ASSERT_TRUE(decoder.Feed(EncodeFrame(Opcode::kPing, payload)).ok());
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(ErrorPayload, RoundTripsStatus) {
  Status original = Status::Unavailable("server at capacity: test");
  Status decoded = DecodeErrorPayload(EncodeErrorPayload(original));
  EXPECT_EQ(decoded.code(), original.code());
  EXPECT_EQ(decoded.message(), original.message());
}

TEST(ErrorPayload, EmptyPayloadDecodesAsParseError) {
  Status decoded = DecodeErrorPayload("");
  EXPECT_EQ(decoded.code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Live-server malformed-input corpus.
// ---------------------------------------------------------------------------

class ServerProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.products = 200;  // tiny: the corpus cares about framing, not data
    auto wb = BuildWorkbench(config);
    ASSERT_TRUE(wb.ok()) << wb.status().ToString();
    wb_ = new Workbench(std::move(wb).value());
    service_ = new Service(*wb_);

    ServerConfig server_config;
    server_config.port = 0;  // ephemeral; report via port()
    server_config.threads = 2;
    server_ = new Server(service_, server_config);
    Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_NE(server_->port(), 0) << "port 0 must resolve to a real port";
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    delete service_;
    delete wb_;
    server_ = nullptr;
    service_ = nullptr;
    wb_ = nullptr;
  }

  static Client Connect() {
    Client client;
    Status st = client.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(st.ok()) << st.ToString();
    return client;
  }

  static Workbench* wb_;
  static Service* service_;
  static Server* server_;
};

Workbench* ServerProtocolTest::wb_ = nullptr;
Service* ServerProtocolTest::service_ = nullptr;
Server* ServerProtocolTest::server_ = nullptr;

TEST_F(ServerProtocolTest, PingEchoesPayload) {
  auto response = CallOnce("127.0.0.1", server_->port(), Opcode::kPing,
                           "hello over the wire");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(*response, "hello over the wire");
}

TEST_F(ServerProtocolTest, ZeroLengthPayloadPingIsServed) {
  Client client = Connect();
  auto frame = client.Call(Opcode::kPing, "");
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kOk));
  EXPECT_TRUE(frame->payload.empty());
}

TEST_F(ServerProtocolTest, UnknownOpcodeGetsErrorFrameAndSessionSurvives) {
  Client client = Connect();
  ASSERT_TRUE(client.SendRaw(EncodeFrame(static_cast<Opcode>(99), "?")).ok());
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kError));
  Status carried = DecodeErrorPayload(frame->payload);
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(carried.message().find("unknown opcode 99"), std::string::npos)
      << carried.ToString();

  // The framing is still intact, so the connection must remain usable.
  auto ping = client.Call(Opcode::kPing, "still alive");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(ping->payload, "still alive");
}

TEST_F(ServerProtocolTest, OversizedLengthPrefixGetsErrorFrameThenClose) {
  Client client = Connect();
  ASSERT_TRUE(client.SendRaw(std::string(4, '\xFF')).ok());
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(DecodeErrorPayload(frame->payload).code(),
            StatusCode::kParseError);
  // After a framing violation the server closes; the next read is EOF,
  // never a hang.
  EXPECT_FALSE(client.ReadFrame().ok());
}

TEST_F(ServerProtocolTest, ZeroLengthPrefixGetsErrorFrameThenClose) {
  Client client = Connect();
  ASSERT_TRUE(client.SendRaw(std::string(4, '\0')).ok());
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(DecodeErrorPayload(frame->payload).code(),
            StatusCode::kParseError);
  EXPECT_FALSE(client.ReadFrame().ok());
}

TEST_F(ServerProtocolTest, GarbageHttpBytesGetErrorFrameThenClose) {
  // "GET " decodes as a ~542 MB length prefix — over the frame cap, so a
  // stray HTTP client gets one error frame and a close, not 542 MB of
  // patience.
  Client client = Connect();
  ASSERT_TRUE(client.SendRaw("GET / HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(DecodeErrorPayload(frame->payload).code(),
            StatusCode::kParseError);
  EXPECT_FALSE(client.ReadFrame().ok());
}

TEST_F(ServerProtocolTest, TruncatedFrameThenHalfCloseEndsCleanly) {
  // A frame that never completes is not an error the server can even
  // diagnose (the bytes may still be coming); on client EOF it just
  // closes the session without a response.
  Client client = Connect();
  std::string bytes = EncodeFrame(Opcode::kClassify, "query=4");
  ASSERT_TRUE(client.SendRaw(bytes.substr(0, bytes.size() - 3)).ok());
  client.CloseWrite();
  auto frame = client.ReadFrame();
  EXPECT_FALSE(frame.ok());  // clean EOF, no response frame, no hang
}

TEST_F(ServerProtocolTest, FrameSplitAcrossManyWritesIsReassembled) {
  Client client = Connect();
  std::string bytes = EncodeFrame(Opcode::kPing, "split me across reads");
  for (size_t i = 0; i < bytes.size(); i += 3) {
    ASSERT_TRUE(client.SendRaw(bytes.substr(i, 3)).ok());
  }
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kOk));
  EXPECT_EQ(frame->payload, "split me across reads");
}

TEST_F(ServerProtocolTest, PipelinedFramesAnsweredStrictlyInOrder) {
  Client client = Connect();
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    burst += EncodeFrame(Opcode::kPing, "seq-" + std::to_string(i));
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  for (int i = 0; i < 10; ++i) {
    auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->payload, "seq-" + std::to_string(i));
  }
}

TEST_F(ServerProtocolTest, MalformedRequestPayloadKeepsSessionUsable) {
  Client client = Connect();
  // Well-framed but semantically broken requests: header line without
  // '=', unknown field, out-of-range value. Each must produce an error
  // frame and leave the connection usable.
  const char* bad_payloads[] = {"not-a-key-value-line",
                                "query=4\nbogus_field=1", "query=999"};
  for (const char* payload : bad_payloads) {
    auto frame = client.Call(Opcode::kClassify, payload);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kError))
        << payload;
  }
  auto ping = client.Call(Opcode::kPing, "ok");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(ping->payload, "ok");
}

}  // namespace
}  // namespace rdfparams::server

#include "util/table.h"

#include <gtest/gtest.h>

namespace rdfparams::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "12345"});
  std::string text = t.ToText();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // Right-aligned numeric column: "    1" under "12345".
  EXPECT_NE(text.find("long-name  12345"), std::string::npos);
}

TEST(TablePrinterTest, HandlesShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  std::string text = t.ToText();
  EXPECT_NE(text.find('x'), std::string::npos);
}

TEST(TablePrinterTest, CsvQuotesSpecialCharacters) {
  TablePrinter t({"k", "v"});
  t.AddRow({"with,comma", "with\"quote"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TablePrinterTest, CsvPlainFieldsUnquoted) {
  TablePrinter t({"k"});
  t.AddRow({"plain"});
  EXPECT_EQ(t.ToCsv(), "k\nplain\n");
}

}  // namespace
}  // namespace rdfparams::util
